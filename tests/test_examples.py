"""Smoke tests: the example scripts must run and tell their stories."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, capsys):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = spec.name
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "ping" in out and "ttcp" in out
    assert "% of native throughput" in out


def test_overlay_reconfiguration(capsys):
    out = run_example("overlay_reconfiguration", capsys)
    assert "via waypoint" in out
    assert "saved" in out


def test_live_migration(capsys):
    out = run_example("live_migration", capsys)
    assert "migration complete" in out
    assert "transfer completed" in out


def test_topology_inference(capsys):
    out = run_example("topology_inference", capsys)
    assert "inferred ring" in out
    assert "inferred star" in out
    assert "inferred all-to-all" in out


def test_latency_breakdown(capsys):
    out = run_example("latency_breakdown", capsys)
    assert "TOTAL one-way" in out
    assert "virtualization adds" in out


def test_bridging_cloud_hpc(capsys):
    out = run_example("bridging_cloud_hpc", capsys)
    assert "cloud VM" in out
    assert "x faster" in out
