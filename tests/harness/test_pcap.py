"""Tests for the packet-capture utility."""

import pytest

from repro.apps.ping import run_ping
from repro.config import NETEFFECT_10G
from repro.harness.pcap import PacketCapture, describe_frame
from repro.harness.testbed import build_vnetp


def test_capture_sees_encapsulated_overlay_traffic():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    cap = PacketCapture(tb.hosts[0].nic)
    run_ping(tb.endpoints[0], tb.endpoints[1], count=3)
    # On the physical wire everything is VNET-encapsulated UDP.
    assert len(cap.frames) >= 6  # 3 requests out, 3 replies in
    vnet_frames = cap.matching("vnet[")
    assert len(vnet_frames) == len(cap.frames)
    # The inner protocol chain is visible through the encapsulation.
    assert cap.matching("icmp echo-request")
    assert cap.matching("icmp echo-reply")
    tx = [f for f in cap.frames if f.direction == "tx"]
    rx = [f for f in cap.frames if f.direction == "rx"]
    assert len(tx) == len(rx) == 3


def test_capture_summary_format():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    cap = PacketCapture(tb.hosts[0].nic)
    run_ping(tb.endpoints[0], tb.endpoints[1], count=1)
    line = cap.frames[0].render()
    assert "us tx" in line
    assert "eth " in line and "udp " in line


def test_capture_stop_restores_handlers():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    nic = tb.hosts[0].nic
    original_medium = nic._medium
    original_rx = nic.rx_handler
    cap = PacketCapture(nic)
    cap.stop()
    assert nic._medium is original_medium
    assert nic.rx_handler is original_rx


def test_capture_truncates_at_limit():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    cap = PacketCapture(tb.hosts[0].nic, max_frames=4)
    run_ping(tb.endpoints[0], tb.endpoints[1], count=5)
    assert len(cap.frames) == 4
    assert cap.truncated > 0
    assert "more frames" in cap.render()


def test_describe_frame_handles_tcp():
    from repro.proto.ethernet import EthernetFrame
    from repro.proto.ip import PROTO_TCP, IPv4Packet
    from repro.proto.tcp import TcpSegment

    seg = TcpSegment(sport=1000, dport=80, seq=5, ack=9, payload_bytes=100, syn=True)
    pkt = IPv4Packet(src="1.1.1.1", dst="2.2.2.2", proto=PROTO_TCP, payload=seg)
    frame = EthernetFrame(src="aa:00:00:00:00:01", dst="aa:00:00:00:00:02", payload=pkt)
    text = describe_frame(frame)
    assert "tcp 1000>80" in text
    assert "[S.]" in text
    assert "seq=5" in text
