"""Tests for testbed builders and flow-model calibration."""

import pytest

from repro.config import BROADCOM_1G, NETEFFECT_10G
from repro.harness.calibrate import calibrate_flow_model, clear_cache, flow_model_for
from repro.harness.testbed import (
    build_native,
    build_vnetp,
    build_vnetu,
    guest_mtu_for,
)
from repro.config import default_tuning


def test_native_pair_is_wired():
    tb = build_native(nic_params=NETEFFECT_10G)
    assert len(tb.hosts) == 2
    assert len(tb.endpoints) == 2
    assert tb.switch is None  # two hosts are directly cabled
    assert not tb.endpoints[0].is_virtual
    # Neighbors are configured both ways.
    assert tb.hosts[0].stack.neighbors[tb.hosts[1].ip] == tb.hosts[1].dev.mac


def test_three_native_hosts_get_a_switch():
    tb = build_native(n_hosts=3, nic_params=NETEFFECT_10G)
    assert tb.switch is not None
    assert len(tb.switch.ports) == 3


def test_vnetp_testbed_structure():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    assert len(tb.cores) == 2
    for ep in tb.endpoints:
        assert ep.is_virtual
        assert ep.vm.virtio_nics[0].registered
    core = tb.cores[0]
    # Full mesh: one link to the peer + 2 routes (peer link + local if).
    assert len(core.links) == 1
    assert len(core.routing) == 2
    assert core.bridge is not None


def test_vnetp_mesh_scales_with_hosts():
    tb = build_vnetp(n_hosts=4, nic_params=NETEFFECT_10G)
    for core in tb.cores:
        assert len(core.links) == 3
        assert len(core.routing) == 4


def test_guest_mtu_avoids_fragmentation():
    assert guest_mtu_for(BROADCOM_1G, default_tuning()) == 1458
    assert guest_mtu_for(NETEFFECT_10G, default_tuning()) == 8958
    # Explicit vnet_mtu smaller than physical wins.
    assert guest_mtu_for(NETEFFECT_10G, default_tuning(vnet_mtu=4000)) == 4000


def test_vnetu_testbed_structure():
    tb = build_vnetu(nic_params=BROADCOM_1G)
    assert len(tb.daemons) == 2
    for daemon in tb.daemons:
        assert len(daemon.links) == 1
        assert len(daemon.routing) == 2


def test_flow_model_cache_roundtrip():
    clear_cache()
    m1 = flow_model_for("native-10g")
    m2 = flow_model_for("native-10g")
    assert m1 is m2


def test_flow_model_unknown_config():
    with pytest.raises(KeyError, match="unknown configuration"):
        flow_model_for("native-100g")


def test_calibrated_models_are_ordered_sensibly():
    native = flow_model_for("native-10g")
    vnetp = flow_model_for("vnetp-10g")
    # VNET/P: higher latency, lower bandwidth, marked virtual.
    assert vnetp.alpha_ns > native.alpha_ns
    assert vnetp.beta_Bps < native.beta_Bps
    assert vnetp.virtual and not native.virtual
    # The ratios bracket the paper's: 2-3x latency, 75-90 % bandwidth.
    assert 1.8 < vnetp.alpha_ns / native.alpha_ns < 3.5
    assert 0.70 < vnetp.beta_Bps / native.beta_Bps < 0.95


def test_1g_models_are_wire_limited():
    n1 = flow_model_for("native-1g")
    v1 = flow_model_for("vnetp-1g")
    # Both sides saturate the 1G wire: betas within ~10 %.
    assert 0.90 < v1.beta_Bps / n1.beta_Bps <= 1.05
    # And neither is rx-path limited (so no fan-in penalty applies).
    assert not v1.rx_path_limited
