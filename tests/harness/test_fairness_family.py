"""Fairness experiment family: acceptance floors + reproducibility.

Runs individual scenario points directly (cheaper than the whole
family) and asserts the PR's acceptance criteria: two symmetric Reno
flows share the 1G bottleneck at JFI >= 0.95 with >= 80% utilization,
and the asymmetric-RTT outcome is bit-reproducible.  The assertions
hold under ``REPRO_FLUID=1`` as well (the nightly soak runs this suite
with the fluid fast path armed), so only floors — not exact packet-mode
values — are pinned here; exact values are pinned by BENCH_sim.json.
"""

import math

from repro import units
from repro.harness.experiments.fairness import (
    _asymmetric_rtt_point,
    _background_udp_point,
    _fixed_bw_point,
    _varying_loss_point,
)
from repro.topo import TopoSpec

HORIZON = 24 * units.MS
WARMUP = 6 * units.MS


def mesh(n):
    return TopoSpec(kind="mesh", n_hosts=n)


def test_symmetric_flows_meet_acceptance_floors():
    row = _fixed_bw_point("2 symmetric flows", 2, HORIZON, WARMUP, mesh(3))
    assert row["jfi"] >= 0.95
    assert row["utilization"] >= 0.80
    assert all(m > 0 for m in row["per_flow_mbps"])
    assert row["score"] >= 0.95 * 0.80


def test_loss_degrades_goodput_but_fast_retransmit_recovers():
    clean = _varying_loss_point("loss 0%", 0.0, 2027, HORIZON, WARMUP, mesh(2))
    lossy = _varying_loss_point("loss 2%", 0.02, 2027, HORIZON, WARMUP, mesh(2))
    assert clean["retransmits"] == 0
    assert lossy["goodput_mbps"] < clean["goodput_mbps"]
    assert lossy["goodput_mbps"] > 0
    # Reno recovers mostly via dup-ACKs, not timeouts.
    assert lossy["fast_retransmits"] >= 1


def test_asymmetric_rtt_is_finite_and_reproducible():
    first = _asymmetric_rtt_point("+200 us RTT", 200_000, HORIZON, WARMUP, mesh(3))
    second = _asymmetric_rtt_point("+200 us RTT", 200_000, HORIZON, WARMUP, mesh(3))
    assert first == second                    # same seed, same world, same rows
    assert math.isfinite(first["jfi"]) and first["jfi"] > 0.5
    assert all(m > 0 for m in first["per_flow_mbps"])


def test_background_udp_leaves_tcp_a_share():
    row = _background_udp_point("udp 50%", 0.5, 1400, HORIZON, WARMUP, mesh(3))
    # The paced blast must neither starve TCP nor vanish itself.
    assert row["tcp_mbps"] > 0
    assert row["udp_mbps"] > 0
    assert 0.0 < row["jfi"] <= 1.0
