"""The analytic breakdown must agree with the event-driven simulation."""

import pytest

from repro.config import BROADCOM_1G, NETEFFECT_10G, default_tuning
from repro.apps.ping import run_ping
from repro.harness.breakdown import (
    native_one_way_breakdown,
    render,
    total_ns,
    vnetp_one_way_breakdown,
)
from repro.harness.testbed import build_native, build_vnetp


@pytest.mark.parametrize("nic", [BROADCOM_1G, NETEFFECT_10G], ids=["1g", "10g"])
def test_native_breakdown_matches_simulation(nic):
    analytic_rtt_us = 2 * total_ns(native_one_way_breakdown(nic)) / 1000
    tb = build_native(nic_params=nic)
    measured = run_ping(tb.endpoints[0], tb.endpoints[1], count=20).avg_rtt_us
    assert measured == pytest.approx(analytic_rtt_us, rel=0.15)


@pytest.mark.parametrize("nic", [BROADCOM_1G, NETEFFECT_10G], ids=["1g", "10g"])
def test_vnetp_breakdown_matches_simulation(nic):
    analytic_rtt_us = 2 * total_ns(vnetp_one_way_breakdown(nic)) / 1000
    tb = build_vnetp(nic_params=nic)
    measured = run_ping(tb.endpoints[0], tb.endpoints[1], count=50).avg_rtt_us
    assert measured == pytest.approx(analytic_rtt_us, rel=0.15)


def test_breakdown_identifies_virtualization_overhead():
    native = total_ns(native_one_way_breakdown(NETEFFECT_10G))
    vnetp = total_ns(vnetp_one_way_breakdown(NETEFFECT_10G))
    assert vnetp > 2 * native
    # The added time is in vmm/guest stages the native path lacks.
    vmm_time = sum(
        st.ns for st in vnetp_one_way_breakdown(NETEFFECT_10G) if st.where == "vmm"
    )
    assert vmm_time > (vnetp - native) * 0.3


def test_cut_through_shrinks_the_copy_stage():
    plain = vnetp_one_way_breakdown(NETEFFECT_10G, payload=8900)
    ct = vnetp_one_way_breakdown(
        NETEFFECT_10G, payload=8900, tuning=default_tuning(cut_through=True)
    )
    plain_copy = next(st.ns for st in plain if st.name == "in-VMM copy")
    ct_copy = next(st.ns for st in ct if st.name == "in-VMM copy")
    assert ct_copy < plain_copy / 5


def test_render_is_readable():
    out = render(vnetp_one_way_breakdown(NETEFFECT_10G))
    assert "TOTAL one-way" in out
    assert "serialization" in out
