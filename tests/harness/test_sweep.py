"""Tests for the parameter-sweep utility."""

import pytest

from repro import units
from repro.config import NETEFFECT_10G, default_host
from repro.harness.sweep import render_sweep, set_nested, sweep_host_param


def test_set_nested_replaces_leaf():
    host = default_host()
    changed = set_nested(host, "vnet_costs.copy_bw_Bps", 9e9)
    assert changed.vnet_costs.copy_bw_Bps == 9e9
    assert host.vnet_costs.copy_bw_Bps != 9e9  # original untouched
    assert changed.vmm is host.vmm              # unrelated groups shared


def test_set_nested_top_level():
    host = default_host()
    changed = set_nested(host, "name", "other")
    assert changed.name == "other"


def test_set_nested_rejects_unknown_field():
    with pytest.raises(AttributeError):
        set_nested(default_host(), "vmm.nonsense", 1)


def test_set_nested_rejects_non_dataclass_intermediate():
    # "name" is a str, not a nested dataclass, so it can't be descended into.
    with pytest.raises(ValueError):
        set_nested(default_host(), "name.upper", 1)


def test_set_nested_rejects_malformed_path():
    with pytest.raises(ValueError):
        set_nested(default_host(), "vnet_costs..copy_bw_Bps", 1)


def test_set_nested_three_levels():
    import dataclasses

    @dataclasses.dataclass(frozen=True)
    class Leaf:
        x: int = 1
        y: int = 2

    @dataclasses.dataclass(frozen=True)
    class Mid:
        leaf: Leaf = Leaf()
        z: int = 3

    @dataclasses.dataclass(frozen=True)
    class Root:
        mid: Mid = Mid()
        w: int = 4

    root = Root()
    changed = set_nested(root, "mid.leaf.x", 99)
    assert changed.mid.leaf.x == 99
    assert changed.mid.leaf.y == 2      # sibling leaf field preserved
    assert changed.mid.z == 3           # sibling mid field preserved
    assert root.mid.leaf.x == 1         # original untouched


def test_sweep_copy_bw_moves_throughput_not_latency():
    points = sweep_host_param(
        "vnet_costs.copy_bw_Bps",
        [0.6e9, 2.4e9],
        nic_params=NETEFFECT_10G,
        ping_count=10,
        udp_ns=4 * units.MS,
    )
    assert points[1].udp_gbps > points[0].udp_gbps * 1.4
    assert points[1].rtt_us == pytest.approx(points[0].rtt_us, rel=0.05)
    out = render_sweep("vnet_costs.copy_bw_Bps", points)
    assert "sweep:" in out
