"""Tests for the python -m repro CLI."""

import pytest

from repro.__main__ import main


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig08" in out
    assert "fig14" in out
    assert "abl-cache" in out


def test_cli_unknown_experiment(capsys):
    assert main(["fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_cli_runs_an_experiment(capsys):
    assert main(["abl-yield", "--quick", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "Yield-strategy ablation" in out
    assert "immediate" in out
    assert "[exec] points=" in out
    assert "cached=0" in out


def test_cli_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["abl-yield", "--quick", "--jobs", "0"])


def test_cli_cache_warm_run_executes_nothing(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main(["abl-yield", "--quick", "--cache-dir", cache_dir]) == 0
    cold = capsys.readouterr().out
    assert "executed=0" not in cold
    assert main(["abl-yield", "--quick", "--cache-dir", cache_dir]) == 0
    warm = capsys.readouterr().out
    assert "executed=0" in warm

    def rows(out):
        return [l for l in out.splitlines() if "|" in l]

    assert rows(cold) == rows(warm)
