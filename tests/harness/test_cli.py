"""Tests for the python -m repro CLI."""

import pytest

from repro.__main__ import main


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig08" in out
    assert "fig14" in out
    assert "abl-cache" in out


def test_cli_unknown_experiment(capsys):
    assert main(["fig99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_cli_runs_an_experiment(capsys):
    assert main(["abl-yield", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Yield-strategy ablation" in out
    assert "immediate" in out
