"""Tests for the report formatting helpers."""

import pytest

from repro.harness.report import ExperimentResult, Table, format_value


def test_format_value_floats():
    assert format_value(12345.6) == "12,346"
    assert format_value(12.34) == "12.3"
    assert format_value(1.234) == "1.23"
    assert format_value(0.0) == "0"
    assert format_value("text") == "text"


def test_table_renders_aligned():
    t = Table(["name", "value"], title="demo")
    t.add("alpha", 1.5)
    t.add("beta", 25_000.0)
    out = t.render()
    lines = out.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5
    # Columns align: all rows same width.
    assert len(set(len(l) for l in lines[1:])) == 1


def test_table_rejects_wrong_arity():
    t = Table(["a", "b"])
    with pytest.raises(ValueError, match="2 columns"):
        t.add(1)


def test_experiment_result_render():
    t = Table(["x"], title="inner")
    t.add(1)
    r = ExperimentResult("figX", "a title", tables=[t], notes=["something"])
    out = r.render()
    assert "figX" in out
    assert "inner" in out
    assert "note: something" in out
