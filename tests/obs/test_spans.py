"""Span recording: enable gating, bracketing, nesting reconstruction."""

from repro.obs.span import (
    Span,
    SpanRecorder,
    assign_parents,
    flow_id,
    self_ns,
)
from repro.sim import Simulator


def test_disabled_recorder_records_nothing():
    sim = Simulator()
    rec = SpanRecorder(sim)

    def proc():
        with rec.span("dispatch", who="core"):
            yield sim.timeout(100)

    sim.process(proc())
    sim.run()
    assert rec.spans == []
    rec.event("tick")
    assert rec.spans == []


def test_span_brackets_virtual_time():
    sim = Simulator()
    rec = SpanRecorder(sim, enabled=True)

    def proc():
        yield sim.timeout(50)
        with rec.span("dispatch", who="core", where="vmm", flow="a>b"):
            yield sim.timeout(100)
            yield sim.timeout(25)

    sim.process(proc())
    sim.run()
    (s,) = rec.spans
    assert (s.t0, s.t1, s.ns) == (50, 175, 125)
    assert (s.stage, s.who, s.where, s.flow) == ("dispatch", "core", "vmm", "a>b")


def test_event_is_zero_duration():
    sim = Simulator()
    rec = SpanRecorder(sim, enabled=True)

    def proc():
        yield sim.timeout(7)
        rec.event("drop", who="core")

    sim.process(proc())
    sim.run()
    (s,) = rec.spans
    assert s.t0 == s.t1 == 7
    assert s.ns == 0


def test_queries_and_reset():
    sim = Simulator()
    rec = SpanRecorder(sim, enabled=True)

    def proc():
        for stage in ("a", "b", "a"):
            with rec.span(stage):
                yield sim.timeout(10)

    sim.process(proc())
    sim.run()
    assert len(rec.of_stage("a")) == 2
    assert rec.stages() == ["a", "b"]
    # Half-open window: a span starting exactly at t1 is excluded.
    assert [s.t0 for s in rec.between(0, 20)] == [0, 10]
    rec.reset()
    assert rec.spans == [] and rec.enabled


def test_assign_parents_interval_containment():
    outer = Span("outer", 0, 100, who="core", seq=1)
    inner = Span("inner", 10, 40, who="core", seq=2)
    innermost = Span("leaf", 20, 30, who="core", seq=3)
    other_proc = Span("other", 10, 40, who="nic", seq=4)
    ordered = assign_parents([other_proc, innermost, inner, outer])
    by_stage = {s.stage: s for s in ordered}
    assert by_stage["inner"].parent == 1
    assert by_stage["leaf"].parent == 2       # tightest enclosing, not just any
    assert by_stage["outer"].parent is None
    assert by_stage["other"].parent is None   # different who never nests


def test_self_ns_subtracts_direct_children_only():
    outer = Span("outer", 0, 100, who="core", seq=1)
    inner = Span("inner", 10, 40, who="core", seq=2)
    leaf = Span("leaf", 20, 30, who="core", seq=3)
    spans = assign_parents([outer, inner, leaf])
    assert self_ns(outer, spans) == 100 - 30   # only the direct child counts
    assert self_ns(inner, spans) == 30 - 10
    assert self_ns(leaf, spans) == 10


def test_flow_id_uses_src_dst():
    frame = Span  # any object with src/dst would do; use a tiny namespace

    class F:
        src = "aa:01"
        dst = "aa:02"

    assert flow_id(F()) == "aa:01>aa:02"


def test_span_dict_round_trip():
    s = Span("encap", 5, 17, who="vb", where="host", flow="a>b", packet=3, seq=9)
    assert Span.from_dict(s.to_dict()) == s
