"""Exporter round-trips: JSONL parse-back and Chrome trace schema."""

import io
import json

from repro.obs.exporters import (
    chrome_trace,
    export_jsonl,
    parse_jsonl,
    render_stage_report,
    stage_totals,
)
from repro.obs.span import Span

SPANS = [
    Span("dispatch", 100, 350, who="h0.vnet", where="vmm", flow="a>b", seq=1),
    Span("encap", 350, 900, who="h0.vbridge", where="host", flow="a>b", seq=2),
    Span("link", 900, 1400, who="link:n0-n1", where="wire", flow="x>y", seq=3),
    Span("dispatch", 1400, 1650, who="h1.vnet", where="vmm", flow="a>b", seq=4),
]


def test_jsonl_round_trip():
    fp = io.StringIO()
    text = export_jsonl(SPANS, fp)
    assert fp.getvalue() == text
    assert len(text.splitlines()) == len(SPANS)
    # Every line is standalone JSON, and parse-back reproduces the spans.
    for line in text.splitlines():
        json.loads(line)
    assert parse_jsonl(text) == SPANS
    assert parse_jsonl(text.splitlines()) == SPANS
    assert export_jsonl([]) == ""


def test_chrome_trace_schema():
    doc = chrome_trace(SPANS)
    # Must survive JSON serialisation (what the file export writes).
    doc = json.loads(json.dumps(doc))
    events = doc["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(SPANS)
    # Timestamps and durations are microseconds.
    first = complete[0]
    assert first["ts"] == 0.1 and first["dur"] == 0.25
    assert first["args"]["ns"] == 250 and first["args"]["flow"] == "a>b"
    assert first["cat"] == "vmm"
    # One named process row per emitting component.
    assert {e["args"]["name"] for e in meta} == {
        "h0.vnet", "h0.vbridge", "link:n0-n1", "h1.vnet"
    }
    pids = {e["pid"] for e in complete}
    assert pids == {e["pid"] for e in meta}
    assert doc["displayTimeUnit"] == "ns"


def test_stage_totals_and_report():
    totals = stage_totals(SPANS)
    assert totals == {"dispatch": 500, "encap": 550, "link": 500}
    assert list(totals) == ["dispatch", "encap", "link"]  # first-appearance order
    report = render_stage_report(SPANS, title="unit test")
    assert "unit test" in report
    assert "dispatch" in report and "TOTAL" in report
    # Shares sum to ~100%.
    assert "34." in report or "35." in report  # encap share of 1550 ns
