"""Unit tests for repro.obs.profile (the sim-kernel self-profiler)."""

import time

import pytest

from repro import units
from repro.apps.ttcp import run_ttcp_tcp
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp
from repro.obs.profile import (
    KernelProfiler,
    ProfileReport,
    collapsed_stacks,
    combine_reports,
    profile_chrome_trace,
)
from repro.sim.core import SimulationError, Simulator


def _ticker(sim, n, interval, name):
    def proc(sim):
        for _ in range(n):
            yield sim.timeout(interval)
    return sim.process(proc(sim), name=name)


# -- lifecycle -------------------------------------------------------------

def test_install_enable_disable_detach():
    sim = Simulator()
    assert KernelProfiler.of(sim) is None
    prof = KernelProfiler.install(sim)
    assert KernelProfiler.of(sim) is prof
    assert prof.enabled is False  # installed profilers start disabled
    prof.enable()
    assert prof.enabled is True
    prof.disable()
    assert prof.enabled is False
    prof.detach()
    assert KernelProfiler.of(sim) is None


def test_disabled_profiler_never_collects():
    sim = Simulator()
    prof = KernelProfiler.install(sim)  # attached but disabled
    _ticker(sim, 50, 10, "idle.proc")
    sim.run()
    assert prof.events == 0 and prof.runs == 0 and not prof.categories
    assert sim.events_processed > 0  # the plain kernel loop ran


# -- attribution -----------------------------------------------------------

def test_event_counts_reconcile_with_events_processed():
    sim = Simulator()
    prof = KernelProfiler.install(sim).enable()
    _ticker(sim, 100, 10, "count.proc.0")
    _ticker(sim, 100, 10, "count.proc.1")
    before = sim.events_processed
    sim.run()
    rep = prof.report()
    assert rep.events == sim.events_processed - before
    assert sum(c["events"] for c in rep.categories.values()) == rep.events
    # Both instances fold into one category (trailing .N stripped).
    assert rep.categories["proc:count.proc"]["events"] == 202


def test_wall_time_reconciles_within_five_percent():
    # The acceptance check: attributed nanoseconds (categories + the
    # clock-advance bucket) must land within ±5% of the wall time
    # measured around the profiled run, on a real workload.
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    prof = KernelProfiler.install(tb.sim).enable()
    t0 = time.perf_counter_ns()
    run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=2 * units.MB)
    wall_ns = time.perf_counter_ns() - t0
    rep = prof.report()
    assert rep.events > 1000
    # Internal reconciliation: attribution partitions the loop's time.
    assert rep.attributed_ns == pytest.approx(rep.total_wall_ns, rel=0.05)
    # External reconciliation: the run loop dominates the workload wall.
    assert rep.total_wall_ns == pytest.approx(wall_ns, rel=0.05)


def test_profiled_run_is_schedule_identical():
    def observables(profiled):
        tb = build_vnetp(nic_params=NETEFFECT_10G)
        if profiled:
            KernelProfiler.install(tb.sim).enable()
        r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1],
                         total_bytes=1 * units.MB)
        frames = sum(h.nic.tx_frames for h in tb.hosts)
        return r.elapsed_ns, r.bytes_moved, frames, tb.sim.events_processed

    assert observables(False) == observables(True)


def test_run_until_event_variant_and_return_value():
    sim = Simulator()
    prof = KernelProfiler.install(sim).enable()

    def proc(sim):
        yield sim.timeout(25)
        return "payload"

    p = _ticker(sim, 5, 100, "bg.proc")
    done = sim.process(proc(sim), name="target.proc")
    assert sim.run(until=done) == "payload"
    assert prof.events > 0 and prof.runs == 1
    sim.run()  # drain the background ticker, still profiled
    assert prof.runs == 2
    assert p is not None


def test_run_to_deadline_sets_now_and_counts():
    sim = Simulator()
    prof = KernelProfiler.install(sim).enable()
    _ticker(sim, 10, 10, "deadline.proc")
    sim.run(until=55)
    assert sim.now == 55
    assert prof.events == sum(
        c["events"] for c in prof.report().categories.values()
    )


def test_crash_propagates_through_profiled_loop():
    sim = Simulator()
    KernelProfiler.install(sim).enable()

    def boom(sim):
        yield sim.timeout(5)
        raise RuntimeError("kaboom")

    sim.process(boom(sim), name="crash.proc")
    with pytest.raises(RuntimeError, match="kaboom"):
        sim.run()


def test_starvation_raises_simulation_error():
    sim = Simulator()
    KernelProfiler.install(sim).enable()
    never = sim.event()
    with pytest.raises(SimulationError):
        sim.run(until=never)


# -- reports and exports ---------------------------------------------------

def test_report_round_trip_and_combine():
    sim = Simulator()
    prof = KernelProfiler.install(sim).enable()
    _ticker(sim, 20, 10, "rt.proc")
    sim.run()
    rep = prof.report()
    back = ProfileReport.from_dict(rep.to_dict())
    assert back.to_dict() == rep.to_dict()
    both = combine_reports([rep, back])
    assert both.events == 2 * rep.events
    assert both.categories["proc:rt.proc"]["events"] == \
        2 * rep.categories["proc:rt.proc"]["events"]
    assert "TOTAL attributed" in rep.render()


def test_collapsed_stacks_format():
    rep = ProfileReport(
        total_wall_ns=1000, events=3, advance_ns=100, heap_pops=2, runs=1,
        categories={"proc:a.b": {"events": 2, "wall_ns": 600},
                    "evt:Event": {"events": 1, "wall_ns": 200}},
    )
    lines = collapsed_stacks(rep).splitlines()
    assert lines[0] == "sim.run;kernel.advance 100"
    assert "sim.run;evt;Event 200" in lines
    assert "sim.run;proc;a.b 600" in lines
    # Every line is "frames weight" with an integer weight.
    for line in lines:
        frames, weight = line.rsplit(" ", 1)
        assert frames.startswith("sim.run")
        assert weight.isdigit()


def test_chrome_trace_shape():
    rep = ProfileReport(
        total_wall_ns=1000, events=3, advance_ns=100, heap_pops=2, runs=1,
        categories={"proc:a.b": {"events": 2, "wall_ns": 600}},
    )
    trace = profile_chrome_trace(rep)
    complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert len(complete) == 2  # kernel.advance + one category
    assert complete[0]["dur"] >= complete[-1]["dur"]  # heaviest first
    assert meta and all(e["name"] == "process_name" for e in meta)
    assert trace["otherData"]["total_wall_ns"] == 1000
