"""The CI docs check, run as part of the test suite.

`tools/check_docs.py` is a standalone script; these tests import its
check functions so a broken doc link or an undocumented public name in
`repro.obs` fails `pytest` too, not just the dedicated CI job.
"""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_docs_links_resolve():
    mod = _load_checker()
    assert mod.check_links(REPO) == []


def test_obs_public_surface_documented():
    mod = _load_checker()
    assert mod.check_docstrings(REPO) == []


def test_checker_flags_broken_reference(tmp_path):
    mod = _load_checker()
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "repro" / "obs").mkdir(parents=True)
    (tmp_path / "docs" / "bad.md").write_text(
        "See [the plan](no-such-file.md) and `also/missing.py`.\n"
    )
    errors = mod.check_links(tmp_path)
    assert len(errors) == 2
    assert any("no-such-file.md" in e for e in errors)
    assert any("also/missing.py" in e for e in errors)


def test_checker_flags_missing_docstring(tmp_path):
    mod = _load_checker()
    obs = tmp_path / "src" / "repro" / "obs"
    obs.mkdir(parents=True)
    (obs / "bare.py").write_text("def exposed():\n    pass\n")
    errors = mod.check_docstrings(tmp_path)
    assert any("missing module docstring" in e for e in errors)
    assert any("'exposed' missing docstring" in e for e in errors)


def test_checker_requires_flowcache_and_performance_doc(tmp_path):
    # The flow-cache module and its doc are part of the documentation
    # contract: deleting either must fail the check, and the module is
    # held to the docstring standard even though the rest of repro.vnet
    # is not.
    mod = _load_checker()
    assert "vnet/flowcache.py" in mod.REQUIRED_MODULES
    assert "docs/performance.md" in mod.REQUIRED_DOCS
    assert "vnet/flowcache.py" in mod.EXTRA_SWEEP_MODULES

    vnet = tmp_path / "src" / "repro" / "vnet"
    vnet.mkdir(parents=True)
    errors = mod.check_docstrings(tmp_path)
    assert any("vnet/flowcache.py: required module missing" in e for e in errors)
    assert any("docs/performance.md: required document missing" in e
               for e in errors)

    # Once present, an undocumented public name in it is flagged.
    (vnet / "flowcache.py").write_text(
        '"""mod."""\n\ndef lookup():\n    pass\n'
    )
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "performance.md").write_text("# perf\n")
    errors = mod.check_docstrings(tmp_path)
    assert any("flowcache.py: public 'lookup' missing docstring" in e
               for e in errors)
