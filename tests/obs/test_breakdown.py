"""Acceptance: the recorded-span breakdown reproduces the analytic model.

On a noise-free host with warm route caches, every virtual-nanosecond
charge on the VNET/P one-way path is bracketed by exactly one span, so
the recorded per-stage sums must agree with
:func:`repro.harness.breakdown.vnetp_one_way_breakdown` to the
nanosecond.
"""

import json

import pytest

from repro.apps.ping import run_ping
from repro.config import NETEFFECT_10G, OsNoiseParams, default_host
from repro.harness.breakdown import total_ns, vnetp_one_way_breakdown
from repro.harness.testbed import build_vnetp
from repro.obs.breakdown import (
    ping_window,
    recorded_one_way_breakdown,
    render_recorded,
)
from repro.obs.context import Observability
from repro.obs.exporters import chrome_trace


def _quiet_testbed():
    host = default_host().with_(noise=OsNoiseParams(jitter_max_ns=0))
    tb = build_vnetp(nic_params=NETEFFECT_10G, host_params=host)
    obs = Observability.of(tb.sim)
    obs.spans.enabled = True
    return tb, obs, host


def test_recorded_breakdown_matches_analytic_within_1ns():
    tb, obs, host = _quiet_testbed()
    run_ping(tb.endpoints[0], tb.endpoints[1], count=3)
    stages = recorded_one_way_breakdown(obs.spans, "vm0.gstack", "vm1.gstack")
    recorded = sum(s.ns for s in stages)
    analytic = total_ns(vnetp_one_way_breakdown(NETEFFECT_10G, host=host))
    assert abs(recorded - analytic) <= 1
    # Every recorded stage carries time and a layer tag.
    assert all(s.ns > 0 for s in stages)
    assert {s.where for s in stages} <= {"guest", "vmm", "host", "wire"}
    assert len(stages) >= 15
    # And it renders with the analytic table's formatter.
    table = render_recorded(stages)
    assert "TOTAL one-way" in table and "dispatch" in table


def test_ping_window_excludes_the_reply():
    tb, obs, _ = _quiet_testbed()
    run_ping(tb.endpoints[0], tb.endpoints[1], count=2)
    window = ping_window(obs.spans, "vm0.gstack", "vm1.gstack")
    # One request journey: exactly one sender icmp-tx and one receiver
    # icmp-rx; none of the reply's spans (which start at the window edge).
    assert len([s for s in window if s.stage == "icmp-tx"]) == 1
    assert len([s for s in window
                if s.stage == "icmp-rx" and s.who == "vm1.gstack"]) == 1
    assert not [s for s in window
                if s.stage == "icmp-rx" and s.who == "vm0.gstack"]


def test_ping_window_raises_without_spans():
    tb, obs, _ = _quiet_testbed()
    with pytest.raises(ValueError):
        ping_window(obs.spans, "vm0.gstack", "vm1.gstack")


def test_chrome_trace_of_ping_has_seven_plus_stages():
    tb, obs, _ = _quiet_testbed()
    run_ping(tb.endpoints[0], tb.endpoints[1], count=2)
    doc = json.loads(json.dumps(chrome_trace(obs.spans.spans)))
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert len(names) >= 7
    assert {"vmexit", "dispatch", "encap", "link", "decap", "inject"} <= names


def test_obs_cli_subcommand(capsys):
    from repro.__main__ import main

    assert main(["obs", "--pings", "2"]) == 0
    out = capsys.readouterr().out
    assert "recorded" in out and "analytic" in out
    assert "delta 0 ns" in out
