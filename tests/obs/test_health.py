"""Health: event log queries, detectors, hub wiring, JSONL round-trip."""

import io
import math

import pytest

from repro.obs.context import Observability
from repro.obs.health import (
    GoodputCollapseDetector,
    HealthEvent,
    HealthHub,
    HealthLog,
    HeartbeatSilenceDetector,
    LatencySpikeDetector,
    SloMonitor,
    export_health_jsonl,
    make_detector,
    parse_health_jsonl,
)
from repro.obs.metrics import Counter
from repro.obs.timeline import Series, Timeline
from repro.sim import Simulator


# -- log -------------------------------------------------------------------

def test_log_emit_orders_and_queries():
    log = HealthLog()
    log.emit(100, "m1", "fault")
    log.emit(200, "m2", "failover", "warning", "rerouted", 2.0)
    log.emit(300, "m1", "fault", "info")
    assert len(log) == 3
    assert [e.seq for e in log.events] == [1, 2, 3]
    assert [e.t_ns for e in log.of_kind("fault")] == [100, 300]
    assert log.of_kind("fault", monitor="m2") == []
    assert log.first("fault").t_ns == 100
    assert log.first("fault", after_ns=150).t_ns == 300
    assert log.first("missing") is None
    assert "rerouted" in log.render()
    log.reset()
    assert len(log) == 0 and log.emit(0, "m", "k").seq == 1


def test_log_rejects_unknown_severity():
    with pytest.raises(ValueError):
        HealthLog().emit(0, "m", "k", severity="catastrophic")


def test_health_jsonl_round_trip_including_nan_value():
    log = HealthLog()
    log.emit(100, "m", "fault", "critical", "boom", 3.5)
    log.emit(200, "m", "fault-recovered")  # value stays NaN
    fp = io.StringIO()
    text = export_health_jsonl(log.events, fp)
    assert fp.getvalue() == text
    back = parse_health_jsonl(text)
    assert back[0] == log.events[0]
    assert back[1].t_ns == 200 and math.isnan(back[1].value)
    assert parse_health_jsonl(text.splitlines()) == back
    assert export_health_jsonl([]) == ""


def test_event_dict_round_trip_defaults():
    e = HealthEvent.from_dict({"t_ns": 5, "monitor": "m", "kind": "k"})
    assert e.severity == "info" and e.message == "" and math.isnan(e.value)


# -- detectors -------------------------------------------------------------

def feed(monitor, series, samples, t0=1000, dt=1000):
    """Append samples one by one, checking the monitor after each."""
    for i, v in enumerate(samples):
        t = t0 + i * dt
        series.append(t, v)
        monitor.check(t)


def test_slo_monitor_debounces_and_pairs_events():
    log = HealthLog()
    s = Series("rate")
    mon = SloMonitor("slo", log, s, min_value=10.0, for_windows=2)
    feed(mon, s, [50.0, 5.0, math.nan, 5.0, 5.0, 50.0])
    kinds = [(e.kind, e.t_ns) for e in log.events]
    # One violation at the *second* consecutive bad finite sample (the
    # NaN window neither breaks nor extends the streak), one recovery.
    assert kinds == [("slo-violation", 4000), ("slo-violation-recovered", 6000)]
    assert log.events[0].severity == "critical"
    with pytest.raises(ValueError):
        SloMonitor("bad", log, s, for_windows=0)


def test_goodput_collapse_uses_running_peak():
    log = HealthLog()
    s = Series("goodput")
    mon = GoodputCollapseDetector("gc", log, s, collapse_frac=0.5, min_rate=10.0)
    feed(mon, s, [0.5, 100.0, 90.0, 10.0, 80.0])
    # The 0.5 sample is below frac*peak but inside the warm-up guard;
    # collapse fires at 10.0 (< 0.5 * peak 100) and recovers at 80.0.
    assert [(e.kind, e.value) for e in log.events] == [
        ("goodput-collapse", 10.0), ("goodput-collapse-recovered", 80.0)
    ]
    with pytest.raises(ValueError):
        GoodputCollapseDetector("bad", log, s, collapse_frac=1.5)


def test_latency_spike_baseline_excludes_spikes():
    log = HealthLog()
    s = Series("p99")
    mon = LatencySpikeDetector("ls", log, s, factor=3.0, warmup=3)
    feed(mon, s, [100.0, 110.0, 90.0, 1000.0, 1000.0, 120.0])
    kinds = [e.kind for e in log.events]
    assert kinds == ["latency-spike", "latency-spike-recovered"]
    # The spike samples never joined the baseline history.
    assert 1000.0 not in mon._history
    with pytest.raises(ValueError):
        LatencySpikeDetector("bad", log, s, factor=1.0)


def test_heartbeat_silence_waits_for_first_beat():
    log = HealthLog()
    c = Counter("beats")
    mon = HeartbeatSilenceDetector("hb", log, c, windows=2)
    # Silence before any beat is not an outage (link may not be up yet).
    mon.check(1000)
    mon.check(2000)
    assert len(log) == 0
    c.inc()
    mon.check(3000)      # moved
    mon.check(4000)      # still 1
    mon.check(5000)      # still 2 -> silence
    assert [(e.kind, e.t_ns) for e in log.events] == [("heartbeat-silence", 5000)]
    c.inc()
    mon.check(6000)
    assert log.events[-1].kind == "heartbeat-silence-recovered"
    with pytest.raises(ValueError):
        HeartbeatSilenceDetector("bad", log, c, windows=0)


def test_make_detector_factory():
    log = HealthLog()
    s = Series("s")
    assert isinstance(make_detector("slo", "m", log, s, min_value=1), SloMonitor)
    assert isinstance(
        make_detector("heartbeat-silence", "m", log, Counter("c")),
        HeartbeatSilenceDetector,
    )
    with pytest.raises(ValueError):
        make_detector("nope", "m", log, s)


# -- hub -------------------------------------------------------------------

def test_hub_rides_timeline_ticks():
    sim = Simulator()
    obs = Observability.of(sim)
    c = obs.metrics.counter("beats")
    tl = Timeline(sim, obs.metrics, interval_ns=1000)
    tl.counter_rate("beats", series="beat.rate")
    hub = HealthHub()
    hub.add(HeartbeatSilenceDetector("hb", hub.log, c, windows=2))
    hub.slo("rate-floor", tl.series["beat.rate"], min_value=0.0)
    assert hub.attach_to(tl) is hub

    def beats():
        # Beat for 3 ms, then go silent.
        for _ in range(6):
            c.inc()
            yield sim.timeout(500)

    sim.process(beats())
    tl.start(until_ns=8000)
    sim.run()
    silence = hub.log.first("heartbeat-silence")
    # Last beat at 2.5 ms; two still windows after the 3 ms tick -> 5 ms.
    assert silence is not None and silence.t_ns == 5000
    assert hub.log.of_kind("slo-violation") == []  # rate never negative


def test_observability_health_is_lazy_and_reset_clears_log():
    sim = Simulator()
    obs = Observability.of(sim)
    assert not obs.health_active
    hub = obs.health
    assert obs.health is hub and obs.health_active
    hub.log.emit(0, "m", "k")
    obs.reset()
    assert len(obs.health.log) == 0
