"""TrafficMonitor on the registry, and FlowStats rate semantics."""

from repro.obs.context import Observability
from repro.harness.testbed import build_vnetp
from repro.units import SECOND
from repro.vnet.monitor import FlowStats, TrafficMonitor


def test_flow_rate_zero_span_is_zero():
    # A flow whose whole life is one instant has no meaningful rate: the
    # old code fell back to a 1 ns span and reported bytes * 1e9 B/s.
    f = FlowStats(src="a", dst="b", packets=1, bytes=1500,
                  first_seen_ns=1000, last_seen_ns=1000)
    assert f.rate_Bps(now_ns=1000) == 0.0
    assert f.rate_Bps(now_ns=0) == 0.0          # now=0 must not inflate either


def test_flow_rate_over_observed_window():
    f = FlowStats(src="a", dst="b", packets=2, bytes=2000,
                  first_seen_ns=0, last_seen_ns=SECOND)
    assert f.rate_Bps(now_ns=SECOND) == 2000.0
    # The window extends to now when the flow has gone quiet...
    assert f.rate_Bps(now_ns=2 * SECOND) == 1000.0
    # ...but never shrinks below the last observation.
    assert f.rate_Bps(now_ns=SECOND // 2) == 2000.0


def test_monitor_top_flows_and_registry():
    tb = build_vnetp()
    mon = TrafficMonitor(tb.sim, tb.cores[0])
    mon.observe("m1", "m2", 100)
    mon.observe("m1", "m2", 100)
    mon.observe("m3", "m4", 5000)
    top = mon.top_flows(1)
    assert [(f.src, f.dst) for f in top] == [("m3", "m4")]
    assert mon.matrix()[("m1", "m2")] == 200
    assert mon.total_bytes() == 5200
    assert set(mon.communicating_pairs(min_bytes=1000)) == {("m3", "m4")}
    # The registry mirrors the monitor's aggregate view.
    metrics = Observability.of(tb.sim).metrics
    host = tb.hosts[0].name
    assert metrics.counter(f"vnet.monitor.{host}.packets").value == 3
    assert metrics.counter(f"vnet.monitor.{host}.bytes").value == 5200
    assert metrics.gauge(f"vnet.monitor.{host}.flows").value == 2
    assert mon.packets_observed == 3 and mon.bytes_observed == 5200


def test_monitor_reset_clears_flows_and_metrics():
    tb = build_vnetp()
    mon = TrafficMonitor(tb.sim, tb.cores[0])
    mon.observe("m1", "m2", 100)
    mon.reset()
    assert mon.flows == {}
    assert mon.total_bytes() == 0
    metrics = Observability.of(tb.sim).metrics
    host = tb.hosts[0].name
    assert metrics.counter(f"vnet.monitor.{host}.packets").value == 0
    assert metrics.gauge(f"vnet.monitor.{host}.flows").value == 0
    # Observation after reset starts clean.
    mon.observe("m5", "m6", 42)
    assert mon.packets_observed == 1 and mon.bytes_observed == 42
