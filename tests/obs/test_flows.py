"""Flows: packet-record assembly, critical path, latency-over-time."""

import math

import pytest

from repro.obs.context import Observability
from repro.obs.flows import (
    assemble_packet_records,
    critical_path,
    flow_summaries,
    percentile_over_time,
    register_latency_series,
    render_flow_report,
)
from repro.obs.span import Span
from repro.obs.timeline import Timeline
from repro.sim import Simulator


def spans_for(flow, packet, t0, stages):
    """Consecutive spans for one packet: [(stage, ns), ...] from t0."""
    out, t = [], t0
    for stage, ns in stages:
        out.append(Span(stage, t, t + ns, flow=flow, packet=packet))
        t += ns
    return out


SPANS = (
    spans_for("a>b", 1, 100, [("dispatch", 200), ("encap", 300), ("link", 500)])
    + spans_for("a>b", 2, 2000, [("dispatch", 200), ("encap", 2800), ("link", 500)])
    + spans_for("c>d", "icmp-1", 0, [("link", 700)])
    + [Span("bookkeeping", 0, 50)]  # no flow/packet: skipped
)


def test_assemble_packet_records():
    records = assemble_packet_records(SPANS)
    assert [(r.flow, r.packet) for r in records] == [
        ("a>b", 1), ("a>b", 2), ("c>d", "icmp-1")
    ]
    first = records[0]
    assert first.t0 == 100 and first.t1 == 1100
    assert first.elapsed_ns == 1000 and first.busy_ns == 1000
    assert first.stage_ns == {"dispatch": 200, "encap": 300, "link": 500}
    assert first.spans == 3
    # Per-flow restriction.
    assert [r.flow for r in assemble_packet_records(SPANS, flow="c>d")] == ["c>d"]


def test_repeated_stage_sums_and_gaps_show_in_elapsed():
    spans = [
        Span("link", 0, 100, flow="f", packet=9),
        Span("link", 500, 700, flow="f", packet=9),  # retransmit, after a gap
    ]
    [rec] = assemble_packet_records(spans)
    assert rec.stage_ns == {"link": 300}
    assert rec.busy_ns == 300
    assert rec.elapsed_ns == 700  # queueing gap included


def test_critical_path_picks_tail_dominator():
    records = assemble_packet_records(SPANS, flow="a>b")
    # The p99 tail is packet 2, whose encap (2800 of 3500 ns) dominates.
    stage, share = critical_path(records)
    assert stage == "encap"
    assert share == pytest.approx(2800 / 3500)
    with pytest.raises(ValueError):
        critical_path([])


def test_flow_summaries_sorted_and_rendered():
    summaries = flow_summaries(assemble_packet_records(SPANS))
    assert [s.flow for s in summaries] == ["a>b", "c>d"]  # largest first
    ab = summaries[0]
    assert ab.packets == 2
    assert ab.mean_ns == pytest.approx((1000 + 3500) / 2)
    assert ab.max_ns == 3500
    assert ab.critical_stage == "encap"
    report = render_flow_report(summaries)
    assert "a>b" in report and "encap" in report


def test_percentile_over_time_bins_by_completion():
    records = assemble_packet_records(SPANS)
    # Packet 1 completes at 1100 (window 2), packet 2 at 5500 (window 6),
    # the icmp probe at 700 (window 1); empty windows are omitted.
    curve = percentile_over_time(records, window_ns=1000, q=50)
    assert curve == [(1000, 700.0), (2000, 1000.0), (6000, 3500.0)]
    with pytest.raises(ValueError):
        percentile_over_time(records, window_ns=0)


def test_register_latency_series_holds_straddling_packets():
    sim = Simulator()
    obs = Observability.of(sim)
    obs.spans.enabled = True
    tl = Timeline(sim, obs.metrics, interval_ns=1000)
    series = register_latency_series(tl, obs.spans, q=50, series="p50")
    assert series.name == "p50"

    def packet(flow, pid, stages):
        for stage, ns in stages:
            with obs.spans.span(stage, flow=flow, packet=pid):
                yield sim.timeout(ns)

    def workload():
        # Packet 1 completes at t=600: its grace (one interval) expires by
        # the t=2000 tick, not the t=1000 one.
        yield from packet("f", 1, [("link", 600)])
        # Packet 2 straddles the t=2000 tick (1800..2200) and must not be
        # split into two partial records; it reports at t=4000.
        yield sim.timeout(1200)
        yield from packet("f", 2, [("encap", 300), ("link", 100)])

    sim.process(workload())
    tl.start(until_ns=4000)
    sim.run()
    v1, v2, v3, v4 = series.values
    assert math.isnan(v1)        # packet 1 still within grace at t=1000
    assert v2 == 600.0           # packet 1 reported once, complete
    assert math.isnan(v3)        # packet 2's grace spans the t=3000 tick
    assert v4 == 400.0           # packet 2 whole, never split


def test_register_latency_series_flow_filter_and_default_name():
    sim = Simulator()
    obs = Observability.of(sim)
    obs.spans.enabled = True
    tl = Timeline(sim, obs.metrics, interval_ns=1000)
    series = register_latency_series(tl, obs.spans, q=99, flow="a>b")
    assert series.name == "flows.a>b.p99"

    def workload():
        with obs.spans.span("link", flow="a>b", packet=1):
            yield sim.timeout(100)
        with obs.spans.span("link", flow="x>y", packet=2):
            yield sim.timeout(900)

    sim.process(workload())
    tl.start(until_ns=3000)
    sim.run()
    # Only the a>b packet ever reports; the x>y one is filtered out.
    assert series.finite_values() == [100.0]


def test_span_recorder_stamps_packet_id_from_flow_of():
    class Pdu:
        def __init__(self, pid):
            self.src, self.dst, self.id = "a", "b", pid

    sim = Simulator()
    obs = Observability.of(sim)
    obs.spans.enabled = True
    with obs.spans.span("link", flow_of=Pdu(7)):
        pass
    [span] = obs.spans.spans
    assert span.flow == "a>b" and span.packet == 7
    # Disabled recording never touches the PDU.
    obs.reset()
    obs.spans.enabled = False
    with obs.spans.span("link", flow_of=Pdu(8)):
        pass
    assert obs.spans.spans == []
