"""Unit tests for repro.obs.fairness (JFI, utilization, publication)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.fairness import (
    FairnessScore,
    jain_fairness_index,
    link_utilization,
    publish_fairness,
    score_flows,
)
from repro.obs.metrics import MetricsRegistry


def test_jfi_equal_allocation_is_one():
    assert jain_fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_jfi_monopoly_is_one_over_n():
    assert jain_fairness_index([7.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_jfi_empty_and_all_zero_are_vacuously_fair():
    assert jain_fairness_index([]) == 1.0
    assert jain_fairness_index([0.0, 0.0]) == 1.0


def test_jfi_rejects_negative_allocations():
    with pytest.raises(ValueError):
        jain_fairness_index([1.0, -0.5])


@settings(max_examples=50, deadline=None)
@given(
    xs=st.lists(
        st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
        min_size=1,
        max_size=16,
    )
)
def test_property_jfi_bounded_and_scale_invariant(xs):
    jfi = jain_fairness_index(xs)
    n = len(xs)
    assert 1.0 / n - 1e-9 <= jfi <= 1.0 + 1e-9
    # JFI is scale-invariant: doubling every allocation changes nothing.
    assert jain_fairness_index([2 * x for x in xs]) == pytest.approx(
        jfi, rel=1e-9, abs=1e-9
    )


def test_link_utilization_saturated_link_is_one():
    # 125 MB over 1 s on a 1 Gbps link is exactly line rate.
    assert link_utilization(125_000_000, 1e9, 1e9) == pytest.approx(1.0)


def test_link_utilization_rejects_nonpositive_window():
    with pytest.raises(ValueError):
        link_utilization(1.0, 0, 1e9)
    with pytest.raises(ValueError):
        link_utilization(1.0, 1e9, 0)


def test_score_flows_combines_jfi_and_utilization():
    # Two equal flows at 1/4 line rate each: JFI 1, utilization 0.5.
    score = score_flows("t", [31_250_000, 31_250_000], 1e9, 1e9)
    assert isinstance(score, FairnessScore)
    assert score.jfi == pytest.approx(1.0)
    assert score.utilization == pytest.approx(0.5)
    assert score.score == pytest.approx(0.5)
    assert score.goodputs_bps == pytest.approx((250e6, 250e6))


def test_publish_fairness_records_gauges():
    registry = MetricsRegistry()
    score = score_flows("sym", [10_000_000, 30_000_000], 1e9, 1e9)
    returned = publish_fairness(registry, score)
    assert returned is score
    assert registry.gauge("fairness.sym.jfi").value == pytest.approx(score.jfi)
    assert registry.gauge("fairness.sym.utilization").value == pytest.approx(
        score.utilization
    )
    assert registry.gauge("fairness.sym.score").value == pytest.approx(score.score)
    assert math.isfinite(score.jfi) and score.jfi < 1.0  # unequal split


def test_publish_fairness_none_registry_is_passthrough():
    score = score_flows("off", [1.0], 1e9, 1e9)
    assert publish_fairness(None, score) is score


# -- utilization clamping (fluid over-grant) -------------------------------

def test_score_flows_clamps_impossible_utilization():
    # 250 MB over 1 s on a 1 Gbps link is 2x line rate — impossible at a
    # real bottleneck, so the reported utilization clamps to 1.0 while
    # the raw measurement survives and the estimated flag raises.
    score = score_flows("est", [250_000_000], 1e9, 1e9)
    assert score.utilization == 1.0
    assert score.utilization_raw == pytest.approx(2.0)
    assert score.utilization_estimated is True
    assert score.score == pytest.approx(score.jfi)  # clamped input


def test_score_flows_below_line_rate_is_value_preserving():
    # At 50% utilization the clamp is the identity: reported == raw,
    # flag down.  This is why the benchgate fairness floors/references
    # are unaffected under the default (packet-level) configuration.
    score = score_flows("ok", [31_250_000, 31_250_000], 1e9, 1e9)
    assert score.utilization == pytest.approx(0.5)
    assert score.utilization_raw == pytest.approx(0.5)
    assert score.utilization_estimated is False


def test_directly_constructed_score_defaults_raw_to_reported():
    # Old-style construction without utilization_raw must keep working:
    # raw falls back to the reported value, flag stays down.
    score = FairnessScore("legacy", (1.0,), jfi=1.0, utilization=0.9)
    assert math.isnan(score.utilization_raw)
    assert score.raw_utilization == pytest.approx(0.9)
    assert score.utilization_estimated is False


def test_publish_fairness_records_raw_and_estimated_gauges():
    registry = MetricsRegistry()
    score = score_flows("over", [250_000_000], 1e9, 1e9)
    publish_fairness(registry, score)
    assert registry.gauge("fairness.over.utilization").value == 1.0
    assert registry.gauge("fairness.over.utilization_raw").value == pytest.approx(2.0)
    assert registry.gauge("fairness.over.utilization_estimated").value == 1.0
    under = score_flows("under", [31_250_000], 1e9, 1e9)
    publish_fairness(registry, under)
    assert registry.gauge("fairness.under.utilization_estimated").value == 0.0
