"""Unit tests for repro.obs.compare (the structured artifact diff)."""

import math

import pytest

from repro.obs.compare import DEFAULT_SECTIONS, MISSING, diff_artifacts
from repro.obs.runinfo import RunArtifact


def _art(**overrides):
    base = dict(
        config={"code_version": "abc", "env": {"REPRO_FLUID": ""}},
        rows={"exp": [{"size": 64, "gbps": 1.5, "ok": True}]},
        metrics={"c": {"type": "counter", "value": 2}},
        timelines=[{"interval_ns": 100, "series": {}}],
        health=[{"t_ns": 5, "monitor": "m", "value": None}],
        fairness={"fairness.s.jfi": 1.0},
        volatile={"wall_s": 0.123},
    )
    base.update(overrides)
    return RunArtifact(**base)


def test_identical_artifacts():
    report = diff_artifacts(_art(), _art())
    assert report.verdict == "identical"
    assert report.identical and report.equivalent
    assert report.leaves > 0 and not report.differences
    assert "identical" in report.render()


def test_exact_mode_flags_any_leaf_change():
    b = _art(rows={"exp": [{"size": 64, "gbps": 1.6, "ok": True}]})
    report = diff_artifacts(_art(), b)
    assert report.verdict == "different"
    (d,) = report.differences
    assert d.path == "rows.exp[0].gbps"
    assert (d.a, d.b) == (1.5, 1.6)
    assert "DIFFERENT" in report.render()


def test_tolerance_mode_absorbs_small_numeric_deltas():
    b = _art(rows={"exp": [{"size": 64, "gbps": 1.515, "ok": True}]})
    report = diff_artifacts(_art(), b, mode="tolerance", rel_tol=0.02)
    assert report.verdict == "equivalent"
    assert report.tolerated == 1 and not report.differences
    # A delta beyond the tolerance is still a difference.
    c = _art(rows={"exp": [{"size": 64, "gbps": 2.0, "ok": True}]})
    assert diff_artifacts(_art(), c, mode="tolerance").verdict == "different"


def test_tolerance_mode_never_tolerates_non_numeric_leaves():
    b = _art(config={"code_version": "zzz", "env": {"REPRO_FLUID": ""}})
    report = diff_artifacts(_art(), b, mode="tolerance")
    assert report.verdict == "different"
    assert report.differences[0].path == "config.code_version"


def test_bools_compare_by_identity_not_numeric_value():
    # True == 1 in Python; the diff must still flag bool-vs-int.
    b = _art(rows={"exp": [{"size": 64, "gbps": 1.5, "ok": 1}]})
    report = diff_artifacts(_art(), b, mode="tolerance", rel_tol=1.0)
    assert report.verdict == "different"
    assert report.differences[0].path == "rows.exp[0].ok"


def test_nan_equals_nan():
    a = _art(health=[{"t_ns": 5, "monitor": "m", "value": math.nan}])
    b = _art(health=[{"t_ns": 5, "monitor": "m", "value": math.nan}])
    assert diff_artifacts(a, b).verdict == "identical"


def test_missing_keys_reported_for_both_sides():
    a = _art(metrics={"c": {"type": "counter", "value": 2},
                      "only_a": {"type": "counter", "value": 1}})
    b = _art(metrics={"c": {"type": "counter", "value": 2},
                      "only_b": {"type": "counter", "value": 1}})
    report = diff_artifacts(a, b)
    notes = {d.path: (d.note, d.a, d.b) for d in report.differences}
    assert notes["metrics.only_a"][0] == "only in A"
    assert notes["metrics.only_a"][2] == MISSING
    assert notes["metrics.only_b"][0] == "only in B"


def test_list_length_mismatch_is_a_shape_difference():
    b = _art(health=[])
    report = diff_artifacts(_art(), b)
    assert any(d.note == "length mismatch" and d.path == "health"
               for d in report.differences)


def test_sections_restriction():
    # Metrics differ, rows identical: a rows-only diff passes (the
    # flowcache/fluid ablation mode in CI).
    b = _art(metrics={"c": {"type": "counter", "value": 99}})
    assert diff_artifacts(_art(), b).verdict == "different"
    assert diff_artifacts(_art(), b, sections=("rows",)).verdict == "identical"


def test_ignore_globs_and_default_wall_clock_ignore():
    # exec.points.wall_s is ignored by default (the one wall-clock metric).
    a = _art(metrics={"exec.points.wall_s": {"type": "gauge", "value": 1.0}})
    b = _art(metrics={"exec.points.wall_s": {"type": "gauge", "value": 9.0}})
    assert diff_artifacts(a, b).verdict == "identical"
    # User globs stack on top — including over missing keys.
    c = _art(metrics={})
    assert diff_artifacts(a, c).verdict == "identical"
    d = _art(config={"code_version": "zzz", "env": {"REPRO_FLUID": ""}})
    assert diff_artifacts(
        _art(), d, ignore=("config.code_version",)
    ).verdict == "identical"


def test_volatile_and_profile_never_compared():
    b = _art(volatile={"wall_s": 99.0})
    b.profile = {"events": 123}
    assert diff_artifacts(_art(), b).verdict == "identical"
    assert "volatile" not in DEFAULT_SECTIONS
    assert "profile" not in DEFAULT_SECTIONS


def test_schema_mismatch_raises():
    b = _art()
    b.schema = 999
    with pytest.raises(ValueError, match="schema mismatch"):
        diff_artifacts(_art(), b)


def test_unknown_mode_and_section_raise():
    with pytest.raises(ValueError, match="unknown diff mode"):
        diff_artifacts(_art(), _art(), mode="fuzzy")
    with pytest.raises(ValueError, match="unknown section"):
        diff_artifacts(_art(), _art(), sections=("volatile",))


def test_report_to_dict_shape():
    b = _art(rows={"exp": [{"size": 64, "gbps": 1.6, "ok": True}]})
    d = diff_artifacts(_art(), b).to_dict()
    assert d["verdict"] == "different"
    assert d["differences"][0]["path"] == "rows.exp[0].gbps"
    assert set(d) == {"verdict", "mode", "sections", "rel_tol", "abs_tol",
                      "leaves", "tolerated", "differences"}
