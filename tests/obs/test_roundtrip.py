"""Property tests: span / metrics / health JSONL exports are lossless."""

import math

from hypothesis import given, settings, strategies as st

from repro.obs.exporters import (
    export_jsonl,
    export_metrics_jsonl,
    parse_jsonl,
    parse_metrics_jsonl,
)
from repro.obs.health import HealthEvent, export_health_jsonl, parse_health_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span

# Identifier-ish names: printable, no control chars, deterministic sort.
names = st.text(
    alphabet=st.characters(whitelist_categories=("L", "N"), whitelist_characters="._->"),
    min_size=1,
    max_size=20,
)
finite = st.floats(allow_nan=False, allow_infinity=False, width=32)


# -- spans -----------------------------------------------------------------

@st.composite
def spans(draw):
    t0 = draw(st.integers(min_value=0, max_value=10**12))
    return Span(
        stage=draw(names),
        t0=t0,
        t1=t0 + draw(st.integers(min_value=0, max_value=10**9)),
        who=draw(names | st.just("")),
        where=draw(names | st.just("")),
        flow=draw(st.none() | names),
        # PDU ids are ints for frames/segments, strings for icmp probes.
        packet=draw(st.none() | st.integers(min_value=0) | names),
        seq=draw(st.integers(min_value=0, max_value=10**6)),
    )


@settings(max_examples=50)
@given(st.lists(spans(), max_size=20))
def test_span_jsonl_round_trip_lossless(recorded):
    text = export_jsonl(recorded)
    assert parse_jsonl(text) == recorded
    # Re-export of the parse-back is byte-identical (stable schema).
    assert export_jsonl(parse_jsonl(text)) == text


# -- metrics ---------------------------------------------------------------

@st.composite
def registries(draw):
    reg = MetricsRegistry()
    prefix_pool = ("vnet", "hw.nic", "chaos", "app")
    for i, value in enumerate(draw(st.lists(st.integers(0, 10**9), max_size=4))):
        reg.counter(f"{prefix_pool[0]}.c{i}").inc(value)
    # Gauges: plain and sim-time-weighted (timestamped sets).
    for i, sets in enumerate(
        draw(st.lists(st.lists(finite, min_size=1, max_size=4), max_size=3))
    ):
        g = reg.gauge(f"{prefix_pool[1]}.g{i}")
        timestamped = draw(st.booleans())
        now = 0
        for v in sets:
            if timestamped:
                now += draw(st.integers(1, 10**6))
                g.set(v, now_ns=now)
            else:
                g.set(v)
    # Histograms: arbitrary strictly-increasing float edges.
    for i, (edges, obs) in enumerate(
        draw(
            st.lists(
                st.tuples(
                    st.lists(finite, min_size=1, max_size=5, unique=True),
                    st.lists(finite, max_size=6),
                ),
                max_size=2,
            )
        )
    ):
        h = reg.histogram(f"{prefix_pool[2]}.h{i}", sorted(edges))
        for x in obs:
            h.observe(x)
    # Labeled counter families.
    fam = reg.labeled(f"{prefix_pool[3]}.reasons")
    for label, n in draw(
        st.lists(st.tuples(names, st.integers(0, 1000)), max_size=4)
    ):
        fam.inc(label, n)
    return reg


@settings(max_examples=50)
@given(registries())
def test_metrics_jsonl_round_trip_lossless(reg):
    text = export_metrics_jsonl(reg)
    back = parse_metrics_jsonl(text)
    # Textually identical re-export: the CI diff property.
    assert export_metrics_jsonl(back) == text
    # And structurally lossless, including histogram edges/extrema and
    # gauge time-weighted state.
    orig, parsed = reg.dump(), back.dump()
    assert set(parsed) == set(orig)
    for name, entry in orig.items():
        for key, value in entry.items():
            assert parsed[name][key] == value or (
                isinstance(value, float) and math.isnan(value)
            )


def test_metrics_jsonl_empty_histogram_extrema_survive():
    reg = MetricsRegistry()
    reg.histogram("empty", edges=[1.0, 2.0])
    back = parse_metrics_jsonl(export_metrics_jsonl(reg))
    h = back.get("empty")
    assert h.count == 0
    assert h.min == math.inf and h.max == -math.inf


def test_parse_metrics_jsonl_empty_text_is_empty_registry():
    back = parse_metrics_jsonl("")
    assert back.dump() == {}
    # Whitespace-only input (trailing newlines) is equally empty.
    assert parse_metrics_jsonl("\n\n").dump() == {}


def test_parse_metrics_jsonl_duplicate_names_last_line_wins():
    # Duplicate metric names cannot come out of one registry dump, but a
    # hand-concatenated JSONL stream can carry them; the parser's
    # contract is last-line-wins (dict overwrite before merge), NOT
    # counter addition.
    text = (
        '{"name": "dup", "type": "counter", "value": 1}\n'
        '{"name": "dup", "type": "counter", "value": 7}\n'
    )
    back = parse_metrics_jsonl(text)
    assert back.counter("dup").value == 7


def test_normalize_metrics_dump_is_non_mutating_and_idempotent():
    from repro.obs.exporters import normalize_metrics_dump

    reg = MetricsRegistry()
    reg.gauge("g").set(-0.0)
    reg.histogram("h", edges=[1.0]).observe(1)
    dump = reg.dump()
    norm = normalize_metrics_dump(dump)
    # The input dump is untouched (its gauge still carries -0.0)...
    assert str(dump["g"]["value"]) == "-0.0"
    # ...the normalised copy collapses it, and min/max are floats.
    assert str(norm["g"]["value"]) == "0.0"
    assert isinstance(norm["h"]["min"], float)
    assert normalize_metrics_dump(norm) == norm


# -- timeline dumps --------------------------------------------------------

def test_merge_dumps_empty_inputs():
    from repro.obs.timeline import merge_dumps

    assert merge_dumps([]) == {}
    # A dump with no series contributes nothing.
    assert merge_dumps([{"interval_ns": 100, "series": {}}]) == {}


def test_merge_dumps_disjoint_series_names():
    from repro.obs.timeline import merge_dumps

    dump_a = {"interval_ns": 100, "series": {
        "rate.a": {"name": "rate.a", "unit": "pkt/s", "capacity": 4,
                   "t": [100, 200], "v": [1.0, 2.0]},
    }}
    dump_b = {"interval_ns": 100, "series": {
        "rate.b": {"name": "rate.b", "unit": "pkt/s", "capacity": 4,
                   "t": [150], "v": [9.0]},
    }}
    merged = merge_dumps([dump_a, dump_b])
    assert set(merged) == {"rate.a", "rate.b"}
    assert merged["rate.a"].samples() == [(100, 1.0), (200, 2.0)]
    assert merged["rate.b"].samples() == [(150, 9.0)]


def test_merge_dumps_same_name_concatenates_time_sorted():
    from repro.obs.timeline import merge_dumps

    early = {"interval_ns": 100, "series": {
        "r": {"name": "r", "unit": "", "capacity": 4, "t": [300], "v": [3.0]},
    }}
    late = {"interval_ns": 100, "series": {
        "r": {"name": "r", "unit": "", "capacity": 4,
              "t": [100, 200], "v": [1.0, 2.0]},
    }}
    merged = merge_dumps([early, late])
    assert merged["r"].samples() == [(100, 1.0), (200, 2.0), (300, 3.0)]


# -- health ----------------------------------------------------------------

events = st.builds(
    HealthEvent,
    t_ns=st.integers(min_value=0, max_value=10**12),
    monitor=names,
    kind=names,
    severity=st.sampled_from(("info", "warning", "critical")),
    message=st.text(max_size=40),
    value=finite | st.just(math.nan),
    seq=st.integers(min_value=0, max_value=10**6),
)


@settings(max_examples=50)
@given(st.lists(events, max_size=20))
def test_health_jsonl_round_trip_lossless(log_events):
    text = export_health_jsonl(log_events)
    back = parse_health_jsonl(text)
    assert len(back) == len(log_events)
    for a, b in zip(back, log_events):
        if math.isnan(b.value):
            assert math.isnan(a.value)
            a = HealthEvent(**{**a.__dict__, "value": b.value})
        assert a == b
    assert export_health_jsonl(back) == text
