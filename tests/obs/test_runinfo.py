"""Unit tests for repro.obs.runinfo (RunArtifact bundles)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.exec import Engine, Point
from repro.obs.runinfo import (
    ARTIFACT_SCHEMA,
    RunArtifact,
    build_artifact,
    fairness_scores,
)
from tests.exec.points import add_point, metric_point


class _Result:
    def __init__(self, experiment_id, rows):
        self.experiment_id = experiment_id
        self.rows = rows


def test_fairness_scores_extracts_only_fairness_gauges():
    dump = {
        "fairness.sym.jfi": {"type": "gauge", "value": 0.99},
        "fairness.sym.utilization": {"type": "gauge", "value": -0.0},
        "fairness.count": {"type": "counter", "value": 3},
        "vnet.core.h0.pkts": {"type": "counter", "value": 12},
    }
    scores = fairness_scores(dump)
    assert scores == {"fairness.sym.jfi": 0.99, "fairness.sym.utilization": 0.0}
    # -0.0 normalised to +0.0 so JSON text is byte-stable across runs.
    assert str(scores["fairness.sym.utilization"]) == "0.0"


def test_save_load_round_trip(tmp_path):
    art = RunArtifact(
        kind="experiment",
        config={"code_version": "abc", "env": {"REPRO_FLUID": ""}},
        rows={"fig08": [{"size": 64, "gbps": 1.5}]},
        metrics={"c": {"type": "counter", "value": 2}},
        timelines=[{"interval_ns": 100, "series": {}}],
        health=[{"t_ns": 5, "monitor": "m", "kind": "k"}],
        fairness={"fairness.s.jfi": 1.0},
        volatile={"wall_s": 0.1},
    )
    path = tmp_path / "art.json"
    art.save(str(path))
    back = RunArtifact.load(str(path))
    assert back.to_dict() == art.to_dict()
    assert back.schema == ARTIFACT_SCHEMA
    # The on-disk form is sorted, indented JSON with a trailing newline.
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == art.to_dict()


def test_to_dict_canonicalises_tuples_once():
    art = RunArtifact(rows={"exp": [{"sizes": (1, 2, 3)}]})
    d = art.to_dict()
    assert d["rows"]["exp"][0]["sizes"] == [1, 2, 3]
    # Round-tripping the canonical form is the identity.
    assert RunArtifact.from_dict(d).to_dict() == d


def test_build_artifact_from_engine():
    engine = Engine(jobs=1)
    values = engine.run(
        [
            Point("t", "a", add_point, {"a": 1, "b": 2}),
            Point("t", "b", metric_point, {"n": 3}),
        ]
    )
    results = [_Result("t", [{"key": "a", "value": values[0]}])]
    art = build_artifact(
        engine, results, extra_config={"experiments": ["t"], "quick": True}
    )
    assert art.kind == "experiment"
    assert len(art.config["code_version"]) == 16
    assert set(art.config["env"]) == {"REPRO_FLUID", "REPRO_FLOW_CACHE"}
    assert art.config["experiments"] == ["t"]
    assert art.rows == {"t": [{"key": "a", "value": values[0]}]}
    assert art.metrics["exec.points.total"]["value"] == 2
    assert art.volatile["points_total"] == 2
    assert art.volatile["points_executed"] == 2
    assert art.volatile["wall_s"] >= 0.0
    # volatile and profile never enter the diffable sections.
    assert art.profile is None


# -- property: artifact schema round-trip stability ------------------------

_leaf = (
    st.integers(-10**9, 10**9)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.text(max_size=12)
    | st.booleans()
    | st.none()
)
_rows = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.lists(st.dictionaries(st.text(min_size=1, max_size=8), _leaf, max_size=4),
             max_size=3),
    max_size=3,
)


@settings(max_examples=50)
@given(rows=_rows, volatile=st.dictionaries(st.text(min_size=1, max_size=8),
                                            _leaf, max_size=3))
def test_property_round_trip_stability(rows, volatile):
    art = RunArtifact(rows=rows, volatile=volatile)
    d = art.to_dict()
    # to_dict is idempotent (canonicalisation happens exactly once)...
    assert RunArtifact.from_dict(d).to_dict() == d
    # ...and survives a JSON text round trip (what save/load do).
    assert RunArtifact.from_dict(json.loads(json.dumps(d))).to_dict() == d


def test_load_rejects_invalid_json(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(json.JSONDecodeError):
        RunArtifact.load(str(bad))
