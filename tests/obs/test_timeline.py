"""Timeline: sampling cadence, ring eviction, samplers, exports, merge."""

import json
import math

import pytest

from repro.obs.context import Observability, capture_timelines
from repro.obs.timeline import (
    DEFAULT_INTERVAL_NS,
    Series,
    Timeline,
    bucket_percentile,
    merge_dumps,
)
from repro.sim import Simulator


def make_timeline(interval_ns=1000, capacity=64):
    sim = Simulator()
    obs = Observability.of(sim)
    tl = Timeline(sim, obs.metrics, interval_ns=interval_ns, capacity=capacity)
    return sim, obs, tl


# -- Series ----------------------------------------------------------------

def test_series_ring_evicts_oldest():
    s = Series("s", capacity=3)
    for i in range(5):
        s.append(i * 10, float(i))
    assert len(s) == 3
    assert s.times == [20, 30, 40]
    assert s.values == [2.0, 3.0, 4.0]
    assert s.samples() == [(20, 2.0), (30, 3.0), (40, 4.0)]
    assert s.last() == (40, 4.0)


def test_series_empty_and_nan_handling():
    s = Series("s")
    assert s.last() is None
    s.append(0, math.nan)
    s.append(1, 2.5)
    assert s.finite_values() == [2.5]
    with pytest.raises(ValueError):
        Series("bad", capacity=0)


def test_series_dict_round_trip():
    s = Series("s", unit="pkt/s", capacity=7)
    s.append(5, 1.0)
    s.append(9, math.nan)
    back = Series.from_dict(s.to_dict())
    assert back.name == "s" and back.unit == "pkt/s" and back.capacity == 7
    assert back.times == s.times
    assert back.values[0] == 1.0 and math.isnan(back.values[1])


# -- bucket_percentile -----------------------------------------------------

def test_bucket_percentile_interpolates_and_handles_edges():
    edges = [10.0, 100.0, 1000.0]
    # All mass in one bucket: percentile stays inside that bucket.
    assert 10.0 <= bucket_percentile(edges, [0, 4, 0, 0], 50) <= 100.0
    # Empty window is NaN, overflow pins to the last edge.
    assert math.isnan(bucket_percentile(edges, [0, 0, 0, 0], 99))
    assert bucket_percentile(edges, [0, 0, 0, 3], 99) == 1000.0
    with pytest.raises(ValueError):
        bucket_percentile(edges, [1, 0, 0, 0], 101)


# -- sampling cadence ------------------------------------------------------

def test_start_samples_on_cadence_with_final_partial_tick():
    sim, obs, tl = make_timeline(interval_ns=1000)
    seen = tl.record("probe", lambda now: float(now))
    tl.start(until_ns=3500)
    sim.run()
    # Full windows at 1000/2000/3000 plus the horizon tick at 3500.
    assert seen.times == [1000, 2000, 3000, 3500]
    assert seen.values == [1000.0, 2000.0, 3000.0, 3500.0]


def test_double_start_raises_and_restart_after_horizon_is_allowed():
    sim, obs, tl = make_timeline(interval_ns=1000)
    tl.record("probe", lambda now: 0.0)
    tl.start(until_ns=2000)
    with pytest.raises(RuntimeError):
        tl.start(until_ns=4000)
    sim.run()
    tl.start(until_ns=4000)  # horizon reached -> driver may be respawned
    sim.run()
    assert tl.series["probe"].times == [1000, 2000, 3000, 4000]


def test_inactive_timeline_spawns_no_process():
    sim, obs, tl = make_timeline()
    assert not tl.active
    # No series registered and no start(): a drained run sees no events.
    sim.run()
    assert sim.now == 0
    tl.record("x", lambda now: 1.0)
    assert tl.active


def test_registration_is_get_or_create():
    sim, obs, tl = make_timeline()
    obs.metrics.counter("c").inc()
    a = tl.counter_rate("c", series="rate")
    b = tl.counter_rate("c", series="rate")
    assert a is b
    assert len(tl._samplers) == 1


def test_interval_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timeline(sim, Observability.of(sim).metrics, interval_ns=0)


# -- samplers --------------------------------------------------------------

def test_counter_rate_per_window_delta():
    sim, obs, tl = make_timeline(interval_ns=1000)
    c = obs.metrics.counter("pkts")
    rate = tl.counter_rate("pkts", series="rate", unit="pkt/s")

    def traffic():
        # Mid-window increments: 5 packets land in each sampling window.
        yield sim.timeout(500)
        for _ in range(3):
            c.inc(5)
            yield sim.timeout(1000)

    sim.process(traffic())
    tl.start(until_ns=3000)
    sim.run()
    # 5 packets per 1000 ns window = 5e6 pkt/s, every window.
    assert rate.values == [5e6, 5e6, 5e6]


def test_gauge_value_last_vs_time_weighted():
    sim, obs, tl = make_timeline(interval_ns=1000)
    g = obs.metrics.gauge("depth")
    last = tl.gauge_value("depth", series="last")
    avg = tl.gauge_value("depth", series="avg", time_avg=True)

    def writer():
        g.set(4.0, now_ns=sim.now)      # 4 for the first half...
        yield sim.timeout(500)
        g.set(0.0, now_ns=sim.now)      # ...0 for the second half.
        yield sim.timeout(500)

    sim.process(writer())
    tl.start(until_ns=1000)
    sim.run()
    assert last.values == [0.0]
    assert avg.values == [pytest.approx(2.0)]


def test_histogram_percentile_windows_are_deltas():
    sim, obs, tl = make_timeline(interval_ns=1000)
    h = obs.metrics.histogram("lat", edges=[10.0, 100.0, 1000.0])
    series = tl.histogram_percentile("lat", 50, series="p50")

    def observe():
        yield sim.timeout(500)
        for x in (5, 5, 5):
            h.observe(x)
        yield sim.timeout(1000)
        for x in (500, 500, 500):
            h.observe(x)

    sim.process(observe())
    tl.start(until_ns=3000)
    sim.run()
    # Window 1 saw only the first bucket, window 2 only the third;
    # window 3 saw nothing (NaN) — deltas, not cumulative counts.
    assert series.values[0] <= 10.0
    assert 100.0 <= series.values[1] <= 1000.0
    assert math.isnan(series.values[2])


def test_histogram_percentile_requires_histogram():
    sim, obs, tl = make_timeline()
    obs.metrics.counter("not-a-hist")
    with pytest.raises(ValueError):
        tl.histogram_percentile("not-a-hist", 99)
    with pytest.raises(ValueError):
        tl.histogram_percentile("never-registered", 99)


def test_attach_observer_runs_after_each_tick():
    sim, obs, tl = make_timeline(interval_ns=1000)
    tl.record("x", lambda now: 1.0)
    ticks = []
    tl.attach(ticks.append)
    tl.start(until_ns=2000)
    sim.run()
    assert ticks == [1000, 2000]


# -- exports ---------------------------------------------------------------

def _sampled_timeline():
    sim, obs, tl = make_timeline(interval_ns=1000)
    c = obs.metrics.counter("pkts")
    tl.counter_rate("pkts", series="rate", unit="pkt/s")
    tl.record("maybe", lambda now: math.nan if now < 2000 else 7.0)

    def traffic():
        while True:
            c.inc()
            yield sim.timeout(250)

    sim.process(traffic())
    tl.start(until_ns=2000)
    sim.run(until=2000)
    return tl


def test_to_csv_long_format_nan_empty():
    tl = _sampled_timeline()
    lines = tl.to_csv().strip().splitlines()
    assert lines[0] == "series,unit,t_ns,value"
    assert "maybe,,1000," in lines  # NaN serialises as the empty field
    assert any(line.startswith("rate,pkt/s,1000,") for line in lines)


def test_chrome_counter_events_schema_skips_nan():
    tl = _sampled_timeline()
    events = tl.chrome_counter_events()
    json.dumps(events)  # must be JSON-serialisable as-is
    assert all(e["ph"] == "C" for e in events)
    by_name = {}
    for e in events:
        by_name.setdefault(e["name"], []).append(e)
    # The NaN window of "maybe" is omitted; its 2000 ns sample survives.
    assert [e["ts"] for e in by_name["maybe"]] == [2.0]
    assert [e["ts"] for e in by_name["rate"]] == [1.0, 2.0]
    assert by_name["rate"][0]["args"]["value"] == 4e6


def test_render_mentions_every_series():
    tl = _sampled_timeline()
    out = tl.render("unit test")
    assert "unit test" in out and "rate" in out and "maybe" in out


# -- dump / merge ----------------------------------------------------------

def test_merge_dumps_concatenates_and_sorts():
    a = Series("s", unit="ns")
    a.append(30, 3.0)
    a.append(10, 1.0)
    b = Series("s", unit="ns")
    b.append(20, 2.0)
    other = Series("t")
    other.append(5, 5.0)
    merged = merge_dumps([
        {"series": {"s": a.to_dict(), "t": other.to_dict()}},
        {"series": {"s": b.to_dict()}},
    ])
    assert set(merged) == {"s", "t"}
    assert merged["s"].samples() == [(10, 1.0), (20, 2.0), (30, 3.0)]
    assert merged["s"].unit == "ns"
    assert merge_dumps([]) == {}


# -- context wiring --------------------------------------------------------

def test_observability_timeline_lazy_and_captured():
    with capture_timelines() as bucket:
        sim = Simulator()
        obs = Observability.of(sim)
        assert bucket == []          # untouched simulations contribute nothing
        tl = obs.timeline
        assert obs.timeline is tl    # cached
        assert bucket == [tl]
    assert tl.interval_ns == DEFAULT_INTERVAL_NS
    obs.reset()
    assert obs.timeline is not tl    # reset drops the store
