"""Metrics registry: instruments, bucket edges, name/type conflicts."""

import math

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim import SampleStats


def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    c.reset()
    assert c.value == 0


def test_gauge_moves_both_ways():
    g = Gauge("g")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2


def test_histogram_bucket_edges_inclusive_upper():
    h = Histogram("h", edges=[10, 100, 1000])
    # x <= edge lands in that bucket: 10 goes in the first bucket, 10.5 in
    # the second, 1001 in the overflow bucket.
    for x in (1, 10, 10.5, 100, 1000, 1001):
        h.observe(x)
    assert h.counts == [2, 2, 1, 1]
    assert h.count == 6
    assert h.min == 1 and h.max == 1001
    assert h.sum == pytest.approx(1 + 10 + 10.5 + 100 + 1000 + 1001)
    assert h.mean == pytest.approx(h.sum / 6)


def test_histogram_percentile_and_reset():
    h = Histogram("h", edges=[10, 100])
    for x in (5, 50, 500):
        h.observe(x)
    # Median falls in the (10, 100] bucket; interpolation stays inside it.
    assert 10 <= h.percentile(50) <= 100
    assert h.percentile(100) == 500
    with pytest.raises(ValueError):
        h.percentile(101)
    h.reset()
    assert h.count == 0 and h.counts == [0, 0, 0]
    assert math.isnan(h.percentile(50))


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram("h", edges=[])
    with pytest.raises(ValueError):
        Histogram("h", edges=[10, 10])
    with pytest.raises(ValueError):
        Histogram("h", edges=[100, 10])


def test_registry_get_or_create_and_conflicts():
    reg = MetricsRegistry()
    c = reg.counter("vnet.core.h0.pkts")
    assert reg.counter("vnet.core.h0.pkts") is c
    with pytest.raises(ValueError):
        reg.gauge("vnet.core.h0.pkts")
    h = reg.histogram("lat", edges=[1, 2])
    assert reg.histogram("lat", edges=[1, 2]) is h
    with pytest.raises(ValueError):
        reg.histogram("lat", edges=[1, 2, 3])


def test_registry_names_snapshot_reset():
    reg = MetricsRegistry()
    reg.counter("a.x").inc(2)
    reg.gauge("a.y").set(1.5)
    reg.histogram("b.h", edges=[10]).observe(3)
    assert reg.names("a.") == ["a.x", "a.y"]
    snap = reg.snapshot("a.")
    assert snap == {"a.x": 2, "a.y": 1.5}
    hsnap = reg.snapshot("b.")["b.h"]
    assert hsnap["count"] == 1 and hsnap["counts"] == [1, 0]
    reg.reset()
    assert reg.snapshot("a.") == {"a.x": 0, "a.y": 0.0}
    assert reg.get("missing") is None


def test_labeled_counters_family():
    reg = MetricsRegistry()
    fam = reg.labeled("palacios.h0.exits")
    fam.inc("io")
    fam.inc("io")
    fam.inc("virtio-kick")
    assert fam["io"] == 2
    assert fam["never-seen"] == 0          # missing labels read as zero
    assert "io" in fam and "never-seen" not in fam
    assert fam.total() == 3
    assert sorted(fam.keys()) == ["io", "virtio-kick"]
    assert dict(fam.items())["virtio-kick"] == 1
    # Each label is a real registry counter under the prefix.
    assert reg.counter("palacios.h0.exits.io").value == 2


def test_sample_stats_percentile_interpolates():
    # Regression: nearest-rank rounding used to snap to a sample; the
    # linear method interpolates between order statistics.
    s = SampleStats()
    s.extend([0, 10])
    assert s.percentile(25) == pytest.approx(2.5)
    assert s.percentile(50) == pytest.approx(5.0)
    assert s.percentile(0) == 0 and s.percentile(100) == 10
    with pytest.raises(ValueError):
        s.percentile(-1)
    # The documented behaviour on a dense range is unchanged.
    r = SampleStats()
    r.extend(range(101))
    assert r.percentile(50) == 50
    assert r.percentile(99) == pytest.approx(99.0)
