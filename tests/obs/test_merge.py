"""Tests for cross-process metrics aggregation: dump/merge and capture."""

import math
import pickle

import pytest

from repro.obs.context import Observability, capture_metrics
from repro.obs.metrics import MetricsRegistry
from repro.sim import Simulator
from repro.sim.trace import SampleStats


def _populated() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("c").inc(5)
    reg.gauge("g").set(2.5)
    h = reg.histogram("h", (1.0, 10.0, 100.0))
    for x in (0.5, 5, 50, 500):
        h.observe(x)
    return reg


def test_dump_pickles_and_merges_into_empty_registry():
    dump = pickle.loads(pickle.dumps(_populated().dump()))
    merged = MetricsRegistry()
    merged.merge(dump)
    assert merged.counter("c").value == 5
    assert merged.gauge("g").value == 2.5
    h = merged.get("h")
    assert h.counts == [1, 1, 1, 1]
    assert h.count == 4
    assert h.min == 0.5 and h.max == 500


def test_merge_adds_to_existing_instruments():
    merged = _populated()
    merged.merge(_populated().dump())
    assert merged.counter("c").value == 10
    assert merged.gauge("g").value == 5.0
    h = merged.get("h")
    assert h.counts == [2, 2, 2, 2]
    assert h.sum == pytest.approx(2 * (0.5 + 5 + 50 + 500))


def test_merge_rejects_mismatched_histogram_edges():
    reg = MetricsRegistry()
    reg.histogram("h", (1.0, 2.0))
    with pytest.raises(ValueError):
        reg.merge(_populated().dump())


def test_merge_rejects_kind_conflicts():
    reg = MetricsRegistry()
    reg.gauge("c")
    with pytest.raises(ValueError):
        reg.merge(_populated().dump())
    with pytest.raises(ValueError):
        MetricsRegistry().merge({"x": {"type": "mystery"}})


def test_capture_metrics_collects_new_simulations():
    with capture_metrics() as outer:
        obs1 = Observability.of(Simulator())
        with capture_metrics() as inner:
            obs2 = Observability.of(Simulator())
        obs3 = Observability.of(Simulator())
    assert outer == [obs1.metrics, obs3.metrics]
    assert inner == [obs2.metrics]
    # Outside any capture, creation registers nowhere.
    with capture_metrics() as empty:
        pass
    assert empty == []


def test_sample_stats_merge_matches_streaming():
    xs = [1.0, 2.0, 5.5, -3.0, 8.25, 0.5, 4.0]
    whole = SampleStats()
    whole.extend(xs)
    left, right = SampleStats(), SampleStats()
    left.extend(xs[:3])
    right.extend(xs[3:])
    left.merge(right)
    assert left.n == whole.n
    assert left.mean == pytest.approx(whole.mean)
    assert left.variance == pytest.approx(whole.variance)
    assert left.min == whole.min and left.max == whole.max
    assert left.samples == xs


def test_sample_stats_merge_empty_cases():
    empty = SampleStats()
    filled = SampleStats()
    filled.extend([1.0, 2.0])
    assert empty.merge(filled).mean == pytest.approx(1.5)
    other = SampleStats()
    assert filled.merge(other).n == 2
    both = SampleStats().merge(SampleStats())
    assert both.n == 0 and math.isnan(both.mean)


def test_sample_stats_merge_drops_reservoir_if_either_side_did():
    kept = SampleStats()
    kept.extend([1.0, 2.0])
    dropped = SampleStats(keep_samples=False)
    dropped.extend([3.0])
    assert kept.merge(dropped).samples is None
