"""Determinism: identical builds must produce identical results.

Reproducibility is a core property of the library — the benchmarks'
value depends on it.  These tests rebuild identical testbeds and assert
event-for-event equal outcomes, including the seeded OS-noise jitter.
"""

from repro import units
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_tcp, run_ttcp_udp
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_native, build_vnetp


def test_ping_samples_identical_across_runs():
    samples = []
    for _ in range(2):
        tb = build_vnetp(nic_params=NETEFFECT_10G)
        r = run_ping(tb.endpoints[0], tb.endpoints[1], count=30)
        samples.append(list(r.rtt_ns.samples))
    assert samples[0] == samples[1]
    # And the jitter is real: not all samples identical within a run.
    assert len(set(samples[0])) > 1


def test_tcp_transfer_identical_across_runs():
    results = []
    for _ in range(2):
        tb = build_vnetp(nic_params=NETEFFECT_10G)
        r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=5 * units.MB)
        results.append((r.bytes_moved, r.elapsed_ns))
    assert results[0] == results[1]


def test_udp_goodput_identical_across_runs():
    results = []
    for _ in range(2):
        tb = build_native(nic_params=NETEFFECT_10G)
        r = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=3 * units.MS)
        results.append((r.bytes_moved, r.elapsed_ns))
    assert results[0] == results[1]


def test_flow_calibration_identical_across_processes():
    from repro.harness.calibrate import calibrate_flow_model, clear_cache
    from repro.harness.testbed import build_vnetp as builder

    values = []
    for _ in range(2):
        clear_cache()
        m = calibrate_flow_model("det-check", builder, NETEFFECT_10G)
        values.append((m.alpha_ns, m.beta_Bps))
        clear_cache()
    assert values[0] == values[1]
