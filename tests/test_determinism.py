"""Determinism: identical builds must produce identical results.

Reproducibility is a core property of the library — the benchmarks'
value depends on it.  These tests rebuild identical testbeds and assert
event-for-event equal outcomes, including the seeded OS-noise jitter.

The ``test_golden_*`` tests additionally pin the results to a committed
golden file (``tests/golden/fig8_fig9_golden.json``): simulator
fast-path work (event pooling, immediate-queue scheduling, the
Port/PacketStage pipeline) must change wall-clock time only, never a
simulated observable.  If one of these fails after an intentional model
change, regenerate the golden per the note inside the file's directory.
"""

import hashlib
import json
import pathlib

from repro import units
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_tcp, run_ttcp_udp
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_native, build_vnetp

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "fig8_fig9_golden.json"


def test_ping_samples_identical_across_runs():
    samples = []
    for _ in range(2):
        tb = build_vnetp(nic_params=NETEFFECT_10G)
        r = run_ping(tb.endpoints[0], tb.endpoints[1], count=30)
        samples.append(list(r.rtt_ns.samples))
    assert samples[0] == samples[1]
    # And the jitter is real: not all samples identical within a run.
    assert len(set(samples[0])) > 1


def test_tcp_transfer_identical_across_runs():
    results = []
    for _ in range(2):
        tb = build_vnetp(nic_params=NETEFFECT_10G)
        r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=5 * units.MB)
        results.append((r.bytes_moved, r.elapsed_ns))
    assert results[0] == results[1]


def test_udp_goodput_identical_across_runs():
    results = []
    for _ in range(2):
        tb = build_native(nic_params=NETEFFECT_10G)
        r = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=3 * units.MS)
        results.append((r.bytes_moved, r.elapsed_ns))
    assert results[0] == results[1]


def _golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def test_golden_ping_rtts():
    """Fig. 9-style seeded ping RTTs match the committed golden exactly."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    r = run_ping(tb.endpoints[0], tb.endpoints[1], count=30)
    assert [int(x) for x in r.rtt_ns.samples] == _golden()["ping_rtt_ns"]


def test_golden_ttcp():
    """Fig. 8-style TCP/UDP transfer observables match the golden exactly."""
    golden = _golden()
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=5 * units.MB)
    assert (r.bytes_moved, r.elapsed_ns) == (
        golden["tcp_bytes_moved"], golden["tcp_elapsed_ns"]
    )
    tb = build_native(nic_params=NETEFFECT_10G)
    r = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=3 * units.MS)
    assert (r.bytes_moved, r.elapsed_ns) == (
        golden["udp_bytes_moved"], golden["udp_elapsed_ns"]
    )


def test_golden_trace():
    """The full per-packet span trace of a 5-ping run is bit-identical.

    Every span of every stage — virtio, VMM, core, bridge, host stack,
    NIC, wire — must keep its exact ``(stage, t0, t1, who, where, flow)``
    tuple.  Host ``eth0`` MACs are assigned from a process-global
    counter (label-only; timing is seeded by the stable host *name*), so
    they are normalised before hashing to make the golden independent
    of which tests ran earlier in the process.
    """
    from repro.obs.context import Observability

    golden = _golden()
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    obs = Observability.of(tb.sim)
    obs.spans.enabled = True
    run_ping(tb.endpoints[0], tb.endpoints[1], count=5)
    mac_map = {h.dev.mac: f"hmac{i}" for i, h in enumerate(tb.hosts)}
    lines = []
    breakdown: dict[str, int] = {}
    for s in obs.spans.spans:
        flow = s.flow or ""
        for mac, repl in mac_map.items():
            flow = flow.replace(mac, repl)
        lines.append(f"{s.stage}|{s.t0}|{s.t1}|{s.who}|{s.where}|{flow}")
        breakdown[s.stage] = breakdown.get(s.stage, 0) + (s.t1 - s.t0)
    assert len(lines) == golden["trace_spans"]
    sha = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    assert sha == golden["trace_sha256"]
    assert breakdown == golden["breakdown_ns"]


def test_flow_calibration_identical_across_processes():
    from repro.harness.calibrate import calibrate_flow_model, clear_cache
    from repro.harness.testbed import build_vnetp as builder

    values = []
    for _ in range(2):
        clear_cache()
        m = calibrate_flow_model("det-check", builder, NETEFFECT_10G)
        values.append((m.alpha_ns, m.beta_Bps))
        clear_cache()
    assert values[0] == values[1]


def test_parallel_matches_serial():
    """The engine acceptance property: fan-out changes wall time only.

    Every figure row produced under ``jobs=4`` must equal the ``jobs=1``
    row — across a packet-level figure, an ablation, and a parameter
    sweep.
    """
    from repro.exec import Engine
    from repro.harness.experiments import abl_yield_strategy, fig09
    from repro.harness.sweep import sweep_host_param

    fig_serial = fig09(sizes=(56, 1024), quick=True, engine=Engine(jobs=1))
    fig_parallel = fig09(sizes=(56, 1024), quick=True, engine=Engine(jobs=4))
    assert fig_serial.rows == fig_parallel.rows

    abl_serial = abl_yield_strategy(quick=True, engine=Engine(jobs=1))
    abl_parallel = abl_yield_strategy(quick=True, engine=Engine(jobs=4))
    assert abl_serial.rows == abl_parallel.rows

    sweep_kwargs = dict(
        path="vnet_costs.copy_bw_Bps",
        values=[0.6e9, 2.4e9],
        nic_params=NETEFFECT_10G,
        ping_count=5,
        udp_ns=2 * units.MS,
    )
    assert (
        sweep_host_param(engine=Engine(jobs=1), **sweep_kwargs)
        == sweep_host_param(engine=Engine(jobs=4), **sweep_kwargs)
    )


def test_cache_warm_run_is_identical_and_executes_nothing(tmp_path):
    """A warm-cache re-run recomputes zero points and reproduces rows."""
    from repro.exec import Engine, ResultCache
    from repro.harness.experiments import fig09

    cache_dir = tmp_path / "cache"
    cold_engine = Engine(jobs=1, cache=ResultCache(cache_dir))
    cold = fig09(sizes=(56,), quick=True, engine=cold_engine)
    assert cold_engine.points_executed > 0

    warm_engine = Engine(jobs=1, cache=ResultCache(cache_dir))
    warm = fig09(sizes=(56,), quick=True, engine=warm_engine)
    assert warm_engine.points_executed == 0
    assert warm_engine.points_cached == cold_engine.points_executed
    assert warm.rows == cold.rows
