"""Tests for the InfiniBand, Gemini, and Kitten substrates."""

import pytest

from repro import units
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_tcp
from repro.host.kitten import KittenBridgeVM, build_vnetp_kitten
from repro.interconnect import (
    Torus3D,
    build_native_gemini,
    build_native_ipoib,
    build_vnetp_gemini,
    build_vnetp_ipoib,
    gemini_nic,
    ipoib_nic,
)


# --- torus geometry ------------------------------------------------------------

def test_torus_size_and_coords():
    t = Torus3D((5, 5, 2))
    assert t.size == 50
    assert t.coords(0) == (0, 0, 0)
    assert t.coords(49) == (4, 4, 1)
    with pytest.raises(ValueError):
        t.coords(50)


def test_torus_hops_wraparound():
    t = Torus3D((5, 5, 2))
    # Nodes 0 and 4 are adjacent through the x wraparound.
    assert t.hops(0, 4) == 1
    assert t.hops(0, 2) == 2
    assert t.hops(0, 0) == 0


def test_torus_mean_hops_reasonable():
    t = Torus3D((5, 5, 2))
    # Mean minimal distance on a 5x5x2 torus is ~2.9.
    assert 2.0 < t.mean_hops() < 4.0


def test_torus_rejects_bad_dims():
    with pytest.raises(ValueError):
        Torus3D((0, 5, 2))


def test_gemini_nic_propagation_reflects_torus():
    small = gemini_nic(Torus3D((2, 1, 1)))
    big = gemini_nic(Torus3D((8, 8, 4)))
    assert big.propagation_ns > small.propagation_ns


# --- IPoIB ---------------------------------------------------------------------

def test_ipoib_device_parameters():
    nic = ipoib_nic()
    assert nic.max_mtu == 65520
    assert nic.header_bytes > 18  # IPoIB encapsulation exceeds Ethernet


def test_ipoib_native_beats_vnetp():
    tn = build_native_ipoib()
    rn = run_ttcp_tcp(tn.endpoints[0], tn.endpoints[1], total_bytes=8 * units.MB)
    tv = build_vnetp_ipoib()
    rv = run_ttcp_tcp(tv.endpoints[0], tv.endpoints[1], total_bytes=8 * units.MB)
    assert rn.gbps > rv.gbps > 1.0


def test_ipoib_tuned_beats_untuned():
    untuned = build_vnetp_ipoib()
    ru = run_ttcp_tcp(untuned.endpoints[0], untuned.endpoints[1], total_bytes=8 * units.MB)
    tuned = build_vnetp_ipoib(tuned=True)
    rt = run_ttcp_tcp(tuned.endpoints[0], tuned.endpoints[1], total_bytes=8 * units.MB)
    assert rt.gbps > ru.gbps


# --- Gemini --------------------------------------------------------------------

def test_gemini_vnetp_end_to_end():
    tb = build_vnetp_gemini()
    ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=10)
    assert ping.rtt_ns.n == 10
    # The large VNET MTU is configured by default.
    assert tb.endpoints[0].vm.virtio_nics[0].mtu > 60_000


def test_gemini_native_faster_than_vnetp():
    tn = build_native_gemini()
    rn = run_ttcp_tcp(tn.endpoints[0], tn.endpoints[1], total_bytes=20 * units.MB,
                      sndbuf=4 * units.MB, rcvbuf=4 * units.MB)
    tv = build_vnetp_gemini()
    rv = run_ttcp_tcp(tv.endpoints[0], tv.endpoints[1], total_bytes=20 * units.MB,
                      sndbuf=4 * units.MB, rcvbuf=4 * units.MB)
    assert rn.gbps > rv.gbps


# --- Kitten --------------------------------------------------------------------

def test_kitten_testbed_structure():
    tb = build_vnetp_kitten()
    assert len(tb.endpoints) == 2
    for host in tb.hosts:
        assert isinstance(host.vnet_bridge, KittenBridgeVM)
    # No Linux host stack on the data path: frames go straight from the
    # bridge VM to the IB NIC (direct links, not UDP).
    for core in tb.cores:
        for link in core.links.values():
            assert link.proto.value == "direct"


def test_kitten_guest_to_guest_udp():
    from repro.proto.base import Blob

    tb = build_vnetp_kitten()
    sim = tb.sim
    a, b = tb.endpoints
    got = []

    def rx():
        sock = b.stack.udp_socket(port=5)
        payload, src, _ = yield from sock.recv()
        got.append((payload.size, src))

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(2048), b.ip, 5)

    sim.process(rx())
    sim.process(tx())
    sim.run()
    assert got == [(2048, a.ip)]
    assert tb.hosts[0].vnet_bridge.tx_frames >= 1
    assert tb.hosts[1].vnet_bridge.rx_frames >= 1


def test_kitten_bridge_vm_rejects_udp_links():
    from repro.proto.base import Blob
    from repro.vnet.overlay import LinkProto, LinkSpec

    tb = build_vnetp_kitten()
    bridge = tb.hosts[0].vnet_bridge
    sim = tb.sim
    bad = LinkSpec(name="x", proto=LinkProto.UDP, dst_ip="10.0.0.9")
    from repro.proto.ethernet import EthernetFrame

    frame = EthernetFrame(src="5b:00:00:00:00:01", dst="5b:00:00:00:00:02", payload=Blob(64))
    bridge.txq.try_put((frame, bad))
    with pytest.raises(ValueError, match="directly to IB"):
        sim.run()


def test_kitten_multi_node_via_ib_switch():
    """Three Kitten nodes communicate through an IB switch that forwards
    on the guest MACs carried in the directly-mapped frames."""
    from repro.proto.base import Blob

    tb = build_vnetp_kitten(n_hosts=3)
    assert tb.switch is not None
    sim = tb.sim
    a, b, c = tb.endpoints
    got = []

    def rx(ep, port):
        sock = ep.stack.udp_socket(port=port)
        payload, src, _ = yield from sock.recv()
        got.append((ep.ip, payload.size, src))

    def tx(src, dst, port, size):
        sock = src.stack.udp_socket()
        yield from sock.sendto(Blob(size), dst.ip, port)

    sim.process(rx(b, 5))
    sim.process(rx(c, 6))
    sim.process(tx(a, b, 5, 1000))
    sim.process(tx(a, c, 6, 2000))
    sim.run()
    assert sorted(got) == sorted(
        [(b.ip, 1000, a.ip), (c.ip, 2000, a.ip)]
    )
