"""Tests for the Palacios VMM model and virtio NIC."""

import pytest

from repro.config import NETEFFECT_10G, default_host
from repro.harness.testbed import build_vnetp
from repro.host import Host
from repro.palacios import PalaciosVMM
from repro.proto import Blob, EthernetFrame
from repro.sim import Simulator


def make_vm():
    sim = Simulator()
    host = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.1", name="h")
    vmm = PalaciosVMM(sim, host)
    vm = vmm.create_vm("vm0", guest_ip="172.16.0.1")
    nic = vm.attach_virtio_nic(mac="5a:00:00:00:00:01", mtu=9000)
    return sim, host, vmm, vm, nic


def frame(size, dst="5a:00:00:00:00:02"):
    return EthernetFrame(src="5a:00:00:00:00:01", dst=dst, payload=Blob(size - 14))


def test_vm_registration():
    sim, host, vmm, vm, nic = make_vm()
    assert host.vmm is vmm
    assert vmm.vms == [vm]
    assert vm.virtio_nics == [nic]
    assert nic.stack is vm.stack


def test_unregistered_nic_rejects_tx():
    sim, host, vmm, vm, nic = make_vm()

    def send():
        yield from nic.send_blocking(frame(100))

    p = sim.process(send())
    with pytest.raises(RuntimeError, match="no backend"):
        sim.run(until=p)


def test_virtio_mtu_enforced():
    sim, host, vmm, vm, nic = make_vm()
    nic.register_backend(lambda n: iter(()))

    def send():
        yield from nic.send_blocking(frame(9100 + 14))

    p = sim.process(send())
    with pytest.raises(ValueError, match="MTU"):
        sim.run(until=p)


def test_kick_causes_exit_and_invokes_backend():
    sim, host, vmm, vm, nic = make_vm()
    seen = []

    def backend(n):
        while True:
            f = n.txq.try_get()
            if f is None:
                break
            seen.append(f)
            yield sim.timeout(100)

    nic.register_backend(backend)

    def send():
        yield from nic.send_blocking(frame(1000))

    p = sim.process(send())
    sim.run(until=p)
    assert len(seen) == 1
    assert vmm.exit_counts["virtio-kick"] == 1
    assert nic.tx_kicks == 1


def test_kick_suppression_skips_exit():
    sim, host, vmm, vm, nic = make_vm()
    nic.register_backend(lambda n: iter(()))
    nic.suppress_kicks = True

    def send():
        yield from nic.send_blocking(frame(1000))

    p = sim.process(send())
    sim.run(until=p)
    assert vmm.exit_counts["virtio-kick"] == 0
    assert len(nic.txq) == 1  # waiting for a dispatcher to poll it


def test_rx_ring_overflow_drops():
    sim, host, vmm, vm, nic = make_vm()
    ring = nic.params.ring_size
    delivered = sum(
        1 for _ in range(ring + 50) if nic.deliver_to_guest(frame(100, dst=nic.mac))
    )
    assert delivered <= ring
    assert nic.rx_drops >= 50 - (delivered - ring)
    assert nic.rx_drops + delivered == ring + 50


def test_rx_delivery_reaches_guest_stack():
    sim, host, vmm, vm, nic = make_vm()
    # Put a UDP datagram for the guest into the RXQ and raise the irq.
    from repro.proto.ip import PROTO_UDP, IPv4Packet
    from repro.proto.udp import UDPDatagram

    got = []

    def app():
        sock = vm.stack.udp_socket(port=99)
        payload, src, _ = yield from sock.recv()
        got.append((payload.size, src))

    sim.process(app())
    dgram = UDPDatagram(sport=1, dport=99, payload=Blob(500))
    pkt = IPv4Packet(src="172.16.0.2", dst="172.16.0.1", proto=PROTO_UDP, payload=dgram)
    eth = EthernetFrame(src="5a:00:00:00:00:02", dst=nic.mac, payload=pkt)
    nic.deliver_to_guest(eth)
    nic.raise_irq()
    sim.run()
    assert got == [(500, "172.16.0.2")]
    assert nic.rx_packets == 1
    assert nic.irq_injections == 1


def test_exit_accounting_totals():
    sim, host, vmm, vm, nic = make_vm()

    def burn():
        yield from vmm.exit_entry("io", handler_ns=500)
        yield from vmm.exit_entry("io", handler_ns=500)
        yield from vmm.exit_entry("npf")

    p = sim.process(burn())
    sim.run(until=p)
    assert vmm.exit_counts["io"] == 2
    assert vmm.exit_counts["npf"] == 1
    assert vmm.total_exits == 3


def test_exit_entry_charges_time():
    sim, host, vmm, vm, nic = make_vm()

    def burn():
        yield from vmm.exit_entry("io", handler_ns=1_000)

    p = sim.process(burn())
    sim.run(until=p)
    expected = vmm.params.exit_ns + 1_000 + vmm.params.entry_ns
    assert sim.now == expected
