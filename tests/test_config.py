"""Tests for configuration dataclasses and named hardware."""

import dataclasses

import pytest

from repro import config


def test_named_nics_are_consistent():
    assert config.BROADCOM_1G.rate_bps == 1e9
    assert config.NETEFFECT_10G.rate_bps == 10e9
    assert config.BROADCOM_1G.max_mtu == 1500
    assert config.NETEFFECT_10G.max_mtu == 9000
    # Paper Sect. 5.1: the 1G NIC supports only standard MTUs.
    assert config.BROADCOM_1G.max_mtu < config.NETEFFECT_10G.max_mtu


def test_serialize_time_includes_link_header():
    nic = config.NETEFFECT_10G
    assert nic.serialize_ns(1500) > 1500 * 8 / 10  # ns at 10 Gbps


def test_table1_defaults():
    """Table 1: the paper's evaluation configuration."""
    t = config.VnetTuning()
    assert t.mode is config.VnetMode.ADAPTIVE
    assert t.alpha_l == 1e3
    assert t.alpha_u == 1e4
    assert t.window_ns == 5_000_000      # 5 ms
    assert t.n_dispatchers == 1
    assert t.yield_strategy is config.YieldStrategy.IMMEDIATE
    assert t.alpha_l < t.alpha_u         # hysteresis requires a gap


def test_default_tuning_overrides():
    t = config.default_tuning(n_dispatchers=3, vnet_mtu=1500)
    assert t.n_dispatchers == 3
    assert t.vnet_mtu == 1500
    assert t.mode is config.VnetMode.ADAPTIVE  # untouched defaults


def test_params_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.NETEFFECT_10G.rate_bps = 1


def test_host_params_with():
    host = config.default_host()
    faster = host.with_(memory=config.MemoryParams(copy_bw_Bps=9e9))
    assert faster.memory.copy_bw_Bps == 9e9
    assert host.memory.copy_bw_Bps == 6e9  # original untouched


def test_vmm_round_trip():
    p = config.VMMParams()
    assert p.round_trip_ns == p.exit_ns + p.entry_ns


def test_checksum_cost_scales_with_bytes():
    s = config.HostStackParams()
    assert s.checksum_ns(10_000) == 10 * s.checksum_ns(1_000)


def test_vnet_mtu_limit_matches_paper():
    """VNET/P supports MTUs up to 64 KB (sized for max IPv4, Sect. 4.4)."""
    assert config.VnetTuning(vnet_mtu=64_000).vnet_mtu == 64_000
