"""Focused TCP behaviour tests (flow/congestion control, framing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NETEFFECT_10G, default_host
from repro.harness.testbed import build_native
from repro.hw import Link
from repro.host import Host
from repro.proto.tcp import TcpMessageChannel
from repro.sim import Simulator
from repro import units


def make_pair():
    sim = Simulator()
    a = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.1", name="a")
    b = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.2", name="b")
    Link(sim, a.nic, b.nic)
    a.add_neighbor(b)
    b.add_neighbor(a)
    return sim, a, b


def test_slow_start_grows_cwnd():
    sim, a, b = make_pair()
    conns = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        initial = conn.cwnd
        yield from conn.send(2_000_000)
        yield from conn.close()
        conns["initial"] = initial
        conns["final"] = conn.cwnd

    sim.process(server())
    sim.process(client())
    sim.run()
    assert conns["final"] > 2 * conns["initial"]


def test_timeout_halves_aggressively_and_recovers():
    sim, a, b = make_pair()
    # Drop a burst mid-transfer.
    original = a.nic._medium
    state = {"n": 0}

    def lossy(frame):
        state["n"] += 1
        if 100 <= state["n"] < 110:
            return
        original(frame)

    a.nic._medium = lossy
    done = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        yield from conn.send(3_000_000)
        yield from conn.close()
        done["conn"] = conn

    sim.process(server())
    sim.process(client())
    sim.run()
    assert done["got"] == 3_000_000
    conn = done["conn"]
    assert conn.retransmits >= 1
    assert conn.ssthresh < 1 << 30  # multiplicative decrease happened


def test_receiver_window_limits_inflight():
    sim, a, b = make_pair()
    observed = {"max_inflight": 0}

    def server():
        listener = b.stack.tcp_listen(80, rcvbuf=32 * 1024)
        conn = yield from listener.accept()
        # Slow reader: drain in small sips so the window stays closed.
        total = 0
        while total < 500_000:
            got = yield from conn.recv(8192)
            if got == 0:
                break
            total += got
            yield sim.timeout(50_000)

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)

        def watcher():
            while conn.app_written < 500_000:
                observed["max_inflight"] = max(observed["max_inflight"], conn.inflight)
                yield sim.timeout(20_000)

        sim.process(watcher())
        yield from conn.send(500_000)
        yield from conn.close()

    sim.process(server())
    sim.process(client())
    sim.run()
    # Inflight never exceeds the advertised window by more than one MSS.
    assert observed["max_inflight"] <= 32 * 1024 + 9000


def test_message_channel_roundtrip():
    sim, a, b = make_pair()
    got = []

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        channel = TcpMessageChannel(conn)
        for _ in range(3):
            msg = yield from channel.recv_message()
            got.append(msg)

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        channel = TcpMessageChannel(conn)
        yield from channel.send_message("alpha", 100)
        yield from channel.send_message("beta", 50_000)
        yield from channel.send_message("gamma", 7)

    sim.process(server())
    sim.process(client())
    sim.run()
    assert got == ["alpha", "beta", "gamma"]


def test_message_channel_rejects_nonpositive():
    sim, a, b = make_pair()

    def go():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        channel = TcpMessageChannel(conn)
        yield from channel.send_message("x", 0)

    b.stack.tcp_listen(80)
    p = sim.process(go())
    with pytest.raises(ValueError):
        sim.run(until=p)


def test_message_channel_eof_raises():
    sim, a, b = make_pair()
    outcome = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        channel = TcpMessageChannel(conn)
        try:
            yield from channel.recv_message()
        except EOFError:
            outcome["eof"] = True

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        yield from conn.close()

    sim.process(server())
    sim.process(client())
    sim.run()
    assert outcome.get("eof")


@settings(max_examples=15, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=200_000), min_size=1, max_size=8)
)
def test_property_message_channel_preserves_order_and_count(sizes):
    sim, a, b = make_pair()
    got = []

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        channel = TcpMessageChannel(conn)
        for _ in sizes:
            msg = yield from channel.recv_message()
            got.append(msg)

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        channel = TcpMessageChannel(conn)
        for i, s in enumerate(sizes):
            yield from channel.send_message(("msg", i, s), s)

    sim.process(server())
    sim.process(client())
    sim.run()
    assert got == [("msg", i, s) for i, s in enumerate(sizes)]


def test_fast_retransmit_beats_rto():
    """A single mid-stream drop recovers via 3 dup-ACKs, far faster than
    the 1 ms RTO floor."""
    sim, a, b = make_pair()
    state = {"n": 0}
    original = a.nic._medium

    def drop_one(frame):
        state["n"] += 1
        if state["n"] == 60:   # one data frame, mid-stream
            return
        original(frame)

    a.nic._medium = drop_one
    done = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        yield from conn.send(3_000_000)
        yield from conn.close()
        done["conn"] = conn

    sim.process(server())
    sim.process(client())
    sim.run()
    assert done["got"] == 3_000_000
    conn = done["conn"]
    assert conn.fast_retransmits >= 1


def test_dup_ack_counter_resets_on_progress():
    sim, a, b = make_pair()
    done = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        yield from conn.send(500_000)
        yield from conn.close()
        done["conn"] = conn

    sim.process(server())
    sim.process(client())
    sim.run()
    # Clean transfer: no retransmissions of either kind.
    assert done["conn"].fast_retransmits == 0
    assert done["conn"].retransmits == 0
