"""Tests for dynamic ARP, natively and across the VNET/P overlay."""

import pytest

from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_native, build_vnetp
from repro.proto.arp import ArpTimeout
from repro.proto.base import Blob
from repro import units


def clear_neighbors(tb):
    for ep in tb.endpoints:
        ep.stack.neighbors.clear()
        ep.stack.arp_enabled = True


def test_arp_resolves_on_native_lan():
    tb = build_native(nic_params=NETEFFECT_10G)
    clear_neighbors(tb)
    a, b = tb.endpoints
    sim = tb.sim
    result = {}

    def resolver():
        mac = yield from a.stack.resolve(b.ip)
        result["mac"] = mac

    p = sim.process(resolver())
    sim.run(until=p)
    sim.run()
    assert result["mac"] == b.host.dev.mac
    assert a.stack.arp_requests_sent == 1
    assert b.stack.arp_replies_sent == 1
    # The reply also taught b about a (from the request).
    assert b.stack.neighbors[a.ip] == a.host.dev.mac


def test_arp_cache_avoids_repeat_requests():
    tb = build_native(nic_params=NETEFFECT_10G)
    clear_neighbors(tb)
    a, b = tb.endpoints
    sim = tb.sim

    def resolver():
        yield from a.stack.resolve(b.ip)
        yield from a.stack.resolve(b.ip)

    p = sim.process(resolver())
    sim.run(until=p)
    sim.run()
    assert a.stack.arp_requests_sent == 1


def test_arp_timeout_for_absent_host():
    tb = build_native(nic_params=NETEFFECT_10G)
    clear_neighbors(tb)
    a, _ = tb.endpoints
    sim = tb.sim
    a.stack.arp_timeout_ns = 1_000_000  # shorten for the test

    def resolver():
        yield from a.stack.resolve("10.0.0.99")

    p = sim.process(resolver())
    with pytest.raises(ArpTimeout):
        sim.run(until=p)
    assert a.stack.arp_requests_sent == a.stack.arp_retries


def test_arp_works_across_the_overlay():
    """Guests on different hosts resolve each other through VNET/P's
    broadcast flooding — the 'simple LAN' abstraction in action."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    clear_neighbors(tb)
    a, b = tb.endpoints
    sim = tb.sim
    got = []

    def app():
        sock_b = b.stack.udp_socket(port=7)

        def server():
            payload, src, _ = yield from sock_b.recv()
            got.append((payload.size, src))

        sim.process(server())
        sock = a.stack.udp_socket()
        # No neighbors configured: this triggers ARP over the overlay.
        yield from sock.sendto(Blob(777), b.ip, 7)

    p = sim.process(app())
    sim.run(until=p)
    sim.run()
    assert got == [(777, a.ip)]
    assert a.stack.neighbors[b.ip] == b.vm.virtio_nics[0].mac
    # The request crossed the overlay encapsulated.
    assert tb.hosts[0].vnet_bridge.encap_tx >= 2  # request + data


def test_gratuitous_arp_updates_peers():
    tb = build_native(nic_params=NETEFFECT_10G)
    clear_neighbors(tb)
    a, b = tb.endpoints
    sim = tb.sim

    def announce():
        yield from a.stack.gratuitous_arp()

    p = sim.process(announce())
    sim.run(until=p)
    sim.run()
    assert b.stack.neighbors[a.ip] == a.host.dev.mac


def test_concurrent_resolves_share_one_exchange():
    tb = build_native(nic_params=NETEFFECT_10G)
    clear_neighbors(tb)
    a, b = tb.endpoints
    sim = tb.sim
    macs = []

    def resolver():
        mac = yield from a.stack.resolve(b.ip)
        macs.append(mac)

    procs = [sim.process(resolver()) for _ in range(4)]
    sim.run(until=sim.all_of(procs))
    sim.run()
    assert macs == [b.host.dev.mac] * 4
    # All four waited on the same pending exchange (within one timeout,
    # at most a couple of requests race out).
    assert a.stack.arp_requests_sent <= 4
