"""Unit tests for Stack plumbing: sockets, routing, promiscuous mode."""

import pytest

from repro.config import NETEFFECT_10G, default_host
from repro.harness.testbed import build_native
from repro.host import Host
from repro.hw import Link
from repro.proto import Blob
from repro.proto.ethernet import BROADCAST_MAC
from repro.sim import Simulator


def make_pair():
    sim = Simulator()
    a = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.1", name="a")
    b = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.2", name="b")
    Link(sim, a.nic, b.nic)
    a.add_neighbor(b)
    b.add_neighbor(a)
    return sim, a, b


def test_udp_port_conflict_rejected():
    sim, a, b = make_pair()
    a.stack.udp_socket(port=53)
    with pytest.raises(ValueError, match="already bound"):
        a.stack.udp_socket(port=53)


def test_tcp_listen_conflict_rejected():
    sim, a, b = make_pair()
    a.stack.tcp_listen(80)
    with pytest.raises(ValueError, match="already listening"):
        a.stack.tcp_listen(80)


def test_ephemeral_ports_unique():
    sim, a, b = make_pair()
    ports = {a.stack.ephemeral_port() for _ in range(100)}
    assert len(ports) == 100


def test_route_requires_device():
    sim = Simulator()
    from repro.config import DEFAULT_STACK
    from repro.proto.stack import Stack

    lonely = Stack(sim, DEFAULT_STACK, ip="10.9.9.9")
    with pytest.raises(RuntimeError, match="no device"):
        lonely.route("10.0.0.1")


def test_unknown_neighbor_broadcasts():
    sim, a, b = make_pair()
    del a.stack.neighbors[b.ip]
    dev, mac = a.stack.route(b.ip)
    assert mac == BROADCAST_MAC


def test_promiscuous_tap_sees_foreign_frames():
    sim, a, b = make_pair()
    seen = []
    b.stack.set_promiscuous(lambda dev, frame: seen.append(frame.dst))
    # Send a frame to a MAC that is not b's: normally dropped, but the
    # tap still observes it.
    from repro.proto.ethernet import EthernetFrame
    from repro.proto.ip import PROTO_UDP, IPv4Packet
    from repro.proto.udp import UDPDatagram

    dgram = UDPDatagram(sport=1, dport=2, payload=Blob(64))
    pkt = IPv4Packet(src=a.ip, dst="10.0.0.77", proto=PROTO_UDP, payload=dgram)
    frame = EthernetFrame(src=a.dev.mac, dst="02:00:00:00:00:77", payload=pkt)

    def tx():
        yield from a.stack.send_raw_frame(frame)

    p = sim.process(tx())
    sim.run(until=p)
    sim.run()
    assert seen == ["02:00:00:00:00:77"]
    assert b.stack.rx_dropped == 0  # not queued, just tapped


def test_udp_unreachable_port_counts():
    sim, a, b = make_pair()

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(64), b.ip, 4242)

    p = sim.process(tx())
    sim.run(until=p)
    sim.run()
    assert b.stack.tracer.counters[f"{b.stack.name}.udp_unreachable"] == 1


def test_concurrent_pings_do_not_cross_match():
    sim, a, b = make_pair()
    results = []

    def pinger():
        rtt = yield from a.stack.ping(b.ip, data_size=56)
        results.append(rtt)

    for _ in range(5):
        sim.process(pinger())
    sim.run()
    assert len(results) == 5
    assert all(r > 0 for r in results)


def test_socket_rx_overflow_drops():
    sim, a, b = make_pair()
    sock = b.stack.udp_socket(port=9)
    sock.rx.capacity = 2

    def tx():
        s = a.stack.udp_socket()
        for _ in range(5):
            yield from s.sendto(Blob(64), b.ip, 9)

    p = sim.process(tx())
    sim.run(until=p)
    sim.run()
    assert sock.dropped == 3
    assert len(sock.rx) == 2
