"""End-to-end tests of the native (non-virtualized) path: two hosts, one cable."""

import pytest

from repro.config import BROADCOM_1G, NETEFFECT_10G, default_host
from repro.hw import Link
from repro.proto import Blob
from repro.host import Host
from repro.sim import Simulator
from repro import units


def make_pair(nic_params):
    sim = Simulator()
    a = Host(sim, default_host("a"), nic_params, ip="10.0.0.1", name="a")
    b = Host(sim, default_host("b"), nic_params, ip="10.0.0.2", name="b")
    Link(sim, a.nic, b.nic)
    a.add_neighbor(b)
    b.add_neighbor(a)
    return sim, a, b


def test_ping_round_trip_completes():
    sim, a, b = make_pair(NETEFFECT_10G)

    def pinger(sim):
        rtt = yield from a.stack.ping(b.ip, data_size=56)
        return rtt

    p = sim.process(pinger(sim))
    rtt = sim.run(until=p)
    # Sanity band: native 10G small-packet RTT should be tens of us.
    assert 10 * units.US < rtt < 200 * units.US


def test_ping_rtt_grows_with_payload():
    sim, a, b = make_pair(BROADCOM_1G)

    def pinger(sim):
        small = yield from a.stack.ping(b.ip, data_size=64)
        large = yield from a.stack.ping(b.ip, data_size=1400)
        return small, large

    p = sim.process(pinger(sim))
    small, large = sim.run(until=p)
    # 1336 extra bytes at 1 Gbps ~ 10.7 us each way.
    assert large > small + 15 * units.US


def test_udp_send_receive():
    sim, a, b = make_pair(NETEFFECT_10G)
    received = []

    def receiver(sim):
        sock = b.stack.udp_socket(port=7)
        payload, src, sport = yield from sock.recv()
        received.append((payload.size, src))

    def sender(sim):
        sock = a.stack.udp_socket()
        yield sim.timeout(1000)
        yield from sock.sendto(Blob(1000), b.ip, 7)

    sim.process(receiver(sim))
    sim.process(sender(sim))
    sim.run()
    assert received == [(1000, a.ip)]


def test_udp_large_datagram_fragments_and_reassembles():
    sim, a, b = make_pair(NETEFFECT_10G)
    received = []

    def receiver(sim):
        sock = b.stack.udp_socket(port=9)
        payload, _, _ = yield from sock.recv()
        received.append(payload.size)

    def sender(sim):
        sock = a.stack.udp_socket()
        # 60 KB datagram over a 9000 B MTU: ~7 fragments.
        yield from sock.sendto(Blob(60_000), b.ip, 9)

    sim.process(receiver(sim))
    sim.process(sender(sim))
    sim.run()
    assert received == [60_000]


def test_tcp_connect_and_transfer():
    sim, a, b = make_pair(NETEFFECT_10G)
    result = {}

    def server(sim):
        listener = b.stack.tcp_listen(5001)
        conn = yield from listener.accept()
        total = yield from conn.drain()
        result["received"] = total

    def client(sim):
        conn = yield from a.stack.tcp_connect(b.ip, 5001)
        yield from conn.send(1_000_000)
        yield from conn.close()

    sim.process(server(sim))
    sim.process(client(sim))
    sim.run()
    assert result["received"] == 1_000_000


def test_tcp_throughput_near_line_rate_10g():
    sim, a, b = make_pair(NETEFFECT_10G)
    result = {}

    def server(sim):
        listener = b.stack.tcp_listen(5001)
        conn = yield from listener.accept()
        start = sim.now
        total = yield from conn.drain()
        result["rate_Bps"] = units.bytes_per_sec(total, sim.now - start)

    def client(sim):
        conn = yield from a.stack.tcp_connect(b.ip, 5001)
        yield from conn.send(20_000_000)
        yield from conn.close()

    sim.process(server(sim))
    sim.process(client(sim))
    sim.run()
    gbps = units.to_gbps(result["rate_Bps"])
    assert 8.0 < gbps < 10.0, f"native 10G TCP at {gbps:.2f} Gbps"


def test_tcp_throughput_near_line_rate_1g():
    sim, a, b = make_pair(BROADCOM_1G)
    result = {}

    def server(sim):
        listener = b.stack.tcp_listen(5001)
        conn = yield from listener.accept()
        start = sim.now
        total = yield from conn.drain()
        result["rate_Bps"] = units.bytes_per_sec(total, sim.now - start)

    def client(sim):
        conn = yield from a.stack.tcp_connect(b.ip, 5001)
        yield from conn.send(5_000_000)
        yield from conn.close()

    sim.process(server(sim))
    sim.process(client(sim))
    sim.run()
    mbps = units.to_mbps(result["rate_Bps"])
    assert 850 < mbps < 1000, f"native 1G TCP at {mbps:.1f} Mbps"


def test_tcp_retransmit_recovers_from_loss():
    sim, a, b = make_pair(NETEFFECT_10G)
    result = {}

    # Drop every 50th frame a sends, by wrapping the medium.
    original = a.nic._medium
    counter = {"n": 0}

    def lossy(frame):
        counter["n"] += 1
        if counter["n"] % 50 == 0:
            return  # dropped on the wire
        original(frame)

    a.nic._medium = lossy

    def server(sim):
        listener = b.stack.tcp_listen(5001)
        conn = yield from listener.accept()
        total = yield from conn.drain()
        result["received"] = total
        result["conn"] = conn

    def client(sim):
        conn = yield from a.stack.tcp_connect(b.ip, 5001)
        yield from conn.send(2_000_000)
        yield from conn.close()
        result["client"] = conn

    sim.process(server(sim))
    sim.process(client(sim))
    sim.run()
    assert result["received"] == 2_000_000
    assert result["client"].retransmits > 0
