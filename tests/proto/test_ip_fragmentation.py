"""Unit + property tests for IPv4 fragmentation/reassembly."""

import pytest
from hypothesis import given, strategies as st

from repro.proto.base import Blob
from repro.proto.ip import IP_HEADER, IPv4Packet, Reassembler, fragment


def packet(payload_size, **kw):
    return IPv4Packet(src="10.0.0.1", dst="10.0.0.2", proto=17, payload=Blob(payload_size), **kw)


def test_no_fragmentation_when_fits():
    pkt = packet(1000)
    frags = fragment(pkt, mtu=1500)
    assert frags == [pkt]


def test_fragment_sizes_respect_mtu():
    pkt = packet(4000)
    frags = fragment(pkt, mtu=1500)
    assert len(frags) == 3
    for f in frags:
        assert f.size <= 1500
    # All but the last fragment carry 8-byte-aligned payloads.
    for f in frags[:-1]:
        assert f.payload_bytes % 8 == 0
        assert f.more_fragments
    assert not frags[-1].more_fragments


def test_fragment_offsets_are_contiguous():
    pkt = packet(10_000)
    frags = fragment(pkt, mtu=1500)
    offset = 0
    for f in frags:
        assert f.frag_offset == offset
        offset += f.payload_bytes
    assert offset == 10_000


def test_fragment_tiny_mtu_rejected():
    with pytest.raises(ValueError, match="too small"):
        fragment(packet(100), mtu=IP_HEADER)


def test_reassembler_in_order():
    pkt = packet(5000)
    frags = fragment(pkt, mtu=1500)
    r = Reassembler()
    results = [r.push(f) for f in frags]
    assert all(x is None for x in results[:-1])
    whole = results[-1]
    assert whole is not None
    assert whole.payload_bytes == 5000
    assert whole.payload.size == 5000
    assert r.pending == 0


def test_reassembler_out_of_order():
    pkt = packet(5000)
    frags = fragment(pkt, mtu=1500)
    r = Reassembler()
    whole = None
    for f in [frags[-1]] + frags[:-1]:
        got = r.push(f)
        if got is not None:
            whole = got
    assert whole is not None and whole.payload_bytes == 5000


def test_reassembler_interleaved_streams():
    p1, p2 = packet(4000), packet(4000)
    f1, f2 = fragment(p1, 1500), fragment(p2, 1500)
    r = Reassembler()
    done = []
    for a, b in zip(f1, f2):
        for f in (a, b):
            got = r.push(f)
            if got is not None:
                done.append(got.ident)
    assert sorted(done) == sorted([p1.ident, p2.ident])


def test_non_fragment_passthrough():
    r = Reassembler()
    pkt = packet(100)
    assert r.push(pkt) is pkt


@given(
    payload=st.integers(min_value=1, max_value=120_000),
    mtu=st.integers(min_value=48, max_value=9000),
)
def test_property_fragmentation_roundtrip(payload, mtu):
    """Any packet fragments into <= MTU pieces that reassemble exactly."""
    pkt = packet(payload)
    frags = fragment(pkt, mtu)
    assert sum(f.payload_bytes for f in frags) == payload
    assert all(f.size <= mtu for f in frags) or len(frags) == 1 and pkt.size <= mtu
    r = Reassembler()
    whole = None
    for f in frags:
        got = r.push(f)
        if got is not None:
            assert whole is None, "reassembled twice"
            whole = got
    assert whole is not None
    assert whole.payload_bytes == payload


@given(
    payload=st.integers(min_value=200, max_value=20_000),
    mtu=st.integers(min_value=60, max_value=1500),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_reassembly_any_order(payload, mtu, seed):
    import random

    pkt = packet(payload)
    frags = fragment(pkt, mtu)
    random.Random(seed).shuffle(frags)
    r = Reassembler()
    results = [r.push(f) for f in frags]
    whole = [x for x in results if x is not None]
    assert len(whole) == 1
    assert whole[0].payload_bytes == payload
