"""Reno congestion-control tests: fast recovery, SACK, Karn, RTO backoff.

Companion to ``test_tcp_unit.py``: that file covers flow control and
framing; this one exercises the loss-recovery state machine added with
the fairness work — fast retransmit/fast recovery (including NewReno
partial ACKs), the SACK scoreboard, Karn's algorithm, exponential RTO
backoff, and the published cwnd/ssthresh/state gauges.
"""

from hypothesis import given, settings, strategies as st

from repro.config import NETEFFECT_10G, default_host
from repro.host import Host
from repro.hw import Link
from repro.proto.tcp import CongestionState
from repro.sim import Simulator


def make_pair():
    sim = Simulator()
    a = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.1", name="a")
    b = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.2", name="b")
    Link(sim, a.nic, b.nic)
    a.add_neighbor(b)
    b.add_neighbor(a)
    return sim, a, b


def run_transfer(sim, a, b, total):
    """One client->server transfer; returns (bytes_received, client_conn,
    server_conn)."""
    done = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        done["server"] = conn
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        yield from conn.send(total)
        yield from conn.close()
        done["conn"] = conn

    sim.process(server())
    sim.process(client())
    sim.run()
    return done["got"], done["conn"], done["server"]


def drop_frames(a, predicate):
    """Wrap a's outbound medium: frames whose 1-based index satisfies
    ``predicate`` are silently dropped."""
    original = a.nic._medium
    state = {"n": 0}

    def lossy(frame):
        state["n"] += 1
        if predicate(state["n"]):
            return
        original(frame)

    a.nic._medium = lossy
    return state


def test_single_drop_recovers_without_rto():
    """One lost segment: fast recovery repairs exactly the hole — no
    timeout, no go-back-N."""
    sim, a, b = make_pair()
    drop_frames(a, lambda n: n == 60)
    got, conn, _ = run_transfer(sim, a, b, 3_000_000)
    assert got == 3_000_000
    assert conn.fast_retransmits == 1
    assert conn.fast_recoveries == 1
    # SACK clips the retransmission to the single hole: everything the
    # receiver buffered out of order is never resent.
    assert conn.retransmits == 1
    # The RTO never fired (backoff untouched), so recovery beat the
    # 10 ms timeout floor by orders of magnitude.
    assert conn._backoff == 0
    assert conn.cc_state is CongestionState.CONGESTION_AVOIDANCE
    assert conn.ssthresh < 1 << 30


def test_two_holes_one_recovery_newreno_partial_ack():
    """Two drops in one window: NewReno repairs the second hole on the
    partial ACK inside the *same* recovery episode."""
    sim, a, b = make_pair()
    drop_frames(a, lambda n: n in (60, 64))
    got, conn, _ = run_transfer(sim, a, b, 3_000_000)
    assert got == 3_000_000
    assert conn.fast_recoveries == 1          # one episode covers both holes
    assert conn.retransmits == 2              # one retransmission per hole
    assert conn._backoff == 0                 # still no RTO
    assert conn.cc_state is CongestionState.CONGESTION_AVOIDANCE


def test_receiver_sacks_out_of_order_data():
    """The receiver advertises SACK blocks for buffered segments and the
    sender registers them."""
    sim, a, b = make_pair()
    drop_frames(a, lambda n: n == 60)
    seen = {"ooo": 0}

    def watch(server_holder):
        while "got" not in server_holder:
            conn = server_holder.get("server")
            if conn is not None:
                seen["ooo"] = max(seen["ooo"], conn.ooo_bytes)
            yield sim.timeout(5_000)

    done = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        done["server"] = conn
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        yield from conn.send(2_000_000)
        yield from conn.close()
        done["conn"] = conn

    sim.process(server())
    sim.process(client())
    sim.process(watch(done))
    sim.run()
    assert done["got"] == 2_000_000
    assert seen["ooo"] > 0                    # data really was buffered
    assert done["server"].ooo_bytes == 0      # ...and fully drained
    assert done["conn"].sacks_received >= 1


def test_karn_srtt_unpoisoned_by_retransmissions():
    """A burst drop forces RTO-based recovery; Karn's algorithm must keep
    the >=10 ms retransmission waits out of the RTT estimator."""
    sim, a, b = make_pair()
    drop_frames(a, lambda n: 100 <= n < 110)
    got, conn, _ = run_transfer(sim, a, b, 3_000_000)
    assert got == 3_000_000
    assert conn.retransmits >= 1
    assert conn.rtt_samples > 0
    # The true path RTT is tens of microseconds.  Sampling even one
    # ACK-of-a-retransmission against the original send time would mix a
    # >=10 ms RTO wait into srtt (one EWMA step alone adds >1 ms).
    assert conn.srtt is not None and conn.srtt < 1_000_000


def test_rto_backoff_doubles_then_resets():
    """A long blackout doubles the RTO each expiry; the first ACK after
    healing resets the backoff to zero."""
    sim, a, b = make_pair()
    original = a.nic._medium
    state = {"n": 0}

    def blackout(frame):
        state["n"] += 1
        # From the 100th frame on, drop everything until t = 80 ms: long
        # enough for several RTO expiries before the path heals.
        if state["n"] >= 100 and sim.now < 80_000_000:
            return
        original(frame)

    a.nic._medium = blackout
    peak = {"backoff": 0}
    done = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        done["conn"] = conn

        def watcher():
            while not conn.fin_sent:
                peak["backoff"] = max(peak["backoff"], conn._backoff)
                yield sim.timeout(1_000_000)

        sim.process(watcher())
        yield from conn.send(1_000_000)
        yield from conn.close()

    sim.process(server())
    sim.process(client())
    sim.run()
    assert done["got"] == 1_000_000
    conn = done["conn"]
    assert peak["backoff"] >= 2               # at least two doublings observed
    assert conn._backoff == 0                 # reset by post-heal ACK
    # rto_ns is the base timeout shifted left by the backoff count.
    base = conn.rto_ns
    conn._backoff = 3
    assert conn.rto_ns == base << 3
    conn._backoff = 0


@settings(max_examples=8, deadline=None)
@given(period=st.integers(min_value=3, max_value=9))
def test_reordering_alone_never_triggers_retransmission(period):
    """Swapping adjacent frames produces single dup-ACKs (below the
    3-dup-ACK threshold), so pure reordering causes zero retransmissions
    and exact delivery."""
    sim, a, b = make_pair()
    original = a.nic._medium
    state = {"n": 0, "held": None, "swaps": 0}

    def reorder(frame):
        if state["held"] is not None:
            held, state["held"] = state["held"], None
            original(frame)
            original(held)
            return
        state["n"] += 1
        # Only swap early in the stream so a held frame always has a
        # successor to ride behind (a held *last* frame would need RTO).
        if state["n"] % period == 0 and state["n"] < 25:
            state["held"] = frame
            state["swaps"] += 1
            return
        original(frame)

    a.nic._medium = reorder
    got, conn, server = run_transfer(sim, a, b, 500_000)
    assert got == 500_000
    assert state["swaps"] >= 1
    assert conn.fast_retransmits == 0
    assert conn.retransmits == 0
    assert conn.sacks_received >= 1           # each swap SACKed the gap
    assert server.ooo_bytes == 0


def test_cc_gauges_published_with_timestamps():
    """Application connections publish tcp.cc.* cwnd/ssthresh/state
    gauges with simulation timestamps."""
    sim, a, b = make_pair()
    run_transfer(sim, a, b, 1_000_000)
    metrics = a.stack.obs.metrics._metrics
    cwnd_names = [
        name for name in metrics
        if name.startswith("tcp.cc.a.") and name.endswith(".cwnd")
    ]
    assert cwnd_names, f"no cwnd gauge among {sorted(metrics)[:10]}..."
    base = cwnd_names[0][: -len(".cwnd")]
    cwnd = metrics[base + ".cwnd"]
    ssthresh = metrics[base + ".ssthresh"]
    state = metrics[base + ".state"]
    assert cwnd.value > 0
    assert cwnd.last_set_ns is not None and cwnd.last_set_ns > 0
    assert ssthresh.value > 0
    assert state.value in (0.0, 1.0, 2.0)
