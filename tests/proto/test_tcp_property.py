"""Property-based TCP robustness: random loss, exact delivery."""

from hypothesis import given, settings, strategies as st

from repro.config import NETEFFECT_10G, default_host
from repro.harness.testbed import build_vnetp
from repro.host import Host
from repro.hw import Link
from repro.hw.faults import LossyMedium
from repro.sim import Simulator
from repro import units


def native_pair():
    sim = Simulator()
    a = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.1", name="a")
    b = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.2", name="b")
    Link(sim, a.nic, b.nic)
    a.add_neighbor(b)
    b.add_neighbor(a)
    return sim, a, b


def transfer(sim, a, b, nbytes):
    done = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        yield from conn.send(nbytes)
        yield from conn.close()
        done["conn"] = conn

    sim.process(server())
    sim.process(client())
    sim.run()
    return done


@settings(max_examples=10, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=0.03),
    seed=st.integers(min_value=0, max_value=2**16),
    nbytes=st.integers(min_value=1, max_value=1_500_000),
)
def test_property_tcp_delivers_exactly_under_loss(rate, seed, nbytes):
    """Whatever the loss pattern, TCP delivers every byte exactly once."""
    sim, a, b = native_pair()
    LossyMedium(a.nic, rate=rate, seed=seed)
    LossyMedium(b.nic, rate=rate, seed=seed + 1)
    done = transfer(sim, a, b, nbytes)
    assert done["got"] == nbytes


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_property_tcp_over_overlay_under_loss(seed):
    """The same property holds with the full VNET/P path underneath."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    LossyMedium(tb.hosts[0].nic, rate=0.01, seed=seed)
    sim = tb.sim
    a, b = tb.endpoints
    done = {}

    def server():
        listener = b.stack.tcp_listen(80)
        conn = yield from listener.accept()
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 80)
        yield from conn.send(800_000)
        yield from conn.close()

    sim.process(server())
    sim.process(client())
    sim.run()
    assert done["got"] == 800_000

def test_handshake_survives_lost_synack():
    """A lost SYN/ACK must be resent when the retransmitted SYN arrives.

    Regression: the passive side registers the connection (and moves to
    ESTABLISHED) as soon as its SYN/ACK goes out, so the client's
    retransmitted SYN demuxes to the connection, not the listener.  The
    connection used to drop it, leaving the client to exhaust its SYN
    retries.  Loss seeds chosen so exactly the first SYN/ACK is lost.
    """
    sim, a, b = native_pair()
    LossyMedium(a.nic, rate=0.0234375, seed=27191)
    LossyMedium(b.nic, rate=0.0234375, seed=27192)
    done = transfer(sim, a, b, 1)
    assert done["got"] == 1
