"""Tests for the content-addressed result cache."""

from repro.exec import Engine, Point, ResultCache, fingerprint
from repro.exec.point import PointResult

from .points import add_point, metric_point


def test_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "c")
    fp = fingerprint(Point("t", "k", add_point, {"a": 1, "b": 2}))
    assert cache.get(fp) is None
    cache.put(fp, PointResult(key="k", value=3, metrics={}, wall_s=0.1, seed=7))
    hit = cache.get(fp)
    assert hit is not None
    assert hit.value == 3
    assert hit.cached is True  # marked on the way out
    assert cache.hits == 1 and cache.misses == 1


def test_cache_ignores_corrupt_entries(tmp_path):
    cache = ResultCache(tmp_path / "c")
    fp = fingerprint(Point("t", "k", add_point, {"a": 1, "b": 2}))
    path = cache.path(fp)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"not a pickle")
    assert cache.get(fp) is None  # corrupt entry reads as a miss


def test_engine_warm_run_executes_nothing(tmp_path):
    def run():
        engine = Engine(jobs=1, cache=ResultCache(tmp_path / "c"))
        values = engine.run(
            [Point("t", f"k{n}", metric_point, {"n": n}) for n in (3, 5)]
        )
        return engine, values

    cold_engine, cold = run()
    assert cold_engine.points_executed == 2
    warm_engine, warm = run()
    assert warm == cold
    assert warm_engine.points_executed == 0
    assert warm_engine.points_cached == 2
    # Cached metrics still merge into the warm engine's registry.
    assert warm_engine.metrics.counter("toy.count").value == 8


def test_cache_shared_between_serial_and_parallel(tmp_path):
    cache_dir = tmp_path / "c"
    points = [Point("t", f"k{n}", metric_point, {"n": n}) for n in (1, 2, 4)]
    serial = Engine(jobs=1, cache=ResultCache(cache_dir)).run(points)
    warm_parallel_engine = Engine(jobs=3, cache=ResultCache(cache_dir))
    assert warm_parallel_engine.run(points) == serial
    assert warm_parallel_engine.points_executed == 0


def test_different_kwargs_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path / "c")
    e = Engine(cache=cache)
    assert e.run([Point("t", "k", add_point, {"a": 1, "b": 2})]) == [3]
    assert e.run([Point("t", "k", add_point, {"a": 2, "b": 2})]) == [4]
