"""Timelines cross the engine's process and cache boundaries."""

import pytest

from repro.exec import Engine, Point, ResultCache

from .points import add_point, timeline_point


def make_points(n=2):
    return [
        Point("t", f"k{tag}", timeline_point, {"tag": tag}) for tag in range(n)
    ]


@pytest.mark.parametrize("jobs", [1, 3])
def test_worker_timelines_merge_back(jobs):
    engine = Engine(jobs=jobs)
    values = engine.run(make_points())
    assert values == [3, 3]  # each point took 3 samples
    series = engine.timeline_series()
    assert set(series) == {"toy.rate.0", "toy.rate.1"}
    s = series["toy.rate.0"]
    assert s.times == [1000, 2000, 3000]
    # Incs land every 500 ns; the tick at t fires before the inc at t,
    # so the first window sees one packet and later windows see two.
    assert s.values == [1e6, 2e6, 2e6]
    assert s.unit == "pkt/s"


def test_cached_points_keep_their_timelines(tmp_path):
    cold = Engine(cache=ResultCache(str(tmp_path)))
    cold.run(make_points())
    warm = Engine(cache=ResultCache(str(tmp_path)))
    warm.run(make_points())
    assert warm.points_cached == 2 and warm.points_executed == 0
    assert warm.timeline_series().keys() == cold.timeline_series().keys()
    assert (
        warm.timeline_series()["toy.rate.1"].samples()
        == cold.timeline_series()["toy.rate.1"].samples()
    )


def test_points_without_timelines_contribute_nothing():
    engine = Engine()
    engine.run([Point("t", "k", add_point, {"a": 1, "b": 2})])
    assert engine.timelines == []
    assert engine.timeline_series() == {}
