"""Tests for the execution engine: ordering, parallel identity, metrics."""

import pytest

from repro.exec import Engine, Point, run_points

from .points import (
    add_point,
    failing_point,
    health_point,
    metric_point,
    pid_point,
    seeded_random_point,
)


def test_values_returned_in_point_order():
    points = [Point("t", f"k{i}", add_point, {"a": i, "b": 10}) for i in range(7)]
    assert Engine(jobs=1).run(points) == [i + 10 for i in range(7)]
    assert Engine(jobs=3).run(points) == [i + 10 for i in range(7)]


def test_parallel_values_identical_to_serial():
    points = [Point("t", f"k{i}", seeded_random_point, {"tag": i}) for i in range(6)]
    serial = Engine(jobs=1).run(points)
    parallel = Engine(jobs=4).run(points)
    assert serial == parallel
    # Different points get different seeds, so different values.
    assert len(set(serial)) == len(serial)


def test_parallel_actually_uses_worker_processes():
    import os

    points = [Point("t", f"k{i}", pid_point, {"tag": i}) for i in range(4)]
    pids = Engine(jobs=4).run(points)
    assert all(pid != os.getpid() for pid in pids)
    serial_pids = Engine(jobs=1).run(points)
    assert all(pid == os.getpid() for pid in serial_pids)


@pytest.mark.parametrize("jobs", [1, 3])
def test_worker_metrics_merge_back(jobs):
    engine = Engine(jobs=jobs)
    values = engine.run(
        [Point("t", f"k{n}", metric_point, {"n": n}) for n in (3, 5)]
    )
    assert values == [6, 10]
    assert engine.metrics.counter("toy.count").value == 8
    assert engine.metrics.gauge("toy.gauge").value == 8.0
    hist = engine.metrics.get("toy.hist")
    assert hist.count == 2
    assert hist.sum == 8.0
    assert hist.min == 3.0 and hist.max == 5.0
    assert engine.points_total == 2
    assert engine.points_executed == 2
    assert engine.points_cached == 0
    assert "executed=2" in engine.summary()


def test_run_detailed_reports_seed_and_wall():
    engine = Engine()
    [res] = engine.run_detailed([Point("t", "k", add_point, {"a": 1, "b": 2})])
    assert res.key == "k"
    assert res.value == 3
    assert res.cached is False
    assert res.wall_s >= 0
    assert isinstance(res.seed, int)


def test_engine_rejects_bad_jobs():
    with pytest.raises(ValueError):
        Engine(jobs=0)


def test_point_exception_propagates():
    with pytest.raises(RuntimeError, match="boom"):
        Engine(jobs=1).run([Point("t", "k", failing_point, {})])


def test_run_points_defaults_to_serial_engine():
    assert run_points([Point("t", "k", add_point, {"a": 2, "b": 2})]) == [4]


@pytest.mark.parametrize("jobs", [1, 3])
def test_worker_health_events_ship_back(jobs):
    engine = Engine(jobs=jobs)
    points = [Point("t", f"k{tag}", health_point, {"tag": tag, "n": 2})
              for tag in ("a", "b")]
    [res_a, res_b] = engine.run_detailed(points)
    assert [e["monitor"] for e in res_a.health] == ["toy.a", "toy.a"]
    assert [e["t_ns"] for e in res_a.health] == [0, 100]
    # The engine aggregates every point's events in point order.
    assert [e["monitor"] for e in engine.health_events] == \
        ["toy.a", "toy.a", "toy.b", "toy.b"]
    assert res_b.health[0]["kind"] == "tick"
    # Points that never touch a health hub contribute nothing.
    quiet = Engine(jobs=1)
    quiet.run([Point("t", "k", add_point, {"a": 1, "b": 2})])
    assert quiet.health_events == []


def test_cached_points_restore_health_events(tmp_path):
    from repro.exec import ResultCache

    def run():
        engine = Engine(jobs=1, cache=ResultCache(str(tmp_path)))
        engine.run([Point("t", "k", health_point, {"tag": "c", "n": 3})])
        return engine

    cold = run()
    warm = run()
    assert warm.points_cached == 1 and warm.points_executed == 0
    assert warm.health_events == cold.health_events
    assert len(warm.health_events) == 3
