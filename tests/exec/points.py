"""Module-level toy point functions for the engine tests.

Point functions must live at module level: pool workers receive them by
pickled reference, and the fingerprinter refuses ``<locals>`` callables
for the same reason.
"""

import os
import random


def add_point(a, b):
    """Pure-arithmetic point."""
    return a + b


def metric_point(n):
    """Point that publishes metrics through a simulation's registry."""
    from repro.obs.context import Observability
    from repro.sim import Simulator

    obs = Observability.of(Simulator())
    obs.metrics.counter("toy.count").inc(n)
    obs.metrics.gauge("toy.gauge").set(float(n))
    obs.metrics.histogram("toy.hist", (1.0, 10.0)).observe(n)
    return n * 2


def timeline_point(tag, ticks=3):
    """Point that samples a time-series inside its simulation."""
    from repro.obs.context import Observability
    from repro.sim import Simulator

    sim = Simulator()
    obs = Observability.of(sim)
    c = obs.metrics.counter("toy.pkts")
    tl = obs.timeline
    tl.interval_ns = 1000
    tl.counter_rate("toy.pkts", series=f"toy.rate.{tag}", unit="pkt/s")

    def traffic():
        while True:
            yield sim.timeout(500)
            c.inc()

    sim.process(traffic())
    tl.start(until_ns=ticks * 1000)
    sim.run(until=ticks * 1000)
    return len(tl.series[f"toy.rate.{tag}"])


def seeded_random_point(tag):
    """Point whose value depends only on the engine-provided seed."""
    del tag
    return random.random()


def pid_point(tag):
    """Point that reports which process ran it."""
    del tag
    return os.getpid()


def failing_point():
    """Point that always raises."""
    raise RuntimeError("boom")


def health_point(tag, n=2):
    """Point that emits health events through its simulation's hub."""
    from repro.obs.context import Observability
    from repro.sim import Simulator

    obs = Observability.of(Simulator())
    for i in range(n):
        obs.health.log.emit(
            t_ns=i * 100, monitor=f"toy.{tag}", kind="tick", severity="info"
        )
    return n
