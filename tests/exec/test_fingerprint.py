"""Tests for point fingerprinting and the canonical value encoding."""

import dataclasses
import enum

import pytest

from repro.config import NETEFFECT_10G, default_host
from repro.exec import Point, code_version, fingerprint, point_seed
from repro.exec.fingerprint import canonical_bytes

from .points import add_point, metric_point


class Colour(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass(frozen=True)
class Cfg:
    x: int
    y: str


def _pt(**kwargs):
    return Point("exp", "k", add_point, kwargs)


def test_fingerprint_is_stable():
    a = fingerprint(_pt(a=1, b=2))
    b = fingerprint(_pt(b=2, a=1))  # kwarg order must not matter
    assert a == b
    assert len(a) == 64
    assert a == fingerprint(_pt(a=1, b=2))


def test_fingerprint_distinguishes_inputs():
    base = fingerprint(_pt(a=1, b=2))
    assert fingerprint(_pt(a=1, b=3)) != base
    assert fingerprint(Point("exp2", "k", add_point, {"a": 1, "b": 2})) != base
    assert fingerprint(Point("exp", "k2", add_point, {"a": 1, "b": 2})) != base
    assert fingerprint(Point("exp", "k", metric_point, {"a": 1, "b": 2})) != base


def test_fingerprint_type_sensitive():
    assert fingerprint(_pt(a=1, b=2)) != fingerprint(_pt(a=1.0, b=2))
    assert fingerprint(_pt(a="1", b=2)) != fingerprint(_pt(a=1, b=2))
    assert fingerprint(_pt(a=True, b=2)) != fingerprint(_pt(a=1, b=2))


def test_canonical_bytes_supported_types():
    # Dataclasses, enums, nested containers, and callables all encode.
    blob = canonical_bytes(
        {
            "cfg": Cfg(1, "a"),
            "colour": Colour.RED,
            "nested": [1, (2.5, None), {"k": b"v"}],
            "fn": add_point,
            "host": default_host(),
            "nic": NETEFFECT_10G,
        }
    )
    assert isinstance(blob, bytes)
    assert blob == canonical_bytes(
        {
            "nic": NETEFFECT_10G,
            "host": default_host(),
            "fn": add_point,
            "nested": [1, (2.5, None), {"k": b"v"}],
            "colour": Colour.RED,
            "cfg": Cfg(1, "a"),
        }
    )


def test_canonical_bytes_rejects_locals_and_unknown():
    with pytest.raises(TypeError):
        canonical_bytes(lambda: None)
    with pytest.raises(TypeError):
        canonical_bytes(object())


def test_point_seed_derives_from_fingerprint():
    fp = fingerprint(_pt(a=1, b=2))
    assert point_seed(fp) == int(fp[:16], 16)
    assert point_seed(fp) != point_seed(fingerprint(_pt(a=1, b=3)))


def test_code_version_is_cached_and_short():
    v = code_version()
    assert v == code_version()
    assert len(v) == 16
    int(v, 16)  # hex
