"""Tests for unit conversions."""

import pytest
from hypothesis import given, strategies as st

from repro import units


def test_time_constants():
    assert units.US == 1_000
    assert units.MS == 1_000_000
    assert units.SECOND == 1_000_000_000


def test_usec_msec_sec():
    assert units.usec(1) == 1_000
    assert units.usec(0.5) == 500
    assert units.msec(2) == 2_000_000
    assert units.sec(1) == units.SECOND


def test_tx_time_1500B_at_1gbps():
    # 1518 bytes incl. header handled by the caller; raw 1500 B at 1 Gbps
    # serializes in 12 us.
    assert units.tx_time_ns(1500, 1e9) == 12_000


def test_tx_time_9000B_at_10gbps():
    assert units.tx_time_ns(9000, 10e9) == 7_200


def test_tx_time_rounds_up():
    # 1 byte at 3 Gbps = 2.67 ns -> 3 ns
    assert units.tx_time_ns(1, 3e9) == 3


def test_tx_time_invalid_rate():
    with pytest.raises(ValueError):
        units.tx_time_ns(100, 0)


def test_bytes_per_sec():
    assert units.bytes_per_sec(1000, units.SECOND) == 1000.0
    assert units.bytes_per_sec(500, units.MS) == 500_000.0
    assert units.bytes_per_sec(1, 0) == 0.0


def test_rate_conversions():
    assert units.to_mbps(125_000_000) == pytest.approx(1000.0)
    assert units.to_gbps(1_250_000_000) == pytest.approx(10.0)
    assert units.to_MBps(71_000_000) == pytest.approx(71.0)


@given(st.integers(min_value=0, max_value=10**9), st.floats(min_value=1e6, max_value=1e12))
def test_tx_time_nonnegative_and_monotone(nbytes, rate):
    t = units.tx_time_ns(nbytes, rate)
    assert t >= 0
    assert units.tx_time_ns(nbytes + 1, rate) >= t


@given(st.integers(min_value=1, max_value=10**7))
def test_roundtrip_rate_measurement(nbytes):
    # Measuring the rate over the exact serialization time recovers ~rate.
    rate = 1e9
    t = units.tx_time_ns(nbytes, rate)
    measured = units.bytes_per_sec(nbytes, t)
    assert measured <= rate / 8 + 1
