"""The CI wall-clock regression gate (`tools/benchgate.py`)."""

import copy
import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def _load_gate():
    spec = importlib.util.spec_from_file_location(
        "benchgate", REPO / "tools" / "benchgate.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


REFERENCE = {
    "observables_unchanged": True,
    "scenarios": {
        "fig8_ttcp": {
            "speedup": 2.0,
            "observables_unchanged": True,
            "current": {"sim_ns": 100, "frames": 10},
            "baseline": {"sim_ns": 100, "frames": 10},
        },
        "fig9_ping": {
            "speedup": 1.5,
            "observables_unchanged": True,
            "current": {"sim_ns": 200, "frames": 20},
            "baseline": {"sim_ns": 200, "frames": 20},
        },
    },
    "flowcache": {
        "scenario": "fig8_ttcp",
        "observables_identical": True,
        "wall_speedup": 1.05,
    },
    "obs_overhead": {
        "scenario": "fig8_ttcp",
        "overhead_ratio": 1.005,
        "enabled_ratio": 1.4,
        "max_overhead": 0.02,
        "observables_identical": True,
    },
}


def test_identical_report_passes():
    mod = _load_gate()
    assert mod.gate(copy.deepcopy(REFERENCE), REFERENCE) == []


def test_speedup_within_tolerance_passes():
    mod = _load_gate()
    fresh = copy.deepcopy(REFERENCE)
    fresh["scenarios"]["fig8_ttcp"]["speedup"] = 2.0 * 0.86  # -14% < 15%
    assert mod.gate(fresh, REFERENCE) == []


def test_speedup_regression_fails():
    mod = _load_gate()
    fresh = copy.deepcopy(REFERENCE)
    fresh["scenarios"]["fig8_ttcp"]["speedup"] = 2.0 * 0.8  # -20% > 15%
    problems = mod.gate(fresh, REFERENCE)
    assert len(problems) == 1 and "fig8_ttcp" in problems[0]
    assert "regressed" in problems[0]
    # A wider tolerance absorbs it.
    assert mod.gate(fresh, REFERENCE, tolerance=0.25) == []


def test_changed_observables_always_fail():
    mod = _load_gate()
    fresh = copy.deepcopy(REFERENCE)
    fresh["scenarios"]["fig9_ping"]["observables_unchanged"] = False
    fresh["scenarios"]["fig9_ping"]["current"]["frames"] = 21
    problems = mod.gate(fresh, REFERENCE, tolerance=0.99)
    assert any("fig9_ping" in p and "observables changed" in p for p in problems)

    fresh = copy.deepcopy(REFERENCE)
    fresh["observables_unchanged"] = False
    assert any("report-level" in p for p in mod.gate(fresh, REFERENCE))


def test_scenario_set_must_match():
    mod = _load_gate()
    fresh = copy.deepcopy(REFERENCE)
    del fresh["scenarios"]["fig9_ping"]
    fresh["scenarios"]["fig10_new"] = copy.deepcopy(
        REFERENCE["scenarios"]["fig8_ttcp"]
    )
    problems = mod.gate(fresh, REFERENCE)
    assert any("fig9_ping" in p and "missing" in p for p in problems)
    assert any("fig10_new" in p and "absent from reference" in p for p in problems)


def test_flowcache_identity_is_gated():
    mod = _load_gate()
    fresh = copy.deepcopy(REFERENCE)
    fresh["flowcache"]["observables_identical"] = False
    problems = mod.gate(fresh, REFERENCE)
    assert any("flowcache" in p and "timing-neutral" in p for p in problems)

    fresh = copy.deepcopy(REFERENCE)
    del fresh["flowcache"]
    problems = mod.gate(fresh, REFERENCE)
    assert any("flowcache" in p and "missing" in p for p in problems)
    # The wall ratio is machine noise, never gated.
    fresh = copy.deepcopy(REFERENCE)
    fresh["flowcache"]["wall_speedup"] = 0.5
    assert mod.gate(fresh, REFERENCE) == []


def test_obs_overhead_disabled_hook_budget_is_gated():
    mod = _load_gate()
    fresh = copy.deepcopy(REFERENCE)
    fresh["obs_overhead"]["overhead_ratio"] = 1.03  # > 2% budget
    problems = mod.gate(fresh, REFERENCE)
    assert any("obs_overhead" in p and "free when off" in p for p in problems)
    # At (or under) the budget it passes.
    fresh["obs_overhead"]["overhead_ratio"] = 1.02
    assert mod.gate(fresh, REFERENCE) == []
    # The enabled-leg ratio is informational, never gated.
    fresh["obs_overhead"]["enabled_ratio"] = 10.0
    assert mod.gate(fresh, REFERENCE) == []


def test_obs_overhead_identity_and_presence_are_gated():
    mod = _load_gate()
    fresh = copy.deepcopy(REFERENCE)
    fresh["obs_overhead"]["observables_identical"] = False
    problems = mod.gate(fresh, REFERENCE)
    assert any("obs_overhead" in p and "never change" in p for p in problems)

    fresh = copy.deepcopy(REFERENCE)
    del fresh["obs_overhead"]
    problems = mod.gate(fresh, REFERENCE)
    assert any("obs_overhead" in p and "missing" in p for p in problems)


def test_cli_pass_and_fail_exit_codes(tmp_path, capsys):
    mod = _load_gate()
    ref = tmp_path / "ref.json"
    ref.write_text(json.dumps(REFERENCE))
    fresh = tmp_path / "fresh.json"
    fresh.write_text(json.dumps(REFERENCE))
    assert mod.main([str(fresh), "--reference", str(ref)]) == 0
    assert "PASS" in capsys.readouterr().out

    bad = copy.deepcopy(REFERENCE)
    bad["scenarios"]["fig8_ttcp"]["speedup"] = 0.1
    fresh.write_text(json.dumps(bad))
    assert mod.main([str(fresh), "--reference", str(ref)]) == 1
    assert "FAIL" in capsys.readouterr().out


def test_committed_reference_gates_itself():
    # The repo's own BENCH_sim.json must pass against itself — the CI
    # job's degenerate case.
    mod = _load_gate()
    report = mod.load_report(str(REPO / "BENCH_sim.json"))
    assert mod.gate(copy.deepcopy(report), report) == []
