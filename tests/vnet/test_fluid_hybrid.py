"""Hybrid fluid/packet correctness: statistical validation and transitions.

Three properties, straight from the design contract in
:mod:`repro.sim.fluid`:

* **Statistical validation** — where fluid runs, the observables the
  paper's figures are built from (delivered bytes, completion time) stay
  within tolerance of the all-packet golden run, with strictly fewer
  kernel events.
* **Exact de-escalation** — captures release at the precise transition
  instant (mode switches, chaos faults), and no analytic stride segment
  ever spans a declared transition (the golden fluid-fault property).
* **Determinism** — a faulted fluid run is a pure function of its
  inputs: identical rows rerun in-process and across ``--jobs 1/4``
  worker processes.
"""

import dataclasses

from repro import units
from repro.apps.ttcp import run_ttcp_tcp
from repro.chaos import FaultSchedule
from repro.config import NETEFFECT_10G, VnetTuning
from repro.exec import Engine, Point
from repro.harness.testbed import build_vnetp
from repro.obs.context import Observability
from repro.sim.fluid import fluid_region_of

from .fluid_points import fluid_chaos_row

TOTAL = 10 * units.MB


def _tuning(**kw):
    return dataclasses.replace(VnetTuning(), **kw)


def _run(fluid, fault=None, total_bytes=TOTAL):
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=_tuning(fluid=fluid))
    sched = None
    if fault is not None:
        sched = FaultSchedule(tb.sim, name="fluidfault")
        sched.partition(tb.hosts[0].vnet_bridge.link_out("to1"),
                        start_ns=fault[0], stop_ns=fault[1])
        sched.start()
    res = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1],
                       total_bytes=total_bytes)
    tb.sim.run()
    return tb, res, sched


# --- statistical validation -----------------------------------------------------

def test_fluid_statistically_matches_packet_golden():
    """Same bytes delivered, completion time within tolerance, fewer events."""
    tb_off, golden, _ = _run(fluid=False)
    tb_on, hybrid, _ = _run(fluid=True)
    assert hybrid.bytes_moved == golden.bytes_moved == TOTAL
    # Measured ratio on this scenario is ~0.998; 15% is the documented
    # statistical-validation tolerance for fluid-modeled segments.
    assert abs(hybrid.elapsed_ns / golden.elapsed_ns - 1.0) < 0.15
    assert tb_on.sim.events_processed < tb_off.sim.events_processed
    region = fluid_region_of(tb_on.sim)
    assert region is not None and fluid_region_of(tb_off.sim) is None
    stats = region.stats()
    assert stats["captures"] >= 1 and stats["strides"] >= 1
    assert stats["bytes"] > 0
    assert stats["captured"] == 0 and stats["active"] == 0  # all released


def test_fluid_off_leaves_connections_unhooked():
    tb, _, _ = _run(fluid=False)
    assert tb.cores[0].fluid_region is None


# --- exact de-escalation --------------------------------------------------------

def test_capture_release_lifecycle_in_health_log():
    """Bulk flow captures in steady state, releases at the adaptive mode
    switch (the datapath regime change makes its rate stale), recaptures
    in the new regime, and drains at completion."""
    tb, _, _ = _run(fluid=True)
    sim = tb.sim
    fluid_events = [e for e in Observability.of(sim).health.log.events
                    if e.monitor == "sim.fluid"]
    kinds = [e.kind for e in fluid_events]
    assert kinds.count("capture") >= 2     # initial + post-mode-switch
    assert kinds.count("release") == kinds.count("capture")
    assert kinds[0] == "capture"
    assert "drained" in fluid_events[-1].message
    snap = Observability.of(sim).metrics.snapshot("sim.fluid.")
    assert snap["sim.fluid.releases.mode-change"] >= 1
    assert snap["sim.fluid.releases.drained"] >= 1


def test_fluid_stride_never_crosses_a_fault():
    """The golden transition property: with a chaos partition declared,
    no advanced stride segment spans an install/heal instant, the flow
    releases when the fault lands, and the transfer still completes."""
    fault = (2 * units.MS, 4 * units.MS)
    tb, res, sched = _run(fluid=True, fault=fault)
    assert res.bytes_moved == TOTAL           # reliability across the cut
    region = fluid_region_of(tb.sim)
    points, blackouts = sched.transition_times()
    assert set(points) == set(fault)
    assert region.stride_log, "fluid never engaged"
    for t0, t1 in region.stride_log:
        for p in points:
            assert not (t0 < p < t1), \
                f"stride ({t0}, {t1}) spans transition {p}"
    snap = Observability.of(tb.sim).metrics.snapshot("sim.fluid.")
    released_at_fault = (snap.get("sim.fluid.releases.chaos", 0)
                         + snap.get("sim.fluid.releases.fault-window", 0))
    assert released_at_fault >= 1
    # No capture inside the blackout: every stride avoids the window too.
    start, stop = blackouts[0]
    for t0, t1 in region.stride_log:
        assert not (start < t1 and t0 < stop and t0 >= start), \
            f"stride ({t0}, {t1}) ran inside fault window ({start}, {stop})"


# --- determinism ----------------------------------------------------------------

def test_chaos_mid_stride_rows_repeatable():
    row_a = fluid_chaos_row(4, fault_ms=(1, 2))
    row_b = fluid_chaos_row(4, fault_ms=(1, 2))
    assert row_a == row_b
    assert row_a[0] == 4 * units.MB


def test_rows_identical_across_jobs_1_and_4():
    """Mode-transition determinism across worker processes: the faulted
    fluid scenario produces bit-identical rows under --jobs 1 and 4."""
    points = [
        Point("fluid", "clean", fluid_chaos_row, {"total_mb": 10}),
        Point("fluid", "faulted", fluid_chaos_row,
              {"total_mb": 10, "fault_ms": (2, 4)}),
    ]
    serial = Engine(jobs=1).run(points)
    parallel = Engine(jobs=4).run(points)
    assert serial == parallel
    for bytes_moved, _elapsed, _now, _events, lifecycle in serial:
        assert bytes_moved == 10 * units.MB
        assert any(kind == "capture" for _t, kind, _m in lifecycle)
