"""Tests for the VNET/P routing table and overlay objects."""

import pytest
from hypothesis import given, strategies as st

from repro.config import VnetCostParams
from repro.vnet.overlay import (
    ANY_MAC,
    DestType,
    InterfaceSpec,
    LinkProto,
    LinkSpec,
    RouteEntry,
    validate_mac,
)
from repro.vnet.routing import NoRouteError, RoutingTable


COSTS = VnetCostParams()


def route(src, dst, name="l0", dest_type=DestType.LINK):
    return RouteEntry(src_mac=src, dst_mac=dst, dest_type=dest_type, dest_name=name)


MAC_A = "52:00:00:00:00:01"
MAC_B = "52:00:00:00:00:02"
MAC_C = "52:00:00:00:00:03"


# --- overlay objects -----------------------------------------------------------

def test_validate_mac_normalises_case():
    assert validate_mac("AA:BB:CC:DD:EE:FF") == "aa:bb:cc:dd:ee:ff"


def test_validate_mac_rejects_garbage():
    for bad in ["", "aa:bb", "zz:zz:zz:zz:zz:zz", "aabbccddeeff"]:
        with pytest.raises(ValueError):
            validate_mac(bad)


def test_validate_mac_any_wildcard():
    assert validate_mac("any") == ANY_MAC
    with pytest.raises(ValueError):
        validate_mac("any", allow_any=False)


def test_udp_link_requires_destination():
    with pytest.raises(ValueError, match="needs dst_ip"):
        LinkSpec(name="bad", proto=LinkProto.UDP)


def test_direct_link_needs_no_destination():
    link = LinkSpec(name="exit", proto=LinkProto.DIRECT)
    assert link.dst_ip == ""


def test_interface_spec_validates_mac():
    with pytest.raises(ValueError):
        InterfaceSpec(name="if0", mac="junk")


def test_route_specificity_ordering():
    exact = route(MAC_A, MAC_B)
    dst_only = route(ANY_MAC, MAC_B)
    src_only = route(MAC_A, ANY_MAC)
    wild = route(ANY_MAC, ANY_MAC)
    assert exact.specificity > dst_only.specificity > src_only.specificity > wild.specificity


# --- routing table ---------------------------------------------------------------

def test_lookup_exact_match():
    table = RoutingTable(COSTS)
    table.add(route(MAC_A, MAC_B, "to-b"))
    entry, cost = table.lookup(MAC_A, MAC_B)
    assert entry.dest_name == "to-b"
    assert cost > 0


def test_lookup_prefers_most_specific():
    table = RoutingTable(COSTS)
    table.add(route(ANY_MAC, ANY_MAC, "default"))
    table.add(route(ANY_MAC, MAC_B, "dst-b"))
    table.add(route(MAC_A, MAC_B, "exact"))
    entry, _ = table.lookup(MAC_A, MAC_B)
    assert entry.dest_name == "exact"
    entry, _ = table.lookup(MAC_C, MAC_B)
    assert entry.dest_name == "dst-b"
    entry, _ = table.lookup(MAC_C, MAC_C)
    assert entry.dest_name == "default"


def test_lookup_no_route_raises():
    table = RoutingTable(COSTS)
    table.add(route(MAC_A, MAC_B))
    with pytest.raises(NoRouteError):
        table.lookup(MAC_B, MAC_A)


def test_cache_hit_is_cheaper_than_scan():
    costs = VnetCostParams()
    table = RoutingTable(costs)
    for i in range(50):
        table.add(route(ANY_MAC, f"52:00:00:00:01:{i:02x}", f"l{i}"))
    _, miss_cost = table.lookup(MAC_A, "52:00:00:00:01:31")
    _, hit_cost = table.lookup(MAC_A, "52:00:00:00:01:31")
    assert hit_cost == costs.route_cache_hit_ns
    assert miss_cost == 50 * costs.route_table_per_entry_ns
    assert hit_cost < miss_cost
    assert table.cache_hits == 1


def test_cache_disabled_always_scans():
    table = RoutingTable(COSTS, cache_enabled=False)
    table.add(route(ANY_MAC, MAC_B))
    table.lookup(MAC_A, MAC_B)
    table.lookup(MAC_A, MAC_B)
    assert table.cache_hits == 0


def test_cache_invalidated_on_add_and_remove():
    table = RoutingTable(COSTS)
    wild = route(ANY_MAC, ANY_MAC, "default")
    table.add(wild)
    entry, _ = table.lookup(MAC_A, MAC_B)
    assert entry.dest_name == "default"
    better = route(MAC_A, MAC_B, "specific")
    table.add(better)
    entry, _ = table.lookup(MAC_A, MAC_B)
    assert entry.dest_name == "specific"
    table.remove(better)
    entry, _ = table.lookup(MAC_A, MAC_B)
    assert entry.dest_name == "default"


def test_duplicate_route_rejected():
    table = RoutingTable(COSTS)
    table.add(route(MAC_A, MAC_B))
    with pytest.raises(ValueError, match="duplicate"):
        table.add(route(MAC_A, MAC_B))


def test_remove_missing_route_raises():
    table = RoutingTable(COSTS)
    with pytest.raises(KeyError):
        table.remove(route(MAC_A, MAC_B))


def test_remove_matching_filters():
    table = RoutingTable(COSTS)
    table.add(route(ANY_MAC, MAC_B, "x"))
    table.add(route(ANY_MAC, MAC_C, "x"))
    table.add(route(ANY_MAC, MAC_A, "y"))
    assert table.remove_matching(dest_name="x") == 2
    assert len(table) == 1


def test_routes_to_filters_by_destination():
    table = RoutingTable(COSTS)
    table.add(route(ANY_MAC, MAC_B, "if0", DestType.INTERFACE))
    table.add(route(ANY_MAC, MAC_C, "l0", DestType.LINK))
    assert len(table.routes_to(DestType.INTERFACE, "if0")) == 1
    assert len(table.routes_to(DestType.LINK, "l0")) == 1
    assert table.routes_to(DestType.LINK, "if0") == []


@st.composite
def mac_strategy(draw):
    return ":".join(f"{draw(st.integers(0, 255)):02x}" for _ in range(6))


@given(st.lists(mac_strategy(), min_size=1, max_size=20, unique=True), mac_strategy())
def test_property_cached_lookup_equals_scan(dst_macs, probe_src):
    """The cache must never change the lookup result."""
    cached = RoutingTable(COSTS, cache_enabled=True)
    plain = RoutingTable(COSTS, cache_enabled=False)
    for i, mac in enumerate(dst_macs):
        for t in (cached, plain):
            t.add(route(ANY_MAC, mac, f"l{i}"))
    for mac in dst_macs:
        for _ in range(2):  # second pass hits the cache
            a, _ = cached.lookup(probe_src, mac)
            b, _ = plain.lookup(probe_src, mac)
            assert a == b
