"""The indexed (src, dst) route lookup: same semantics, flat cost.

The lazy exact-dst/wildcard-dst index must be observationally identical
to the legacy linear scan — same winning entry (first-added wins ties,
exact-dst beats wildcard-dst), same charged cost (the full-scan model),
same change notifications — while the bulk ``load`` path fires exactly
one notification per batch.
"""

import pytest
from hypothesis import given, strategies as st

from repro.config import VnetCostParams
from repro.vnet.overlay import ANY_MAC, DestType, RouteEntry
from repro.vnet.routing import NoRouteError, RoutingTable

COSTS = VnetCostParams()


def route(src, dst, name="l0"):
    return RouteEntry(src_mac=src, dst_mac=dst, dest_type=DestType.LINK,
                      dest_name=name)


def brute_force(entries, src, dst):
    """The pre-index selection rule: linear scan, strict > on specificity."""
    best, best_spec = None, -1
    for e in entries:
        if e.matches(src, dst) and e.specificity > best_spec:
            best, best_spec = e, e.specificity
    return best


def mac(i):
    return f"52:00:00:00:{i >> 8:02x}:{i & 0xff:02x}"


_macs = st.integers(min_value=0, max_value=15).map(mac)
_mac_or_any = st.one_of(st.just(ANY_MAC), _macs)


@given(
    st.lists(st.tuples(_mac_or_any, _mac_or_any), min_size=0, max_size=40),
    _macs,
    _macs,
)
def test_lookup_matches_linear_scan(pairs, src, dst):
    table = RoutingTable(COSTS, cache_enabled=False)
    table.load([route(s, d, name=f"l{i}") for i, (s, d) in enumerate(pairs)])
    expected = brute_force(table.entries, src, dst)
    if expected is None:
        with pytest.raises(NoRouteError):
            table.lookup(src, dst)
    else:
        entry, _cost = table.lookup(src, dst)
        assert entry is expected


def test_charged_cost_is_full_scan():
    """The index is a wall-clock optimisation only: the simulated cost
    still models the linear table walk the paper describes (Sect. 4.3)."""
    table = RoutingTable(COSTS, cache_enabled=False)
    table.load([route(ANY_MAC, mac(i)) for i in range(37)])
    _entry, cost = table.lookup(mac(0), mac(5))
    assert cost == COSTS.route_table_per_entry_ns * 37


def test_load_fires_one_notification():
    table = RoutingTable(COSTS)
    fired = []
    table.on_change(lambda: fired.append(1))
    added = table.load([route(ANY_MAC, mac(i)) for i in range(10)])
    assert added == 10
    assert len(fired) == 1
    # Per-entry adds still notify per entry.
    table.add(route(ANY_MAC, mac(99)))
    assert len(fired) == 2


def test_index_invalidated_by_mutation():
    table = RoutingTable(COSTS, cache_enabled=False)
    table.load([route(ANY_MAC, mac(1), name="a")])
    entry, _ = table.lookup(mac(0), mac(1))
    assert entry.dest_name == "a"
    # A higher-specificity entry added later must win immediately.
    table.add(route(mac(0), mac(1), name="b"))
    entry, _ = table.lookup(mac(0), mac(1))
    assert entry.dest_name == "b"
    # And removal must restore the wildcard route.
    table.remove_matching(src_mac=mac(0), dst_mac=mac(1))
    entry, _ = table.lookup(mac(0), mac(1))
    assert entry.dest_name == "a"


def test_wildcard_dst_fallback():
    table = RoutingTable(COSTS, cache_enabled=False)
    table.load([
        route(ANY_MAC, ANY_MAC, name="default"),
        route(ANY_MAC, mac(1), name="exact"),
    ])
    assert table.lookup(mac(9), mac(1))[0].dest_name == "exact"
    assert table.lookup(mac(9), mac(2))[0].dest_name == "default"


def test_first_added_wins_ties():
    table = RoutingTable(COSTS, cache_enabled=False)
    table.load([
        route(ANY_MAC, mac(1), name="first"),
        route(ANY_MAC, mac(1), name="second"),
    ])
    assert table.lookup(mac(0), mac(1))[0].dest_name == "first"
