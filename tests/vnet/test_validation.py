"""Tests for overlay configuration validation."""

import networkx as nx

from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp
from repro.vnet.overlay import DestType, LinkProto, LinkSpec, RouteEntry
from repro.vnet.validation import overlay_graph, validate_overlay


def test_healthy_mesh_validates_clean():
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    report = validate_overlay(tb.cores)
    assert report.ok, report.render()
    # 3 cores x 2 remote MACs each.
    assert report.paths_checked == 6
    assert "OK" in report.render()


def test_missing_route_is_unreachable():
    tb = build_vnetp(n_hosts=2, nic_params=NETEFFECT_10G)
    mac_b = tb.endpoints[1].vm.virtio_nics[0].mac
    tb.cores[0].routing.remove_matching(dst_mac=mac_b)
    report = validate_overlay(tb.cores)
    assert not report.ok
    assert any(i.kind == "unreachable" for i in report.issues)


def test_waypoint_forwarding_validates():
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    mac_b = tb.endpoints[1].vm.virtio_nics[0].mac
    core_a = tb.cores[0]
    core_a.routing.remove_matching(dst_mac=mac_b)
    core_a.add_route(RouteEntry("any", mac_b, DestType.LINK, "to2"))
    report = validate_overlay(tb.cores)
    assert report.ok, report.render()  # host 2 forwards onward


def test_forwarding_loop_detected():
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    mac_b = tb.endpoints[1].vm.virtio_nics[0].mac
    # a -> c, and c -> a: a loop that never reaches b's host.
    tb.cores[0].routing.remove_matching(dst_mac=mac_b)
    tb.cores[0].add_route(RouteEntry("any", mac_b, DestType.LINK, "to2"))
    tb.cores[2].routing.remove_matching(dst_mac=mac_b)
    tb.cores[2].add_route(RouteEntry("any", mac_b, DestType.LINK, "to0"))
    report = validate_overlay(tb.cores)
    assert any(i.kind == "loop" for i in report.issues), report.render()


def test_dangling_link_detected():
    tb = build_vnetp(n_hosts=2, nic_params=NETEFFECT_10G)
    tb.cores[0].add_link(
        LinkSpec(name="nowhere", proto=LinkProto.UDP, dst_ip="10.0.0.250")
    )
    report = validate_overlay(tb.cores)
    assert any(i.kind == "dangling-link" for i in report.issues)


def test_misrouted_interface_is_black_hole():
    tb = build_vnetp(n_hosts=2, nic_params=NETEFFECT_10G)
    mac_b = tb.endpoints[1].vm.virtio_nics[0].mac
    # Host 0 claims b's MAC locally.
    tb.cores[0].routing.remove_matching(dst_mac=mac_b)
    tb.cores[0].add_route(RouteEntry("any", mac_b, DestType.INTERFACE, "if0"))
    report = validate_overlay(tb.cores)
    assert any(i.kind == "black-hole" for i in report.issues)


def test_overlay_graph_structure():
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    graph = overlay_graph(tb.cores)
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 6  # full mesh
    assert nx.is_strongly_connected(graph)
    # Node attributes carry the guest MACs.
    macs = nx.get_node_attributes(graph, "macs")
    assert all(len(m) == 1 for m in macs.values())
