"""Tests for the VNET control language and control component."""

import pytest

from repro.config import BROADCOM_1G
from repro.harness.testbed import build_vnetp
from repro.vnet.control import ControlError, VnetControl
from repro.vnet.lang import (
    AddInterface,
    AddLink,
    AddRoute,
    DelLink,
    DelRoute,
    ListCmd,
    ParseError,
    parse_config,
    parse_line,
)
from repro.vnet.overlay import DEFAULT_VNET_PORT, DestType, LinkProto


# --- parser ------------------------------------------------------------------

def test_parse_add_interface():
    cmd = parse_line("add interface if0 mac 52:00:00:00:00:01")
    assert isinstance(cmd, AddInterface)
    assert cmd.spec.name == "if0"
    assert cmd.spec.mac == "52:00:00:00:00:01"


def test_parse_add_udp_link_with_port():
    cmd = parse_line("add link peer udp 10.0.0.2:7777")
    assert isinstance(cmd, AddLink)
    assert cmd.spec.proto is LinkProto.UDP
    assert cmd.spec.dst_ip == "10.0.0.2"
    assert cmd.spec.dst_port == 7777


def test_parse_add_link_default_port():
    cmd = parse_line("add link peer tcp 10.0.0.9")
    assert cmd.spec.proto is LinkProto.TCP
    assert cmd.spec.dst_port == DEFAULT_VNET_PORT


def test_parse_direct_link():
    cmd = parse_line("add link exitpoint direct")
    assert cmd.spec.proto is LinkProto.DIRECT


def test_parse_add_route_to_link():
    cmd = parse_line("add route src any dst 52:00:00:00:00:02 link peer")
    assert isinstance(cmd, AddRoute)
    assert cmd.route.dest_type is DestType.LINK
    assert cmd.route.src_mac == "any"


def test_parse_add_route_to_interface():
    cmd = parse_line("add route src 52:00:00:00:00:01 dst 52:00:00:00:00:02 interface if0")
    assert cmd.route.dest_type is DestType.INTERFACE


def test_parse_del_and_list():
    assert isinstance(parse_line("del link peer"), DelLink)
    assert isinstance(parse_line("del route src any dst 52:00:00:00:00:02"), DelRoute)
    assert parse_line("list routes") == ListCmd("routes")


def test_parse_ignores_blank_and_comments():
    assert parse_line("") is None
    assert parse_line("   # a comment") is None


@pytest.mark.parametrize(
    "bad",
    [
        "frobnicate",
        "add link x udp",           # missing endpoint
        "add link x udp 1.2.3.4:notaport",
        "add link x udp 1.2.3.4:99999",
        "add link x carrier 1.2.3.4",
        "add route src any link l0",  # malformed
        "add interface if0",
        "list bogus",
        "del route src any",
    ],
)
def test_parse_errors(bad):
    with pytest.raises(ParseError):
        parse_line(bad)


def test_parse_config_reports_line_numbers():
    text = "add link a udp 10.0.0.2\nbogus command\n"
    with pytest.raises(ParseError, match="line 2"):
        parse_config(text)


def test_parse_config_round_trip():
    text = """
    # overlay for a two-node mesh
    add link to1 udp 10.0.0.2:5002
    add route src any dst 52:00:00:00:00:02 link to1
    add route src any dst 52:00:00:00:00:01 interface if0
    """
    cmds = parse_config(text)
    assert len(cmds) == 3


# --- control component applied to a live core --------------------------------------

def make_control():
    tb = build_vnetp(nic_params=BROADCOM_1G)
    return tb, tb.controls[0]


def test_control_add_and_list_link():
    tb, ctl = make_control()
    ctl.apply_config("add link extra udp 10.0.0.9:5002")
    listing = ctl.apply(parse_line("list links"))
    assert any("extra" in line for line in listing)


def test_control_rejects_route_to_unknown_link():
    tb, ctl = make_control()
    with pytest.raises(ControlError, match="unknown link"):
        ctl.apply(parse_line("add route src any dst 52:00:00:00:00:99 link nope"))


def test_control_rejects_hot_added_interface():
    tb, ctl = make_control()
    with pytest.raises(ControlError, match="VM configuration time"):
        ctl.apply(parse_line("add interface if9 mac 52:00:00:00:00:09"))


def test_control_del_link_in_use_refused():
    tb, ctl = make_control()
    # to1 is referenced by the mesh routes built by the harness.
    with pytest.raises(ControlError, match="still referenced"):
        ctl.apply(parse_line("del link to1"))


def test_control_del_route_then_link():
    tb, ctl = make_control()
    macs = [s.mac for s in tb.cores[1].if_specs.values()]
    ctl.apply(parse_line(f"del route src any dst {macs[0]}"))
    ctl.apply(parse_line("del link to1"))
    listing = ctl.apply(parse_line("list links"))
    assert listing == []


def test_control_del_missing_route_errors():
    tb, ctl = make_control()
    with pytest.raises(ControlError, match="no route matches"):
        ctl.apply(parse_line("del route src any dst 52:ff:ff:ff:ff:ff"))


def test_remote_control_over_tcp():
    """Drive the control daemon through its simulated TCP control port,
    as a VNET/U tool would."""
    from repro.proto.tcp import TcpMessageChannel

    tb, ctl = make_control()
    sim = tb.sim
    ctl.serve()
    replies = []

    def client():
        # The control port lives on the *host* stack; drive it from the
        # peer host (an adaptation engine elsewhere on the network).
        conn = yield from tb.hosts[1].stack.tcp_connect(tb.hosts[0].ip, 5003)
        channel = TcpMessageChannel(conn)
        for line in [
            "add link extra udp 10.0.0.9:5002",
            "list links",
            "del link nope",
        ]:
            yield from channel.send_message(line, max(1, len(line)))
            reply = yield from channel.recv_message()
            replies.append(reply)

    p = sim.process(client())
    sim.run(until=p)
    assert replies[0] == "ok"
    assert "extra" in replies[1]
    assert replies[2].startswith("error:")
