"""Tests for TCP-encapsulated overlay links (Sect. 4.5: 'TCP encapsulation
is also supported')."""

from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp
from repro.proto.base import Blob
from repro.vnet.overlay import DestType, LinkProto, LinkSpec, RouteEntry


def make_tcp_overlay():
    """Rewire the standard two-node overlay to use TCP links A->B."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    core_a, core_b = tb.cores
    # B accepts inbound TCP overlay connections on its bridge port.
    tb.hosts[1].vnet_bridge.accept_tcp_links()
    mac_b = tb.endpoints[1].vm.virtio_nics[0].mac
    core_a.routing.remove_matching(dst_mac=mac_b)
    core_a.add_link(
        LinkSpec(name="tcp-to-b", proto=LinkProto.TCP, dst_ip=tb.hosts[1].ip)
    )
    core_a.add_route(RouteEntry("any", mac_b, DestType.LINK, "tcp-to-b"))
    return tb


def test_tcp_link_carries_guest_traffic():
    tb = make_tcp_overlay()
    sim = tb.sim
    a, b = tb.endpoints
    got = []

    def rx():
        sock = b.stack.udp_socket(port=7)
        for _ in range(3):
            payload, src, _ = yield from sock.recv()
            got.append(payload.size)

    def tx():
        sock = a.stack.udp_socket()
        for size in (100, 2000, 8000):
            yield from sock.sendto(Blob(size), b.ip, 7)

    sim.process(rx())
    sim.process(tx())
    sim.run()
    assert got == [100, 2000, 8000]
    assert tb.hosts[0].vnet_bridge.encap_tx == 3


def test_tcp_link_reuses_one_connection():
    tb = make_tcp_overlay()
    sim = tb.sim
    a, b = tb.endpoints

    def tx():
        sock = a.stack.udp_socket()
        for _ in range(10):
            yield from sock.sendto(Blob(500), b.ip, 9)

    b.stack.udp_socket(port=9)
    p = sim.process(tx())
    sim.run(until=p)
    sim.run()
    bridge = tb.hosts[0].vnet_bridge
    assert len(bridge._tcp_links) == 1
