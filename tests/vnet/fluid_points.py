"""Module-level point function for the fluid determinism engine test.

Point functions must live at module level: pool workers receive them by
pickled reference (same rule as ``tests/exec/points.py``).  Fluid mode
is enabled through the tuning kwarg, not the environment, so parallel
workers need no env plumbing.
"""

import dataclasses


def fluid_chaos_row(total_mb, fault_ms=None):
    """One faulted bulk-TCP run under fluid mode; returns its full row."""
    from repro import units
    from repro.apps.ttcp import run_ttcp_tcp
    from repro.chaos import FaultSchedule
    from repro.config import NETEFFECT_10G, VnetTuning
    from repro.harness.testbed import build_vnetp
    from repro.obs.context import Observability

    tuning = dataclasses.replace(VnetTuning(), fluid=True)
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    if fault_ms is not None:
        sched = FaultSchedule(tb.sim, name="fluidpoint")
        sched.partition(tb.hosts[0].vnet_bridge.link_out("to1"),
                        start_ns=fault_ms[0] * units.MS,
                        stop_ns=fault_ms[1] * units.MS)
        sched.start()
    res = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1],
                       total_bytes=total_mb * units.MB)
    tb.sim.run()
    log = Observability.of(tb.sim).health.log
    lifecycle = tuple((e.t_ns, e.kind, e.message)
                      for e in log.events if e.monitor == "sim.fluid")
    return (res.bytes_moved, res.elapsed_ns, tb.sim.now,
            tb.sim.events_processed, lifecycle)
