"""Per-flow fast-path cache: accounting, timing neutrality, invalidation.

The invalidation tests are the safety half of the design: a compiled
fast-path entry must never outlive the route it was compiled from —
not across a route-table edit, not across failover/failback, and not
across a chaos partition or flap.
"""

import dataclasses

from repro import units
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_udp
from repro.chaos import FaultSchedule
from repro.config import NETEFFECT_10G, VnetTuning
from repro.harness.testbed import build_vnetp
from repro.obs.context import Observability
from repro.proto.base import Blob
from repro.vnet.adaptation import AdaptationEngine
from repro.vnet.flowcache import caches_of, invalidate_for_fault
from repro.vnet.heartbeat import HeartbeatService
from repro.vnet.overlay import DestType, RouteEntry


def _tuning(**kw):
    return dataclasses.replace(VnetTuning(), **kw)


# --- accounting ----------------------------------------------------------------

def test_hit_miss_accounting():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    run_ping(tb.endpoints[0], tb.endpoints[1], count=10)
    cache = tb.cores[0].flowcache
    assert cache is not None
    # First packet of each flow walks the full chain, the rest hit.
    assert cache.misses == cache.installs
    assert cache.hits > 0
    assert 0.5 < cache.hit_rate <= 1.0
    assert len(cache) == cache.installs
    stats = cache.stats()
    assert stats["hits"] == cache.hits
    assert stats["invalidated_entries"] == 0
    # Counters live in the shared registry under vnet.flowcache.<host>.
    snap = Observability.of(tb.sim).metrics.snapshot("vnet.flowcache.h0.")
    assert snap["vnet.flowcache.h0.hits"] == cache.hits
    assert snap["vnet.flowcache.h0.misses"] == cache.misses


def test_cache_registry_lists_every_core():
    tb = build_vnetp(nic_params=NETEFFECT_10G, n_hosts=3)
    caches = caches_of(tb.sim)
    assert len(caches) == 3
    assert {c.core for c in caches} == set(tb.cores)


def test_flow_cache_can_be_disabled():
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=_tuning(flow_cache=False))
    assert tb.cores[0].flowcache is None
    run_ping(tb.endpoints[0], tb.endpoints[1], count=3)  # datapath intact
    assert caches_of(tb.sim) == []


def test_env_override_disables_default(monkeypatch):
    monkeypatch.setenv("REPRO_FLOW_CACHE", "0")
    assert VnetTuning().flow_cache is False
    monkeypatch.delenv("REPRO_FLOW_CACHE")
    assert VnetTuning().flow_cache is True


# --- timing neutrality ---------------------------------------------------------

def _observables(flow_cache):
    tuning = _tuning(flow_cache=flow_cache)
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    p = run_ping(tb.endpoints[0], tb.endpoints[1], data_size=1024, count=20)
    tb2 = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    t = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1],
                     duration_ns=2 * units.MS)
    events = tb.sim.events_processed + tb2.sim.events_processed
    return (tuple(p.rtt_ns.samples), t.bytes_moved, t.elapsed_ns), events


def test_bit_identical_observables_cache_on_vs_off():
    """The cache only elides charged-not-performed work: same simulated
    nanoseconds, strictly fewer kernel events."""
    with_cache, events_on = _observables(True)
    without_cache, events_off = _observables(False)
    assert with_cache == without_cache
    assert events_on < events_off


def test_modelled_hit_cost_changes_timing():
    """flow_cache_hit_ns opts into ONCache's cheaper per-packet cost —
    an ablation knob that genuinely shortens the simulated fast path."""
    tb = build_vnetp(nic_params=NETEFFECT_10G,
                     tuning=_tuning(flow_cache_hit_ns=0))
    fast = run_ping(tb.endpoints[0], tb.endpoints[1], count=20)
    tb2 = build_vnetp(nic_params=NETEFFECT_10G)
    neutral = run_ping(tb2.endpoints[0], tb2.endpoints[1], count=20)
    assert fast.avg_rtt_us < neutral.avg_rtt_us


# --- invalidation --------------------------------------------------------------

def test_route_change_invalidates():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    run_ping(a, b, count=5)
    cache = tb.cores[0].flowcache
    assert len(cache) > 0
    installs_before = cache.installs
    tb.cores[0].add_route(
        RouteEntry("any", "52:00:00:00:00:99", DestType.LINK, "to1")
    )
    assert len(cache) == 0
    assert cache.invalidated_entries > 0
    # Traffic recompiles the flow and keeps working.
    run_ping(a, b, count=3)
    assert cache.installs > installs_before


def test_chaos_partition_invalidates_exactly_that_link():
    tb = build_vnetp(nic_params=NETEFFECT_10G, n_hosts=3)
    a, b, c = tb.endpoints
    run_ping(a, b, count=3)
    run_ping(a, c, count=3)
    cache = tb.cores[0].flowcache
    links_cached = {e.path.link_name for e in cache.entries.values()
                    if e.path is not None}
    assert {"to1", "to2"} <= links_cached
    n_before = len(cache)
    dropped = invalidate_for_fault(
        tb.sim, tb.hosts[0].vnet_bridge.link_out("to1").name
    )
    assert dropped >= 1
    assert len(cache) == n_before - dropped
    remaining = {e.path.link_name for e in cache.entries.values()
                 if e.path is not None}
    assert "to1" not in remaining
    assert "to2" in remaining
    # A fault below link granularity (the physical NIC) flushes everything.
    invalidate_for_fault(tb.sim, tb.hosts[0].nic.tx_port.name)
    assert len(cache) == 0


def test_chaos_flap_invalidates_on_each_down_flip():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    sim = tb.sim
    sched = FaultSchedule(sim, name="flapcache")
    sched.flap(tb.hosts[0].vnet_bridge.link_out("to1"),
               start_ns=1_000_000, down_ns=50_000, up_ns=150_000, cycles=3)
    sched.start()
    b.stack.udp_socket(port=9)

    def traffic():
        sock = a.stack.udp_socket()
        for _ in range(40):
            yield from sock.sendto(Blob(512), b.ip, 9)
            yield sim.timeout(100_000)

    done = sim.process(traffic())
    sim.run(until=done)
    sim.run()
    snap = Observability.of(tb.sim).metrics.snapshot("vnet.flowcache.h0.")
    assert snap.get("vnet.flowcache.h0.invalidations.chaos", 0) >= 3


def test_failover_never_serves_stale_route():
    """Partition the direct link mid-stream: once the engine reroutes,
    no cached entry on the source core may still ride the dead link —
    and after failback the direct path recompiles."""
    tb = build_vnetp(nic_params=NETEFFECT_10G, n_hosts=3)
    sim = tb.sim
    horizon = 20_000_000
    engine = AdaptationEngine(sim, tb.cores, controls=tb.controls,
                              failback_backoff_ns=1_000_000)
    for core in tb.cores:
        HeartbeatService(sim, core, interval_ns=250_000,
                         until_ns=horizon).start()
    sim.process(engine.run_failover(interval_ns=100_000, until_ns=horizon))

    sched = FaultSchedule(sim, name="cutcache")
    sched.partition(tb.hosts[0].vnet_bridge.link_out("to1"),
                    start_ns=3_000_000, stop_ns=10_000_000)
    sched.partition(tb.hosts[1].vnet_bridge.link_out("to0"),
                    start_ns=3_000_000, stop_ns=10_000_000)
    sched.start()

    a, b, _ = tb.endpoints
    b.stack.udp_socket(port=9)

    def traffic():
        sock = a.stack.udp_socket()
        while sim.now < horizon - 1_000_000:
            yield from sock.sendto(Blob(1024), b.ip, 9)
            yield sim.timeout(25_000)

    sim.process(traffic())
    cache = tb.cores[0].flowcache

    def cached_links():
        return {e.path.link_name for e in cache.entries.values()
                if e.path is not None}

    probes = {}

    def scenario():
        yield sim.timeout(2_000_000)
        probes["before"] = cached_links()
        yield sim.timeout(6_000_000)   # t=8 ms: detected + rerouted
        probes["during"] = cached_links()
        probes["failed_over"] = (0, "to1") in engine.failed_links
        yield sim.timeout(10_000_000)  # t=18 ms: healed + failed back
        probes["after"] = cached_links()

    done = sim.process(scenario())
    sim.run(until=done)
    sim.run()

    assert "to1" in probes["before"]          # direct path compiled
    assert probes["failed_over"]
    assert "to1" not in probes["during"]      # never serving the dead link
    assert "to2" in probes["during"]          # detour compiled instead
    assert "to1" in probes["after"]           # failback recompiled direct
    snap = Observability.of(sim).metrics.snapshot("vnet.flowcache.h0.")
    assert snap.get("vnet.flowcache.h0.invalidations.chaos", 0) >= 1
    assert snap.get("vnet.flowcache.h0.invalidations.failover", 0) >= 1
    assert snap.get("vnet.flowcache.h0.invalidations.failback", 0) >= 1
    assert snap.get("vnet.flowcache.h0.invalidations.route-change", 0) >= 2


# --- rx-side fast path ---------------------------------------------------------

def test_rx_dispatcher_hits_compiled_path():
    """Frames arriving *from* the overlay consult the same cache before
    paying dispatch: the receiver core's inbound flow (remote guest ->
    local guest) compiles to direct interface delivery and hits."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    run_ping(tb.endpoints[0], tb.endpoints[1], count=10)
    cache = tb.cores[1].flowcache
    assert cache.hits > 0
    assert cache.misses == cache.installs
    local = [e for e in cache.entries.values() if e.nic is not None]
    assert local, "inbound flow should compile to a local interface"
    assert all(e.hits > 0 for e in local)


def test_rx_path_equivalence_cache_on_vs_off():
    """One-way UDP blast: the receiver core does pure rx work, so this
    isolates the rx dispatcher's cached path.  Same goodput and elapsed
    time, strictly fewer kernel events."""
    def run(flag):
        tb = build_vnetp(nic_params=NETEFFECT_10G,
                         tuning=_tuning(flow_cache=flag))
        t = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1],
                         duration_ns=2 * units.MS)
        cache = tb.cores[1].flowcache
        rx_hits = cache.hits if cache is not None else 0
        return (t.bytes_moved, t.elapsed_ns), tb.sim.events_processed, rx_hits

    obs_on, events_on, rx_hits = run(True)
    obs_off, events_off, _ = run(False)
    assert obs_on == obs_off
    assert events_on < events_off
    assert rx_hits > 0


def test_rx_invalidation_recompiles_mid_stream():
    """A fault below link granularity on the receiver flushes its cache
    (rx entries included); traffic recompiles and keeps working."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    run_ping(a, b, count=5)
    cache = tb.cores[1].flowcache
    assert len(cache) > 0
    installs_before = cache.installs
    dropped = invalidate_for_fault(tb.sim, tb.hosts[1].nic.rx_port.name)
    assert dropped >= 1
    assert len(cache) == 0
    run_ping(a, b, count=3)
    assert cache.installs > installs_before
    assert any(e.nic is not None and e.hits > 0
               for e in cache.entries.values())


# --- timeline series -----------------------------------------------------------

def test_hit_rate_series_on_timeline():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    obs = Observability.of(tb.sim)
    timeline = obs.timeline
    timeline.interval_ns = 100_000
    series = tb.cores[0].flowcache.register_hit_rate(timeline)
    timeline.start(until_ns=2 * units.MS)
    run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=2 * units.MS)
    assert series.name == "vnet.flowcache.h0.hit_rate"
    values = [v for v in series.values if v == v]  # drop idle-window NaNs
    assert values, "stream should produce at least one sampled window"
    assert max(values) > 0.9
