"""Tests for the VNET/U user-level baseline daemon."""

import pytest

from repro import units
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_tcp
from repro.config import BROADCOM_1G
from repro.harness.testbed import build_vnetp, build_vnetu
from repro.proto.base import Blob
from repro.vnet.overlay import LinkProto, LinkSpec


def test_vnetu_guest_to_guest_delivery():
    tb = build_vnetu(nic_params=BROADCOM_1G)
    sim = tb.sim
    a, b = tb.endpoints
    got = []

    def rx():
        sock = b.stack.udp_socket(port=7)
        payload, src, _ = yield from sock.recv()
        got.append((payload.size, src))

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(512), b.ip, 7)

    sim.process(rx())
    sim.process(tx())
    sim.run()
    assert got == [(512, a.ip)]
    assert tb.daemons[0].pkts_routed >= 1
    assert tb.daemons[1].pkts_routed >= 1


def test_vnetu_is_much_slower_than_vnetp():
    """The paper's core motivation: kernel/user transitions cap VNET/U."""
    tu = build_vnetu(nic_params=BROADCOM_1G)
    ru = run_ttcp_tcp(tu.endpoints[0], tu.endpoints[1], total_bytes=2 * units.MB)
    tp = build_vnetp(nic_params=BROADCOM_1G)
    rp = run_ttcp_tcp(tp.endpoints[0], tp.endpoints[1], total_bytes=2 * units.MB)
    assert rp.mbps > 1.3 * ru.mbps
    pu = run_ping(build_vnetu(nic_params=BROADCOM_1G).endpoints[0],
                  tu.endpoints[1], count=5) if False else None
    # Latency comparison on fresh testbeds.
    tu2 = build_vnetu(nic_params=BROADCOM_1G)
    lu = run_ping(tu2.endpoints[0], tu2.endpoints[1], count=10)
    tp2 = build_vnetp(nic_params=BROADCOM_1G)
    lp = run_ping(tp2.endpoints[0], tp2.endpoints[1], count=10)
    assert lu.avg_rtt_us > 3 * lp.avg_rtt_us


def test_vnetu_rejects_non_udp_links():
    tb = build_vnetu(nic_params=BROADCOM_1G)
    daemon = tb.daemons[0]
    with pytest.raises(ValueError, match="UDP"):
        daemon.add_link(LinkSpec(name="d", proto=LinkProto.DIRECT))


def test_vnetu_route_validation():
    from repro.vnet.overlay import DestType, RouteEntry

    tb = build_vnetu(nic_params=BROADCOM_1G)
    daemon = tb.daemons[0]
    with pytest.raises(ValueError, match="unknown link"):
        daemon.add_route(
            RouteEntry("any", "52:00:00:00:00:99", DestType.LINK, "nowhere")
        )


def test_vnetu_drops_unroutable_frames():
    tb = build_vnetu(nic_params=BROADCOM_1G)
    sim = tb.sim
    a, b = tb.endpoints
    # Remove the route to b on a's daemon.
    mac_b = b.vm.virtio_nics[0].mac
    tb.daemons[0].routing.remove_matching(dst_mac=mac_b)

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(64), b.ip, 9)

    p = sim.process(tx())
    sim.run(until=p)
    sim.run()
    assert tb.daemons[0].pkts_dropped >= 1


def test_vnetu_speaks_the_shared_config_language():
    tb = build_vnetu(nic_params=BROADCOM_1G)
    daemon = tb.daemons[0]
    daemon.apply_config(
        """
        add link extra udp 10.0.0.9:5004
        add route src any dst 52:00:00:00:00:77 link extra
        """
    )
    assert "extra" in daemon.links
    listing = daemon.apply_config("list routes")
    assert any("52:00:00:00:00:77" in line for line in listing)
    daemon.apply_config("del route src any dst 52:00:00:00:00:77")
    with pytest.raises(ValueError, match="no route matches"):
        daemon.apply_config("del route src any dst 52:00:00:00:00:77")
