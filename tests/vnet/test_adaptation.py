"""Tests for traffic monitoring, the adaptation engine, and VM migration."""

import pytest

from repro import units
from repro.apps.ping import run_ping
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp
from repro.proto.base import Blob
from repro.vnet.adaptation import AdaptationEngine
from repro.vnet.migration import migrate_vm
from repro.vnet.monitor import TrafficMonitor
from repro.vnet.overlay import DestType, RouteEntry


# --- monitor -------------------------------------------------------------------

def test_monitor_observes_flows():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    mon = TrafficMonitor(tb.sim, tb.cores[0])
    a, b = tb.endpoints
    run_ping(a, b, count=5)
    mac_a = a.vm.virtio_nics[0].mac
    mac_b = b.vm.virtio_nics[0].mac
    assert (mac_a, mac_b) in mon.flows
    flow = mon.flows[(mac_a, mac_b)]
    assert flow.packets == 5
    assert flow.bytes > 0
    assert mon.total_bytes() == flow.bytes


def test_monitor_top_flows_ordering():
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    sim = tb.sim
    mon = TrafficMonitor(sim, tb.cores[0])
    a, b, c = tb.endpoints

    def tx(dst, size, n):
        sock = a.stack.udp_socket()
        for _ in range(n):
            yield from sock.sendto(Blob(size), dst.ip, 9)

    b.stack.udp_socket(port=9)
    c.stack.udp_socket(port=9)
    p1 = sim.process(tx(b, 8000, 20))
    p2 = sim.process(tx(c, 100, 3))
    sim.run(until=sim.all_of([p1, p2]))
    sim.run()
    top = mon.top_flows(1)
    assert top[0].dst == b.vm.virtio_nics[0].mac


# --- adaptation engine ------------------------------------------------------------

def waypoint_overlay():
    """3-host overlay where A reaches B only via waypoint C."""
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    a, b, c = tb.endpoints
    mac_b = b.vm.virtio_nics[0].mac
    core_a = tb.cores[0]
    core_a.routing.remove_matching(dst_mac=mac_b)
    core_a.add_route(RouteEntry("any", mac_b, DestType.LINK, "to2"))
    return tb


def test_adaptation_installs_direct_route():
    tb = waypoint_overlay()
    engine = AdaptationEngine(tb.sim, tb.cores, tb.controls, min_flow_bytes=100)
    a, b, _ = tb.endpoints
    before = run_ping(a, b, count=10)
    changes = engine.adapt()
    assert changes >= 1
    assert any("routed" in act.description for act in engine.actions)
    after = run_ping(a, b, count=10)
    assert after.avg_rtt_us < before.avg_rtt_us * 0.8
    # The route now uses a link straight to b's host.
    mac_b = b.vm.virtio_nics[0].mac
    entry, _ = tb.cores[0].routing.lookup("00:00:00:00:00:00", mac_b)
    link = tb.cores[0].links[entry.dest_name]
    assert link.dst_ip == tb.hosts[1].ip


def test_adaptation_ignores_small_flows():
    tb = waypoint_overlay()
    engine = AdaptationEngine(tb.sim, tb.cores, tb.controls, min_flow_bytes=10**9)
    a, b, _ = tb.endpoints
    run_ping(a, b, count=3)
    assert engine.adapt() == 0


def test_adaptation_is_idempotent():
    tb = waypoint_overlay()
    engine = AdaptationEngine(tb.sim, tb.cores, tb.controls, min_flow_bytes=100)
    a, b, _ = tb.endpoints
    run_ping(a, b, count=10)
    engine.adapt()
    assert engine.adapt() == 0  # second pass finds nothing to change


# --- migration ----------------------------------------------------------------------

def test_migration_preserves_connectivity():
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    sim = tb.sim
    a, b, c = tb.endpoints
    before = run_ping(a, b, count=5)

    # Migrate b's VM from host 1 to host 2.
    result_holder = {}

    def do_migration():
        result = yield from migrate_vm(
            sim, tb.cores, b.vm, b.vm.virtio_nics[0], src_idx=1, dst_idx=2
        )
        result_holder["r"] = result

    p = sim.process(do_migration())
    sim.run(until=p)
    r = result_holder["r"]
    assert r.blackout_ns > 0
    assert r.finished_ns > r.started_ns

    # Same guest IP/MAC, new physical location, still reachable.
    after = run_ping(a, b, count=5)
    assert after.rtt_ns.n == 5
    mac_b = b.vm.virtio_nics[0].mac
    assert mac_b in tb.cores[2].if_by_mac
    assert mac_b not in tb.cores[1].if_by_mac


def test_migration_traffic_during_blackout_is_dropped_not_crashed():
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    sim = tb.sim
    a, b, _ = tb.endpoints

    def do_migration():
        # 50 GB/s migration link: ~20 ms pre-copy + ~1.7 ms blackout.
        yield from migrate_vm(
            sim, tb.cores, b.vm, b.vm.virtio_nics[0], src_idx=1, dst_idx=2,
            migration_bw_Bps=50e9,
        )

    def blaster():
        sock = a.stack.udp_socket()
        for _ in range(600):  # 30 ms of traffic: spans the whole migration
            yield from sock.sendto(Blob(1000), b.ip, 9)
            yield sim.timeout(50_000)

    b.stack.udp_socket(port=9)
    mig = sim.process(do_migration())
    sim.process(blaster())
    sim.run(until=mig)
    sim.run()
    # Some packets hit the blackout and were dropped by no-route (at the
    # old host, whose core no longer knows the MAC).
    assert sum(c.pkts_dropped_no_route for c in tb.cores) > 0
    # But traffic after the migration flowed to the new location.
    assert tb.cores[2].pkts_to_guest > 0


def test_migration_tcp_connection_survives():
    """A TCP transfer spanning the migration completes (retransmission
    covers the blackout)."""
    tb = build_vnetp(n_hosts=3, nic_params=NETEFFECT_10G)
    sim = tb.sim
    a, b, _ = tb.endpoints
    done = {}

    def server():
        listener = b.stack.tcp_listen(5001)
        conn = yield from listener.accept()
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 5001)
        yield from conn.send(10 * units.MB)   # ~11 ms at VNET/P-10G rate
        yield from conn.close()
        done["conn"] = conn

    def migration():
        yield sim.timeout(100_000)
        # ~5 ms pre-copy + ~0.4 ms blackout: lands mid-transfer.
        yield from migrate_vm(
            sim, tb.cores, b.vm, b.vm.virtio_nics[0], src_idx=1, dst_idx=2,
            migration_bw_Bps=200e9,
        )

    sim.process(server())
    sim.process(client())
    sim.process(migration())
    sim.run()
    assert done["got"] == 10 * units.MB


def test_migration_validates_arguments():
    tb = build_vnetp(n_hosts=2, nic_params=NETEFFECT_10G)
    sim = tb.sim
    b = tb.endpoints[1]

    def bad_same():
        yield from migrate_vm(sim, tb.cores, b.vm, b.vm.virtio_nics[0], 1, 1)

    p = sim.process(bad_same())
    with pytest.raises(ValueError, match="same"):
        sim.run(until=p)
