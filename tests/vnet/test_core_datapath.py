"""Integration tests of the VNET/P data path: modes, exits, delivery."""

import pytest

from repro.config import (
    BROADCOM_1G,
    NETEFFECT_10G,
    VnetMode,
    VnetTuning,
    default_tuning,
)
from repro.harness.testbed import build_vnetp
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_udp
from repro.proto.base import Blob
from repro import units


def test_guest_to_guest_udp_delivery():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    sim = tb.sim
    a, b = tb.endpoints
    got = []

    def rx():
        sock = b.stack.udp_socket(port=9999)
        payload, src, _ = yield from sock.recv()
        got.append((payload.size, src))

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(4096), b.ip, 9999)

    sim.process(rx())
    sim.process(tx())
    sim.run()
    assert got == [(4096, a.ip)]


def test_encapsulation_traverses_host_network():
    """The inter-VM path must actually cross the physical NICs, carrying
    the 42-byte encapsulation overhead."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    run_ping(a, b, data_size=56, count=3)
    h0, h1 = tb.hosts
    assert h0.nic.tx_frames >= 3
    assert h1.nic.tx_frames >= 3
    # Encapsulated ICMP echo: inner 14 (eth) + 20 (ip) + 8 (icmp) + 56 data
    # = 98 B; outer adds IP+UDP = 28 -> wire payload 126 B.
    assert tb.hosts[0].vnet_bridge.encap_tx >= 3
    assert tb.hosts[1].vnet_bridge.encap_rx >= 3


def test_ping_stays_in_guest_driven_mode():
    """Sparse traffic must not trip the adaptive controller into
    VMM-driven mode."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    run_ping(a, b, count=30, interval_ns=5 * units.MS)
    for core in tb.cores:
        for ctl in core.controllers.values():
            assert ctl.mode is VnetMode.GUEST_DRIVEN
        assert core.guest_driven_dispatches > 0
        assert core.vmm_driven_dispatches == 0


def test_streaming_switches_to_vmm_driven_mode():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    run_ttcp_udp(a, b, duration_ns=10 * units.MS)
    sender_core = tb.cores[0]
    ctl = next(iter(sender_core.controllers.values()))
    assert ctl.mode is VnetMode.VMM_DRIVEN
    assert ctl.switches >= 1
    assert sender_core.vmm_driven_dispatches > 0


def test_vmm_driven_mode_suppresses_kicks():
    """In VMM-driven mode the dispatcher polls, so the kick-exit count
    must be far below the packet count (the paper's central argument)."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    run_ttcp_udp(a, b, duration_ns=10 * units.MS)
    vmm = tb.hosts[0].vmm
    nic = tb.endpoints[0].vm.virtio_nics[0]
    assert nic.tx_packets > 1000
    assert vmm.exit_counts["virtio-kick"] < nic.tx_packets / 2


def test_static_guest_driven_mode_kicks_every_packet():
    tuning = default_tuning(mode=VnetMode.GUEST_DRIVEN)
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    a, b = tb.endpoints
    run_ttcp_udp(a, b, duration_ns=2 * units.MS)
    nic = tb.endpoints[0].vm.virtio_nics[0]
    assert nic.tx_kicks == nic.tx_packets


def test_static_modes_have_no_switches():
    for mode in (VnetMode.GUEST_DRIVEN, VnetMode.VMM_DRIVEN):
        tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=default_tuning(mode=mode))
        a, b = tb.endpoints
        run_ttcp_udp(a, b, duration_ns=3 * units.MS)
        for core in tb.cores:
            for ctl in core.controllers.values():
                assert ctl.mode is mode
                assert ctl.switches == 0


def test_interrupt_batching_under_load():
    """Under streaming load the guest must rarely pay the full halted-VCPU
    wakeup: back-to-back interrupts find it still polling."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    run_ttcp_udp(a, b, duration_ns=10 * units.MS)
    rx_nic = b.vm.virtio_nics[0]
    assert rx_nic.rx_packets > 1000
    assert rx_nic.full_irq_wakeups < rx_nic.rx_packets / 10


def test_no_route_packets_dropped_not_crashed():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    sim = tb.sim
    # Remove the route toward b's MAC on a's core.
    mac_b = b.vm.virtio_nics[0].mac
    tb.cores[0].routing.remove_matching(dst_mac=mac_b)

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(100), b.ip, 9999)

    p = sim.process(tx())
    sim.run(until=p)
    sim.run()
    assert tb.cores[0].pkts_dropped_no_route == 1


def test_broadcast_reaches_remote_guest():
    """A guest broadcast frame floods over every overlay link."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    sim = tb.sim
    a, b = tb.endpoints
    # Remove b's neighbor entry so a's stack broadcasts the frame.
    a.stack.neighbors.pop(b.ip)
    got = []

    def rx():
        sock = b.stack.udp_socket(port=1234)
        payload, _, _ = yield from sock.recv()
        got.append(payload.size)

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(64), b.ip, 1234)

    sim.process(rx())
    sim.process(tx())
    sim.run()
    assert got == [64]


def test_mtu_enforced_at_virtio_nic():
    tb = build_vnetp(nic_params=BROADCOM_1G)
    a, b = tb.endpoints
    nic = a.vm.virtio_nics[0]
    # 1500 - 42 encapsulation = 1458 guest MTU.
    assert nic.mtu == 1458


def test_guest_mtu_override_allows_fragmentation_path():
    """With an oversized guest MTU, encapsulated packets exceed the host
    MTU and the host stack fragments/reassembles them."""
    tb = build_vnetp(nic_params=BROADCOM_1G, guest_mtu=1500)
    a, b = tb.endpoints
    sim = tb.sim
    got = []

    def rx():
        sock = b.stack.udp_socket(port=7)
        payload, _, _ = yield from sock.recv()
        got.append(payload.size)

    def tx():
        sock = a.stack.udp_socket()
        # 1452 B payload -> guest IP packet 1480 -> inner frame 1494 ->
        # encapsulated outer IP packet 1522 > host MTU 1500.
        yield from sock.sendto(Blob(1452), b.ip, 7)

    sim.process(rx())
    sim.process(tx())
    sim.run()
    assert got == [1452]
    assert tb.hosts[1].stack._reasm.completed >= 1


def test_multiple_dispatchers_all_participate():
    tuning = default_tuning(n_dispatchers=3)
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    a, b = tb.endpoints
    run_ttcp_udp(a, b, duration_ns=5 * units.MS)
    assert tb.cores[1].pkts_to_guest > 100


def test_core_stats_reflect_traffic():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    a, b = tb.endpoints
    run_ping(a, b, count=5)
    stats = tb.cores[0].stats()
    assert stats["pkts_from_guest"] == 5
    assert stats["pkts_to_guest"] == 5      # the replies
    assert stats["pkts_to_bridge"] == 5
    assert stats["dropped_no_route"] == 0
    assert stats["links"] == ["to1"]
    assert stats["interfaces"] == ["if0"]
    assert stats["modes"] == {"if0": "guest-driven"}
    assert 0.0 <= stats["routing_cache_hit_rate"] <= 1.0
