"""Unit tests for the adaptive mode controller and yield strategies."""

import pytest

from repro.config import (
    NETEFFECT_10G,
    VnetMode,
    VnetTuning,
    YieldStrategy,
    default_host,
    default_tuning,
)
from repro.harness.testbed import build_vnetp
from repro.host import Host
from repro.palacios import PalaciosVMM
from repro.sim import Simulator
from repro.vnet.dispatcher import ModeController, YieldState, wake_penalty
from repro import units


def make_controller(tuning):
    sim = Simulator()
    host = Host(sim, default_host(), NETEFFECT_10G, ip="10.0.0.1")
    vmm = PalaciosVMM(sim, host)
    vm = vmm.create_vm("vm", guest_ip="172.16.0.1")
    nic = vm.attach_virtio_nic(mac="5a:00:00:00:00:01")
    return sim, nic, ModeController(sim, nic, tuning)


def test_static_mode_never_switches():
    sim, nic, ctl = make_controller(default_tuning(mode=VnetMode.VMM_DRIVEN))
    assert ctl.mode is VnetMode.VMM_DRIVEN
    for _ in range(100_000 // 100):
        ctl.note_packet(100)
    assert ctl.switches == 0


def test_adaptive_starts_guest_driven_with_kicks_enabled():
    sim, nic, ctl = make_controller(default_tuning(mode=VnetMode.ADAPTIVE))
    assert ctl.mode is VnetMode.GUEST_DRIVEN
    assert nic.suppress_kicks is False


def test_adaptive_switches_up_at_high_rate():
    tuning = default_tuning(mode=VnetMode.ADAPTIVE)
    sim, nic, ctl = make_controller(tuning)

    def traffic():
        # 10^5 packets/s >> alpha_u = 10^4.
        for _ in range(1200):
            ctl.note_packet()
            yield sim.timeout(10_000)  # 10 us apart

    p = sim.process(traffic())
    sim.run(until=p)
    assert ctl.mode is VnetMode.VMM_DRIVEN
    assert nic.suppress_kicks is True


def test_adaptive_switches_back_at_low_rate():
    tuning = default_tuning(mode=VnetMode.ADAPTIVE)
    sim, nic, ctl = make_controller(tuning)

    def burst_then_trickle():
        for _ in range(1200):
            ctl.note_packet()
            yield sim.timeout(10_000)
        # Now ~100 packets/s < alpha_l = 10^3.
        for _ in range(10):
            ctl.note_packet()
            yield sim.timeout(10_000_000)  # 10 ms apart

    p = sim.process(burst_then_trickle())
    sim.run(until=p)
    assert ctl.mode is VnetMode.GUEST_DRIVEN
    assert ctl.switches >= 2


def test_hysteresis_between_bounds_holds_mode():
    """Rates between alpha_l and alpha_u must not cause flapping."""
    tuning = default_tuning(mode=VnetMode.ADAPTIVE)
    sim, nic, ctl = make_controller(tuning)

    def mid_rate():
        # ~3000 packets/s: between alpha_l (10^3) and alpha_u (10^4).
        for _ in range(300):
            ctl.note_packet()
            yield sim.timeout(333_000)

    p = sim.process(mid_rate())
    sim.run(until=p)
    assert ctl.mode is VnetMode.GUEST_DRIVEN  # started there, stays
    assert ctl.switches == 0


def test_wake_penalty_immediate_zero():
    tuning = default_tuning(yield_strategy=YieldStrategy.IMMEDIATE)
    assert wake_penalty(YieldStrategy.IMMEDIATE, tuning, was_blocked=True) == 0


def test_wake_penalty_timed_half_quantum():
    tuning = default_tuning(yield_strategy=YieldStrategy.TIMED)
    assert (
        wake_penalty(YieldStrategy.TIMED, tuning, was_blocked=True)
        == tuning.t_sleep_ns // 2
    )


def test_wake_penalty_adaptive_threshold():
    tuning = default_tuning(yield_strategy=YieldStrategy.ADAPTIVE)
    recently = wake_penalty(
        YieldStrategy.ADAPTIVE, tuning, was_blocked=True, idle_ns=tuning.t_nowork_ns // 2
    )
    long_idle = wake_penalty(
        YieldStrategy.ADAPTIVE, tuning, was_blocked=True, idle_ns=tuning.t_nowork_ns * 2
    )
    assert recently == 0
    assert long_idle == tuning.t_sleep_ns // 2


def test_yield_state_adds_base_wakeup():
    sim = Simulator()
    tuning = default_tuning(yield_strategy=YieldStrategy.IMMEDIATE)
    ystate = YieldState(sim, tuning, base_wakeup_ns=7_000)
    assert ystate.penalty(was_blocked=True) == 7_000
    assert ystate.penalty(was_blocked=False) == 0
