"""Two tenants' overlays sharing the same physical hosts.

The VNET model gives each *user* a private virtual LAN.  Two VNET/P
cores (one per tenant) coexist on each host, with bridges on different
UDP ports; tenants' guests can reach their own peers but are invisible
to each other — even with overlapping guest IP space, as real
multi-tenant clouds require.
"""

import pytest

from repro.config import NETEFFECT_10G, default_host
from repro.host import Host
from repro.hw import Link
from repro.palacios import PalaciosVMM
from repro.proto.base import Blob
from repro.proto.ethernet import mac_addr
from repro.sim import Simulator
from repro.vnet.bridge import VnetBridge
from repro.vnet.core import VnetCore
from repro.vnet.overlay import DestType, InterfaceSpec, LinkProto, LinkSpec, RouteEntry


TENANT_PORTS = {"red": 6100, "blue": 6200}


def build_two_tenants():
    """2 hosts, 2 tenants, one VM per (host, tenant).

    Both tenants deliberately use the SAME guest IP addresses
    (172.20.0.1/2): isolation must come from the overlay, not addressing.
    """
    sim = Simulator()
    hosts = [
        Host(sim, default_host(f"h{i}"), NETEFFECT_10G, ip=f"10.0.0.{i + 1}", name=f"h{i}")
        for i in range(2)
    ]
    Link(sim, hosts[0].nic, hosts[1].nic)
    hosts[0].add_neighbor(hosts[1])
    hosts[1].add_neighbor(hosts[0])
    vmms = [PalaciosVMM(sim, h) for h in hosts]

    tenants = {}
    for t_idx, tenant in enumerate(("red", "blue")):
        endpoints = []
        cores = []
        macs = [mac_addr(100 * (t_idx + 1) + i, prefix=0x5E) for i in range(2)]
        for i, host in enumerate(hosts):
            vm = vmms[i].create_vm(f"{tenant}{i}", guest_ip=f"172.20.0.{i + 1}")
            nic = vm.attach_virtio_nic(mac=macs[i], mtu=8958)
            core = VnetCore(sim, host)
            core.register_interface(InterfaceSpec(name="if0", mac=macs[i]), nic)
            VnetBridge(sim, host, core, port=TENANT_PORTS[tenant])
            j = 1 - i
            core.add_link(
                LinkSpec(
                    name="peer",
                    proto=LinkProto.UDP,
                    dst_ip=hosts[j].ip,
                    dst_port=TENANT_PORTS[tenant],
                )
            )
            core.add_route(RouteEntry("any", macs[j], DestType.LINK, "peer"))
            core.add_route(RouteEntry("any", macs[i], DestType.INTERFACE, "if0"))
            endpoints.append(vm)
            cores.append(core)
        for i, vm in enumerate(endpoints):
            vm.stack.add_neighbor(endpoints[1 - i].guest_ip, macs[1 - i])
        tenants[tenant] = {"vms": endpoints, "cores": cores, "macs": macs}
    return sim, hosts, tenants


def test_each_tenant_communicates_privately():
    sim, hosts, tenants = build_two_tenants()
    got = {}

    def rx(tenant, vm):
        sock = vm.stack.udp_socket(port=9)
        payload, src, _ = yield from sock.recv()
        got[tenant] = (payload.size, src)

    def tx(vm, dst_ip, size):
        sock = vm.stack.udp_socket()
        yield from sock.sendto(Blob(size), dst_ip, 9)

    for tenant, size in (("red", 111), ("blue", 222)):
        vms = tenants[tenant]["vms"]
        sim.process(rx(tenant, vms[1]))
        sim.process(tx(vms[0], vms[1].guest_ip, size))
    sim.run()
    # Same destination IP, different overlays: each tenant got its own.
    assert got["red"] == (111, "172.20.0.1")
    assert got["blue"] == (222, "172.20.0.1")


def test_cross_tenant_traffic_cannot_leak():
    sim, hosts, tenants = build_two_tenants()
    red, blue = tenants["red"], tenants["blue"]
    leaked = []

    def blue_listener(vm):
        sock = vm.stack.udp_socket(port=9)
        payload, src, _ = yield from sock.recv()
        leaked.append(payload)

    # Red's guest addresses a frame directly at BLUE's MAC (a malicious
    # or misconfigured guest).  Red's core has no route for it.
    def red_attacker(vm):
        vm.stack.add_neighbor("172.20.0.99", blue["macs"][1])
        sock = vm.stack.udp_socket()
        yield from sock.sendto(Blob(666), "172.20.0.99", 9)

    sim.process(blue_listener(blue["vms"][1]))
    p = sim.process(red_attacker(red["vms"][0]))
    sim.run(until=p)
    sim.run()
    assert leaked == []
    assert red["cores"][0].pkts_dropped_no_route == 1


def test_tenant_bridges_share_the_wire():
    """Both overlays ride the same physical NICs, on different UDP ports."""
    sim, hosts, tenants = build_two_tenants()

    def tx(vm, dst_ip):
        sock = vm.stack.udp_socket()
        yield from sock.sendto(Blob(1000), dst_ip, 99)

    for tenant in ("red", "blue"):
        vms = tenants[tenant]["vms"]
        vms[1].stack.udp_socket(port=99)
        sim.process(tx(vms[0], vms[1].guest_ip))
    sim.run()
    assert hosts[0].nic.tx_frames == 2  # one encapsulated frame per tenant
