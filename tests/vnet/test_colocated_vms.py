"""Tests for co-located VMs: the interface-to-interface fast path."""

from repro import units
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_tcp
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp
from repro.proto.base import Blob


def test_colocated_guests_communicate_without_the_wire():
    tb = build_vnetp(n_hosts=1, vms_per_host=2, nic_params=NETEFFECT_10G)
    sim = tb.sim
    a, b = tb.endpoints
    assert a.host is b.host
    got = []

    def rx():
        sock = b.stack.udp_socket(port=7)
        payload, src, _ = yield from sock.recv()
        got.append((payload.size, src))

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(900), b.ip, 7)

    sim.process(rx())
    sim.process(tx())
    sim.run()
    assert got == [(900, a.ip)]
    # Nothing crossed the physical NIC or the bridge.
    assert tb.hosts[0].nic.tx_frames == 0
    assert tb.hosts[0].vnet_bridge.encap_tx == 0
    assert tb.cores[0].pkts_to_guest >= 1


def test_colocated_latency_beats_cross_host():
    local = build_vnetp(n_hosts=1, vms_per_host=2, nic_params=NETEFFECT_10G)
    r_local = run_ping(local.endpoints[0], local.endpoints[1], count=10)
    remote = build_vnetp(n_hosts=2, nic_params=NETEFFECT_10G)
    r_remote = run_ping(remote.endpoints[0], remote.endpoints[1], count=10)
    assert r_local.avg_rtt_us < r_remote.avg_rtt_us * 0.7


def test_mixed_local_and_remote_routing():
    """4 VMs on 2 hosts: local pairs short-circuit, remote pairs encapsulate."""
    tb = build_vnetp(n_hosts=2, vms_per_host=2, nic_params=NETEFFECT_10G)
    a0, a1, b0, b1 = tb.endpoints  # host-major order
    run_ping(a0, a1, count=3)      # co-located
    encap_before = tb.hosts[0].vnet_bridge.encap_tx
    assert encap_before == 0
    run_ping(a0, b0, count=3)      # cross-host
    assert tb.hosts[0].vnet_bridge.encap_tx >= 3


def test_colocated_tcp_throughput_exceeds_wire_rate():
    """The memory-to-memory path is not limited by the 10G wire."""
    tb = build_vnetp(n_hosts=1, vms_per_host=2, nic_params=NETEFFECT_10G)
    r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=20 * units.MB)
    assert r.gbps > 5.0
