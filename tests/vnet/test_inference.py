"""Tests for VTTIF-style topology inference from overlay traffic."""

import numpy as np
import pytest

from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp
from repro.proto.base import Blob
from repro.vnet.inference import (
    InferredTopology,
    Topology,
    aggregate_matrix,
    infer_topology,
)
from repro.vnet.monitor import TrafficMonitor


def build_monitored(n_hosts):
    tb = build_vnetp(n_hosts=n_hosts, nic_params=NETEFFECT_10G)
    monitors = [TrafficMonitor(tb.sim, core) for core in tb.cores]
    return tb, monitors


def run_pattern(tb, pattern, nbytes=20_000, rounds=3):
    """Drive UDP traffic between endpoint indices given as (src, dst) or
    (src, dst, nbytes, rounds) tuples."""
    sim = tb.sim
    for i, ep in enumerate(tb.endpoints):
        if 7000 + i not in ep.stack._udp_socks:
            ep.stack.udp_socket(port=7000 + i)

    def tx(src, dst, size, n):
        sock = src.stack.udp_socket()
        for _ in range(n):
            yield from sock.sendto(Blob(size), dst.ip, 7000 + tb.endpoints.index(dst))

    procs = []
    for entry in pattern:
        s, d = entry[0], entry[1]
        size = entry[2] if len(entry) > 2 else nbytes
        n = entry[3] if len(entry) > 3 else rounds
        procs.append(sim.process(tx(tb.endpoints[s], tb.endpoints[d], size, n)))
    sim.run(until=sim.all_of(procs))
    sim.run()


def test_no_traffic_is_none():
    tb, monitors = build_monitored(2)
    result = infer_topology(monitors)
    assert result.topology is Topology.NONE


def test_single_pair():
    tb, monitors = build_monitored(3)
    run_pattern(tb, [(0, 1)])
    result = infer_topology(monitors)
    assert result.topology is Topology.PAIR


def test_ring_pattern():
    tb, monitors = build_monitored(5)
    n = 5
    run_pattern(tb, [(i, (i + 1) % n) for i in range(n)])
    result = infer_topology(monitors)
    assert result.topology is Topology.RING


def test_star_pattern():
    tb, monitors = build_monitored(5)
    run_pattern(tb, [(0, j) for j in range(1, 5)] + [(j, 0) for j in range(1, 5)])
    result = infer_topology(monitors)
    assert result.topology is Topology.STAR


def test_all_to_all_pattern():
    tb, monitors = build_monitored(4)
    pattern = [(i, j) for i in range(4) for j in range(4) if i != j]
    run_pattern(tb, pattern)
    result = infer_topology(monitors)
    assert result.topology is Topology.ALL_TO_ALL
    assert result.density == pytest.approx(1.0)


def test_noise_thresholding():
    """Tiny control flows must not turn a pair into something denser."""
    tb, monitors = build_monitored(3)
    run_pattern(
        tb,
        [(0, 1, 50_000, 5), (0, 2, 60, 1), (2, 1, 60, 1)],  # data + noise
    )
    result = infer_topology(monitors)
    assert result.topology is Topology.PAIR


def test_aggregate_matrix_normalised():
    tb, monitors = build_monitored(3)
    run_pattern(tb, [(0, 1), (1, 2)])
    nodes, matrix = aggregate_matrix(monitors)
    assert matrix.max() == pytest.approx(1.0)
    assert matrix.shape == (len(nodes), len(nodes))


def test_describe_is_informative():
    tb, monitors = build_monitored(3)
    run_pattern(tb, [(0, 1)])
    text = infer_topology(monitors).describe()
    assert "pair" in text
