"""Tests for the MPI layer: p2p, matching, collectives, both transports."""

import pytest

from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_native, build_vnetp
from repro.mpi import ANY_SOURCE, FlowModel, FlowTransport, MPIWorld, SocketTransport
from repro.sim import Simulator
from repro import units


def flow_world(size, ranks_per_node=1, alpha=20_000, beta=1.0e9):
    sim = Simulator()
    n_nodes = (size + ranks_per_node - 1) // ranks_per_node
    transport = FlowTransport(
        sim,
        n_nodes=n_nodes,
        model=FlowModel("test", alpha_ns=alpha, beta_Bps=beta, link_bps=10e9),
        ranks_per_node=ranks_per_node,
    )
    return MPIWorld(sim, transport, size)


def socket_world(size, build=build_native):
    tb = build(n_hosts=2, nic_params=NETEFFECT_10G)
    transport = SocketTransport(tb.endpoints, rank_map=[r % 2 for r in range(size)])
    return MPIWorld(tb.sim, transport, size)


# --- point to point ------------------------------------------------------------

def test_send_recv_flow():
    world = flow_world(2)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, 1000, tag=5)
            return "sent"
        msg = yield from comm.recv(0, 5)
        return msg.nbytes

    results = world.run(program)
    assert results == ["sent", 1000]


def test_send_recv_socket_native():
    world = socket_world(2)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, 4096)
        else:
            msg = yield from comm.recv(0)
            return msg.nbytes

    assert world.run(program)[1] == 4096


def test_send_recv_socket_vnetp():
    world = socket_world(2, build=build_vnetp)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, 4096)
        else:
            msg = yield from comm.recv(0)
            return msg.nbytes

    assert world.run(program)[1] == 4096


def test_tag_matching_out_of_order():
    world = flow_world(2)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, 10, tag=1)
            yield from comm.send(1, 20, tag=2)
        else:
            # Receive tag 2 first even though tag 1 arrives first.
            m2 = yield from comm.recv(0, tag=2)
            m1 = yield from comm.recv(0, tag=1)
            return (m2.nbytes, m1.nbytes)

    assert world.run(program)[1] == (20, 10)


def test_any_source_matches_first_arrival():
    world = flow_world(3)

    def program(comm):
        if comm.rank == 2:
            msgs = []
            for _ in range(2):
                msg = yield from comm.recv(ANY_SOURCE)
                msgs.append(msg.src)
            return sorted(msgs)
        yield from comm.send(2, 100)

    assert world.run(program)[2] == [0, 1]


def test_isend_irecv_waitall():
    world = flow_world(2)

    def program(comm):
        if comm.rank == 0:
            reqs = [comm.isend(1, 100, tag=i) for i in range(4)]
            yield from comm.waitall(reqs)
        else:
            reqs = [comm.irecv(0, tag=i) for i in range(4)]
            msgs = yield from comm.waitall(reqs)
            return [m.nbytes for m in msgs]

    assert world.run(program)[1] == [100] * 4


def test_sendrecv_bidirectional():
    world = flow_world(2)

    def program(comm):
        other = 1 - comm.rank
        msg = yield from comm.sendrecv(other, 500, other)
        return msg.nbytes

    assert world.run(program) == [500, 500]


def test_send_to_invalid_rank_rejected():
    world = flow_world(2)

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(7, 10)

    with pytest.raises(ValueError, match="invalid rank"):
        world.run(program)


def test_intra_node_messages_skip_network():
    world = flow_world(4, ranks_per_node=2)
    transport = world.transport

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, 1000)  # same node
        elif comm.rank == 1:
            yield from comm.recv(0)

    world.run(program)
    # Nothing should have held the tx engines.
    assert all(r.in_use == 0 for r in transport._tx)


# --- collectives (run on several sizes incl. non powers of two) -----------------

@pytest.mark.parametrize("size", [2, 3, 4, 5, 8])
def test_barrier_synchronises(size):
    world = flow_world(size)
    arrivals = {}

    def program(comm):
        # Stagger arrival times.
        yield comm.sim.timeout(comm.rank * 50_000)
        yield from comm.barrier()
        arrivals[comm.rank] = comm.sim.now

    world.run(program)
    # Nobody can leave the barrier before the last rank arrived.
    assert min(arrivals.values()) >= (size - 1) * 50_000


@pytest.mark.parametrize("size", [2, 3, 4, 7, 8])
def test_bcast_reaches_all(size):
    world = flow_world(size)
    got = []

    def program(comm):
        yield from comm.bcast(4096, root=0)
        got.append(comm.rank)

    world.run(program)
    assert sorted(got) == list(range(size))


@pytest.mark.parametrize("size", [2, 3, 4, 6, 8])
def test_allreduce_completes_all_ranks(size):
    world = flow_world(size)
    done = []

    def program(comm):
        yield from comm.allreduce(8192)
        done.append(comm.rank)

    world.run(program)
    assert len(done) == size


@pytest.mark.parametrize("size", [2, 4, 5, 8])
def test_alltoall_and_allgather_complete(size):
    world = flow_world(size)
    done = []

    def program(comm):
        yield from comm.alltoall(1024)
        yield from comm.allgather(512)
        done.append(comm.rank)

    world.run(program)
    assert len(done) == size


@pytest.mark.parametrize("size", [3, 4, 8])
def test_reduce_completes(size):
    world = flow_world(size)
    done = []

    def program(comm):
        yield from comm.reduce(2048, root=0)
        done.append(comm.rank)

    world.run(program)
    assert len(done) == size


def test_back_to_back_collectives_do_not_cross_match():
    world = flow_world(4)

    def program(comm):
        for _ in range(5):
            yield from comm.barrier()
            yield from comm.allreduce(64)
        return comm.sim.now

    results = world.run(program)
    assert len(results) == 4


# --- flow model timing ------------------------------------------------------------

def test_flow_one_way_time_matches_alpha_beta():
    alpha, beta = 30_000, 1.0e9
    world = flow_world(2, alpha=alpha, beta=beta)
    nbytes = 1_000_000
    times = {}

    def program(comm):
        if comm.rank == 0:
            yield from comm.send(1, nbytes)
        else:
            yield from comm.recv(0)
            times["arrival"] = comm.sim.now

    world.run(program)
    # alpha + size/beta (1 ns/B) + the two MPI user-buffer copies.
    copy = 2 * int(nbytes * 1e9 / world.params.copy_bw_Bps)
    expected = alpha + nbytes + copy
    assert expected * 0.95 < times["arrival"] < expected * 1.1


def test_flow_contention_halves_per_flow_bandwidth():
    """Two senders into one receiver node serialize on its rx engine."""
    world = flow_world(3, alpha=10_000, beta=1.0e9)
    nbytes = 2_000_000
    finish = {}

    def program(comm):
        if comm.rank in (0, 1):
            yield from comm.send(2, nbytes)
        else:
            for _ in range(2):
                yield from comm.recv(ANY_SOURCE)
            finish["t"] = comm.sim.now

    world.run(program)
    # Both messages must pass the rx engine back-to-back: >= 2 x occupancy.
    assert finish["t"] >= 2 * nbytes  # 1 ns/byte occupancy each


@pytest.mark.parametrize("size", [2, 3, 4, 8])
def test_gather_scatter_complete(size):
    world = flow_world(size)
    done = []

    def program(comm):
        yield from comm.scatter(1024, root=0)
        yield from comm.gather(1024, root=0)
        done.append(comm.rank)

    world.run(program)
    assert len(done) == size


@pytest.mark.parametrize("size", [2, 3, 4, 8])
def test_reduce_scatter_and_scan_complete(size):
    world = flow_world(size)
    done = []

    def program(comm):
        yield from comm.reduce_scatter(2048)
        yield from comm.scan(64)
        done.append(comm.rank)

    world.run(program)
    assert len(done) == size


def test_scan_dependency_chain_orders_completion():
    """The prefix scan's chain means the last rank cannot finish before
    upstream ranks have passed their partials along."""
    world = flow_world(6, alpha=50_000)
    finish = {}

    def program(comm):
        yield from comm.scan(4096)
        finish[comm.rank] = comm.sim.now

    world.run(program)
    assert finish[5] > finish[0]
