"""Property tests: collectives complete for arbitrary sizes and counts."""

from hypothesis import given, settings, strategies as st

from repro.mpi import FlowModel, FlowTransport, MPIWorld
from repro.sim import Simulator


def make_world(size):
    sim = Simulator()
    transport = FlowTransport(
        sim,
        n_nodes=size,
        model=FlowModel("prop", alpha_ns=10_000, beta_Bps=1.0e9, link_bps=10e9),
    )
    return MPIWorld(sim, transport, size)


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=9),
    nbytes=st.integers(min_value=1, max_value=1_000_000),
    root=st.integers(min_value=0, max_value=8),
)
def test_property_rooted_collectives_complete(size, nbytes, root):
    root = root % size
    world = make_world(size)
    done = []

    def program(comm):
        yield from comm.bcast(nbytes, root=root)
        yield from comm.reduce(nbytes, root=root)
        yield from comm.gather(nbytes, root=root)
        yield from comm.scatter(nbytes, root=root)
        done.append(comm.rank)

    world.run(program)
    assert sorted(done) == list(range(size))


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=9),
    nbytes=st.integers(min_value=1, max_value=500_000),
)
def test_property_symmetric_collectives_complete(size, nbytes):
    world = make_world(size)
    done = []

    def program(comm):
        yield from comm.allreduce(nbytes)
        yield from comm.allgather(nbytes)
        yield from comm.alltoall(max(1, nbytes // size))
        yield from comm.reduce_scatter(nbytes)
        yield from comm.scan(nbytes)
        yield from comm.barrier()
        done.append(comm.rank)

    world.run(program)
    assert sorted(done) == list(range(size))


@settings(max_examples=12, deadline=None)
@given(
    size=st.integers(min_value=2, max_value=6),
    rounds=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=999),
)
def test_property_random_p2p_schedules_drain(size, rounds, seed):
    """Random all-pairs send/recv schedules always complete (no deadlock:
    isends are buffered)."""
    import random

    rng = random.Random(seed)
    world = make_world(size)
    # Same schedule at every rank: everyone knows who sends to whom per round.
    schedule = [
        [(rng.randrange(size), rng.randrange(size)) for _ in range(size)]
        for _ in range(rounds)
    ]
    done = []

    def program(comm):
        for rnd, pairs in enumerate(schedule):
            reqs = []
            for i, (src, dst) in enumerate(pairs):
                if src == dst:
                    continue
                tag = rnd * 100 + i
                if comm.rank == src:
                    reqs.append(comm.isend(dst, 1000, tag=tag))
                if comm.rank == dst:
                    reqs.append(comm.irecv(src, tag=tag))
            yield from comm.waitall(reqs)
        done.append(comm.rank)

    world.run(program)
    assert len(done) == size
