"""Tests for the HPCC and NAS skeleton applications."""

import pytest

from repro.apps.hpcc import flow_world, run_latency_bandwidth, run_mpifft, run_random_access
from repro.apps.npb import PAPER_FIG14, run_npb
from repro.apps.npb.common import NpbSpec, calibrate, measure_comm_ns
from repro.apps.npb import ep, lu, mg
from repro.mpi import FlowModel


def model(alpha=20_000, beta=1.2e9, virtual=False):
    return FlowModel("t", alpha_ns=alpha, beta_Bps=beta, link_bps=10e9, virtual=virtual)


def test_latency_bandwidth_fields_positive():
    m = model()
    r = run_latency_bandwidth(lambda: flow_world(m, 8), 8)
    assert r.pingpong_lat_us > 0
    assert r.pingpong_bw_MBps > 0
    assert r.natural_ring_bw_MBps > 0
    assert r.random_ring_bw_MBps > 0
    # Random rings cross nodes more often than the natural ordering,
    # so they cannot beat it.
    assert r.random_ring_bw_MBps <= r.natural_ring_bw_MBps * 1.05


def test_latbw_latency_grows_with_alpha():
    slow = run_latency_bandwidth(lambda: flow_world(model(alpha=80_000), 8), 8)
    fast = run_latency_bandwidth(lambda: flow_world(model(alpha=10_000), 8), 8)
    assert slow.pingpong_lat_us > fast.pingpong_lat_us * 2


def test_random_access_scales_with_procs():
    m = model()
    g8 = run_random_access(flow_world(m, 8))
    g16 = run_random_access(flow_world(m, 16))
    assert g16.gups > g8.gups
    assert g8.total_updates > 0


def test_mpifft_flops_definition():
    m = model()
    r = run_mpifft(flow_world(m, 8))
    assert r.gflops > 0
    # 5 N log2 N for N = 2^26.
    assert r.total_flops == pytest.approx(5 * (1 << 26) * 26)


def test_npb_ep_is_communication_free():
    spec = ep.spec("B", 16)
    comm = measure_comm_ns(spec, model())
    # A handful of tiny allreduces only: microseconds, not milliseconds.
    assert comm < 2_000_000


def test_npb_lu_is_latency_sensitive():
    spec = lu.spec("B", 16)
    low = measure_comm_ns(spec, model(alpha=10_000))
    high = measure_comm_ns(spec, model(alpha=60_000))
    assert high > low * 1.5


def test_npb_mg_mixes_sizes():
    spec = mg.spec("B", 16)
    comm = measure_comm_ns(spec, model())
    assert comm > 0


def test_npb_calibration_hits_reference():
    spec = mg.spec("B", 16)
    m = model()
    cal = calibrate(spec, m, paper_native_mops=9137.26)
    result = run_npb(spec, m, calibrated=cal)
    assert result.mops == pytest.approx(9137.26, rel=0.02)


def test_npb_calibration_prediction_changes_with_model():
    """The calibrated constants predict *lower* Mop/s on a slower net."""
    spec = mg.spec("B", 16)
    m_fast = model(alpha=20_000, beta=1.2e9)
    cal = calibrate(spec, m_fast, paper_native_mops=9137.26)
    slow = run_npb(spec, model(alpha=60_000, beta=0.12e9), calibrated=cal)
    assert slow.mops < 9137.26 * 0.9


def test_paper_table_is_complete():
    # 19 rows, each with 4 configurations.
    assert len(PAPER_FIG14) == 19
    for values in PAPER_FIG14.values():
        assert len(values) == 4
        assert all(v > 0 for v in values)
