"""Tests for the benchmark application programs themselves."""

import pytest

from repro import units
from repro.apps.imb import ImbPoint, run_pingpong, run_sendrecv
from repro.apps.ping import run_ping
from repro.apps.ttcp import run_ttcp_tcp, run_ttcp_udp
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_native


def pair():
    return build_native(nic_params=NETEFFECT_10G)


def test_ping_statistics_fields():
    tb = pair()
    r = run_ping(tb.endpoints[0], tb.endpoints[1], data_size=56, count=25)
    assert r.count == 25
    assert r.rtt_ns.n == 25
    assert r.min_rtt_us <= r.avg_rtt_us <= r.max_rtt_us


def test_ttcp_tcp_moves_all_bytes():
    tb = pair()
    r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=3 * units.MB)
    assert r.bytes_moved == 3 * units.MB
    assert r.proto == "tcp"
    assert r.rate_Bps > 0


def test_ttcp_udp_goodput_accounting():
    tb = pair()
    r = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=5 * units.MS)
    assert r.proto == "udp"
    assert r.bytes_moved > 0
    assert 0.0 <= r.loss_fraction < 0.05  # backpressured sender: no real loss
    assert r.mbps == pytest.approx(r.rate_Bps * 8 / 1e6)


def test_imb_point_metric_definitions():
    p = ImbPoint(msg_size=1_000_000, repetitions=10, total_ns=20_000_000)
    # one-way latency: total / reps / 2.
    assert p.one_way_latency_us == pytest.approx(1000.0)
    # bandwidth: size / one-way time = 1 MB / 1 ms = 1000 MB/s.
    assert p.bandwidth_MBps == pytest.approx(1000.0)
    bi = ImbPoint(msg_size=1_000_000, repetitions=10, total_ns=20_000_000, bidirectional=True)
    # bidirectional: both directions count, per full phase.
    assert bi.bandwidth_MBps == pytest.approx(1000.0)


def test_imb_pingpong_monotone_latency():
    tb = pair()
    small = run_pingpong(tb.endpoints[0], tb.endpoints[1], 64, repetitions=5)
    tb2 = pair()
    large = run_pingpong(tb2.endpoints[0], tb2.endpoints[1], 65536, repetitions=5)
    assert large.one_way_latency_us > small.one_way_latency_us


def test_imb_sendrecv_exceeds_oneway():
    tb = pair()
    one = run_pingpong(tb.endpoints[0], tb.endpoints[1], 1 << 20, repetitions=4)
    tb2 = pair()
    two = run_sendrecv(tb2.endpoints[0], tb2.endpoints[1], 1 << 20, repetitions=4)
    assert two.bandwidth_MBps > one.bandwidth_MBps
