"""Structural tests of the NPB skeletons' communication patterns.

A counting transport records every message; the per-benchmark message
counts and volumes must match the NPB 2.4 patterns the modules claim.
"""

import pytest

from repro.apps.npb import bt, cg, ep, ft, is_, lu, mg, sp
from repro.apps.npb.common import run_npb
from repro.mpi import MPIWorld
from repro.sim import Simulator


class CountingTransport:
    """Zero-cost transport that tallies messages and bytes."""

    def __init__(self, sim):
        self.sim = sim
        self.world = None
        self.messages = 0
        self.bytes = 0
        self.by_size: dict[int, int] = {}

    def attach(self, world):
        self.world = world

    def send(self, src, dst, nbytes, tag, meta):
        from repro.mpi.api import Message

        self.messages += 1
        self.bytes += nbytes
        self.by_size[nbytes] = self.by_size.get(nbytes, 0) + 1
        yield self.sim.timeout(1)
        self.world.mailbox(dst).deliver(
            Message(src=src, tag=tag, nbytes=nbytes, meta=meta, dst=dst)
        )


def count_comm(spec):
    sim = Simulator()
    transport = CountingTransport(sim)
    world = MPIWorld(sim, transport, spec.nprocs)
    finish = {}

    def program(comm):
        for it in range(spec.iterations):
            yield from spec.comm_fn(comm, it)
        finish[comm.rank] = True

    world.run(program)
    assert len(finish) == spec.nprocs
    return transport


def test_ep_sends_almost_nothing():
    t = count_comm(ep.spec("B", 16))
    # Two allreduces over 16 ranks: a few hundred tiny messages at most.
    assert t.bytes < 50_000


def test_ft_volume_matches_grid():
    p = 16
    spec = ft.spec("B", p)
    t = count_comm(spec)
    # 20 iterations x pairwise alltoall: p(p-1) messages of total/p^2 each
    # (the diagonal blocks stay local), plus checksum noise.
    per_pair = ft.TOTAL_BYTES["B"] // (p * p)
    expected = p * (p - 1) * per_pair * spec.iterations
    assert t.bytes == pytest.approx(expected, rel=0.02)


def test_is_volume_matches_keys():
    p = 8
    spec = is_.spec("B", p)
    t = count_comm(spec)
    per_pair = is_.TOTAL_KEYS["B"] * is_.KEY_BYTES // (p * p)
    expected = p * (p - 1) * per_pair * 10
    # Histogram allreduces add a little on top.
    assert expected < t.bytes < expected * 1.1


def test_lu_sends_many_small_messages():
    t = count_comm(lu.spec("B", 16))
    sizes = sorted(t.by_size)
    # The wavefront pencils dominate the message count and are small.
    pencil_msgs = sum(n for s, n in t.by_size.items() if s < 5_000)
    assert pencil_msgs > t.messages * 0.7
    # 250 iterations x 2 sweeps x 2q hops x 16 ranks of pencils at least.
    assert t.messages > 250 * 2 * 8


def test_mg_mixes_large_and_small():
    t = count_comm(mg.spec("B", 16))
    assert min(t.by_size) <= 256          # coarse levels
    assert max(t.by_size) > 100_000       # fine-level faces
    assert len(t.by_size) >= 6            # one size per level at least


def test_cg_message_count_scales_with_inner_iterations():
    t = count_comm(cg.spec("B", 4))
    # 75 outer x 25 inner x (1 exchange + allreduce traffic) x 4 ranks.
    assert t.messages >= 75 * 25 * 4


def test_sp_bt_share_structure_with_different_intensity():
    t_sp = count_comm(sp.spec("B", 16))
    t_bt = count_comm(bt.spec("B", 16))
    # Same per-iteration pattern; SP runs 2x the iterations.
    assert t_sp.messages == pytest.approx(2 * t_bt.messages, rel=0.01)


@pytest.mark.parametrize("mod", [ep, mg, cg, ft, is_, lu, sp, bt])
def test_all_specs_expose_both_classes(mod):
    for klass in ("B", "C"):
        spec = mod.spec(klass, 16)
        assert spec.iterations > 0
        assert 0 < spec.comm_fraction_ref < 1


@pytest.mark.parametrize("nprocs", [8, 9, 16])
def test_specs_run_on_paper_process_counts(nprocs):
    # Fig. 14 uses 8-, 9- and 16-process runs; every skeleton must cope.
    for mod in (ep, mg, cg, ft, is_, lu, sp, bt):
        count_comm(mod.spec("B", nprocs))
