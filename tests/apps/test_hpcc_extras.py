"""Tests for the PTRANS/HPL/STREAM/DGEMM HPCC components."""

import pytest

from repro.apps.hpcc import (
    flow_world,
    run_dgemm,
    run_hpl,
    run_ptrans,
    run_stream,
)
from repro.harness.calibrate import flow_model_for


@pytest.fixture(scope="module")
def models():
    return {
        "native": flow_model_for("native-10g"),
        "vnetp": flow_model_for("vnetp-10g"),
    }


def test_ptrans_is_bandwidth_bound(models):
    native = run_ptrans(flow_world(models["native"], 16))
    vnetp = run_ptrans(flow_world(models["vnetp"], 16))
    assert native.GBps > 0
    ratio = vnetp.GBps / native.GBps
    # Pure bulk transfer: degrades to roughly the bandwidth ratio.
    assert 0.5 < ratio < 0.95


def test_hpl_is_mostly_compute_bound(models):
    native = run_hpl(flow_world(models["native"], 16))
    vnetp = run_hpl(flow_world(models["vnetp"], 16))
    ratio = vnetp.gflops / native.gflops
    # HPL tolerates the overlay far better than PTRANS.
    assert ratio > 0.85
    assert native.gflops > 1.0


def test_stream_and_dgemm_run_at_native_speed(models):
    for runner in (run_stream, run_dgemm):
        native = runner(flow_world(models["native"], 8))
        vnetp = runner(flow_world(models["vnetp"], 8))
        n_metric = getattr(native, "triad_GBps_total", None) or native.gflops_total
        v_metric = getattr(vnetp, "triad_GBps_total", None) or vnetp.gflops_total
        assert v_metric == pytest.approx(n_metric, rel=0.02)


def test_stream_scales_linearly(models):
    s8 = run_stream(flow_world(models["native"], 8))
    s24 = run_stream(flow_world(models["native"], 24))
    assert s24.triad_GBps_total == pytest.approx(3 * s8.triad_GBps_total, rel=0.05)


def test_hpl_gflops_scale_with_procs(models):
    g8 = run_hpl(flow_world(models["native"], 8))
    g16 = run_hpl(flow_world(models["native"], 16))
    assert g16.gflops > g8.gflops * 1.5
