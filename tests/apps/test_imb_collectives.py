"""Tests for the IMB collective benchmarks."""

import pytest

from repro.apps.hpcc import flow_world
from repro.apps.imb_collectives import COLLECTIVES, run_collective
from repro.harness.calibrate import flow_model_for


@pytest.fixture(scope="module")
def models():
    return {
        "native": flow_model_for("native-10g"),
        "vnetp": flow_model_for("vnetp-10g"),
    }


@pytest.mark.parametrize("name", sorted(COLLECTIVES))
def test_every_collective_runs(models, name):
    point = run_collective(flow_world(models["native"], 8), name, msg_size=4096)
    assert point.avg_us > 0
    assert point.n_procs == 8


def test_unknown_collective_rejected(models):
    with pytest.raises(KeyError, match="unknown collective"):
        run_collective(flow_world(models["native"], 4), "Frobnicate")


def test_barrier_scales_logarithmically(models):
    # Both sizes span multiple nodes (4 ranks/node), so the comparison is
    # network-round counts: log2(16)/log2(8) = 4/3 rounds, far from the
    # 2x a linear barrier would cost.
    t8 = run_collective(flow_world(models["native"], 8), "Barrier").avg_us
    t16 = run_collective(flow_world(models["native"], 16), "Barrier").avg_us
    assert t16 < t8 * 1.9


def test_alltoall_grows_faster_than_bcast(models):
    size = 65536
    a2a_8 = run_collective(flow_world(models["native"], 8), "Alltoall", size).avg_us
    a2a_24 = run_collective(flow_world(models["native"], 24), "Alltoall", size).avg_us
    bc_8 = run_collective(flow_world(models["native"], 8), "Bcast", size).avg_us
    bc_24 = run_collective(flow_world(models["native"], 24), "Bcast", size).avg_us
    assert a2a_24 / a2a_8 > bc_24 / bc_8


def test_vnetp_slows_latency_bound_collectives(models):
    native = run_collective(flow_world(models["native"], 16), "Barrier").avg_us
    vnetp = run_collective(flow_world(models["vnetp"], 16), "Barrier").avg_us
    # Barriers are pure latency: the 2.5x alpha gap shows through.
    assert vnetp > native * 1.6


def test_exchange_beats_two_sequential_sendrecvs(models):
    """Exchange overlaps both directions; it must cost much less than
    2x a one-directional ring round."""
    ex = run_collective(flow_world(models["native"], 8), "Exchange", 65536).avg_us
    ag = run_collective(flow_world(models["native"], 8), "Allgather", 65536).avg_us
    # Allgather does p-1 sequential rounds; exchange is a single round.
    assert ex < ag / 2
