"""Unit tests for NIC, link, and switch models."""

import pytest

from repro.config import BROADCOM_1G, NETEFFECT_10G, NICParams
from repro.hw import Link, PhysicalNIC, Switch, SwitchParams
from repro.proto import Blob, EthernetFrame
from repro.sim import Simulator
from repro import units


def frame(src, dst, size):
    return EthernetFrame(src=src, dst=dst, payload=Blob(size - 14))


def test_nic_serialization_time_dominates_large_frames():
    sim = Simulator()
    a = PhysicalNIC(sim, NETEFFECT_10G, name="a")
    b = PhysicalNIC(sim, NETEFFECT_10G, name="b")
    Link(sim, a, b)
    arrivals = []
    b.rx_handler = lambda f: arrivals.append(sim.now)
    a.send(frame("m1", "m2", 9014))
    sim.run()
    assert len(arrivals) == 1
    # ~7.2 us serialization + ring + propagation + interrupt delay
    assert 7 * units.US < arrivals[0] < 30 * units.US


def test_nic_back_to_back_frames_pipeline():
    sim = Simulator()
    a = PhysicalNIC(sim, NETEFFECT_10G, name="a")
    b = PhysicalNIC(sim, NETEFFECT_10G, name="b")
    Link(sim, a, b)
    arrivals = []
    b.rx_handler = lambda f: arrivals.append(sim.now)
    for _ in range(10):
        assert a.send(frame("m1", "m2", 9014))
    sim.run()
    assert len(arrivals) == 10
    # Inter-arrival spacing equals per-frame serialization (+ring), not the
    # full path latency: the pipe is full.
    gaps = [t2 - t1 for t1, t2 in zip(arrivals, arrivals[1:])]
    expected = NETEFFECT_10G.serialize_ns(9014) + NETEFFECT_10G.tx_ring_ns
    assert all(g == expected for g in gaps), gaps


def test_nic_mtu_enforced():
    sim = Simulator()
    nic = PhysicalNIC(sim, BROADCOM_1G, name="a")
    with pytest.raises(ValueError, match="MTU"):
        nic.send(frame("m1", "m2", 1600 + 14))


def test_nic_txq_tail_drop():
    sim = Simulator()
    params = NICParams(name="tiny", rate_bps=1e9, max_mtu=1500, tx_queue_frames=2)
    a = PhysicalNIC(sim, params, name="a")
    b = PhysicalNIC(sim, params, name="b")
    Link(sim, a, b)
    b.rx_handler = lambda f: None
    results = [a.send(frame("m1", "m2", 1000)) for _ in range(5)]
    assert results.count(False) >= 1
    assert a.dropped_frames == results.count(False)
    sim.run()


def test_link_speed_mismatch_rejected():
    sim = Simulator()
    a = PhysicalNIC(sim, BROADCOM_1G, name="a")
    b = PhysicalNIC(sim, NETEFFECT_10G, name="b")
    with pytest.raises(ValueError, match="mismatch"):
        Link(sim, a, b)


def test_nic_double_attach_rejected():
    sim = Simulator()
    a = PhysicalNIC(sim, BROADCOM_1G, name="a")
    b = PhysicalNIC(sim, BROADCOM_1G, name="b")
    Link(sim, a, b)
    c = PhysicalNIC(sim, BROADCOM_1G, name="c")
    with pytest.raises(RuntimeError, match="already attached"):
        Link(sim, a, c)


def test_nic_byte_and_frame_counters():
    sim = Simulator()
    a = PhysicalNIC(sim, NETEFFECT_10G, name="a")
    b = PhysicalNIC(sim, NETEFFECT_10G, name="b")
    Link(sim, a, b)
    b.rx_handler = lambda f: None
    a.send(frame("m1", "m2", 514))
    a.send(frame("m1", "m2", 1014))
    sim.run()
    assert a.tx_frames == 2 and a.tx_bytes == 514 + 1014
    assert b.rx_frames == 2 and b.rx_bytes == 514 + 1014


# --- switch ------------------------------------------------------------------

def build_star(n, nic_params=NETEFFECT_10G):
    sim = Simulator()
    switch = Switch(sim, SwitchParams(port_rate_bps=nic_params.rate_bps))
    nics = [PhysicalNIC(sim, nic_params, name=f"n{i}") for i in range(n)]
    for nic in nics:
        switch.attach(nic)
    return sim, switch, nics


def test_switch_floods_unknown_then_forwards_learned():
    sim, switch, nics = build_star(3)
    rx = {i: [] for i in range(3)}
    for i, nic in enumerate(nics):
        nic.rx_handler = (lambda i: lambda f: rx[i].append(f))(i)

    # First frame from node0 to node1's (unknown) MAC floods to 1 and 2.
    nics[0].send(frame("mac0", "mac1", 500))
    sim.run()
    assert len(rx[1]) == 1 and len(rx[2]) == 1
    assert switch.flooded_frames == 1

    # node1 replies; switch has learned mac0 -> port0.
    nics[1].send(frame("mac1", "mac0", 500))
    sim.run()
    assert len(rx[0]) == 1
    assert len(rx[2]) == 1  # unchanged: no flood this time
    assert switch.forwarded_frames == 1


def test_switch_broadcast_goes_everywhere_except_ingress():
    sim, switch, nics = build_star(4)
    rx = {i: 0 for i in range(4)}
    for i, nic in enumerate(nics):
        def handler(f, i=i):
            rx[i] += 1
        nic.rx_handler = handler
    nics[2].send(frame("mac2", Switch.BROADCAST, 300))
    sim.run()
    assert rx == {0: 1, 1: 1, 2: 0, 3: 1}


def test_switch_converging_flows_share_egress_port():
    """Two senders to one receiver: egress serialization halves each flow."""
    sim, switch, nics = build_star(3)
    arrivals = []
    nics[2].rx_handler = lambda f: arrivals.append((sim.now, f.src))
    # Teach the switch where mac2 lives.
    nics[2].send(frame("mac2", Switch.BROADCAST, 100))
    sim.run()
    n = 20
    for _ in range(n):
        nics[0].send(frame("mac0", "mac2", 9014))
        nics[1].send(frame("mac1", "mac2", 9014))
    start = sim.now
    sim.run()
    arrivals = [a for a in arrivals if a[0] > start]
    assert len(arrivals) == 2 * n
    span = arrivals[-1][0] - arrivals[0][0]
    # 39 inter-arrivals at egress line rate ~ 7.2 us each.
    per_frame = units.tx_time_ns(9014 + 18, 10e9)
    assert span >= (2 * n - 1) * per_frame * 0.95


def test_switch_mixed_port_rates():
    """A 1G NIC on a 10G switch negotiates its port down to 1G."""
    sim = Simulator()
    switch = Switch(sim, SwitchParams(port_rate_bps=10e9))
    fast = PhysicalNIC(sim, NETEFFECT_10G, name="fast")
    slow = PhysicalNIC(sim, BROADCOM_1G, name="slow")
    switch.attach(fast)
    switch.attach(slow)
    arrivals = []
    slow.rx_handler = lambda f: arrivals.append(sim.now)
    fast.rx_handler = lambda f: None
    # Teach the switch where "mslow" lives.
    slow.send(frame("mslow", Switch.BROADCAST, 100))
    sim.run()
    start = sim.now
    for _ in range(10):
        fast.send(frame("mfast", "mslow", 1014))
    sim.run()
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    # Egress toward the slow NIC serializes at 1 Gbps: ~8.3 us per KB
    # frame, an order above the 10G rate.
    assert all(g > 7 * units.US for g in gaps), gaps
