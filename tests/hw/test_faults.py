"""Tests for the fault-injection wrappers."""

import pytest

from repro import units
from repro.apps.ttcp import run_ttcp_tcp
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_native, build_vnetp
from repro.hw.faults import LossyMedium, Partition
from repro.proto.base import Blob


def test_lossy_medium_drops_expected_fraction():
    tb = build_native(nic_params=NETEFFECT_10G)
    fault = LossyMedium(tb.hosts[0].nic, rate=0.2, seed=3)
    sim = tb.sim
    a, b = tb.endpoints

    def blast():
        sock = a.stack.udp_socket()
        for _ in range(500):
            yield from sock.sendto(Blob(100), b.ip, 9)

    b.stack.udp_socket(port=9)
    p = sim.process(blast())
    sim.run(until=p)
    sim.run()
    total = fault.dropped + fault.passed
    assert total == 500
    assert 0.12 < fault.dropped / total < 0.28


def test_lossy_medium_rejects_bad_rate():
    tb = build_native(nic_params=NETEFFECT_10G)
    with pytest.raises(ValueError):
        LossyMedium(tb.hosts[0].nic, rate=1.5)


def test_lossy_medium_remove_restores():
    tb = build_native(nic_params=NETEFFECT_10G)
    nic = tb.hosts[0].nic
    original = nic._medium
    fault = LossyMedium(nic, rate=1.0)
    fault.remove()
    assert nic._medium is original


def test_tcp_survives_loss_through_the_overlay():
    """VNET/P carries TCP over a lossy physical network: the guest's TCP
    recovers transparently."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    LossyMedium(tb.hosts[0].nic, rate=0.005, seed=11)
    r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=3 * units.MB)
    assert r.bytes_moved == 3 * units.MB


def test_partition_blackholes_and_heals():
    tb = build_native(nic_params=NETEFFECT_10G)
    part = Partition(tb.hosts[0].nic)
    sim = tb.sim
    a, b = tb.endpoints
    got = []

    def rx():
        sock = b.stack.udp_socket(port=9)
        while True:
            payload, _, _ = yield from sock.recv()
            got.append(sim.now)

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(100), b.ip, 9)   # delivered
        part.fail()
        yield from sock.sendto(Blob(100), b.ip, 9)   # blackholed
        part.heal()
        yield from sock.sendto(Blob(100), b.ip, 9)   # delivered

    sim.process(rx())
    p = sim.process(tx())
    sim.run(until=p)
    sim.run()
    assert len(got) == 2
    assert part.blackholed == 1


def test_partition_fail_for_window():
    tb = build_native(nic_params=NETEFFECT_10G)
    part = Partition(tb.hosts[0].nic)
    sim = tb.sim

    def windowed():
        yield from part.fail_for(sim, 1_000_000)

    p = sim.process(windowed())
    sim.run(until=sim.timeout(500_000))
    assert part.failed
    sim.run(until=p)
    assert not part.failed


def test_tcp_rides_out_a_partition():
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    part = Partition(tb.hosts[0].nic)
    sim = tb.sim
    a, b = tb.endpoints
    done = {}

    def server():
        listener = b.stack.tcp_listen(5001)
        conn = yield from listener.accept()
        done["got"] = yield from conn.drain()

    def client():
        conn = yield from a.stack.tcp_connect(b.ip, 5001)
        yield from conn.send(2 * units.MB)
        yield from conn.close()

    def chaos():
        yield sim.timeout(500_000)
        yield from part.fail_for(sim, 3_000_000)  # 3 ms outage

    sim.process(server())
    sim.process(client())
    sim.process(chaos())
    sim.run()
    assert done["got"] == 2 * units.MB
