"""Tests for the CPU core and memory-system models."""

import pytest

from repro.config import CPUParams, MemoryParams, XEON_X3430
from repro.hw import CPU, MemorySystem
from repro.sim import Simulator


def test_cpu_has_configured_cores():
    sim = Simulator()
    cpu = CPU(sim, XEON_X3430)
    assert len(cpu) == 4
    assert cpu.core(0).idle


def test_core_serializes_work():
    sim = Simulator()
    cpu = CPU(sim, CPUParams(cores=1))
    core = cpu.core(0)
    log = []

    def job(tag, dur):
        yield from core.execute(dur)
        log.append((sim.now, tag))

    sim.process(job("a", 100))
    sim.process(job("b", 100))
    sim.run()
    assert log == [(100, "a"), (200, "b")]
    assert core.busy_ns == 200


def test_cpu_utilization():
    sim = Simulator()
    cpu = CPU(sim, CPUParams(cores=2))

    def job(core):
        yield from core.execute(500)

    sim.process(job(cpu.core(0)))
    sim.run()
    assert cpu.utilization(500) == pytest.approx(0.5)
    assert cpu.utilization(0) == 0.0


def test_any_idle_core():
    sim = Simulator()
    cpu = CPU(sim, CPUParams(cores=2))
    assert cpu.any_idle_core() is cpu.core(0)


def test_cycles_ns_conversion():
    p = CPUParams(freq_hz=2.0e9)
    assert p.cycles_ns(2000) == 1000


def test_memory_copy_cost_model():
    p = MemoryParams(copy_bw_Bps=1e9, copy_setup_ns=100)
    assert p.copy_ns(1000) == 100 + 1000


def test_memory_copies_serialize():
    sim = Simulator()
    mem = MemorySystem(sim, MemoryParams(copy_bw_Bps=1e9, copy_setup_ns=0))
    done = []

    def copier(tag):
        yield from mem.copy(1000)
        done.append((sim.now, tag))

    sim.process(copier("a"))
    sim.process(copier("b"))
    sim.run()
    assert done == [(1000, "a"), (2000, "b")]
    assert mem.bytes_copied == 2000


def test_memory_copy_at_custom_bandwidth():
    sim = Simulator()
    mem = MemorySystem(sim, MemoryParams(copy_bw_Bps=6e9, copy_setup_ns=0))

    def copier():
        yield from mem.copy_at(1000, 0.5e9)

    p = sim.process(copier())
    sim.run(until=p)
    assert sim.now == 2000  # 1000 B at 0.5 GB/s
