"""The determinism linter passes on the tree and catches counterexamples."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "check_determinism", REPO / "tools" / "check_determinism.py"
)
check_determinism = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_determinism)


def test_tree_is_clean():
    assert check_determinism.check_tree(REPO) == []


COUNTEREXAMPLE = """\
import random
import time
import numpy as np


def stamp():
    return time.time()


def jitter():
    rng = np.random.default_rng()
    return rng.random() + random.random()
"""


def test_seeded_counterexample_fails():
    findings = check_determinism.check_source(COUNTEREXAMPLE, "evil.py")
    assert len(findings) == 3
    joined = "\n".join(findings)
    assert "[time.time]" in joined
    assert "[unseeded-default-rng]" in joined
    assert "[random-global]" in joined
    assert all(f.startswith("evil.py:") for f in findings)


def test_seeded_calls_are_fine():
    ok = """\
import random
import numpy as np

rng = np.random.default_rng(42)
r = random.Random(7)
random.seed(0)
"""
    assert check_determinism.check_source(ok, "fine.py") == []


def test_allowlist_respected():
    src = "import time\nt = time.time()\n"
    assert check_determinism.check_source(src, "src/repro/__main__.py") == []
    assert check_determinism.check_source(src, "src/repro/other.py") != []


def test_main_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert check_determinism.main([str(good)]) == 0
    assert check_determinism.main([str(bad)]) == 1
    cap = capsys.readouterr()
    assert "[time.time]" in cap.err
    assert "1 determinism problem(s)" in cap.err
