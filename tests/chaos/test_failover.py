"""End-to-end failover: kill a link mid-transfer, traffic resumes via
the alternate path, and routes fail back once the link heals."""

from repro.chaos import FaultSchedule
from repro.config import NETEFFECT_10G
from repro.harness.experiments.resilience import _partition_failover_point
from repro.harness.testbed import build_vnetp
from repro.obs.context import Observability
from repro.vnet.adaptation import AdaptationEngine
from repro.vnet.heartbeat import HeartbeatService
from repro.vnet.routing import DestType


def test_partition_failover_end_to_end():
    row = _partition_failover_point(
        horizon_ns=20_000_000,
        fail_at_ns=4_000_000,
        heal_at_ns=12_000_000,
        hb_interval_ns=250_000,
        failover_interval_ns=100_000,
        failback_backoff_ns=1_500_000,
        send_gap_ns=25_000,
        payload=1024,
    )
    # Detection happened, after the failure, within the phi horizon
    # (8 intervals) plus one failover sweep.
    assert 0.0 < row["detection_ms"] < 4.0
    # Traffic resumed on the detour: recovery follows detection.
    assert row["recovery_ms"] >= row["detection_ms"]
    assert row["recovery_ms"] < 5.0
    # Routes failed back after heal + backoff.
    assert 0.0 < row["failback_ms"] < 6.0
    # The detour actually carried packets through the waypoint host.
    assert row["waypoint_pkts"] > 0
    # Most of the stream survived an 8 ms partition in a 20 ms run.
    assert row["delivered_pct"] > 50.0


def test_failover_rewrites_and_restores_routes():
    """Watch the routing table itself across failover and failback."""
    tb = build_vnetp(nic_params=NETEFFECT_10G, n_hosts=3)
    sim = tb.sim
    horizon = 20_000_000
    engine = AdaptationEngine(sim, tb.cores, controls=tb.controls,
                              failback_backoff_ns=1_000_000)
    for core in tb.cores:
        HeartbeatService(sim, core, interval_ns=250_000,
                         until_ns=horizon).start()
    sim.process(engine.run_failover(interval_ns=100_000, until_ns=horizon))

    sched = FaultSchedule(sim, name="cut")
    sched.partition(tb.hosts[0].vnet_bridge.link_out("to1"),
                    start_ns=3_000_000, stop_ns=10_000_000)
    sched.partition(tb.hosts[1].vnet_bridge.link_out("to0"),
                    start_ns=3_000_000, stop_ns=10_000_000)
    sched.start()

    def on_link(core, link_name):
        return core.routing.routes_to(DestType.LINK, link_name)

    checks = []

    def scenario():
        yield sim.timeout(2_000_000)
        checks.append(("before", len(on_link(tb.cores[0], "to1"))))
        yield sim.timeout(6_000_000)  # t=8ms: failure detected + rerouted
        checks.append(("during", len(on_link(tb.cores[0], "to1"))))
        checks.append(("detour", len(on_link(tb.cores[0], "to2"))))
        yield sim.timeout(10_000_000)  # t=18ms: healed + failed back
        checks.append(("after", len(on_link(tb.cores[0], "to1"))))

    done = sim.process(scenario())
    sim.run(until=done)
    sim.run()
    state = dict(checks)
    assert state["before"] >= 1
    assert state["during"] == 0          # dead link drained of routes
    assert state["detour"] >= state["before"] + 1  # moved onto waypoint link
    assert state["after"] == state["before"]       # failback restored them
    assert engine.failed_links == {}
    snap = Observability.of(sim).metrics.snapshot("vnet.adaptation.")
    assert snap["vnet.adaptation.failovers"] >= 1
    assert snap["vnet.adaptation.failbacks"] >= 1
    descriptions = [a.description for a in engine.actions]
    assert any(d.startswith("failover:") for d in descriptions)
    assert any(d.startswith("failback:") for d in descriptions)


def test_failback_waits_out_the_backoff():
    """A healed link keeps its detour until it has stayed alive for the
    full backoff window — no premature failback."""
    tb = build_vnetp(nic_params=NETEFFECT_10G, n_hosts=3)
    sim = tb.sim
    horizon = 20_000_000
    engine = AdaptationEngine(sim, tb.cores, controls=tb.controls,
                              failback_backoff_ns=4_000_000)
    for core in tb.cores:
        HeartbeatService(sim, core, interval_ns=250_000,
                         until_ns=horizon).start()
    sim.process(engine.run_failover(interval_ns=100_000, until_ns=horizon))

    sched = FaultSchedule(sim, name="backoff")
    sched.partition(tb.hosts[0].vnet_bridge.link_out("to1"),
                    start_ns=3_000_000, stop_ns=6_000_000)
    sched.partition(tb.hosts[1].vnet_bridge.link_out("to0"),
                    start_ns=3_000_000, stop_ns=6_000_000)
    sched.start()

    probes = []

    def scenario():
        # t=8 ms: healed at 6 ms, so only ~2 ms of the 4 ms backoff has
        # elapsed — the detour must still be in place.
        yield sim.timeout(8_000_000)
        probes.append(("early", (0, "to1") in engine.failed_links))
        yield sim.timeout(19_000_000 - sim.now)
        probes.append(("end", (0, "to1") in engine.failed_links))

    done = sim.process(scenario())
    sim.run(until=done)
    sim.run()
    state = dict(probes)
    assert state["early"], "failback must not fire before backoff elapses"
    assert not state["end"], "after a quiet backoff the link fails back"
