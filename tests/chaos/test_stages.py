"""Unit tests for the chaos injector stages on bare pipeline ports."""

import numpy as np

import pytest

from repro.chaos import (
    DelayStage,
    DuplicateStage,
    GilbertElliottStage,
    LossStage,
    PartitionStage,
    ReorderStage,
    chain_on,
)
from repro.obs.context import Observability
from repro.sim import Simulator
from repro.sim.pipeline import Port


class Frame:
    __slots__ = ("size", "src", "dst", "id")

    def __init__(self, ident=0, size=100):
        self.size = size
        self.src = "a"
        self.dst = "b"
        self.id = ident


def _port_with_sink(sim):
    got = []
    port = Port(sim, "test.port")
    port.connect(lambda f: got.append(f) or True)
    return port, got


def test_loss_stage_seeded_fraction():
    sim = Simulator()
    port, got = _port_with_sink(sim)
    stage = LossStage(sim, rate=0.2, seed=3).install(port)
    for i in range(2000):
        port.push(Frame(i))
    assert stage.dropped + stage.passed == 2000
    assert 0.15 < stage.dropped / 2000 < 0.25
    assert len(got) == stage.passed


def test_loss_stage_same_seed_same_drops():
    def run(seed):
        sim = Simulator()
        port, got = _port_with_sink(sim)
        LossStage(sim, rate=0.3, seed=seed).install(port)
        for i in range(500):
            port.push(Frame(i))
        return [f.id for f in got]

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_gilbert_elliott_statistics():
    """Stationary loss ≈ p_gb/(p_gb+p_bg); mean burst length ≈ 1/p_bg."""
    sim = Simulator()
    port, got = _port_with_sink(sim)
    stage = GilbertElliottStage(sim, p_gb=0.01, p_bg=0.1, seed=5).install(port)
    n = 20000
    delivered = np.zeros(n, dtype=bool)
    for i in range(n):
        delivered[i] = port.push(Frame(i))
    loss = stage.dropped / n
    assert 0.05 < loss < 0.14  # stationary expectation ~0.091
    # Mean length of consecutive-drop runs ~ 1/p_bg = 10 frames.
    runs = []
    run = 0
    for ok in delivered:
        if not ok:
            run += 1
        elif run:
            runs.append(run)
            run = 0
    assert runs, "expected burst losses"
    mean_burst = sum(runs) / len(runs)
    assert 5 < mean_burst < 20
    assert stage.counter("burst_dropped").value > 0


def test_partition_stage_fail_heal():
    sim = Simulator()
    port, got = _port_with_sink(sim)
    stage = PartitionStage(sim).install(port)
    assert port.push(Frame(1))
    stage.fail()
    assert not port.push(Frame(2))
    stage.heal()
    assert port.push(Frame(3))
    assert stage.blackholed == 1
    assert [f.id for f in got] == [1, 3]


def test_reorder_stage_overtaking():
    """A held frame is overtaken by later ones within the delay window."""
    sim = Simulator()
    port, got = _port_with_sink(sim)
    # prob=1: every frame held for 5 us.
    ReorderStage(sim, prob=1.0, delay_ns=5_000, seed=0).install(port)

    def feed():
        for i in range(3):
            port.push(Frame(i))
            yield sim.timeout(1_000)

    sim.process(feed())
    sim.run()
    assert [f.id for f in got] == [0, 1, 2]  # all delivered, in order

    # Mixed: only the first frame held; the next two overtake it.
    sim2 = Simulator()
    port2, got2 = _port_with_sink(sim2)
    stage2 = ReorderStage(sim2, prob=0.5, delay_ns=50_000, seed=1).install(port2)

    def feed2():
        for i in range(20):
            port2.push(Frame(i))
            yield sim2.timeout(1_000)

    sim2.process(feed2())
    sim2.run()
    ids = [f.id for f in got2]
    assert sorted(ids) == list(range(20))  # nothing lost
    assert ids != list(range(20))  # but not in send order
    assert stage2.reordered + stage2.passed == 20


def test_duplicate_stage():
    sim = Simulator()
    port, got = _port_with_sink(sim)
    stage = DuplicateStage(sim, prob=0.5, seed=2).install(port)
    for i in range(200):
        port.push(Frame(i))
    assert stage.duplicated > 0
    assert len(got) == 200 + stage.duplicated
    assert 0.3 < stage.duplicated / 200 < 0.7


def test_stacked_removal_is_order_safe():
    """Removing stacked injectors in either order restores the sink."""
    for removal_order in ("first-installed-first", "last-installed-first"):
        sim = Simulator()
        port, got = _port_with_sink(sim)
        original = port.sink
        a = LossStage(sim, rate=1.0, seed=0).install(port)
        b = PartitionStage(sim).install(port)
        assert len(chain_on(port)) == 2
        first, second = (a, b) if removal_order == "first-installed-first" else (b, a)
        first.remove()
        second.remove()
        assert port.sink is original
        assert chain_on(port) == []
        assert port.push(Frame(9))
        assert got[-1].id == 9


def test_inner_removal_keeps_outer_working():
    """Removing the inner injector leaves the outer one functional."""
    sim = Simulator()
    port, got = _port_with_sink(sim)
    inner = LossStage(sim, rate=1.0, seed=0).install(port)
    outer = PartitionStage(sim).install(port)
    assert not port.push(Frame(0))  # swallowed by the loss stage
    inner.remove()
    assert port.push(Frame(1))      # partition (healthy) passes through
    outer.fail()
    assert not port.push(Frame(2))
    assert [f.id for f in got] == [1]
    assert outer.blackholed == 1


def test_chaos_metrics_published_in_registry():
    sim = Simulator()
    port, _ = _port_with_sink(sim)
    stage = LossStage(sim, rate=0.5, seed=4).install(port)
    for i in range(50):
        port.push(Frame(i))
    snap = Observability.of(sim).metrics.snapshot("chaos.")
    assert f"{stage.name}.dropped" in snap
    assert f"{stage.name}.passed" in snap
    assert stage.name.startswith("chaos.loss.test.port")
    assert snap[f"{stage.name}.dropped"] == stage.dropped


def test_install_twice_rejected():
    sim = Simulator()
    port, _ = _port_with_sink(sim)
    stage = LossStage(sim, rate=0.1, seed=0).install(port)
    try:
        stage.install(port)
    except RuntimeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("double install must raise")


def test_delay_stage_holds_every_frame_in_order():
    sim = Simulator()
    port, got = _port_with_sink(sim)
    stage = DelayStage(sim, delay_ns=5_000).install(port)
    for i in range(10):
        port.push(Frame(i))
    assert got == []                      # nothing delivered synchronously
    sim.run(until=sim.timeout(4_999))
    assert got == []                      # still inside the hold window
    sim.run(until=sim.timeout(2))
    assert [f.id for f in got] == list(range(10))   # order preserved
    assert stage.delayed == 10


def test_delay_stage_delivers_inflight_after_removal():
    sim = Simulator()
    port, got = _port_with_sink(sim)
    stage = DelayStage(sim, delay_ns=1_000).install(port)
    port.push(Frame(7))
    stage.remove()
    sim.run(until=sim.timeout(2_000))
    assert [f.id for f in got] == [7]     # in-flight frame still lands


def test_delay_stage_rejects_nonpositive_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        DelayStage(sim, delay_ns=0)
