"""Heartbeat service + phi-style link-liveness detection."""

from repro.chaos import PartitionStage
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_vnetp
from repro.obs.context import Observability
from repro.vnet.heartbeat import HEARTBEAT_SIZE, HeartbeatFrame, HeartbeatService


def _checkpoint(sim, at_ns):
    sim.run(until=sim.timeout(at_ns - sim.now))


def test_heartbeats_traverse_overlay():
    """Beats ride the real encap path and land in the peer's monitor."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    sim = tb.sim
    horizon = 5_000_000
    services = [
        HeartbeatService(sim, core, interval_ns=500_000, until_ns=horizon)
        for core in tb.cores
    ]
    for svc in services:
        svc.start()
    sim.run()
    for i, core in enumerate(tb.cores):
        assert core.monitor is not None
        # The peer's beats were heard on our side of the overlay link.
        (link_name,) = [h.link for h in core.monitor.link_health.values()]
        health = core.monitor.link_health[link_name]
        assert health.beats >= 8  # ~10 beats in 5 ms at 500 us
        assert 400_000 < health.mean_interval_ns < 600_000
        assert core.monitor.link_alive(link_name)
        assert services[i].sent >= 9
    snap = Observability.of(sim).metrics.snapshot("vnet.heartbeat.")
    assert snap["vnet.heartbeat.h0.sent"] == services[0].sent


def test_heartbeat_frame_shape():
    hb = HeartbeatFrame(src_host_ip="192.168.0.1", link_name="to1", seq=3)
    assert hb.size == HEARTBEAT_SIZE
    assert hb.src == "hb:192.168.0.1"
    assert "to1" not in hb.src  # link rides in its own slot


def test_dead_link_detected_then_recovers():
    """Silencing the overlay link trips the phi detector; healing clears it."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    sim = tb.sim
    horizon = 30_000_000
    for core in tb.cores:
        HeartbeatService(sim, core, interval_ns=500_000, until_ns=horizon).start()

    m0 = None

    def scenario():
        nonlocal m0
        yield sim.timeout(5_000_000)  # let liveness establish
        m0 = tb.cores[0].monitor
        assert m0.dead_links() == []
        # Cut both directions of the h0<->h1 overlay link.
        cut = [
            PartitionStage(sim, failed=True).install(
                tb.hosts[0].vnet_bridge.link_out("to1")),
            PartitionStage(sim, failed=True).install(
                tb.hosts[1].vnet_bridge.link_out("to0")),
        ]
        yield sim.timeout(10_000_000)  # 20 missed beats >> phi threshold
        assert m0.dead_links() == ["to1"]
        assert not m0.link_alive("to1")
        assert m0.phi("to1") > m0.phi_threshold
        for stage in cut:
            stage.remove()
        yield sim.timeout(10_000_000)
        assert m0.dead_links() == []
        assert m0.link_alive("to1")

    done = sim.process(scenario())
    sim.run(until=done)
    sim.run()
    snap = Observability.of(sim).metrics.snapshot("vnet.monitor.")
    assert snap["vnet.monitor.h0.links_down"] == 0
    assert snap["vnet.monitor.h0.links_up"] == 1


def test_unwatched_link_is_optimistically_alive():
    from repro.vnet.monitor import TrafficMonitor

    tb = build_vnetp(nic_params=NETEFFECT_10G)
    mon = TrafficMonitor(tb.sim, tb.cores[0])
    assert mon.phi("nonexistent") == 0.0
    assert mon.link_alive("nonexistent")
    assert mon.dead_links() == []


def test_heartbeat_send_failure_counted():
    """With the tx path down from t=0 the sender counts failed beats."""
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    sim = tb.sim
    svc = HeartbeatService(sim, tb.cores[0], interval_ns=500_000,
                           until_ns=3_000_000)
    svc.start()
    # Fill the bridge tx queue's world: block the NIC so the bounded
    # txq eventually overflows and try_put fails.
    PartitionStage(sim, failed=True).install(tb.hosts[0].nic.tx_port)
    sim.run()
    # Frames are dropped at the NIC, not the txq, so sends still succeed;
    # the peer simply never hears them.
    assert svc.sent > 0
    m1 = tb.cores[1].monitor
    assert m1 is None or all(h.beats == 0 for h in m1.link_health.values())
