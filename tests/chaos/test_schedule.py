"""FaultSchedule execution: windows install/remove at the right times."""

import pytest

from repro import units
from repro.chaos import FaultSchedule
from repro.config import NETEFFECT_10G
from repro.harness.testbed import build_native
from repro.proto.base import Blob
from repro.sim import Simulator
from repro.sim.pipeline import Port


class Frame:
    __slots__ = ("size", "src", "dst", "t")

    def __init__(self, t=0):
        self.size = 100
        self.src = "a"
        self.dst = "b"
        self.t = t


def test_loss_window_bounds_activity():
    """A rate-1.0 loss window drops exactly the frames inside it."""
    sim = Simulator()
    delivered = []
    port = Port(sim, "w.port")
    port.connect(lambda f: delivered.append(f.t) or True)
    sched = FaultSchedule(sim, name="win")
    sched.loss(port, start_ns=2_000_000, stop_ns=4_000_000, rate=1.0, seed=0)
    sched.start()

    def feed():
        while sim.now < 6_000_000:
            port.push(Frame(sim.now))
            yield sim.timeout(100_000)

    sim.process(feed())
    sim.run()
    assert delivered, "frames outside the window must pass"
    assert all(t < 2_000_000 or t >= 4_000_000 for t in delivered)
    dropped = [t for t in (n * 100_000 for n in range(60))
               if 2_000_000 <= t < 4_000_000]
    assert len(delivered) == 60 - len(dropped)
    events = [msg for _, msg in sched.log]
    assert events == ["install loss on w.port", "remove loss from w.port"]
    assert sched.log[0][0] == 2_000_000
    assert sched.log[1][0] == 4_000_000
    assert port.sink.__name__ == "<lambda>"  # original sink restored


def test_open_ended_window_stays_installed():
    sim = Simulator()
    port = Port(sim, "w.port")
    port.connect(lambda f: True)
    sched = FaultSchedule(sim, name="open")
    window = sched.loss(port, start_ns=0, stop_ns=None, rate=1.0, seed=0)
    sched.start()
    sim.run()  # must quiesce despite the open window
    assert window.stage.installed
    assert not port.push(Frame())


def test_flap_cycles():
    sim = Simulator()
    delivered = []
    port = Port(sim, "flap.port")
    port.connect(lambda f: delivered.append(f.t) or True)
    sched = FaultSchedule(sim, name="flap")
    sched.flap(port, start_ns=1_000_000, down_ns=500_000, up_ns=500_000, cycles=3)
    sched.start()

    def feed():
        while sim.now < 5_000_000:
            port.push(Frame(sim.now))
            yield sim.timeout(50_000)

    sim.process(feed())
    sim.run()
    # Down windows: [1.0,1.5), [2.0,2.5), [3.0,3.5) ms.
    for t in delivered:
        in_down = any(start <= t < start + 500_000
                      for start in (1_000_000, 2_000_000, 3_000_000))
        assert not in_down, f"frame at {t} crossed a down window"
    downs = [msg for _, msg in sched.log if msg.startswith("flap down")]
    ups = [msg for _, msg in sched.log if msg.startswith("flap up")]
    assert len(downs) == 3 and len(ups) == 3


def test_bad_window_rejected():
    sim = Simulator()
    port = Port(sim, "bad.port")
    port.connect(lambda f: True)
    sched = FaultSchedule(sim)
    with pytest.raises(ValueError):
        sched.loss(port, start_ns=5, stop_ns=5, rate=0.1)
    with pytest.raises(ValueError):
        sched.flap(port, start_ns=0, down_ns=1, up_ns=1, cycles=0)


def test_start_twice_rejected():
    sim = Simulator()
    sched = FaultSchedule(sim)
    sched.start()
    with pytest.raises(RuntimeError):
        sched.start()


def test_host_pause_blackholes_both_directions():
    """During a pause the host neither sends nor receives."""
    tb = build_native(nic_params=NETEFFECT_10G)
    sim = tb.sim
    a, b = tb.endpoints
    got = []

    sched = FaultSchedule(sim, name="pause")
    sched.pause(tb.hosts[1], start_ns=1_000_000, duration_ns=2_000_000)
    sched.start()

    def rx():
        sock = b.stack.udp_socket(port=9)
        while True:
            yield from sock.recv()
            got.append(sim.now)

    def tx():
        sock = a.stack.udp_socket()
        yield from sock.sendto(Blob(100), b.ip, 9)     # before: delivered
        yield sim.timeout(1_500_000)                    # inside the pause
        yield from sock.sendto(Blob(100), b.ip, 9)     # rx blackholed
        yield sim.timeout(2_000_000)                    # after resume
        yield from sock.sendto(Blob(100), b.ip, 9)     # delivered
    sim.process(rx())
    p = sim.process(tx())
    sim.run(until=p)
    sim.run()
    assert len(got) == 2
    events = [msg for _, msg in sched.log]
    assert events == ["pause host h1", "resume host h1"]


def test_schedule_events_counted(tmp_path):
    from repro.obs.context import Observability

    sim = Simulator()
    port = Port(sim, "m.port")
    port.connect(lambda f: True)
    sched = FaultSchedule(sim, name="metered")
    sched.partition(port, start_ns=10, stop_ns=20)
    sched.start()
    sim.run()
    snap = Observability.of(sim).metrics.snapshot("chaos.schedule.")
    assert snap["chaos.schedule.metered.events"] == 2


def test_loss_under_real_traffic_matches_units():
    """Schedule + ttcp: loss inside the window reduces goodput."""
    from repro.apps.ttcp import run_ttcp_udp
    from repro.harness.testbed import build_vnetp

    tb = build_vnetp(nic_params=NETEFFECT_10G)
    sched = FaultSchedule(tb.sim, name="ttcp")
    sched.loss(tb.hosts[0].nic.tx_port, start_ns=0, stop_ns=None,
               rate=0.05, seed=13)
    sched.start()
    r = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1],
                     duration_ns=2 * units.MS)
    assert 0.0 < r.loss_fraction < 1.0
