"""The resilience experiment family: timing-neutral injectors and
deterministic rows."""

from repro.harness.experiments.resilience import _loss_goodput_point


def test_loss_zero_is_bit_identical_to_clean():
    """An installed rate-0 injector must not perturb the simulation:
    the whole row matches a run with no injector at all."""
    clean = _loss_goodput_point("clean", "clean", 0.0, 1009, 2_000_000)
    loss0 = _loss_goodput_point("loss 0%", "loss", 0.0, 1009, 2_000_000)
    for key in clean:
        if key == "config":
            continue
        assert clean[key] == loss0[key], key


def test_same_seed_same_row():
    a = _loss_goodput_point("loss 5%", "loss", 0.05, 1009, 2_000_000)
    b = _loss_goodput_point("loss 5%", "loss", 0.05, 1009, 2_000_000)
    assert a == b


def test_loss_monotonically_hurts_goodput():
    rows = [
        _loss_goodput_point(f"loss {int(r * 100)}%", "loss", r, 1009, 2_000_000)
        for r in (0.0, 0.02, 0.10)
    ]
    assert rows[0]["gbps"] > rows[1]["gbps"] > rows[2]["gbps"]
    assert rows[0]["loss_pct"] == 0.0
    assert rows[1]["loss_pct"] < rows[2]["loss_pct"]
