"""TopologyCompiler: facade equivalence, golden tables, live builds."""

import json
from pathlib import Path

import pytest

from repro.harness.testbed import build_topo, build_vnetp
from repro.topo import (
    TopoSpec,
    TopologyCompiler,
    fat_tree,
    full_mesh,
    peer_guests,
    probe_rtt_ns,
    provision,
    torus2d,
)
from repro.vnet.lang import parse_config, render_config

GOLDEN = Path(__file__).parent.parent / "golden" / "topo_fattree_k4.json"


def legacy_vnetp_lines(n_hosts, vms_per_host):
    """The pre-refactor build_vnetp configuration, constructed verbatim
    (guest MAC numbering, link order, route order)."""
    from repro.proto.ethernet import mac_addr

    n_vms = n_hosts * vms_per_host
    macs = [mac_addr(i + 1, prefix=0x5A) for i in range(n_vms)]
    per_host = []
    for i in range(n_hosts):
        lines = []
        for j in range(n_hosts):
            if i != j:
                lines.append(f"add link to{j} udp 10.0.0.{j + 1}:5002")
        for idx in range(n_vms):
            owner = idx // vms_per_host
            if owner == i:
                lines.append(
                    f"add route src any dst {macs[idx]} interface if{idx % vms_per_host}"
                )
            else:
                lines.append(f"add route src any dst {macs[idx]} link to{owner}")
        per_host.append("\n".join(lines))
    return per_host


@pytest.mark.parametrize("n_hosts,vms_per_host", [(2, 1), (3, 1), (3, 2), (5, 1)])
def test_mesh_config_matches_legacy_builder(n_hosts, vms_per_host):
    """The compiler emits byte-identical configuration to the hand-rolled
    build_vnetp loop it replaced — the facade bit-identity contract."""
    compiled = TopologyCompiler(full_mesh(n_hosts, vms_per_host)).compile()
    expected = legacy_vnetp_lines(n_hosts, vms_per_host)
    assert [h.config_text for h in compiled.hosts] == expected


def test_render_parse_round_trip():
    """config_text → parse_config → render_config is a fixed point."""
    compiled = TopologyCompiler(fat_tree(16)).compile()
    for host in compiled.hosts:
        text = host.config_text
        assert render_config(parse_config(text)) == text


def test_golden_fat_tree_tables():
    """The k=4 fat-tree's compiled tables are pinned: any change to
    generation or compilation that alters a single route line fails."""
    compiled = TopologyCompiler(fat_tree(16)).compile()
    got = {
        "signature": compiled.signature(),
        "hosts": {h.name: h.config_text.splitlines() for h in compiled.hosts},
    }
    want = json.loads(GOLDEN.read_text())
    assert got["signature"] == want["signature"]
    assert got["hosts"] == want["hosts"]


def test_build_topo_mesh_equals_build_vnetp():
    """The generic facade and the legacy one produce interchangeable
    testbeds for mesh specs (same routes, same endpoint addressing)."""
    a = build_vnetp(n_hosts=3)
    b = build_topo(TopoSpec(kind="mesh", n_hosts=3))
    assert [e.ip for e in a.endpoints] == [e.ip for e in b.endpoints]
    assert [h.ip for h in a.hosts] == [h.ip for h in b.hosts]
    for ca, cb in zip(a.cores, b.cores):
        assert ca.routing.entries == cb.routing.entries
        assert sorted(ca.links) == sorted(cb.links)


def test_fat_tree_cross_pod_ping():
    """End-to-end: a guest frame crosses edge→agg→core→agg→edge through
    VM-less router hosts and comes back."""
    tb = build_topo(TopoSpec(kind="fat-tree", n_hosts=16))
    rtt = probe_rtt_ns(tb, 0, 15)
    same_edge = probe_rtt_ns(tb, 0, 1)
    assert rtt > same_edge > 0


def test_torus_multi_hop_ping():
    tb = build_topo(TopoSpec(kind="torus", rows=3, cols=3))
    assert probe_rtt_ns(tb, 0, 4) > 0


def test_provision_deterministic():
    """Two identical provisioning runs: same convergence, same ramp."""
    def run():
        tb = build_topo(TopoSpec(kind="fat-tree", n_hosts=16), configure=False)
        report = provision(tb)
        return report.converged_ns, report.first_ready_ns, report.last_ready_ns

    assert run() == run()


def test_provision_requires_unconfigured_controls():
    tb = build_topo(TopoSpec(kind="mesh", n_hosts=2))
    tb.controls = []
    with pytest.raises(ValueError):
        provision(tb)


def test_peer_guests_requires_vms():
    tb = build_topo(TopoSpec(kind="fat-tree", n_hosts=16))
    peer_guests(tb, 0, 15)  # ok
    from repro.harness.testbed import build_native

    native = build_native(n_hosts=2)
    with pytest.raises(ValueError):
        peer_guests(native, 0, 1)


def test_compiler_rejects_dangling_route():
    from repro.topo import HostSpec, Network, RoutePlan, Topology

    topo = Topology(
        name="bad",
        network=Network("n"),
        hosts=(HostSpec("h0"), HostSpec("h1")),
        routes=(RoutePlan("h0", "any", "5a:00:00:00:00:02", via_link="h1"),),
    )
    with pytest.raises(ValueError):
        TopologyCompiler(topo).compile()


def test_signature_tracks_content():
    base = TopologyCompiler(torus2d(3, 3)).compile().signature()
    assert TopologyCompiler(torus2d(3, 3)).compile().signature() == base
    assert TopologyCompiler(torus2d(3, 4)).compile().signature() != base
