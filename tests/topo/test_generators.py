"""Generator determinism and structural properties of the fabrics."""

import pytest

from repro.topo import (
    TopoSpec,
    TopologyCompiler,
    fat_tree,
    full_mesh,
    generate,
    multirack,
    torus2d,
)


def compile_(topo):
    return TopologyCompiler(topo).compile()


@pytest.mark.parametrize(
    "spec",
    [
        TopoSpec(kind="mesh", n_hosts=4),
        TopoSpec(kind="mesh", n_hosts=3, vms_per_host=2),
        TopoSpec(kind="fat-tree", n_hosts=16),
        TopoSpec(kind="fat-tree", n_hosts=20, seed=3),
        TopoSpec(kind="torus", rows=3, cols=4),
        TopoSpec(kind="multirack", racks=3, hosts_per_rack=8),
    ],
)
def test_same_spec_same_compiled_tables(spec):
    """Same spec → structurally equal topologies AND identical compiled
    route tables (the signature hashes every rendered config line)."""
    a, b = generate(spec), generate(spec)
    assert a == b
    assert compile_(a).signature() == compile_(b).signature()


def test_seed_changes_fat_tree_routing():
    base = compile_(fat_tree(16, seed=0)).signature()
    assert compile_(fat_tree(16, seed=1)).signature() != base


def test_seed_changes_multirack_spine_assignment():
    base = compile_(multirack(4, 8, seed=0)).signature()
    assert compile_(multirack(4, 8, seed=7)).signature() != base


def test_mesh_shape():
    topo = full_mesh(4, vms_per_host=2)
    assert len(topo.hosts) == 4
    assert topo.n_routers == 0
    assert topo.total_vms == 8
    assert len(topo.links) == 12  # directed all-pairs
    assert topo.wiring == "mesh"


def test_fat_tree_shape():
    topo = fat_tree(16)  # k=4: 16 compute, 4 pods of 2+2, 4 cores
    assert len(topo.compute_hosts) == 16
    assert topo.n_routers == 20
    roles = {r.tier for r in topo.routers}
    assert roles == {"edge", "agg", "core"}


def test_fat_tree_trims_unused_pods():
    topo = fat_tree(20)  # k=6 (cap 54), pod_cap=9 -> 3 pods, not 6
    pods = {h.rack for h in topo.compute_hosts}
    assert len(pods) == 3


def test_torus_shape():
    topo = torus2d(3, 4)
    assert len(topo.compute_hosts) == 12
    assert topo.n_routers == 0
    # Each host links to its 4 ring neighbors (3-row ring: up==down is
    # deduplicated, so degree can be 3).
    c = compile_(topo)
    degrees = {len(h.links) for h in c.hosts}
    assert degrees <= {3, 4}


def test_multirack_oversubscription_sets_spine_count():
    topo = multirack(4, 8, oversubscription=4)
    assert sum(1 for r in topo.routers if r.tier == "spine") == 2
    topo = multirack(4, 8, oversubscription=2)
    assert sum(1 for r in topo.routers if r.tier == "spine") == 4
    topo = multirack(4, 8, oversubscription=16)
    assert sum(1 for r in topo.routers if r.tier == "spine") == 1


def test_generate_rejects_unknown_kind():
    with pytest.raises(ValueError):
        generate(TopoSpec(kind="hypercube", n_hosts=8))


def test_compute_hosts_come_first():
    """VM index ↔ host index math relies on compute hosts preceding
    routers in every generated topology."""
    for topo in (fat_tree(16), torus2d(2, 3), multirack(2, 4)):
        n = len(topo.compute_hosts)
        assert all(h.vms > 0 for h in topo.hosts[:n])
        assert all(h.vms == 0 for h in topo.hosts[n:])
