"""Equivalence of the slot-array event queue with the classic tuple heap.

The kernel replaced its ``(time, eid, event)`` tuple heap with a slot
array (dict of timestamp -> event list, plus an int heap of distinct
timestamps) and batched event application.  These property tests drive
randomly generated schedule programs through the real :class:`Simulator`
and through a small reference kernel in this file that implements the
old tuple-heap semantics literally, and assert the two fire the same
labels at the same times in the same order.
"""

from __future__ import annotations

import heapq

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator

# A schedule program is a list of root timers; each timer carries a delay
# and a list of child timers to schedule when it fires (children with
# delay 0 exercise the immediate queue, including chains of them).
_leaf = st.tuples(st.integers(min_value=0, max_value=40), st.just(()))
_node = st.recursive(
    _leaf,
    lambda inner: st.tuples(
        st.integers(min_value=0, max_value=40),
        st.lists(inner, max_size=3).map(tuple),
    ),
    max_leaves=25,
)
_programs = st.lists(_node, min_size=1, max_size=12)


class _ReferenceKernel:
    """The pre-slot-array scheduler: one ``(time, eid, entry)`` tuple heap.

    Zero-delay entries go to an immediate FIFO only when the heap is
    empty or its head is strictly in the future; otherwise they join the
    heap at ``(now, next_eid)`` — exactly the old ``Simulator._schedule``.
    """

    def __init__(self) -> None:
        self.now = 0
        self._heap: list[tuple[int, int, object]] = []
        self._immediate: list = []
        self._eid = 0

    def schedule(self, entry, delay: int) -> None:
        if delay:
            self._eid += 1
            heapq.heappush(self._heap, (self.now + delay, self._eid, entry))
            return
        heap = self._heap
        if heap and heap[0][0] <= self.now:
            self._eid += 1
            heapq.heappush(heap, (self.now, self._eid, entry))
        else:
            self._immediate.append(entry)

    def run(self, on_fire) -> None:
        while self._immediate or self._heap:
            if self._immediate:
                entry = self._immediate.pop(0)
            else:
                when, _, entry = heapq.heappop(self._heap)
                self.now = when
            on_fire(self, entry)


def _reference_trace(program) -> list[tuple[int, int]]:
    """Fire sequence [(time, label), ...] under the old tuple-heap kernel."""
    kernel = _ReferenceKernel()
    trace: list[tuple[int, int]] = []
    counter = [0]

    def on_fire(k: _ReferenceKernel, entry) -> None:
        label, children = entry
        trace.append((k.now, label))
        for child in children:
            delay, grandchildren = child
            counter[0] += 1
            k.schedule((counter[0], grandchildren), delay)

    for root in program:
        delay, children = root
        counter[0] += 1
        kernel.schedule((counter[0], children), delay)
    kernel.run(on_fire)
    return trace


def _simulator_trace(program) -> list[tuple[int, int]]:
    """Same fire sequence under the real slot-array Simulator.

    Each timer is a pooled ``sim.timeout`` whose completion is observed
    through a callback — the same mechanism every kernel client uses —
    so the trace reflects genuine scheduling order.
    """
    sim = Simulator()
    trace: list[tuple[int, int]] = []
    counter = [0]

    def make_cb(label: int, children):
        def cb(_evt) -> None:
            trace.append((sim.now, label))
            for child in children:
                delay, grandchildren = child
                counter[0] += 1
                evt = sim.timeout(delay)
                evt.callbacks.append(make_cb(counter[0], grandchildren))

        return cb

    for root in program:
        delay, children = root
        counter[0] += 1
        evt = sim.timeout(delay)
        evt.callbacks.append(make_cb(counter[0], children))
    sim.run()
    return trace


@settings(max_examples=120, deadline=None)
@given(program=_programs)
def test_slot_array_matches_tuple_heap(program):
    """Random schedule programs fire identically under both kernels."""
    assert _simulator_trace(program) == _reference_trace(program)


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=40)
)
def test_many_events_per_slot_fifo(delays):
    """Events landing on one timestamp fire in scheduling order."""
    sim = Simulator()
    fired: list[int] = []
    for i, d in enumerate(delays):
        evt = sim.timeout(d)
        evt.callbacks.append(lambda _e, i=i: fired.append(i))
    sim.run()
    by_time = sorted(range(len(delays)), key=lambda i: (delays[i], i))
    assert fired == by_time


def test_step_matches_run_batching():
    """step() applies batched slots one event at a time, same order as run()."""

    def build():
        sim = Simulator()
        fired: list[tuple[int, int]] = []
        for i, d in enumerate([5, 5, 5, 0, 7, 5]):
            evt = sim.timeout(d)
            evt.callbacks.append(lambda _e, i=i: fired.append((sim.now, i)))
        return sim, fired

    sim_run, fired_run = build()
    sim_run.run()

    sim_step, fired_step = build()
    while sim_step.peek() is not None:
        sim_step.step()
    assert fired_step == fired_run
    assert sim_step.now == sim_run.now
    assert sim_step.events_processed == sim_run.events_processed
