"""Port/PacketStage pipeline: wiring, backpressure, latency, accounting."""

from dataclasses import dataclass

import pytest

from repro.obs.span import SpanRecorder
from repro.sim import CopyCharger, PacketStage, Port, Simulator


@dataclass
class Frame:
    src: str = "a"
    dst: str = "b"
    payload: object = None
    size: int = 100


class FakeMemory:
    """Memory stand-in: charges copy time, records the request."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.calls: list[tuple[int, float]] = []

    def copy_at(self, nbytes: int, bw_Bps: float):
        self.calls.append((nbytes, bw_Bps))
        yield self.sim.timeout(int(nbytes * 1e9 / bw_Bps))


# -- Port wiring -------------------------------------------------------------
def test_connect_is_exactly_once():
    sim = Simulator()
    port = Port(sim, "p")
    assert not port.connected
    port.connect(lambda f: None)
    assert port.connected
    with pytest.raises(RuntimeError, match="already connected"):
        port.connect(lambda f: None)


def test_rebind_swaps_and_clears():
    sim = Simulator()
    port = Port(sim, "p")
    seen = []
    port.connect(seen.append)
    wrapped = port.sink

    def tap(frame):
        seen.append("tap")
        wrapped(frame)

    port.rebind(tap)  # harness idiom: wrap ...
    port.push(Frame())
    port.rebind(wrapped)  # ... and restore
    port.push(Frame())
    assert seen[0] == "tap" and len(seen) == 3
    port.rebind(None)
    assert not port.connected


# -- push: counting and backpressure -----------------------------------------
def test_push_counts_frames_and_bytes():
    sim = Simulator()
    port = Port(sim, "p")
    port.connect(lambda f: True)
    assert port.push(Frame(size=60))
    assert port.push(Frame(size=40))
    assert port.stats() == {"frames": 2, "bytes": 100, "drops": 0}


def test_push_backpressure_counts_drop():
    sim = Simulator()
    port = Port(sim, "p")
    port.connect(lambda f: False)  # sink refuses: ring full
    assert port.push(Frame()) is False
    assert port.stats()["drops"] == 1
    # Unconnected port also drops (and does not raise).
    loose = Port(sim, "q")
    assert loose.push(Frame()) is False
    assert loose.drops == 1


def test_sink_returning_none_is_acceptance():
    """Plain callbacks (no return) must not be miscounted as refusals."""
    sim = Simulator()
    port = Port(sim, "p")
    port.connect(lambda f: None)
    assert port.push(Frame()) is True
    assert port.drops == 0


# -- push_after: latency, not occupancy --------------------------------------
def test_push_after_charges_latency():
    sim = Simulator()
    port = Port(sim, "p")
    arrivals = []
    port.connect(lambda f: arrivals.append((sim.now, f)))
    f1, f2 = Frame(), Frame()
    port.push_after(f1, 500)
    port.push_after(f2, 500)  # concurrent: overlaps, does not queue behind f1
    sim.run()
    assert [(t, f) for t, f in arrivals] == [(500, f1), (500, f2)]


def test_push_after_zero_delay_preserves_fifo():
    sim = Simulator()
    port = Port(sim, "p")
    arrivals = []
    port.connect(lambda f: arrivals.append(f))
    frames = [Frame() for _ in range(3)]
    for f in frames:
        port.push_after(f, 0)
    sim.run()
    assert arrivals == frames


def test_push_after_records_span():
    sim = Simulator()
    spans = SpanRecorder(sim, enabled=True)
    port = Port(sim, "p", spans=spans, stage="link", who="cable", where="wire")
    port.connect(lambda f: None)

    def src():
        yield sim.timeout(100)
        port.push_after(Frame(src="m1", dst="m2"), 700)

    sim.process(src())
    sim.run()
    (span,) = spans.spans
    assert (span.stage, span.t0, span.t1) == ("link", 100, 800)
    assert (span.who, span.where, span.flow) == ("cable", "wire", "m1>m2")


def test_push_after_no_span_while_disabled():
    sim = Simulator()
    spans = SpanRecorder(sim, enabled=False)
    port = Port(sim, "p", spans=spans, stage="link")
    port.connect(lambda f: None)
    port.push_after(Frame(), 10)
    sim.run()
    assert spans.spans == []


# -- PacketStage composition -------------------------------------------------
class Doubler(PacketStage):
    """Test stage: forwards every frame twice through its ``out`` port."""

    def __init__(self, sim: Simulator, name: str):
        self._init_stage(sim, name)
        self.out = self.make_port("out")

    def ingress(self, frame) -> bool:
        ok = self.out.push(frame)
        return self.out.push(frame) and ok


class Sink(PacketStage):
    def __init__(self, sim: Simulator, name: str, capacity: int):
        self._init_stage(sim, name)
        self.capacity = capacity
        self.frames: list = []

    def ingress(self, frame) -> bool:
        if len(self.frames) >= self.capacity:
            return False
        self.frames.append(frame)
        return True


def test_stage_composition_and_port_registry():
    sim = Simulator()
    a = Doubler(sim, "dbl")
    b = Sink(sim, "sink", capacity=10)
    a.out.connect(b.ingress)
    assert a.ports == {"out": a.out}
    assert a.ingress(Frame())
    assert len(b.frames) == 2
    assert a.port_stats() == {"out": {"frames": 2, "bytes": 200, "drops": 0}}


def test_stage_backpressure_propagates():
    sim = Simulator()
    a = Doubler(sim, "dbl")
    b = Sink(sim, "sink", capacity=1)
    a.out.connect(b.ingress)
    assert a.ingress(Frame()) is False  # second copy refused downstream
    assert a.out.stats()["drops"] == 1


def test_base_stage_ingress_is_abstract():
    sim = Simulator()
    stage = PacketStage()
    stage._init_stage(sim, "s")
    with pytest.raises(NotImplementedError):
        stage.ingress(Frame())


# -- CopyCharger: charged, not performed -------------------------------------
def test_copy_charger_charges_time_without_copying():
    sim = Simulator()
    mem = FakeMemory(sim)
    charger = CopyCharger(mem, bw_Bps=1e9)
    payload = bytearray(b"x" * 8)  # identity-checked below
    frame = Frame(payload=payload, size=2000)
    done = []

    def copier():
        yield from charger.charge(frame.size)
        done.append((sim.now, frame.payload))

    sim.process(copier())
    sim.run()
    (t, seen_payload) = done[0]
    assert t == 2000  # 2000 B at 1 GB/s = 2000 ns charged
    assert seen_payload is payload  # shared by reference: no data moved
    assert (charger.copies, charger.bytes) == (1, 2000)
    assert mem.calls == [(2000, 1e9)]


def test_copy_charger_metrics_counter():
    from repro.obs.metrics import MetricsRegistry

    sim = Simulator()
    counter = MetricsRegistry().counter("copied_bytes")
    charger = CopyCharger(FakeMemory(sim), bw_Bps=1e9, counter=counter)

    def copier():
        yield from charger.charge(300)
        yield from charger.charge(700)

    sim.process(copier())
    sim.run()
    assert counter.value == 1000
    assert charger.copies == 2
