"""Property-based tests for Store: FIFO and conservation under any schedule."""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.sim.primitives import Store


@settings(max_examples=40, deadline=None)
@given(
    capacity=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    put_delays=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30),
    get_delays=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30),
)
def test_property_store_fifo_and_conservation(capacity, put_delays, get_delays):
    """Whatever the interleaving, items come out exactly once, in order."""
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    n = min(len(put_delays), len(get_delays))
    got = []

    def producer():
        for i in range(n):
            yield sim.timeout(put_delays[i])
            yield store.put(i)

    def consumer():
        for i in range(n):
            yield sim.timeout(get_delays[i])
            item = yield store.get()
            got.append(item)

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert got == list(range(n))
    assert len(store) == 0


@settings(max_examples=30, deadline=None)
@given(
    capacity=st.integers(min_value=1, max_value=4),
    n_producers=st.integers(min_value=1, max_value=4),
    items_each=st.integers(min_value=1, max_value=8),
)
def test_property_store_multiproducer_conservation(capacity, n_producers, items_each):
    """Multiple producers: every item delivered exactly once."""
    sim = Simulator()
    store = Store(sim, capacity=capacity)
    total = n_producers * items_each
    got = []

    def producer(pid):
        for i in range(items_each):
            yield store.put((pid, i))
            yield sim.timeout(1)

    def consumer():
        for _ in range(total):
            item = yield store.get()
            got.append(item)

    for pid in range(n_producers):
        sim.process(producer(pid))
    sim.process(consumer())
    sim.run()
    assert len(got) == total
    assert len(set(got)) == total
    # Per-producer order preserved.
    for pid in range(n_producers):
        seq = [i for (p, i) in got if p == pid]
        assert seq == sorted(seq)


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.sampled_from(["put", "get"]), min_size=1, max_size=40))
def test_property_try_ops_never_corrupt(ops):
    """Non-blocking puts/gets keep the count consistent."""
    sim = Simulator()
    store = Store(sim, capacity=3)
    pushed = popped = dropped = 0
    for op in ops:
        if op == "put":
            if store.try_put(pushed):
                pushed += 1
            else:
                dropped += 1
        else:
            if store.try_get() is not None:
                popped += 1
    assert len(store) == pushed - popped
    assert 0 <= len(store) <= 3
