"""Tests for Store, Resource, and Signal."""

import pytest

from repro.sim import Simulator, SimulationError
from repro.sim.primitives import Resource, Signal, Store


# --- Store -------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    got = []

    def producer(sim):
        for i in range(5):
            yield store.put(i)
            yield sim.timeout(1)

    def consumer(sim):
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer(sim):
        item = yield store.get()
        times.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(90)
        yield store.put("x")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert times == [(90, "x")]


def test_store_capacity_blocks_put():
    sim = Simulator()
    store = Store(sim, capacity=2)
    log = []

    def producer(sim):
        for i in range(4):
            yield store.put(i)
            log.append((sim.now, "put", i))

    def consumer(sim):
        yield sim.timeout(100)
        for _ in range(4):
            item = yield store.get()
            log.append((sim.now, "got", item))
            yield sim.timeout(10)

    sim.process(producer(sim))
    sim.process(consumer(sim))
    sim.run()
    # Two puts complete immediately; the rest wait for space.
    assert log[0] == (0, "put", 0)
    assert log[1] == (0, "put", 1)
    put_times = {i: t for (t, op, i) in log if op == "put"}
    assert put_times[2] == 100   # freed by the first get
    assert put_times[3] == 110


def test_store_try_put_drops_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    assert store.try_put("a") is True
    assert store.try_put("b") is False
    assert len(store) == 1


def test_store_try_get_empty_returns_none():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.try_put("x")
    assert store.try_get() == "x"


def test_store_invalid_capacity():
    with pytest.raises(ValueError):
        Store(Simulator(), capacity=0)


def test_store_multiple_waiting_getters_fifo():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(sim):
        yield sim.timeout(10)
        yield store.put("first")
        yield store.put("second")

    sim.process(consumer(sim, "c1"))
    sim.process(consumer(sim, "c2"))
    sim.process(producer(sim))
    sim.run()
    assert got == [("c1", "first"), ("c2", "second")]


def test_store_try_put_wakes_blocked_getter():
    sim = Simulator()
    store = Store(sim)
    got = []

    def consumer(sim):
        item = yield store.get()
        got.append((sim.now, item))

    def producer(sim):
        yield sim.timeout(42)
        assert store.try_put("y")

    sim.process(consumer(sim))
    sim.process(producer(sim))
    sim.run()
    assert got == [(42, "y")]


# --- Resource ----------------------------------------------------------------

def test_resource_mutual_exclusion():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    log = []

    def user(sim, tag, hold):
        yield res.request()
        log.append((sim.now, tag, "in"))
        yield sim.timeout(hold)
        log.append((sim.now, tag, "out"))
        res.release()

    sim.process(user(sim, "a", 50))
    sim.process(user(sim, "b", 50))
    sim.run()
    assert log == [(0, "a", "in"), (50, "a", "out"), (50, "b", "in"), (100, "b", "out")]


def test_resource_capacity_two_admits_two():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    entered = []

    def user(sim, tag):
        yield res.request()
        entered.append((sim.now, tag))
        yield sim.timeout(10)
        res.release()

    for tag in "abc":
        sim.process(user(sim, tag))
    sim.run()
    assert entered == [(0, "a"), (0, "b"), (10, "c")]


def test_resource_release_idle_is_error():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_available_accounting():
    sim = Simulator()
    res = Resource(sim, capacity=3)
    assert res.available == 3
    res.request()
    assert res.available == 2


# --- Signal ------------------------------------------------------------------

def test_signal_wakes_all_current_waiters():
    sim = Simulator()
    sig = Signal(sim)
    woken = []

    def waiter(sim, tag):
        yield sig.wait()
        woken.append((sim.now, tag))

    def firer(sim):
        yield sim.timeout(25)
        sig.fire()

    sim.process(waiter(sim, "w1"))
    sim.process(waiter(sim, "w2"))
    sim.process(firer(sim))
    sim.run()
    assert sorted(woken) == [(25, "w1"), (25, "w2")]


def test_signal_rearms_after_fire():
    sim = Simulator()
    sig = Signal(sim)
    wakes = []

    def waiter(sim):
        for _ in range(2):
            yield sig.wait()
            wakes.append(sim.now)

    def firer(sim):
        yield sim.timeout(10)
        sig.fire()
        yield sim.timeout(10)
        sig.fire()

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert wakes == [10, 20]
    assert sig.fire_count == 2


def test_interrupted_getter_does_not_swallow_items():
    from repro.sim import Interrupt

    sim = Simulator()
    store = Store(sim)
    outcomes = []

    def impatient(sim):
        try:
            yield store.get()
        except Interrupt:
            outcomes.append("interrupted")

    def patient(sim):
        item = yield store.get()
        outcomes.append(("got", item))

    def driver(sim, victim):
        yield sim.timeout(10)
        victim.interrupt()
        yield sim.timeout(10)
        yield store.put("the-item")

    v = sim.process(impatient(sim))
    sim.process(patient(sim))
    sim.process(driver(sim, v))
    sim.run()
    # The interrupted waiter must not consume the item; the patient one gets it.
    assert outcomes == ["interrupted", ("got", "the-item")]


def test_interrupted_resource_waiter_releases_slot():
    from repro.sim import Interrupt

    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim):
        yield res.request()
        yield sim.timeout(100)
        res.release()

    def quitter(sim):
        try:
            yield res.request()
        except Interrupt:
            order.append("quit")

    def heir(sim):
        yield sim.timeout(1)
        yield res.request()
        order.append(("acquired", sim.now))
        res.release()

    sim.process(holder(sim))
    q = sim.process(quitter(sim))
    sim.process(heir(sim))

    def driver(sim):
        yield sim.timeout(50)
        q.interrupt()

    sim.process(driver(sim))
    sim.run()
    # The slot skips the interrupted waiter and goes to the next in line.
    assert order == ["quit", ("acquired", 100)]
    assert res.available == 1


def test_interrupted_putter_item_not_enqueued():
    from repro.sim import Interrupt

    sim = Simulator()
    store = Store(sim, capacity=1)
    store.try_put("occupying")
    outcomes = []

    def blocked_putter(sim):
        try:
            yield store.put("abandoned")
        except Interrupt:
            outcomes.append("put-interrupted")

    def driver(sim, victim):
        yield sim.timeout(5)
        victim.interrupt()
        yield sim.timeout(5)
        first = yield store.get()
        outcomes.append(first)
        # The abandoned item must never appear.
        assert store.try_get() is None

    p = sim.process(blocked_putter(sim))
    sim.process(driver(sim, p))
    sim.run()
    assert outcomes == ["put-interrupted", "occupying"]
