"""Tests for tracing, statistics, and RNG streams."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import RandomStreams, SampleStats, Tracer


def test_tracer_counters_always_on():
    t = Tracer(enabled=False)
    t.record(10, "tx")
    t.record(20, "tx")
    t.record(30, "rx")
    assert t.counters["tx"] == 2
    assert t.counters["rx"] == 1
    assert t.records == []  # full records off


def test_tracer_records_when_enabled():
    t = Tracer(enabled=True)
    t.record(10, "tx", "payload")
    assert t.of("tx") == [(10, "tx", "payload")]
    t.reset()
    assert t.counters == {}


def test_sample_stats_moments():
    s = SampleStats()
    s.extend([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == pytest.approx(2.5)
    assert s.min == 1.0 and s.max == 4.0
    assert s.variance == pytest.approx(5 / 3)
    assert s.stdev == pytest.approx(math.sqrt(5 / 3))


def test_sample_stats_percentile():
    s = SampleStats()
    s.extend(range(101))
    assert s.percentile(50) == 50
    assert s.percentile(0) == 0
    assert s.percentile(100) == 100


def test_sample_stats_empty():
    s = SampleStats()
    assert math.isnan(s.mean)
    assert s.variance == 0.0


def test_sample_stats_no_reservoir():
    s = SampleStats(keep_samples=False)
    s.add(5.0)
    with pytest.raises(ValueError):
        s.percentile(50)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
def test_property_streaming_mean_matches_batch(xs):
    s = SampleStats()
    s.extend(xs)
    assert s.mean == pytest.approx(sum(xs) / len(xs), rel=1e-9, abs=1e-6)
    assert s.min == min(xs) and s.max == max(xs)


def test_rng_streams_deterministic():
    a = RandomStreams(seed=7).stream("latency")
    b = RandomStreams(seed=7).stream("latency")
    assert list(a.integers(0, 1000, 10)) == list(b.integers(0, 1000, 10))


def test_rng_streams_independent_by_name():
    rs = RandomStreams(seed=7)
    a = list(rs.stream("one").integers(0, 1_000_000, 8))
    b = list(rs.stream("two").integers(0, 1_000_000, 8))
    assert a != b


def test_rng_streams_differ_by_seed():
    a = list(RandomStreams(seed=1).stream("s").integers(0, 1_000_000, 8))
    b = list(RandomStreams(seed=2).stream("s").integers(0, 1_000_000, 8))
    assert a != b


def test_rng_stream_cached_per_name():
    rs = RandomStreams()
    assert rs.stream("x") is rs.stream("x")
