"""Unit tests for the fluid fast path: solver, transitions, stride clipping.

The integration half (statistical validation against all-packet golden
runs, chaos determinism) lives in ``tests/vnet/test_fluid_hybrid.py``;
this file exercises :mod:`repro.sim.fluid` in isolation.
"""

from types import SimpleNamespace

from repro.config import VnetTuning
from repro.sim import Simulator
from repro.sim.fluid import FluidFlow, FluidRegion, fluid_region_of, max_min_rates


# --- max-min fair solver --------------------------------------------------------

def test_solver_empty():
    assert max_min_rates([], [], {}) == []


def test_solver_flow_without_links_is_demand_limited():
    rates = max_min_rates([3.0], [frozenset()], {"L": 100.0})
    assert rates == [3.0]


def test_solver_unknown_link_token_is_demand_limited():
    # Membership names a link no capacity is known for: nothing to share.
    rates = max_min_rates([7.0], [frozenset({"ghost"})], {"L": 1.0})
    assert rates == [7.0]


def test_solver_equal_split_on_shared_bottleneck():
    rates = max_min_rates(
        [10.0, 10.0],
        [frozenset({"L"}), frozenset({"L"})],
        {"L": 10.0},
    )
    assert rates == [5.0, 5.0]


def test_solver_water_filling_frees_capacity():
    # A demand-limited flow's leftover capacity goes to the greedy flow.
    rates = max_min_rates(
        [2.0, 100.0],
        [frozenset({"L"}), frozenset({"L"})],
        {"L": 9.0},
    )
    assert rates == [2.0, 7.0]


def test_solver_parking_lot():
    # Classic parking-lot: f1 on L1, f2 on L1+L2, f3 on L2.
    # L2 (cap 6) is tightest: f2 and f3 get 3 each; f1 takes the rest of L1.
    rates = max_min_rates(
        [100.0, 100.0, 100.0],
        [frozenset({"L1"}), frozenset({"L1", "L2"}), frozenset({"L2"})],
        {"L1": 10.0, "L2": 6.0},
    )
    assert rates == [7.0, 3.0, 3.0]


def test_solver_never_exceeds_demand():
    rates = max_min_rates(
        [1.0, 2.0, 3.0],
        [frozenset({"L"})] * 3,
        {"L": 100.0},
    )
    assert rates == [1.0, 2.0, 3.0]


# --- region singleton and knobs -------------------------------------------------

def test_region_absent_by_default():
    assert fluid_region_of(Simulator()) is None


def test_ensure_is_per_simulator_singleton():
    sim = Simulator()
    region = FluidRegion.ensure(sim, VnetTuning())
    assert fluid_region_of(sim) is region
    assert FluidRegion.ensure(sim, VnetTuning()) is region
    assert fluid_region_of(Simulator()) is None  # other sims unaffected


def test_env_override_enables_fluid(monkeypatch):
    assert VnetTuning().fluid is False
    monkeypatch.setenv("REPRO_FLUID", "1")
    assert VnetTuning().fluid is True
    monkeypatch.setenv("REPRO_FLUID", "0")
    assert VnetTuning().fluid is False


# --- transition bookkeeping -----------------------------------------------------

def _region():
    return FluidRegion.ensure(Simulator(), VnetTuning())


def test_transitions_sorted_and_bisected():
    region = _region()
    region.note_transitions([5_000, 1_000, 3_000])
    assert region._transitions == [1_000, 3_000, 5_000]
    assert region.next_transition_after(0) == 1_000
    # Strictly after: a stride starting exactly at a transition instant
    # is clipped to the *next* one.
    assert region.next_transition_after(1_000) == 3_000
    assert region.next_transition_after(5_000) is None


def test_blackout_windows():
    region = _region()
    region.note_transitions([], blackouts=[(100, 200), (500, None)])
    assert not region.in_blackout(99)
    assert region.in_blackout(100)
    assert region.in_blackout(199)
    assert not region.in_blackout(200)       # half-open [start, stop)
    assert region.in_blackout(10_000_000)    # open-ended fault never heals


def test_horizon_rejects_blackouts_and_imminent_transitions():
    region = _region()
    region.note_transitions([region.min_stride_ns // 2],
                            blackouts=[(1_000_000, 2_000_000)])
    assert not region._horizon_ok(0)                  # transition too close
    assert not region._horizon_ok(1_500_000)          # inside the fault window
    assert region._horizon_ok(3_000_000)


# --- stride sizing --------------------------------------------------------------

def _fake_flow(rate_Bps=1e9, pending=10_000_000, rcvbuf=256 * 1024, queued=0):
    conn = SimpleNamespace(app_written=pending, snd_nxt=0)
    peer = SimpleNamespace(rcvbuf=rcvbuf, recv_available=queued)
    flow = FluidFlow(conn, peer, path=None, demand_Bps=rate_Bps, captured_ns=0)
    flow.rate_Bps = rate_Bps
    return flow


def test_stride_end_defaults_to_max_stride():
    region = _region()
    flow = _fake_flow(rcvbuf=1 << 40)  # effectively unbounded receiver
    region.active.append(flow)
    assert region._stride_end(0) == region.max_stride_ns


def test_stride_end_half_fills_receive_buffer():
    # 1 B/ns against a 256 KiB buffer: half-fill is 131072 ns (+1 rounding).
    region = _region()
    region.active.append(_fake_flow(rate_Bps=1e9, rcvbuf=256 * 1024))
    assert region._stride_end(0) == 131_073


def test_stride_end_never_crosses_a_declared_transition():
    region = _region()
    region.active.append(_fake_flow())
    region.note_transitions([40_000])
    assert region._stride_end(0) == 40_000
    # Starting exactly at the transition, the next one (or the normal
    # bounds) applies — never a zero-length stride.
    assert region._stride_end(40_000) > 40_000


def test_stride_end_short_retry_when_receiver_full():
    region = _region()
    region.active.append(_fake_flow(rcvbuf=4096, queued=4096))
    assert region._stride_end(0) == region.min_stride_ns


def test_stride_end_clips_to_data_exhaustion():
    region = _region()
    region.active.append(_fake_flow(rate_Bps=1e9, pending=10_000,
                                    rcvbuf=1 << 40))
    # 10 000 bytes at 1 B/ns: drained after ~10 µs, release lands on time.
    assert region._stride_end(0) == 10_001
