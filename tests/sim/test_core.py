"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100)
        assert sim.now == 100
        yield sim.timeout(50)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 150
    assert sim.now == 150


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc(sim):
        got = yield sim.timeout(5, value="payload")
        return got

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "payload"


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(sim, 300, "c"))
    sim.process(proc(sim, 100, "a"))
    sim.process(proc(sim, 200, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_fifo_order_at_same_timestamp():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(10)
        order.append(tag)

    for tag in "abcd":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list("abcd")


def test_run_until_time_stops_early():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(1000)
        fired.append(True)

    sim.process(proc(sim))
    sim.run(until=500)
    assert sim.now == 500
    assert not fired
    sim.run()
    assert fired


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)
        return 42

    p = sim.process(proc(sim))
    assert sim.run(until=p) == 42


def test_run_until_event_raises_process_failure():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)
        raise RuntimeError("boom")

    p = sim.process(proc(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=p)


def test_unwatched_process_failure_crashes_run():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        raise ValueError("unwatched")

    sim.process(proc(sim))
    with pytest.raises(ValueError, match="unwatched"):
        sim.run()


def test_process_waits_on_manual_event():
    sim = Simulator()
    evt = sim.event()
    log = []

    def waiter(sim):
        value = yield evt
        log.append((sim.now, value))

    def firer(sim):
        yield sim.timeout(77)
        evt.succeed("hello")

    sim.process(waiter(sim))
    sim.process(firer(sim))
    sim.run()
    assert log == [(77, "hello")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed()
    with pytest.raises(SimulationError):
        evt.succeed()


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_yield_already_processed_event():
    sim = Simulator()
    evt = sim.event()
    evt.succeed("early")
    sim.run()  # process the event
    assert evt.processed

    def proc(sim):
        got = yield evt
        return got

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "early"


def test_yield_non_event_is_error():
    sim = Simulator()

    def proc(sim):
        yield 42

    sim.process(proc(sim))
    with pytest.raises(SimulationError, match="must yield Events"):
        sim.run()


def test_process_chaining():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(30)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return ("parent", result, sim.now)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == ("parent", "child-result", 30)


def test_interrupt_delivers_cause():
    sim = Simulator()
    caught = []

    def victim(sim):
        try:
            yield sim.timeout(1000)
        except Interrupt as exc:
            caught.append((sim.now, exc.cause))

    def attacker(sim, target):
        yield sim.timeout(40)
        target.interrupt("stop it")

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert caught == [(40, "stop it")]


def test_interrupted_process_can_continue():
    sim = Simulator()

    def victim(sim):
        try:
            yield sim.timeout(1000)
        except Interrupt:
            pass
        yield sim.timeout(10)
        return sim.now

    def attacker(sim, target):
        yield sim.timeout(5)
        target.interrupt()

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert v.value == 15


def test_stale_timeout_after_interrupt_is_ignored():
    sim = Simulator()
    resumed = []

    def victim(sim):
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        # Wait on a fresh event; the stale timeout at t=100 must not
        # resume us early.
        yield sim.timeout(500)
        resumed.append(sim.now)

    def attacker(sim, target):
        yield sim.timeout(10)
        target.interrupt()

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run()
    assert resumed == [510]


def test_interrupt_dead_process_rejected():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    p = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_any_of_triggers_on_first():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(100, value="fast")
        t2 = sim.timeout(200, value="slow")
        result = yield sim.any_of([t1, t2])
        return (sim.now, list(result.values()))

    p = sim.process(proc(sim))
    sim.run(until=p)
    now, values = p.value
    assert now == 100
    assert values == ["fast"]


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc(sim):
        t1 = sim.timeout(100, value=1)
        t2 = sim.timeout(200, value=2)
        result = yield sim.all_of([t1, t2])
        return (sim.now, sorted(result.values()))

    p = sim.process(proc(sim))
    sim.run(until=p)
    assert p.value == (200, [1, 2])


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        yield sim.all_of([])
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 0


def test_condition_propagates_failure():
    sim = Simulator()
    evt = sim.event()

    def proc(sim):
        yield sim.all_of([evt, sim.timeout(50)])

    def firer(sim):
        yield sim.timeout(10)
        evt.fail(RuntimeError("nested failure"))

    p = sim.process(proc(sim))
    sim.process(firer(sim))
    with pytest.raises(RuntimeError, match="nested failure"):
        sim.run(until=p)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() is None
    sim.timeout(123)
    assert sim.peek() == 123


def test_many_processes_scale():
    sim = Simulator()
    done = []

    def proc(sim, i):
        yield sim.timeout(i % 17)
        done.append(i)

    for i in range(1000):
        sim.process(proc(sim, i))
    sim.run()
    assert len(done) == 1000


def test_event_value_before_trigger_is_error():
    sim = Simulator()
    with pytest.raises(SimulationError):
        _ = sim.event().value


def test_interrupt_process_blocked_on_store():
    from repro.sim.primitives import Store

    sim = Simulator()
    store = Store(sim)
    log = []

    def waiter(sim):
        try:
            yield store.get()
        except Interrupt as exc:
            log.append((sim.now, exc.cause))

    def attacker(sim, target):
        yield sim.timeout(70)
        target.interrupt("give up")

    w = sim.process(waiter(sim))
    sim.process(attacker(sim, w))
    sim.run()
    assert log == [(70, "give up")]
    # The abandoned get must not have consumed anything.
    store.try_put("item")
    assert store.try_get() == "item"


def test_process_is_alive_lifecycle():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)

    p = sim.process(proc(sim))
    assert p.is_alive
    sim.run()
    assert not p.is_alive
    assert p.processed
