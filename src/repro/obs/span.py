"""Per-packet spans: the event side of the observability layer.

A :class:`Span` is one named region of virtual time on the packet path
(``vmexit``, ``dispatch``, ``encap``, ``link``, ...), tagged with the
component that emitted it (``who``), the layer it belongs to (``where``:
``guest`` / ``vmm`` / ``host`` / ``wire``), and — when the packet is in
hand — a flow id (``"srcmac>dstmac"`` or ``"srcip>dstip"``) plus the PDU
id of the packet.  Durations are in integer virtual nanoseconds read off
the simulation clock at span entry/exit.

Spans are recorded through :class:`SpanRecorder`, usually reached via
:class:`repro.obs.context.Observability`.  Recording is **off by
default** (it is O(events) memory, like ``Tracer.records``); the always-
on counterpart is the metrics registry (:mod:`repro.obs.metrics`).

Instrumentation idiom — a ``with`` block inside a simulation process
works across ``yield``s, so a span brackets exactly the virtual time the
enclosed charges take::

    with obs.spans.span(STAGE_DISPATCH, who=self.name, where="vmm",
                        flow=flow_id(frame), packet=frame.id):
        yield self.sim.timeout(self.costs.dispatch_ns)

The stage taxonomy is documented in ``docs/observability.md``; the
canonical names below cover the VNET/P one-way path so that the recorded
breakdown can be compared stage-for-stage against the analytic model in
:mod:`repro.harness.breakdown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

__all__ = [
    "Span",
    "SpanRecorder",
    "flow_id",
    "STAGE_ICMP_TX",
    "STAGE_VIRTIO_TX",
    "STAGE_VMEXIT",
    "STAGE_DISPATCH",
    "STAGE_COPY",
    "STAGE_COPY_ASYNC",
    "STAGE_VMENTRY",
    "STAGE_ENCAP",
    "STAGE_BRIDGE_TX",
    "STAGE_UDP_TX",
    "STAGE_NIC_TX",
    "STAGE_LINK",
    "STAGE_NIC_RX",
    "STAGE_SOFTIRQ_WAKE",
    "STAGE_UDP_RX",
    "STAGE_TCP_RX",
    "STAGE_SOCK_WAKE",
    "STAGE_DECAP",
    "STAGE_INJECT",
    "STAGE_GUEST_WAKE",
    "STAGE_VIRTIO_RX",
    "STAGE_ICMP_RX",
    "CANONICAL_STAGES",
]

# -- stage taxonomy (see docs/observability.md) -------------------------------
STAGE_ICMP_TX = "icmp-tx"            # app syscall + ICMP construction
STAGE_VIRTIO_TX = "virtio-tx"        # guest virtio driver + descriptor
STAGE_VMEXIT = "vmexit"              # TX-kick world switch into the VMM
STAGE_DISPATCH = "dispatch"          # core dequeue/demux + routing lookup
STAGE_COPY = "copy"                  # in-VMM packet copy (serial path)
STAGE_COPY_ASYNC = "copy-async"      # cut-through body copy, off the critical path
STAGE_VMENTRY = "vmentry"            # world switch back into the guest
STAGE_ENCAP = "encap"                # bridge wakeup + tx path + UDP header build
STAGE_BRIDGE_TX = "bridge-tx"        # bridge direct (unencapsulated) send
STAGE_UDP_TX = "udp-tx"              # host stack UDP/IP transmit + checksum
STAGE_NIC_TX = "nic-tx"              # NIC tx ring + wire serialization
STAGE_LINK = "link"                  # propagation (cable/PHY/switch hop)
STAGE_NIC_RX = "nic-rx"              # NIC rx ring + interrupt moderation
STAGE_SOFTIRQ_WAKE = "softirq-wake"  # driver IRQ -> stack softirq wakeup
STAGE_UDP_RX = "udp-rx"              # host stack UDP/IP receive + checksum
STAGE_TCP_RX = "tcp-rx"              # host stack TCP receive + checksum
STAGE_SOCK_WAKE = "sock-wake"        # blocked socket reader wakeup
STAGE_DECAP = "decap"                # bridge rx path + de-encapsulation
STAGE_INJECT = "inject"              # dispatcher-side interrupt injection
STAGE_GUEST_WAKE = "guest-wake"      # guest-side irq exit/entry (+ halted wake)
STAGE_VIRTIO_RX = "virtio-rx"        # guest virtio driver rx + descriptor
STAGE_ICMP_RX = "icmp-rx"            # guest/host ICMP receive handling

#: The stages that tile the VNET/P one-way packet path, in path order.
CANONICAL_STAGES = (
    STAGE_ICMP_TX,
    STAGE_VIRTIO_TX,
    STAGE_VMEXIT,
    STAGE_DISPATCH,
    STAGE_COPY,
    STAGE_VMENTRY,
    STAGE_ENCAP,
    STAGE_UDP_TX,
    STAGE_NIC_TX,
    STAGE_LINK,
    STAGE_NIC_RX,
    STAGE_SOFTIRQ_WAKE,
    STAGE_UDP_RX,
    STAGE_SOCK_WAKE,
    STAGE_DECAP,
    STAGE_INJECT,
    STAGE_GUEST_WAKE,
    STAGE_VIRTIO_RX,
    STAGE_ICMP_RX,
)


def flow_id(frame) -> str:
    """Canonical flow id for any PDU with ``src``/``dst`` attributes."""
    return f"{frame.src}>{frame.dst}"


@dataclass
class Span:
    """One closed region of virtual time on the packet path."""

    stage: str
    t0: int
    t1: int
    who: str = ""
    where: str = ""
    flow: Optional[str] = None
    packet: Any = None  # PDU id: int for frames/segments, str for icmp probes
    seq: int = 0
    parent: Optional[int] = field(default=None, compare=False)

    @property
    def ns(self) -> int:
        """Span duration in virtual nanoseconds."""
        return self.t1 - self.t0

    def to_dict(self) -> dict:
        """JSON-serialisable form (the JSONL exporter's record schema)."""
        return {
            "stage": self.stage,
            "t0": self.t0,
            "t1": self.t1,
            "who": self.who,
            "where": self.where,
            "flow": self.flow,
            "packet": self.packet,
            "seq": self.seq,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        """Inverse of :meth:`to_dict` (JSONL parse-back)."""
        return cls(
            stage=d["stage"],
            t0=d["t0"],
            t1=d["t1"],
            who=d.get("who", ""),
            where=d.get("where", ""),
            flow=d.get("flow"),
            packet=d.get("packet"),
            seq=d.get("seq", 0),
        )


class _NullSpan:
    """No-op context manager returned while recording is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager that stamps ``sim.now`` on entry and exit."""

    __slots__ = ("recorder", "span")

    def __init__(self, recorder: "SpanRecorder", span: Span):
        self.recorder = recorder
        self.span = span

    def __enter__(self):
        self.span.t0 = self.recorder.sim.now
        return self.span

    def __exit__(self, *exc):
        self.span.t1 = self.recorder.sim.now
        self.recorder._commit(self.span)
        return False


class SpanRecorder:
    """Collects spans against one simulator's virtual clock.

    ``enabled`` may be flipped at any time; components call :meth:`span`
    unconditionally and pay only a cheap guard while recording is off.
    """

    def __init__(self, sim: "Simulator", enabled: bool = False):
        self.sim = sim
        self.enabled = enabled
        self.spans: list[Span] = []
        self._seq = 0

    def span(
        self,
        stage: str,
        who: str = "",
        where: str = "",
        flow: Optional[str] = None,
        packet: Optional[int] = None,
        flow_of: Any = None,
    ):
        """Context manager bracketing one stage of the packet path.

        ``flow_of`` is the lazy form of ``flow``: pass the PDU itself and
        the flow id string (and, when not given explicitly, the packet
        id) is only built when recording is enabled, so hot paths do not
        pay for string formatting while spans are off.
        """
        if not self.enabled:
            return _NULL_SPAN
        if flow_of is not None:
            if flow is None:
                flow = f"{flow_of.src}>{flow_of.dst}"
            if packet is None:
                packet = getattr(flow_of, "id", None)
        self._seq += 1
        return _LiveSpan(
            self,
            Span(stage=stage, t0=0, t1=0, who=who, where=where,
                 flow=flow, packet=packet, seq=self._seq),
        )

    def open(
        self,
        stage: str,
        who: str = "",
        where: str = "",
        flow: Optional[str] = None,
        packet: Optional[int] = None,
    ) -> Optional[Span]:
        """Manually-closed span for callback-style (non-generator) stages.

        Returns a :class:`Span` stamped ``t0 = now`` — close it with
        :meth:`close` when the deferred work completes — or ``None``
        while recording is disabled (callers pass that straight back to
        :meth:`close`, which ignores it).  This is the span idiom used
        by :meth:`repro.sim.pipeline.Port.push_after`, where the stage
        has no generator for a ``with`` block to live in.
        """
        if not self.enabled:
            return None
        self._seq += 1
        return Span(stage=stage, t0=self.sim.now, t1=0, who=who, where=where,
                    flow=flow, packet=packet, seq=self._seq)

    def close(self, span: Optional[Span]) -> None:
        """Stamp ``t1 = now`` on a span from :meth:`open` and record it."""
        if span is None:
            return
        span.t1 = self.sim.now
        self.spans.append(span)

    def event(
        self,
        stage: str,
        who: str = "",
        where: str = "",
        flow: Optional[str] = None,
        packet: Optional[int] = None,
    ) -> None:
        """Record an instantaneous (zero-duration) event at ``sim.now``."""
        if not self.enabled:
            return
        self._seq += 1
        now = self.sim.now
        self.spans.append(
            Span(stage=stage, t0=now, t1=now, who=who, where=where,
                 flow=flow, packet=packet, seq=self._seq)
        )

    def _commit(self, span: Span) -> None:
        self.spans.append(span)

    # -- queries ----------------------------------------------------------
    def of_stage(self, stage: str) -> list[Span]:
        """All recorded spans with the given stage name."""
        return [s for s in self.spans if s.stage == stage]

    def between(self, t0: int, t1: int) -> list[Span]:
        """Spans that *start* in the half-open window ``[t0, t1)``."""
        return [s for s in self.spans if t0 <= s.t0 < t1]

    def stages(self) -> list[str]:
        """Distinct stage names in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.stage, None)
        return list(seen)

    def reset(self) -> None:
        """Drop all recorded spans (the enabled flag is unchanged)."""
        self.spans.clear()


def assign_parents(spans: Iterable[Span]) -> list[Span]:
    """Structural nesting: set each span's ``parent`` to the seq of the
    tightest enclosing span emitted by the same component (``who``).

    Nesting is reconstructed post-hoc from interval containment rather
    than tracked live, because spans from different simulation processes
    interleave freely in virtual time.  Returns the spans as a list,
    sorted by ``(t0, seq)``.
    """
    ordered = sorted(spans, key=lambda s: (s.t0, s.seq))
    for i, s in enumerate(ordered):
        s.parent = None
        best: Optional[Span] = None
        for other in ordered[:i]:
            if other.who != s.who or other is s:
                continue
            if other.t0 <= s.t0 and s.t1 <= other.t1 and other.seq != s.seq:
                if best is None or (other.t0, other.seq) >= (best.t0, best.seq):
                    best = other
        if best is not None:
            s.parent = best.seq
    return ordered


def self_ns(span: Span, spans: Iterable[Span]) -> int:
    """Span duration minus the durations of its direct children.

    ``spans`` must already have parents assigned (:func:`assign_parents`).
    """
    return span.ns - sum(s.ns for s in spans if s.parent == span.seq)
