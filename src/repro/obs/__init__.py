"""Unified observability layer: per-packet spans, metrics, exporters.

``repro.obs`` is where every subsystem's instrumentation converges:

* :mod:`repro.obs.span` — per-packet **spans**: named stages of virtual
  time (``vmexit``, ``virtio-tx``, ``dispatch``, ``encap``, ``link``,
  ``decap``, ``inject``, ...) tagged with flow and packet ids.
* :mod:`repro.obs.metrics` — the always-on **metrics registry**: named
  counters, gauges, and fixed-bucket histograms that the Palacios,
  virtio, VNET core/bridge, and hardware models publish into.
* :mod:`repro.obs.context` — :class:`~repro.obs.context.Observability`,
  the per-simulator context that hands both to any component.
* :mod:`repro.obs.exporters` — JSONL dumps, Chrome ``trace_event``
  output (loadable in ``chrome://tracing`` / Perfetto), and text
  reports.
* :mod:`repro.obs.breakdown` — the *measured* Fig. 9-style latency
  breakdown, reconstructed from recorded spans and comparable
  nanosecond-for-nanosecond with the analytic model in
  :mod:`repro.harness.breakdown`.
* :mod:`repro.obs.timeline` — sim-time **time-series**: windowed
  samplers that snapshot counters/gauges/histograms on a virtual-time
  cadence into fixed-size ring buffers (rates from counter deltas,
  per-window latency percentiles).
* :mod:`repro.obs.flows` — per-packet **end-to-end records** rolled up
  from spans: one row per PDU with per-stage ns and total latency, flow
  summaries with critical-path attribution, percentile-over-time.
* :mod:`repro.obs.health` — declarative **SLO monitors and anomaly
  detectors** (goodput-collapse, latency-spike, heartbeat-silence) that
  consume timelines and emit timestamped ``HealthEvent``s.
* :mod:`repro.obs.profile` — the sim-kernel **self-profiler**: wall-time
  and event-count attribution per event category inside
  :meth:`repro.sim.core.Simulator.run`, with collapsed-stack
  (flamegraph) and Chrome-trace exports.
* :mod:`repro.obs.runinfo` — versioned :class:`~repro.obs.runinfo.RunArtifact`
  bundles: one JSON file per run carrying config fingerprint, rows,
  metrics, timelines, health, fairness scores, and profile summary.
* :mod:`repro.obs.compare` — the structured **diff engine** over two
  artifacts (exact mode for same-seed determinism, tolerance mode for
  fluid/ablation A/Bs) behind ``python -m repro obs diff``.

See ``docs/observability.md`` for the span taxonomy, metric naming
conventions, exporter schemas, artifact/diff semantics, and a worked
Chrome-trace example.
"""

from .breakdown import ping_window, recorded_one_way_breakdown
from .compare import DiffReport, Difference, diff_artifacts
from .context import Observability, capture_health, capture_metrics, capture_timelines
from .exporters import (
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    export_metrics_jsonl,
    normalize_metrics_dump,
    parse_jsonl,
    parse_metrics_jsonl,
    render_stage_report,
    stage_totals,
)
from .flows import (
    FlowSummary,
    PacketRecord,
    assemble_packet_records,
    critical_path,
    flow_summaries,
    percentile_over_time,
    register_latency_series,
    render_flow_report,
)
from .health import (
    GoodputCollapseDetector,
    HealthEvent,
    HealthHub,
    HealthLog,
    HeartbeatSilenceDetector,
    LatencySpikeDetector,
    SloMonitor,
    export_health_jsonl,
    parse_health_jsonl,
)
from .fairness import (
    FairnessScore,
    jain_fairness_index,
    link_utilization,
    publish_fairness,
    score_flows,
)
from .metrics import Counter, Gauge, Histogram, LabeledCounters, MetricsRegistry
from .profile import (
    KernelProfiler,
    ProfileReport,
    collapsed_stacks,
    combine_reports,
    profile_chrome_trace,
)
from .runinfo import RunArtifact, build_artifact, fairness_scores
from .span import CANONICAL_STAGES, Span, SpanRecorder, assign_parents, flow_id, self_ns
from .timeline import Series, Timeline, bucket_percentile, merge_dumps

__all__ = [
    "Observability",
    "capture_health",
    "capture_metrics",
    "capture_timelines",
    "FairnessScore",
    "jain_fairness_index",
    "link_utilization",
    "publish_fairness",
    "score_flows",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounters",
    "MetricsRegistry",
    "CANONICAL_STAGES",
    "Span",
    "SpanRecorder",
    "assign_parents",
    "flow_id",
    "self_ns",
    "ping_window",
    "recorded_one_way_breakdown",
    "chrome_trace",
    "export_chrome_trace",
    "export_jsonl",
    "export_metrics_jsonl",
    "parse_jsonl",
    "parse_metrics_jsonl",
    "render_stage_report",
    "stage_totals",
    "Series",
    "Timeline",
    "bucket_percentile",
    "merge_dumps",
    "PacketRecord",
    "FlowSummary",
    "assemble_packet_records",
    "flow_summaries",
    "critical_path",
    "percentile_over_time",
    "register_latency_series",
    "render_flow_report",
    "HealthEvent",
    "HealthLog",
    "HealthHub",
    "SloMonitor",
    "GoodputCollapseDetector",
    "LatencySpikeDetector",
    "HeartbeatSilenceDetector",
    "export_health_jsonl",
    "parse_health_jsonl",
    "normalize_metrics_dump",
    "KernelProfiler",
    "ProfileReport",
    "combine_reports",
    "collapsed_stacks",
    "profile_chrome_trace",
    "RunArtifact",
    "build_artifact",
    "fairness_scores",
    "Difference",
    "DiffReport",
    "diff_artifacts",
]
