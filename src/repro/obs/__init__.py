"""Unified observability layer: per-packet spans, metrics, exporters.

``repro.obs`` is where every subsystem's instrumentation converges:

* :mod:`repro.obs.span` — per-packet **spans**: named stages of virtual
  time (``vmexit``, ``virtio-tx``, ``dispatch``, ``encap``, ``link``,
  ``decap``, ``inject``, ...) tagged with flow and packet ids.
* :mod:`repro.obs.metrics` — the always-on **metrics registry**: named
  counters, gauges, and fixed-bucket histograms that the Palacios,
  virtio, VNET core/bridge, and hardware models publish into.
* :mod:`repro.obs.context` — :class:`~repro.obs.context.Observability`,
  the per-simulator context that hands both to any component.
* :mod:`repro.obs.exporters` — JSONL dumps, Chrome ``trace_event``
  output (loadable in ``chrome://tracing`` / Perfetto), and text
  reports.
* :mod:`repro.obs.breakdown` — the *measured* Fig. 9-style latency
  breakdown, reconstructed from recorded spans and comparable
  nanosecond-for-nanosecond with the analytic model in
  :mod:`repro.harness.breakdown`.

See ``docs/observability.md`` for the span taxonomy, metric naming
conventions, exporter schemas, and a worked Chrome-trace example.
"""

from .breakdown import ping_window, recorded_one_way_breakdown
from .context import Observability
from .exporters import (
    chrome_trace,
    export_chrome_trace,
    export_jsonl,
    parse_jsonl,
    render_stage_report,
    stage_totals,
)
from .metrics import Counter, Gauge, Histogram, LabeledCounters, MetricsRegistry
from .span import CANONICAL_STAGES, Span, SpanRecorder, assign_parents, flow_id, self_ns

__all__ = [
    "Observability",
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounters",
    "MetricsRegistry",
    "CANONICAL_STAGES",
    "Span",
    "SpanRecorder",
    "assign_parents",
    "flow_id",
    "self_ns",
    "ping_window",
    "recorded_one_way_breakdown",
    "chrome_trace",
    "export_chrome_trace",
    "export_jsonl",
    "parse_jsonl",
    "render_stage_report",
    "stage_totals",
]
