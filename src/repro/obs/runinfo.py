"""Versioned run artifacts: one JSON bundle per experiment (or profile) run.

A :class:`RunArtifact` is the structured record of *everything a run
observed*: the config fingerprint (code version + env knobs), the
result rows of every experiment, the merged metrics registry dump, the
timeline dumps, the health log, the derived fairness scores, and — for
profiled runs — the kernel profile summary.  Experiment runs write one
via ``python -m repro <experiment> --artifact-out run.json``; the data
rides the same :func:`~repro.obs.context.capture_metrics` /
:func:`~repro.obs.context.capture_timelines` /
:func:`~repro.obs.context.capture_health` machinery that already ships
observability across ``repro.exec`` workers and the result cache.

Artifacts exist to be *compared*: :mod:`repro.obs.compare` diffs two of
them structurally (exact mode for same-seed determinism checks,
tolerance mode for fluid/ablation A/Bs), which is what the chaos-,
flowcache-, fluid-, fairness-suite and soak CI jobs run in place of
text row diffs.  Everything in the diffable sections is simulated
(deterministic) data; wall-clock facts live in ``volatile``, which the
diff engine never reads.

Schema stability: ``schema`` is bumped on incompatible layout changes
and :func:`diff-time <repro.obs.compare.diff_artifacts>` refuses to
compare mismatched schemas.  ``to_dict``/``from_dict``/``save``/``load``
round-trip exactly (canonicalised through JSON, so tuples become lists
once, up front, not at comparison time).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Optional

from .exporters import normalize_metrics_dump

__all__ = ["RunArtifact", "build_artifact", "fairness_scores", "ARTIFACT_SCHEMA"]

#: Current artifact schema version.
ARTIFACT_SCHEMA = 1

#: Environment knobs recorded in ``config.env`` (they change which code
#: paths run, so two artifacts with different knobs are expected to
#: differ in metrics even when rows match).
ENV_KNOBS = ("REPRO_FLUID", "REPRO_FLOW_CACHE")


def _canonical(value):
    """Round-trip through JSON: tuples -> lists, keys -> str, once."""
    return json.loads(json.dumps(value))


def fairness_scores(metrics_dump: dict) -> dict:
    """Extract ``fairness.*`` gauge values from a registry dump.

    Returns ``{metric_name: value}`` for every fairness gauge the run
    published (:func:`repro.obs.fairness.publish_fairness`), so the
    scenario scores are first-class artifact data rather than needles
    in the metrics haystack.
    """
    return {
        name: float(entry["value"]) + 0.0
        for name, entry in sorted(metrics_dump.items())
        if name.startswith("fairness.") and entry.get("type") == "gauge"
    }


@dataclass
class RunArtifact:
    """One run's structured observability bundle (see module docstring).

    Diffable sections: ``config``, ``rows``, ``metrics``, ``timelines``,
    ``health``, ``fairness``.  Never diffed: ``profile`` (wall-clock
    attribution) and ``volatile`` (wall seconds etc.).
    """

    kind: str = "experiment"
    config: dict = field(default_factory=dict)
    rows: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    timelines: list = field(default_factory=list)
    health: list = field(default_factory=list)
    fairness: dict = field(default_factory=dict)
    profile: Optional[dict] = None
    volatile: dict = field(default_factory=dict)
    schema: int = ARTIFACT_SCHEMA

    def to_dict(self) -> dict:
        """JSON-canonical plain-data form (tuples already collapsed)."""
        return _canonical(
            {
                "schema": self.schema,
                "kind": self.kind,
                "config": self.config,
                "rows": self.rows,
                "metrics": self.metrics,
                "timelines": self.timelines,
                "health": self.health,
                "fairness": self.fairness,
                "profile": self.profile,
                "volatile": self.volatile,
            }
        )

    @classmethod
    def from_dict(cls, d: dict) -> "RunArtifact":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=d.get("kind", "experiment"),
            config=d.get("config", {}),
            rows=d.get("rows", {}),
            metrics=d.get("metrics", {}),
            timelines=d.get("timelines", []),
            health=d.get("health", []),
            fairness=d.get("fairness", {}),
            profile=d.get("profile"),
            volatile=d.get("volatile", {}),
            schema=d.get("schema", ARTIFACT_SCHEMA),
        )

    def save(self, path: str) -> None:
        """Write the artifact as indented, key-sorted JSON."""
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(self.to_dict(), fp, indent=1, sort_keys=True)
            fp.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunArtifact":
        """Read an artifact written by :meth:`save`."""
        with open(path, encoding="utf-8") as fp:
            return cls.from_dict(json.load(fp))


def build_artifact(
    engine,
    results,
    kind: str = "experiment",
    extra_config: Optional[dict] = None,
    profile: Optional[dict] = None,
) -> RunArtifact:
    """Assemble a :class:`RunArtifact` from an engine and its results.

    ``engine`` is a :class:`repro.exec.Engine` whose points have run
    (its merged metrics, collected timeline dumps, and captured health
    events become the artifact's respective sections); ``results`` is an
    iterable of :class:`repro.harness.report.ExperimentResult`.  The
    config fingerprint is the package code version
    (:func:`repro.exec.fingerprint.code_version`) plus the recorded
    :data:`ENV_KNOBS`; ``extra_config`` entries (experiment names, jobs,
    quick flag) merge on top.
    """
    from ..exec.fingerprint import code_version

    config = {
        "code_version": code_version(),
        "env": {knob: os.environ.get(knob, "") for knob in ENV_KNOBS},
    }
    if extra_config:
        config.update(extra_config)
    metrics = normalize_metrics_dump(engine.metrics.dump())
    return RunArtifact(
        kind=kind,
        config=config,
        rows={res.experiment_id: list(res.rows) for res in results},
        metrics=metrics,
        timelines=list(engine.timelines),
        health=list(getattr(engine, "health_events", [])),
        fairness=fairness_scores(metrics),
        profile=profile,
        volatile={
            "wall_s": float(engine.metrics.gauge("exec.points.wall_s").value),
            "points_total": engine.points_total,
            "points_executed": engine.points_executed,
            "points_cached": engine.points_cached,
        },
    )
