"""Fairness scoring: Jain's Fairness Index and utilization×JFI.

The fairness experiment family (:mod:`repro.harness.experiments.fairness`)
runs competing flows over a shared bottleneck and scores the allocation
the Reno machinery converges to.  Two first-class metrics:

* **Jain's Fairness Index** over per-flow goodputs ``x_i``::

      JFI = (Σ x_i)² / (n · Σ x_i²)

  bounded in ``[1/n, 1]``: 1 when every flow gets an equal share,
  ``1/n`` when one flow starves all others.
* **Utilization** of the bottleneck: aggregate goodput over the link's
  line rate, in ``[0, 1]`` (goodput counts application bytes, so
  header/encapsulation overhead keeps it below 1 even when saturated).
  A *raw* reading above 1.0 is physically impossible at a real
  bottleneck and means part of the traffic was modelled analytically
  (the fluid fast path cannot see packet-level UDP sharing the link,
  so the captured flow's rate model over-grants); the published
  ``utilization`` is therefore **clamped to 1.0**, the unclamped value
  stays available as ``utilization_raw``, and the
  ``utilization_estimated`` flag marks scores whose raw reading
  exceeded the line rate — downstream floors/gates never consume an
  impossible value unknowingly.

Their product (``score = JFI × utilization``) rewards allocations that
are simultaneously fair *and* efficient — a starved link can be
perfectly fair and a monopolised link perfectly efficient; neither
scores well.

:func:`publish_fairness` records the scores as gauges
(``fairness.<scenario>.{jfi,utilization,utilization_raw,
utilization_estimated,score}``) in the simulation's
:class:`~repro.obs.metrics.MetricsRegistry`, so they ride the existing
metrics dump/merge machinery into experiment results,
:class:`~repro.obs.runinfo.RunArtifact` bundles, and CI diffs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .metrics import MetricsRegistry

__all__ = [
    "FairnessScore",
    "jain_fairness_index",
    "link_utilization",
    "publish_fairness",
    "score_flows",
]


def jain_fairness_index(values: Iterable[float]) -> float:
    """Jain's Fairness Index of ``values``; 1.0 for an empty/all-zero set.

    ``(Σx)²/(n·Σx²)``, bounded in ``[1/n, 1]`` for non-negative inputs.
    An empty or all-zero allocation is vacuously fair (everybody gets
    nothing equally), so it maps to 1.0 rather than dividing by zero.
    """
    xs = [float(v) for v in values]
    if any(x < 0 for x in xs):
        raise ValueError(f"negative allocation in {xs!r}")
    total = sum(xs)
    if not xs or total == 0.0:
        return 1.0
    # Normalise by the peak before squaring: JFI is scale-invariant, and
    # working in [0, 1] keeps x² from under/overflowing for extreme
    # goodputs (a subnormal allocation must not divide by zero).
    peak = max(xs)
    scaled = [x / peak for x in xs]
    total = sum(scaled)
    return total * total / (len(xs) * sum(x * x for x in scaled))


def link_utilization(goodput_bytes: float, elapsed_ns: float, rate_bps: float) -> float:
    """Fraction of ``rate_bps`` the aggregate goodput achieved.

    ``goodput_bytes`` are application bytes delivered over ``elapsed_ns``
    of simulated time; the result is not clamped, so a value above 1.0
    (impossible at a real bottleneck) would expose an accounting bug.
    """
    if elapsed_ns <= 0 or rate_bps <= 0:
        raise ValueError("elapsed_ns and rate_bps must be positive")
    return (goodput_bytes * 8.0 * 1e9 / elapsed_ns) / rate_bps


@dataclass(frozen=True)
class FairnessScore:
    """One scenario's fairness verdict: per-flow goodputs + derived scores.

    ``utilization`` is the *reported* (clamped-to-1.0) value every
    downstream consumer — floors, gates, scores — reads;
    ``utilization_raw`` keeps the unclamped measurement for forensics.
    A directly-constructed score may leave ``utilization_raw`` as NaN,
    in which case it defaults to the reported value.
    """

    scenario: str
    goodputs_bps: tuple[float, ...]
    jfi: float
    utilization: float
    utilization_raw: float = math.nan

    @property
    def raw_utilization(self) -> float:
        """The unclamped utilization (falls back to the reported value)."""
        if math.isnan(self.utilization_raw):
            return self.utilization
        return self.utilization_raw

    @property
    def utilization_estimated(self) -> bool:
        """True when the raw utilization exceeded 1.0 (impossible at a
        real bottleneck), i.e. part of the traffic was modelled
        analytically and the reported value was clamped."""
        return self.raw_utilization > 1.0

    @property
    def score(self) -> float:
        """The combined utilization×JFI figure of merit (clamped input)."""
        return self.jfi * min(self.utilization, 1.0)


def score_flows(
    scenario: str,
    goodput_bytes: Sequence[float],
    elapsed_ns: float,
    rate_bps: float,
) -> FairnessScore:
    """Build a :class:`FairnessScore` from raw per-flow byte counts.

    The reported ``utilization`` is clamped to 1.0; the unclamped
    measurement lands in ``utilization_raw`` and raises the
    :attr:`FairnessScore.utilization_estimated` flag when it was
    impossible (> 1.0) — see the module docstring for why that happens
    under ``REPRO_FLUID=1`` with packet-level background traffic.
    """
    goodputs = tuple(b * 8.0 * 1e9 / elapsed_ns for b in goodput_bytes)
    raw = link_utilization(sum(goodput_bytes), elapsed_ns, rate_bps)
    return FairnessScore(
        scenario=scenario,
        goodputs_bps=goodputs,
        jfi=jain_fairness_index(goodput_bytes),
        utilization=min(raw, 1.0),
        utilization_raw=raw,
    )


def publish_fairness(
    metrics: Optional[MetricsRegistry], result: FairnessScore
) -> FairnessScore:
    """Record ``result`` as ``fairness.<scenario>.*`` gauges; returns it.

    Publishes ``jfi``, the clamped ``utilization``, the unclamped
    ``utilization_raw``, the ``utilization_estimated`` flag (1.0 when
    the raw value was impossible, else 0.0), and ``score``.  A ``None``
    registry is a no-op passthrough so scoring helpers work outside a
    simulation (unit tests, offline analysis).
    """
    if metrics is not None:
        base = f"fairness.{result.scenario}"
        metrics.gauge(f"{base}.jfi").set(result.jfi)
        metrics.gauge(f"{base}.utilization").set(result.utilization)
        metrics.gauge(f"{base}.utilization_raw").set(result.raw_utilization)
        metrics.gauge(f"{base}.utilization_estimated").set(
            1.0 if result.utilization_estimated else 0.0
        )
        metrics.gauge(f"{base}.score").set(result.score)
    return result
