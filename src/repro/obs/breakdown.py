"""Recorded-span latency breakdown: the measured counterpart of
:mod:`repro.harness.breakdown`.

The analytic model in ``harness/breakdown.py`` *predicts* where each
microsecond of the VNET/P one-way path goes by walking the cost model.
This module *measures* the same thing: given a span recording of a ping
(``icmp-tx`` on the sender's stack through ``icmp-rx`` on the receiver's
stack), it cuts out the one-way window of the request packet and
aggregates the spans inside it by stage.

Because the instrumentation brackets exactly the virtual-time charges
the analytic model enumerates, the recorded stage sums agree with
``vnetp_one_way_breakdown`` to the nanosecond on a noise-free host with
warm route caches — the consistency check ``tests/obs`` enforces.  (The
re-entry stage overlaps the bridge stages in *wall-clock* virtual time;
the breakdown sums span durations, as the analytic table does, so the
overlap does not desynchronise the two views.)
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .span import Span, SpanRecorder, STAGE_ICMP_RX, STAGE_ICMP_TX

if TYPE_CHECKING:  # pragma: no cover
    from ..harness.breakdown import Stage

__all__ = ["ping_window", "recorded_one_way_breakdown", "render_recorded"]


def ping_window(
    recorder: SpanRecorder, src_stack: str, dst_stack: str, nth: int = -1
) -> list[Span]:
    """Spans of the one-way request path of the ``nth`` recorded ping.

    The window opens at the start of the ``nth`` ``icmp-tx`` span emitted
    by ``src_stack`` and closes at the end of the first ``icmp-rx`` span
    ``dst_stack`` emits after that; every span *starting* inside the
    half-open window belongs to the request's journey (the reply's first
    span starts exactly at the window's close and is excluded).  Assumes
    a quiescent path — i.e. ping-style probing, not streaming traffic.
    """
    txs = [s for s in recorder.spans if s.stage == STAGE_ICMP_TX and s.who == src_stack]
    if not txs:
        raise ValueError(f"no {STAGE_ICMP_TX!r} spans recorded for {src_stack!r}")
    w0 = txs[nth].t0
    rxs = [
        s
        for s in recorder.spans
        if s.stage == STAGE_ICMP_RX and s.who == dst_stack and s.t0 >= w0
    ]
    if not rxs:
        raise ValueError(
            f"no {STAGE_ICMP_RX!r} span on {dst_stack!r} after t={w0} "
            "(did the echo request arrive?)"
        )
    w1 = min(rxs, key=lambda s: s.t0).t1
    return recorder.between(w0, w1)


def recorded_one_way_breakdown(
    recorder: SpanRecorder, src_stack: str, dst_stack: str, nth: int = -1
) -> list["Stage"]:
    """Per-stage one-way breakdown measured from recorded spans.

    Returns :class:`repro.harness.breakdown.Stage` entries (stage name,
    layer, summed nanoseconds) in path order, so the result renders with
    the same table code as the analytic breakdown and the two totals can
    be compared directly.
    """
    from ..harness.breakdown import Stage

    window = ping_window(recorder, src_stack, dst_stack, nth=nth)
    totals: dict[str, int] = {}
    wheres: dict[str, str] = {}
    for s in sorted(window, key=lambda s: (s.t0, s.seq)):
        totals[s.stage] = totals.get(s.stage, 0) + s.ns
        wheres.setdefault(s.stage, s.where)
    return [Stage(name=k, where=wheres[k], ns=v) for k, v in totals.items()]


def render_recorded(stages: list["Stage"]) -> str:
    """Render a recorded breakdown with the analytic table's formatter."""
    from ..harness.breakdown import render

    return render(stages)
