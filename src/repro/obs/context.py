"""Per-simulation observability context.

One :class:`Observability` instance pairs a :class:`~repro.obs.span.SpanRecorder`
with a :class:`~repro.obs.metrics.MetricsRegistry` for one
:class:`~repro.sim.Simulator`.  Components obtain it with
``Observability.of(sim)`` at construction time; the instance is created
lazily and cached on the simulator, so every subsystem sharing a
simulator shares one recorder and one registry — without the simulation
kernel itself knowing anything about observability.

Typical use::

    from repro.obs.context import Observability

    obs = Observability.of(tb.sim)
    obs.spans.enabled = True          # opt into span recording
    ... run the workload ...
    obs.metrics.snapshot("vnet.")     # counters are always on
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .metrics import MetricsRegistry
from .span import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

__all__ = ["Observability"]

_ATTR = "_repro_obs"


class Observability:
    """Span recorder + metrics registry for one simulation."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.spans = SpanRecorder(sim)
        self.metrics = MetricsRegistry()

    @classmethod
    def of(cls, sim: "Simulator") -> "Observability":
        """The simulator's observability context (created on first use)."""
        obs = getattr(sim, _ATTR, None)
        if obs is None:
            obs = cls(sim)
            setattr(sim, _ATTR, obs)
        return obs

    def reset(self) -> None:
        """Drop recorded spans and zero all metrics."""
        self.spans.reset()
        self.metrics.reset()
