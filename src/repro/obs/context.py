"""Per-simulation observability context.

One :class:`Observability` instance pairs a :class:`~repro.obs.span.SpanRecorder`
with a :class:`~repro.obs.metrics.MetricsRegistry` for one
:class:`~repro.sim.Simulator`.  Components obtain it with
``Observability.of(sim)`` at construction time; the instance is created
lazily and cached on the simulator, so every subsystem sharing a
simulator shares one recorder and one registry — without the simulation
kernel itself knowing anything about observability.

Typical use::

    from repro.obs.context import Observability

    obs = Observability.of(tb.sim)
    obs.spans.enabled = True          # opt into span recording
    ... run the workload ...
    obs.metrics.snapshot("vnet.")     # counters are always on
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional

from .metrics import MetricsRegistry
from .span import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator
    from .health import HealthHub
    from .timeline import Timeline

__all__ = ["Observability", "capture_metrics", "capture_timelines", "capture_health"]

_ATTR = "_repro_obs"

# Active capture buckets (a stack, innermost last).  While non-empty,
# every newly created Observability registers its MetricsRegistry in the
# innermost bucket; repro.exec uses this to collect the metrics of every
# simulation an experiment point builds, without the point function
# having to thread a registry through.
_capture_stack: list[list[MetricsRegistry]] = []

# Same idea for timelines, except registration happens lazily on first
# access of ``Observability.timeline`` — so simulations that never
# sample a series contribute nothing (and pay nothing).
_timeline_capture_stack: list[list["Timeline"]] = []

# And for health hubs: lazily registered on first access of
# ``Observability.health``, so untouched hubs contribute nothing.
_health_capture_stack: list[list["HealthHub"]] = []


@contextmanager
def capture_metrics() -> Iterator[list[MetricsRegistry]]:
    """Collect the metrics registry of every simulation created inside.

    Yields a list that fills with one :class:`MetricsRegistry` per
    :class:`Observability` instantiated while the context is active —
    i.e. one per simulator whose components publish metrics.  Captures
    nest; registries land in the innermost active capture only.
    """
    bucket: list[MetricsRegistry] = []
    _capture_stack.append(bucket)
    try:
        yield bucket
    finally:
        _capture_stack.pop()


@contextmanager
def capture_timelines() -> Iterator[list["Timeline"]]:
    """Collect the timeline of every simulation that samples one inside.

    The counterpart of :func:`capture_metrics` for time-series:
    :mod:`repro.exec` wraps point functions in this so each worker's
    sampled series can be shipped back (``Timeline.dump``) and merged
    across processes (:func:`repro.obs.timeline.merge_dumps`).  Only
    simulations that actually touch ``Observability.timeline`` appear.
    """
    bucket: list["Timeline"] = []
    _timeline_capture_stack.append(bucket)
    try:
        yield bucket
    finally:
        _timeline_capture_stack.pop()


@contextmanager
def capture_health() -> Iterator[list["HealthHub"]]:
    """Collect the health hub of every simulation that touches one inside.

    The third capture dimension (:func:`capture_metrics` for totals,
    :func:`capture_timelines` for time-series, this for event logs):
    :mod:`repro.exec` wraps point functions in it so each worker's
    :class:`~repro.obs.health.HealthEvent`\\ s ship back to the parent
    and land in :class:`~repro.obs.runinfo.RunArtifact` bundles.  Only
    simulations that actually touch ``Observability.health`` appear.
    """
    bucket: list["HealthHub"] = []
    _health_capture_stack.append(bucket)
    try:
        yield bucket
    finally:
        _health_capture_stack.pop()


class Observability:
    """Span recorder + metrics registry (+ lazy timeline/health) for one
    simulation."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.spans = SpanRecorder(sim)
        self.metrics = MetricsRegistry()
        self._timeline: Optional["Timeline"] = None
        self._health: Optional["HealthHub"] = None
        if _capture_stack:
            _capture_stack[-1].append(self.metrics)

    @classmethod
    def of(cls, sim: "Simulator") -> "Observability":
        """The simulator's observability context (created on first use)."""
        obs = getattr(sim, _ATTR, None)
        if obs is None:
            obs = cls(sim)
            setattr(sim, _ATTR, obs)
        return obs

    @property
    def timeline(self) -> "Timeline":
        """The simulation's time-series store (created on first access).

        Nothing is sampled — and no simulator process exists — until
        series are registered and :meth:`~repro.obs.timeline.Timeline.start`
        is called, so merely importing this property costs nothing.
        """
        if self._timeline is None:
            from .timeline import Timeline

            self._timeline = Timeline(self.sim, self.metrics)
            if _timeline_capture_stack:
                _timeline_capture_stack[-1].append(self._timeline)
        return self._timeline

    @property
    def health(self) -> "HealthHub":
        """The simulation's health hub (created on first access).

        Instrumented subsystems emit :class:`~repro.obs.health.HealthEvent`s
        into ``health.log``; detectors registered on the hub piggyback
        on the timeline's sampling cadence via
        :meth:`~repro.obs.health.HealthHub.attach_to`.
        """
        if self._health is None:
            from .health import HealthHub

            self._health = HealthHub()
            if _health_capture_stack:
                _health_capture_stack[-1].append(self._health)
        return self._health

    @property
    def health_active(self) -> bool:
        """True once the health hub has been touched (cheap guard for
        emitters: ``if obs.health_active: obs.health.log.emit(...)`` —
        but emitters may also just emit unconditionally; the hub is
        tiny)."""
        return self._health is not None

    def reset(self) -> None:
        """Drop recorded spans, zero all metrics, clear timeline/health."""
        self.spans.reset()
        self.metrics.reset()
        self._timeline = None
        if self._health is not None:
            self._health.log.reset()
