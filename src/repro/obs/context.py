"""Per-simulation observability context.

One :class:`Observability` instance pairs a :class:`~repro.obs.span.SpanRecorder`
with a :class:`~repro.obs.metrics.MetricsRegistry` for one
:class:`~repro.sim.Simulator`.  Components obtain it with
``Observability.of(sim)`` at construction time; the instance is created
lazily and cached on the simulator, so every subsystem sharing a
simulator shares one recorder and one registry — without the simulation
kernel itself knowing anything about observability.

Typical use::

    from repro.obs.context import Observability

    obs = Observability.of(tb.sim)
    obs.spans.enabled = True          # opt into span recording
    ... run the workload ...
    obs.metrics.snapshot("vnet.")     # counters are always on
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from .metrics import MetricsRegistry
from .span import SpanRecorder

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

__all__ = ["Observability", "capture_metrics"]

_ATTR = "_repro_obs"

# Active capture buckets (a stack, innermost last).  While non-empty,
# every newly created Observability registers its MetricsRegistry in the
# innermost bucket; repro.exec uses this to collect the metrics of every
# simulation an experiment point builds, without the point function
# having to thread a registry through.
_capture_stack: list[list[MetricsRegistry]] = []


@contextmanager
def capture_metrics() -> Iterator[list[MetricsRegistry]]:
    """Collect the metrics registry of every simulation created inside.

    Yields a list that fills with one :class:`MetricsRegistry` per
    :class:`Observability` instantiated while the context is active —
    i.e. one per simulator whose components publish metrics.  Captures
    nest; registries land in the innermost active capture only.
    """
    bucket: list[MetricsRegistry] = []
    _capture_stack.append(bucket)
    try:
        yield bucket
    finally:
        _capture_stack.pop()


class Observability:
    """Span recorder + metrics registry for one simulation."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.spans = SpanRecorder(sim)
        self.metrics = MetricsRegistry()
        if _capture_stack:
            _capture_stack[-1].append(self.metrics)

    @classmethod
    def of(cls, sim: "Simulator") -> "Observability":
        """The simulator's observability context (created on first use)."""
        obs = getattr(sim, _ATTR, None)
        if obs is None:
            obs = cls(sim)
            setattr(sim, _ATTR, obs)
        return obs

    def reset(self) -> None:
        """Drop recorded spans and zero all metrics."""
        self.spans.reset()
        self.metrics.reset()
