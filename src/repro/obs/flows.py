"""Per-flow latency analysis: end-to-end packet records built from spans.

Spans (:mod:`repro.obs.span`) are per-*stage*; operators reason per
*flow*.  This module rolls a span recording up into one
:class:`PacketRecord` per PDU — every span tagged with the same
``(flow, packet)`` pair becomes one row with per-stage nanoseconds and
the end-to-end elapsed time — and then into per-flow
:class:`FlowSummary` rows with exact percentiles and **critical-path
attribution**: which stage dominates the packets in the flow's p99
tail, and what share of their time it eats.

The datapath instrumentation stamps ``packet`` lazily from the PDU the
``flow_of=`` argument already carries (see
:meth:`repro.obs.span.SpanRecorder.span`), so assembling records needs
no extra instrumentation and costs nothing while spans are off.

Feeding the time dimension: :func:`percentile_over_time` bins packet
records into windows and yields a latency-percentile curve, and
:func:`register_latency_series` wires that curve into a
:class:`~repro.obs.timeline.Timeline` as a live sampled series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional, Union

from .span import Span

if TYPE_CHECKING:  # pragma: no cover
    from .span import SpanRecorder
    from .timeline import Series, Timeline

__all__ = [
    "PacketRecord",
    "FlowSummary",
    "assemble_packet_records",
    "flow_summaries",
    "critical_path",
    "percentile_over_time",
    "register_latency_series",
    "render_flow_report",
]

PacketId = Union[int, str]


@dataclass
class PacketRecord:
    """One PDU's end-to-end journey, rolled up from its spans.

    ``stage_ns`` sums every span of each stage this packet crossed (a
    retransmitted segment may cross a stage twice); ``elapsed_ns`` is
    first-span-start to last-span-end (the one-way latency when the
    recording covers one direction, the RTT when it covers both);
    ``busy_ns`` is the sum of stage times, which differs from elapsed
    when stages overlap (cut-through) or the packet sits in queues.
    """

    flow: str
    packet: PacketId
    t0: int
    t1: int
    stage_ns: dict[str, int] = field(default_factory=dict)
    spans: int = 0

    @property
    def elapsed_ns(self) -> int:
        """End-to-end wall (virtual) time: last span end - first start."""
        return self.t1 - self.t0

    @property
    def busy_ns(self) -> int:
        """Sum of per-stage durations (excludes queueing gaps)."""
        return sum(self.stage_ns.values())


@dataclass
class FlowSummary:
    """Latency distribution + critical path of one flow's packets."""

    flow: str
    packets: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    max_ns: int
    critical_stage: str
    critical_share: float


def assemble_packet_records(
    spans: Iterable[Span], flow: Optional[str] = None
) -> list[PacketRecord]:
    """One :class:`PacketRecord` per ``(flow, packet)``, in first-seen order.

    Spans without a packet id (pure control/bookkeeping spans) are
    skipped; pass ``flow`` to restrict to a single flow id.
    """
    records: dict[tuple[str, PacketId], PacketRecord] = {}
    for s in spans:
        if s.packet is None or s.flow is None:
            continue
        if flow is not None and s.flow != flow:
            continue
        key = (s.flow, s.packet)
        rec = records.get(key)
        if rec is None:
            rec = PacketRecord(flow=s.flow, packet=s.packet, t0=s.t0, t1=s.t1)
            records[key] = rec
        else:
            rec.t0 = min(rec.t0, s.t0)
            rec.t1 = max(rec.t1, s.t1)
        rec.stage_ns[s.stage] = rec.stage_ns.get(s.stage, 0) + s.ns
        rec.spans += 1
    return list(records.values())


def _percentile(sorted_ns: list[int], q: float) -> float:
    """Exact linear-interpolated percentile of a pre-sorted sample."""
    if not sorted_ns:
        raise ValueError("percentile of empty sample")
    if len(sorted_ns) == 1:
        return float(sorted_ns[0])
    rank = q / 100 * (len(sorted_ns) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_ns) - 1)
    frac = rank - lo
    return sorted_ns[lo] + (sorted_ns[hi] - sorted_ns[lo]) * frac


def critical_path(records: Iterable[PacketRecord], q: float = 99.0
                  ) -> tuple[str, float]:
    """Which stage dominates the ``q``-th percentile tail, and its share.

    Takes the packets at or above the ``q``-th elapsed-time percentile,
    sums their per-stage nanoseconds, and returns ``(stage, share)``
    for the largest contributor — "this flow's p99 is an `encap`
    problem, and encap is 42 % of those packets' time".
    """
    records = list(records)
    if not records:
        raise ValueError("critical_path of no records")
    cut = _percentile(sorted(r.elapsed_ns for r in records), q)
    tail = [r for r in records if r.elapsed_ns >= cut] or records
    totals: dict[str, int] = {}
    for r in tail:
        for stage, ns in r.stage_ns.items():
            totals[stage] = totals.get(stage, 0) + ns
    grand = sum(totals.values())
    if grand == 0:
        return "", 0.0
    stage = max(totals, key=lambda k: (totals[k], k))
    return stage, totals[stage] / grand


def flow_summaries(records: Iterable[PacketRecord]) -> list[FlowSummary]:
    """Per-flow rollup of packet records, largest flows first."""
    by_flow: dict[str, list[PacketRecord]] = {}
    for r in records:
        by_flow.setdefault(r.flow, []).append(r)
    out = []
    for flow, recs in by_flow.items():
        ns = sorted(r.elapsed_ns for r in recs)
        stage, share = critical_path(recs)
        out.append(
            FlowSummary(
                flow=flow,
                packets=len(recs),
                mean_ns=sum(ns) / len(ns),
                p50_ns=_percentile(ns, 50),
                p99_ns=_percentile(ns, 99),
                max_ns=ns[-1],
                critical_stage=stage,
                critical_share=share,
            )
        )
    out.sort(key=lambda s: (-s.packets, s.flow))
    return out


def percentile_over_time(
    records: Iterable[PacketRecord], window_ns: int, q: float = 99.0
) -> list[tuple[int, float]]:
    """Latency percentile per time window: ``(window_end_ns, pq_ns)``.

    Packets are binned by *completion* time (``t1``); windows with no
    completed packet are omitted.  This is the post-hoc counterpart of
    a live :meth:`~repro.obs.timeline.Timeline.histogram_percentile`
    series — exact, but requiring a full span recording.
    """
    if window_ns <= 0:
        raise ValueError(f"window must be positive, got {window_ns}")
    bins: dict[int, list[int]] = {}
    for r in records:
        bins.setdefault(r.t1 // window_ns, []).append(r.elapsed_ns)
    out = []
    for b in sorted(bins):
        out.append(((b + 1) * window_ns, _percentile(sorted(bins[b]), q)))
    return out


def register_latency_series(
    timeline: "Timeline", recorder: "SpanRecorder", q: float = 99.0,
    series: Optional[str] = None, flow: Optional[str] = None,
    grace_ns: Optional[int] = None,
) -> "Series":
    """Feed a live flow-latency percentile series into ``timeline``.

    Each tick consumes the spans recorded since the last tick and folds
    them into per-packet records; a packet is deemed *complete* — and
    contributes to that tick's ``q``-th percentile sample — once it has
    seen no span for ``grace_ns`` (default: one sampling interval), so
    packets whose journey straddles a tick boundary are never split
    into two partial records.  Windows in which nothing completed
    sample NaN.
    """
    import math

    if grace_ns is None:
        grace_ns = timeline.interval_ns
    state = [0]  # index of the first unconsumed span
    pending: dict[tuple[str, PacketId], PacketRecord] = {}

    def sample(now_ns: int) -> float:
        spans = recorder.spans
        for s in spans[state[0]:]:
            if s.packet is None or s.flow is None:
                continue
            if flow is not None and s.flow != flow:
                continue
            key = (s.flow, s.packet)
            rec = pending.get(key)
            if rec is None:
                pending[key] = rec = PacketRecord(
                    flow=s.flow, packet=s.packet, t0=s.t0, t1=s.t1
                )
            else:
                rec.t0 = min(rec.t0, s.t0)
                rec.t1 = max(rec.t1, s.t1)
            rec.stage_ns[s.stage] = rec.stage_ns.get(s.stage, 0) + s.ns
            rec.spans += 1
        state[0] = len(spans)
        done = [k for k, r in pending.items() if r.t1 + grace_ns <= now_ns]
        if not done:
            return math.nan
        finished = [pending.pop(k) for k in done]
        return _percentile(sorted(r.elapsed_ns for r in finished), q)

    name = series or (f"flows.{flow}.p{q:g}" if flow else f"flows.p{q:g}")
    return timeline.record(name, sample, unit="ns")


def render_flow_report(summaries: Iterable[FlowSummary],
                       title: str = "recorded flows") -> str:
    """Text table: one row per flow with percentiles and critical path."""
    lines = [
        f"== per-flow latency ({title}) ==",
        f"{'flow':36} {'pkts':>6} {'p50 us':>9} {'p99 us':>9} "
        f"{'max us':>9} {'p99 critical path':>22}",
    ]
    for s in summaries:
        crit = f"{s.critical_stage} ({s.critical_share:.0%})"
        lines.append(
            f"{s.flow:36} {s.packets:6d} {s.p50_ns / 1000:9.2f} "
            f"{s.p99_ns / 1000:9.2f} {s.max_ns / 1000:9.2f} {crit:>22}"
        )
    return "\n".join(lines)
