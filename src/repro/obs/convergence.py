"""Overlay convergence metrics: how fast a provisioned fabric comes up.

Cloud provisioning of an HPC overlay has a distinct observable the
steady-state benchmarks never see: the interval between "start pushing
configuration" and "every host's overlay is routable".  This module
tracks it in *simulated* time — per-host ready timestamps, a running
counter suitable for :class:`~repro.obs.timeline.Timeline` rate series,
and health-log breadcrumbs — so provisioning experiments report
convergence deterministically.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator
from .health import HealthLog
from .metrics import MetricsRegistry

__all__ = ["ConvergenceTracker"]


class ConvergenceTracker:
    """Records when each host's overlay configuration finishes applying.

    ``host_ready(name)`` is called (in simulated time) by the
    provisioner as each host's last command lands; once ``expected``
    hosts have reported, the overlay is *converged* and
    :attr:`converged_ns` freezes.  A ``topo.hosts_ready`` counter is
    kept in ``metrics`` (when given) so a timeline can plot the ramp,
    and per-host / convergence events go to ``health`` (when given).
    """

    READY_COUNTER = "topo.hosts_ready"

    def __init__(
        self,
        sim: Simulator,
        expected: int,
        metrics: Optional[MetricsRegistry] = None,
        health: Optional[HealthLog] = None,
    ):
        self.sim = sim
        self.expected = expected
        self.metrics = metrics
        self.health = health
        self.ready_ns: dict[str, int] = {}
        self.start_ns: int = sim.now
        self.converged_ns: Optional[int] = None

    def host_ready(self, name: str) -> None:
        """Mark ``name``'s overlay configuration as fully applied."""
        if name in self.ready_ns:
            return
        now = self.sim.now
        self.ready_ns[name] = now
        if self.metrics is not None:
            self.metrics.counter(self.READY_COUNTER).inc()
        if self.health is not None:
            self.health.emit(now, "provisioner", "host-provisioned",
                             message=name, value=float(len(self.ready_ns)))
        if len(self.ready_ns) >= self.expected and self.converged_ns is None:
            self.converged_ns = now
            if self.health is not None:
                self.health.emit(now, "provisioner", "overlay-converged",
                                 value=float(now - self.start_ns))

    @property
    def converged(self) -> bool:
        """True once every expected host has reported ready."""
        return self.converged_ns is not None

    @property
    def convergence_ns(self) -> Optional[int]:
        """Simulated ns from tracker creation to full convergence."""
        if self.converged_ns is None:
            return None
        return self.converged_ns - self.start_ns

    def ramp(self) -> list[tuple[int, int]]:
        """``(t_ns, hosts_ready)`` steps, sorted by time — the
        convergence ramp for plotting or assertions."""
        times = sorted(self.ready_ns.values())
        return [(t, i + 1) for i, t in enumerate(times)]
