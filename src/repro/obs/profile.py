"""Sim-kernel self-profiler: wall-clock attribution per event category.

``BENCH_sim.json`` says how fast the simulator is; this module says
*where the wall time goes*.  A :class:`KernelProfiler` installs into a
:class:`~repro.sim.core.Simulator` and, while enabled, replaces the
kernel's inlined run loop with a schedule-identical instrumented mirror
that timestamps every event with ``time.perf_counter_ns`` and charges
the elapsed wall time to a **category**:

* ``proc:<name>`` — events that resume a named simulator process
  (trailing ``.N`` instance indices are folded, so ``fair.server.0``
  and ``fair.server.1`` aggregate under ``proc:fair.server``).  Fluid
  strides show up here as ``proc:sim.fluid.strides``, timeline sampling
  as ``proc:obs.timeline``, and so on.
* ``cb:<Class.method>`` — events whose first callback is a bound method
  of a non-process object.
* ``fn:<qualname>`` — plain-function callbacks.
* ``evt:<EventClass>`` — events with no callbacks at all.
* ``kernel.advance`` — time spent advancing the clock (heap pops +
  slot transfers), the kernel's own share.

The attribution is *complete by construction*: successive timestamps
partition the run loop's wall time, so the category totals plus the
advance bucket reconcile with the measured run() wall time (the ±5 %
acceptance check in ``tests/obs/test_profile.py`` — the residual is
loop entry/exit and the timestamps themselves).

Determinism: the profiler never touches the event schedule — simulated
results are bit-identical with the profiler attached, disabled or
enabled (``obs_overhead`` in ``tools/simbench.py`` gates both the
identity and the <=2 % disabled-overhead budget).  ``perf_counter_ns``
reads never feed back into simulation state, so the determinism lint
(``tools/check_determinism.py``) stays happy.

Exports: :func:`collapsed_stacks` (flamegraph collapsed-stack format,
feed to ``flamegraph.pl`` or speedscope) and :func:`profile_chrome_trace`
(Chrome ``trace_event`` object).  CLI: ``python -m repro obs profile``.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from heapq import heappop
from sys import getrefcount
from typing import Any, Optional

from ..sim.core import _PROCESSED, Event, Process, SimulationError, Simulator, Timeout

__all__ = [
    "KernelProfiler",
    "ProfileReport",
    "combine_reports",
    "collapsed_stacks",
    "profile_chrome_trace",
]

#: Schema version of :meth:`ProfileReport.to_dict`.
PROFILE_SCHEMA = 1

# Trailing instance indices on process names: "fair.server.0" and
# "fair.server.1" are the same *kind* of work.
_INDEX_SUFFIX = re.compile(r"(\.\d+)+$")


def _category(event: Event) -> str:
    """The attribution category for one event (see module docstring)."""
    callbacks = event.callbacks
    if callbacks:
        cb = callbacks[0]
        bound = getattr(cb, "__self__", None)
        if isinstance(bound, Process):
            return "proc:" + _INDEX_SUFFIX.sub("", bound.name)
        if bound is not None:
            return f"cb:{type(bound).__name__}.{cb.__name__}"
        qualname = getattr(cb, "__qualname__", None) or type(cb).__name__
        return "fn:" + qualname.replace(".<locals>", "")
    return "evt:" + type(event).__name__


@dataclass
class ProfileReport:
    """Aggregated attribution of one (or several merged) profiled runs.

    ``categories`` maps category name to ``{"events": int, "wall_ns": int}``;
    ``advance_ns``/``heap_pops`` are the kernel's clock-advance share;
    ``annotations`` carries subsystem context read off the simulation's
    metrics after the run (flow-cache hits vs. full-chain walks, fluid
    capture/stride counts) — free, because it is not hot-path data.
    """

    total_wall_ns: int = 0
    events: int = 0
    advance_ns: int = 0
    heap_pops: int = 0
    runs: int = 0
    categories: dict = field(default_factory=dict)
    annotations: dict = field(default_factory=dict)
    schema: int = PROFILE_SCHEMA

    @property
    def attributed_ns(self) -> int:
        """Sum of all category wall time plus the clock-advance bucket."""
        return self.advance_ns + sum(c["wall_ns"] for c in self.categories.values())

    def to_dict(self) -> dict:
        """JSON-serialisable form (stable, versioned via ``schema``)."""
        return {
            "schema": self.schema,
            "total_wall_ns": self.total_wall_ns,
            "events": self.events,
            "advance_ns": self.advance_ns,
            "heap_pops": self.heap_pops,
            "runs": self.runs,
            "categories": {
                name: dict(rec) for name, rec in sorted(self.categories.items())
            },
            "annotations": dict(self.annotations),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ProfileReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            total_wall_ns=d["total_wall_ns"],
            events=d["events"],
            advance_ns=d["advance_ns"],
            heap_pops=d.get("heap_pops", 0),
            runs=d.get("runs", 0),
            categories={name: dict(rec) for name, rec in d["categories"].items()},
            annotations=dict(d.get("annotations", {})),
            schema=d.get("schema", PROFILE_SCHEMA),
        )

    def render(self, title: str = "kernel profile") -> str:
        """Per-category wall-time table, heaviest first, plus reconciliation."""
        rows = sorted(
            self.categories.items(), key=lambda kv: kv[1]["wall_ns"], reverse=True
        )
        lines = [
            f"== {title} ({self.events} events over {self.runs} run(s)) ==",
            f"{'category':36} {'events':>9} {'ms':>10} {'share':>7}",
        ]
        total = self.total_wall_ns or 1
        for name, rec in rows:
            lines.append(
                f"{name:36} {rec['events']:9d} {rec['wall_ns'] / 1e6:10.3f} "
                f"{rec['wall_ns'] / total:7.1%}"
            )
        lines.append(
            f"{'kernel.advance':36} {self.heap_pops:9d} "
            f"{self.advance_ns / 1e6:10.3f} {self.advance_ns / total:7.1%}"
        )
        attributed = self.attributed_ns
        lines.append(
            f"{'TOTAL attributed':36} {self.events:9d} {attributed / 1e6:10.3f} "
            f"{attributed / total:7.1%} of {self.total_wall_ns / 1e6:.3f} ms measured"
        )
        if self.annotations:
            parts = ", ".join(f"{k}={v}" for k, v in sorted(self.annotations.items()))
            lines.append(f"annotations: {parts}")
        return "\n".join(lines)


def combine_reports(reports: list) -> ProfileReport:
    """Merge several :class:`ProfileReport`\\ s (e.g. one per testbed).

    Category wall times and event counts add; annotations add where
    numeric and last-write-win otherwise.
    """
    out = ProfileReport()
    for rep in reports:
        out.total_wall_ns += rep.total_wall_ns
        out.events += rep.events
        out.advance_ns += rep.advance_ns
        out.heap_pops += rep.heap_pops
        out.runs += rep.runs
        for name, rec in rep.categories.items():
            mine = out.categories.setdefault(name, {"events": 0, "wall_ns": 0})
            mine["events"] += rec["events"]
            mine["wall_ns"] += rec["wall_ns"]
        for key, value in rep.annotations.items():
            if isinstance(value, (int, float)) and key in out.annotations:
                out.annotations[key] += value
            else:
                out.annotations[key] = value
    return out


class KernelProfiler:
    """Low-overhead wall-clock profiler for one simulator's run loop.

    Usage::

        profiler = KernelProfiler.install(sim)
        profiler.enable()
        ... run the workload ...
        print(profiler.report().render())

    While *disabled* (the default after install) the only cost is one
    attribute check at the top of :meth:`Simulator.run`; while enabled,
    :meth:`run_profiled` — a faithful mirror of the kernel loop — runs
    instead, adding two ``perf_counter_ns`` reads and one dict update
    per event.  The schedule, pooling, and crash semantics are
    identical either way.
    """

    def __init__(self, sim: Simulator, clock=time.perf_counter_ns):
        self.sim = sim
        self.clock = clock
        self.enabled = False
        #: category -> [events, wall_ns] (lists, mutated on the hot path).
        self.categories: dict[str, list] = {}
        self.advance_ns = 0
        self.heap_pops = 0
        self.total_wall_ns = 0
        self.events = 0
        self.runs = 0

    @classmethod
    def install(cls, sim: Simulator, clock=time.perf_counter_ns) -> "KernelProfiler":
        """Attach a (disabled) profiler to ``sim`` and return it."""
        profiler = cls(sim, clock=clock)
        sim._profiler = profiler
        return profiler

    @classmethod
    def of(cls, sim: Simulator) -> Optional["KernelProfiler"]:
        """The profiler installed on ``sim``, if any."""
        return sim._profiler

    def detach(self) -> None:
        """Remove this profiler from its simulator (keeps collected data)."""
        if self.sim._profiler is self:
            self.sim._profiler = None

    def enable(self) -> "KernelProfiler":
        """Turn the instrumented run loop on; returns self."""
        self.enabled = True
        return self

    def disable(self) -> "KernelProfiler":
        """Back to the uninstrumented kernel loop; returns self."""
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop all collected attribution data."""
        self.categories.clear()
        self.advance_ns = 0
        self.heap_pops = 0
        self.total_wall_ns = 0
        self.events = 0
        self.runs = 0

    # -- the instrumented mirror of Simulator.run --------------------------
    def run_profiled(self, until: Optional[int | Event] = None) -> Any:
        """Schedule-identical replacement for :meth:`Simulator.run`.

        Called *by* the kernel when this profiler is installed and
        enabled; mirrors both loop variants (run-until-event and
        run-to-deadline) including event pooling, crash propagation and
        ``events_processed`` accounting, with per-event timestamping
        layered on.
        """
        sim = self.sim
        slots = sim._slots
        times = sim._times
        immediate = sim._immediate
        timeout_pool = sim._timeout_pool
        event_pool = sim._event_pool
        refcount = getrefcount
        pool_max = sim.POOL_MAX
        clock = self.clock
        categories = self.categories
        processed = 0
        advance_ns = 0
        heap_pops = 0
        t_start = clock()
        t = t_start
        try:
            if isinstance(until, Event):
                stop = until
                if not stop.processed:
                    # Registering interest routes process failures into the
                    # event instead of crashing the whole simulation.
                    stop.callbacks.append(lambda _evt: None)
                while stop._state != _PROCESSED:
                    if immediate:
                        event = immediate.popleft()
                    elif times:
                        when = heappop(times)
                        sim._now = when
                        immediate.extend(slots.pop(when))
                        heap_pops += 1
                        t2 = clock()
                        advance_ns += t2 - t
                        t = t2
                        event = immediate.popleft()
                    else:
                        raise SimulationError(
                            "simulation ran out of events before the awaited event fired"
                        )
                    key = _category(event)
                    processed += 1
                    event._state = _PROCESSED
                    callbacks = event.callbacks
                    if callbacks:
                        event.callbacks = []
                        for cb in callbacks:
                            cb(event)
                    if sim._crashed is not None:
                        exc, sim._crashed = sim._crashed, None
                        raise exc
                    if refcount(event) == 2:
                        cls = event.__class__
                        if cls is Timeout:
                            if len(timeout_pool) < pool_max:
                                event._value = None
                                timeout_pool.append(event)
                        elif cls is Event:
                            if len(event_pool) < pool_max:
                                event._value = None
                                event_pool.append(event)
                    t2 = clock()
                    rec = categories.get(key)
                    if rec is None:
                        categories[key] = rec = [0, 0]
                    rec[0] += 1
                    rec[1] += t2 - t
                    t = t2
                if stop._ok:
                    return stop._value
                raise stop._value
            deadline = None if until is None else int(until)
            while immediate or times:
                if immediate:
                    event = immediate.popleft()
                else:
                    when = times[0]
                    if deadline is not None and when > deadline:
                        sim._now = deadline
                        return None
                    heappop(times)
                    sim._now = when
                    immediate.extend(slots.pop(when))
                    heap_pops += 1
                    t2 = clock()
                    advance_ns += t2 - t
                    t = t2
                    event = immediate.popleft()
                key = _category(event)
                processed += 1
                event._state = _PROCESSED
                callbacks = event.callbacks
                if callbacks:
                    event.callbacks = []
                    for cb in callbacks:
                        cb(event)
                if sim._crashed is not None:
                    exc, sim._crashed = sim._crashed, None
                    raise exc
                if refcount(event) == 2:
                    cls = event.__class__
                    if cls is Timeout:
                        if len(timeout_pool) < pool_max:
                            event._value = None
                            timeout_pool.append(event)
                    elif cls is Event:
                        if len(event_pool) < pool_max:
                            event._value = None
                            event_pool.append(event)
                t2 = clock()
                rec = categories.get(key)
                if rec is None:
                    categories[key] = rec = [0, 0]
                rec[0] += 1
                rec[1] += t2 - t
                t = t2
            if deadline is not None:
                sim._now = deadline
            return None
        finally:
            sim.events_processed += processed
            self.events += processed
            self.advance_ns += advance_ns
            self.heap_pops += heap_pops
            self.runs += 1
            self.total_wall_ns += clock() - t_start

    # -- reporting ---------------------------------------------------------
    def _annotations(self) -> dict:
        """Subsystem context read off the simulation after the fact.

        Flow-cache hits vs. full-chain walks come from the always-on
        ``vnet.flowcache.*`` counters; fluid capture/stride counts from
        the attached :class:`~repro.sim.fluid.FluidRegion` (if any).
        Nothing here touches the event hot path.
        """
        out: dict = {}
        obs = getattr(self.sim, "_repro_obs", None)
        if obs is not None:
            hits = misses = 0
            seen = False
            for name, value in obs.metrics.snapshot("vnet.flowcache.").items():
                if name.endswith(".hits"):
                    hits += value
                    seen = True
                elif name.endswith(".misses"):
                    misses += value
                    seen = True
            if seen:
                out["flowcache_hits"] = hits
                out["flowcache_misses"] = misses
        try:
            from ..sim.fluid import fluid_region_of

            region = fluid_region_of(self.sim)
        except ImportError:  # pragma: no cover - fluid is part of the tree
            region = None
        if region is not None:
            stats = region.stats()
            out["fluid_captures"] = stats.get("captures", 0)
            out["fluid_strides"] = stats.get("strides", 0)
            out["fluid_bytes"] = stats.get("bytes", 0)
        return out

    def report(self) -> ProfileReport:
        """Snapshot everything collected so far as a :class:`ProfileReport`."""
        return ProfileReport(
            total_wall_ns=self.total_wall_ns,
            events=self.events,
            advance_ns=self.advance_ns,
            heap_pops=self.heap_pops,
            runs=self.runs,
            categories={
                name: {"events": rec[0], "wall_ns": rec[1]}
                for name, rec in self.categories.items()
            },
            annotations=self._annotations(),
        )


def _stack(category: str) -> str:
    """Collapsed-stack frames for one category: ``sim.run;<kind>;<name>``."""
    kind, _, name = category.partition(":")
    if not name:
        return f"sim.run;{kind}"
    return f"sim.run;{kind};{name}"


def collapsed_stacks(report: ProfileReport) -> str:
    """The report in flamegraph *collapsed stack* format.

    One line per category, ``frame;frame;frame <wall_ns>`` — feed the
    output to ``flamegraph.pl`` or paste into speedscope.  The sample
    weight is wall nanoseconds, so frame widths are wall-time shares.
    """
    lines = [f"sim.run;kernel.advance {report.advance_ns}"]
    for name in sorted(report.categories):
        lines.append(f"{_stack(name)} {report.categories[name]['wall_ns']}")
    return "\n".join(lines) + "\n"


def profile_chrome_trace(report: ProfileReport) -> dict:
    """The report as a Chrome ``trace_event`` object.

    Categories become complete (``"ph": "X"``) events laid end to end,
    heaviest first, on one row per attribution kind (proc/cb/fn/evt/
    kernel) — load in ``chrome://tracing`` or Perfetto to eyeball the
    wall-time split.  The timeline is *attributed wall time*, not
    simulated time.
    """
    rows = [("kernel", "kernel.advance", report.heap_pops, report.advance_ns)]
    for name, rec in report.categories.items():
        kind, _, short = name.partition(":")
        rows.append((kind, short or kind, rec["events"], rec["wall_ns"]))
    rows.sort(key=lambda r: r[3], reverse=True)
    pids: dict[str, int] = {}
    events = []
    cursor = 0.0
    for kind, name, count, wall_ns in rows:
        pid = pids.setdefault(kind, len(pids) + 1)
        events.append(
            {
                "name": name,
                "cat": kind,
                "ph": "X",
                "ts": cursor,
                "dur": wall_ns / 1000.0,
                "pid": pid,
                "tid": 1,
                "args": {"events": count, "wall_ns": wall_ns},
            }
        )
        cursor += wall_ns / 1000.0
    for kind, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": f"kernel-profile:{kind}"},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "clock": "wall-ns (attributed)",
            "events": report.events,
            "total_wall_ns": report.total_wall_ns,
        },
    }
