"""Structured diff engine over two :class:`~repro.obs.runinfo.RunArtifact`\\ s.

CI used to check determinism by grepping rendered report text and
running ``diff -u`` on the rows — a comparison of *formatting*, not
results.  :func:`diff_artifacts` compares the structured bundles
instead, walking the diffable sections (``config``, ``rows``,
``metrics``, ``timelines``, ``health``, ``fairness``) as trees and
reporting every leaf that differs with its dotted path.

Two modes:

* **exact** — any leaf difference is a difference.  This is the
  same-seed determinism check: two runs of the same code at the same
  seeds must produce *identical* artifacts (the chaos-suite A/B, the
  cold/warm cache legs, the nightly soak legs).
* **tolerance** — numeric leaves may differ within ``rel_tol`` /
  ``abs_tol`` and are counted as *tolerated* rather than different;
  non-numeric leaves still compare exactly.  This is the fluid/ablation
  A/B mode, where a statistically-validated fast path may legally move
  numbers a little.

Verdicts: ``identical`` (no differences, nothing tolerated),
``equivalent`` (tolerance mode absorbed every numeric delta), or
``different``.  NaN equals NaN (health events use NaN for "no value"),
and ``volatile``/``profile`` sections are never compared.  The CLI is
``python -m repro obs diff A B [--mode exact|tolerance] ...`` — exit 0
for identical/equivalent, 1 for different, 2 for unusable inputs
(schema mismatch, unreadable file).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Optional

from .runinfo import RunArtifact

__all__ = ["Difference", "DiffReport", "diff_artifacts", "DEFAULT_SECTIONS"]

#: Sections compared by default (everything deterministic).
DEFAULT_SECTIONS = ("config", "rows", "metrics", "timelines", "health", "fairness")

#: Leaf paths ignored by default: the one intentionally wall-clock
#: metric the exec engine publishes.
DEFAULT_IGNORE = ("metrics.exec.points.wall_s*",)

#: A marker for "key absent on this side" in :class:`Difference`.
MISSING = "<missing>"

#: Cap on rendered differences (the JSON verdict always carries all).
_RENDER_LIMIT = 50


@dataclass
class Difference:
    """One leaf (or shape) difference between two artifacts."""

    path: str
    a: object
    b: object
    note: str = ""

    def to_dict(self) -> dict:
        """JSON-serialisable form."""
        return {"path": self.path, "a": self.a, "b": self.b, "note": self.note}


@dataclass
class DiffReport:
    """The outcome of one :func:`diff_artifacts` comparison."""

    mode: str
    sections: tuple
    rel_tol: float
    abs_tol: float
    differences: list = field(default_factory=list)
    tolerated: int = 0
    leaves: int = 0

    @property
    def identical(self) -> bool:
        """No differences and nothing needed tolerance."""
        return not self.differences and self.tolerated == 0

    @property
    def equivalent(self) -> bool:
        """No differences (tolerance may have absorbed numeric deltas)."""
        return not self.differences

    @property
    def verdict(self) -> str:
        """``identical`` | ``equivalent`` | ``different``."""
        if self.identical:
            return "identical"
        if self.equivalent:
            return "equivalent"
        return "different"

    def to_dict(self) -> dict:
        """JSON-serialisable verdict + every difference."""
        return {
            "verdict": self.verdict,
            "mode": self.mode,
            "sections": list(self.sections),
            "rel_tol": self.rel_tol,
            "abs_tol": self.abs_tol,
            "leaves": self.leaves,
            "tolerated": self.tolerated,
            "differences": [d.to_dict() for d in self.differences],
        }

    def render(self) -> str:
        """Human-readable verdict, with the first differences spelled out."""
        head = (
            f"[obs diff] verdict: {self.verdict.upper() if self.differences else self.verdict}"
            f" (mode={self.mode}, sections={','.join(self.sections)}, "
            f"{self.leaves} leaves compared, {self.tolerated} tolerated, "
            f"{len(self.differences)} differences)"
        )
        lines = [head]
        for d in self.differences[:_RENDER_LIMIT]:
            note = f"  [{d.note}]" if d.note else ""
            lines.append(f"  {d.path}: {d.a!r} != {d.b!r}{note}")
        if len(self.differences) > _RENDER_LIMIT:
            lines.append(f"  ... and {len(self.differences) - _RENDER_LIMIT} more")
        return "\n".join(lines)


class _Walker:
    """Recursive tree comparison with dotted-path bookkeeping."""

    def __init__(self, mode: str, rel_tol: float, abs_tol: float, ignore: tuple):
        self.mode = mode
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        self.ignore = ignore
        self.differences: list[Difference] = []
        self.tolerated = 0
        self.leaves = 0

    def _ignored(self, path: str) -> bool:
        return any(fnmatchcase(path, pat) for pat in self.ignore)

    def walk(self, path: str, a, b) -> None:
        if self._ignored(path):
            return
        if isinstance(a, dict) and isinstance(b, dict):
            for key in sorted(set(a) | set(b), key=str):
                sub = f"{path}.{key}" if path else str(key)
                if key not in a:
                    if not self._ignored(sub):
                        self.differences.append(
                            Difference(sub, MISSING, b[key], "only in B")
                        )
                elif key not in b:
                    if not self._ignored(sub):
                        self.differences.append(
                            Difference(sub, a[key], MISSING, "only in A")
                        )
                else:
                    self.walk(sub, a[key], b[key])
            return
        if isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                self.differences.append(
                    Difference(path, len(a), len(b), "length mismatch")
                )
            for i, (va, vb) in enumerate(zip(a, b)):
                self.walk(f"{path}[{i}]", va, vb)
            return
        self.leaves += 1
        if self._leaf_equal(path, a, b):
            return
        self.differences.append(Difference(path, a, b))

    def _leaf_equal(self, path: str, a, b) -> bool:
        if type(a) is bool or type(b) is bool:
            return a is b
        if isinstance(a, (int, float)) and isinstance(b, (int, float)):
            if a == b:
                return True
            if math.isnan(a) and math.isnan(b):
                return True
            if self.mode == "tolerance" and math.isclose(
                a, b, rel_tol=self.rel_tol, abs_tol=self.abs_tol
            ):
                self.tolerated += 1
                return True
            return False
        return a == b


def diff_artifacts(
    a: RunArtifact,
    b: RunArtifact,
    mode: str = "exact",
    sections: Optional[tuple] = None,
    rel_tol: float = 0.02,
    abs_tol: float = 0.0,
    ignore: tuple = (),
) -> DiffReport:
    """Structurally compare two artifacts; returns a :class:`DiffReport`.

    ``mode`` is ``"exact"`` or ``"tolerance"`` (see module docstring);
    ``sections`` restricts the comparison (default
    :data:`DEFAULT_SECTIONS` — e.g. ``("rows",)`` for an ablation A/B
    whose metrics legitimately differ); ``ignore`` adds
    :func:`fnmatch.fnmatchcase` patterns over dotted leaf paths on top
    of :data:`DEFAULT_IGNORE`.  Raises ``ValueError`` for unknown modes
    or mismatched artifact schemas.
    """
    if mode not in ("exact", "tolerance"):
        raise ValueError(f"unknown diff mode {mode!r}")
    if a.schema != b.schema:
        raise ValueError(
            f"artifact schema mismatch: {a.schema} vs {b.schema} "
            "(regenerate with matching code)"
        )
    chosen = tuple(sections) if sections is not None else DEFAULT_SECTIONS
    unknown = [s for s in chosen if s not in DEFAULT_SECTIONS]
    if unknown:
        raise ValueError(
            f"unknown section(s) {unknown}; valid: {', '.join(DEFAULT_SECTIONS)}"
        )
    walker = _Walker(mode, rel_tol, abs_tol, tuple(ignore) + DEFAULT_IGNORE)
    da, db = a.to_dict(), b.to_dict()
    for section in chosen:
        walker.walk(section, da.get(section), db.get(section))
    return DiffReport(
        mode=mode,
        sections=chosen,
        rel_tol=rel_tol,
        abs_tol=abs_tol,
        differences=walker.differences,
        tolerated=walker.tolerated,
        leaves=walker.leaves,
    )
