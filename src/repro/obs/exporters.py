"""Exporters: JSONL span dumps, Chrome ``trace_event`` files, text reports.

Three ways out of the recorder:

* :func:`export_jsonl` / :func:`parse_jsonl` — one JSON object per line,
  schema = :meth:`repro.obs.span.Span.to_dict`; round-trips exactly.
* :func:`chrome_trace` — the Chrome/Perfetto ``trace_event`` JSON object
  format (open ``chrome://tracing`` or https://ui.perfetto.dev and load
  the file).  Spans become complete (``"ph": "X"``) events; timestamps
  are microseconds as the format requires, so one virtual nanosecond is
  0.001 on the trace timeline.
* :func:`render_stage_report` — a Fig. 9-style text table of per-stage
  time, aggregated over whatever spans are passed in.

Plus the registry counterpart: :func:`export_metrics_jsonl` /
:func:`parse_metrics_jsonl` serialise a whole
:class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges
(including time-weighted state), histogram bucket edges and counts, and
labeled-counter families — one metric per line, sorted by name, so two
runs' registries can be diffed in CI exactly the way span JSONL is.

See ``docs/observability.md`` for the schemas and a worked example.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Union

from .metrics import MetricsRegistry
from .span import Span

__all__ = [
    "export_jsonl",
    "parse_jsonl",
    "export_metrics_jsonl",
    "parse_metrics_jsonl",
    "normalize_metrics_dump",
    "chrome_trace",
    "export_chrome_trace",
    "stage_totals",
    "render_stage_report",
]


def export_jsonl(spans: Iterable[Span], fp: Union[IO[str], None] = None) -> str:
    """Serialise spans as JSON Lines; returns the text (and writes ``fp``)."""
    text = "\n".join(json.dumps(s.to_dict(), sort_keys=True) for s in spans)
    if text:
        text += "\n"
    if fp is not None:
        fp.write(text)
    return text


def parse_jsonl(text: Union[str, Iterable[str]]) -> list[Span]:
    """Inverse of :func:`export_jsonl`: parse JSONL text (or lines) back."""
    lines = text.splitlines() if isinstance(text, str) else text
    spans = []
    for line in lines:
        line = line.strip()
        if line:
            spans.append(Span.from_dict(json.loads(line)))
    return spans


def normalize_metrics_dump(dump: dict) -> dict:
    """Normalise a registry :meth:`~repro.obs.metrics.MetricsRegistry.dump`
    so equivalent registries serialise identically.

    Gauge values and histogram extrema become floats (a merge
    reconstruction turns int-valued ones into floats anyway) and
    ``+ 0.0`` collapses -0.0 to 0.0 (which value-summing merges produce).
    Returns a new dump; the input is not mutated.  Both the JSONL
    exporter and :mod:`repro.obs.runinfo` artifacts go through this, so
    ``export(parse(export(r)))`` is textually identical to ``export(r)``
    and two equivalent :class:`~repro.obs.runinfo.RunArtifact`\\ s diff
    clean.
    """
    out: dict[str, dict] = {}
    for name, entry in dump.items():
        entry = dict(entry)
        if entry["type"] == "gauge":
            entry["value"] = float(entry["value"]) + 0.0
        elif entry["type"] == "histogram":
            entry["min"] = float(entry["min"])
            entry["max"] = float(entry["max"])
        out[name] = entry
    return out


def export_metrics_jsonl(registry: MetricsRegistry,
                         fp: Union[IO[str], None] = None) -> str:
    """Serialise a metrics registry as JSON Lines, one metric per line.

    Each line is the metric's :meth:`~repro.obs.metrics.MetricsRegistry.dump`
    entry plus a ``"name"`` key, emitted in sorted-name order so two
    exports of equivalent registries are textually identical (CI diffs
    them with plain ``diff``).  Non-finite extrema of empty histograms
    serialise as ``Infinity`` / ``-Infinity``, which :func:`json.loads`
    reads back exactly.
    """
    dump = normalize_metrics_dump(registry.dump())
    text = "\n".join(
        json.dumps({"name": name, **dump[name]}, sort_keys=True)
        for name in sorted(dump)
    )
    if text:
        text += "\n"
    if fp is not None:
        fp.write(text)
    return text


def parse_metrics_jsonl(text: Union[str, Iterable[str]]) -> MetricsRegistry:
    """Inverse of :func:`export_metrics_jsonl`: rebuild the registry.

    The reconstruction is lossless — counters, gauge values and
    time-weighted state, histogram edges/counts/moments, and every
    ``<prefix>.<label>`` member of a labeled-counter family come back
    exactly, so ``export(parse(export(r)))`` equals ``export(r)``.
    """
    lines = text.splitlines() if isinstance(text, str) else text
    dump: dict[str, dict] = {}
    for line in lines:
        line = line.strip()
        if line:
            entry = json.loads(line)
            dump[entry.pop("name")] = entry
    registry = MetricsRegistry()
    registry.merge(dump)
    return registry


def chrome_trace(spans: Iterable[Span], unit_label: str = "virtual-ns") -> dict:
    """Build a Chrome ``trace_event`` JSON object from spans.

    Mapping: span stage -> event ``name``; layer (``where``) -> ``cat``;
    component (``who``) -> ``pid``/``tid`` (one row per component, which
    is what makes the per-stage pipelining visible in Perfetto); flow and
    packet ids ride in ``args``.
    """
    events = []
    pids: dict[str, int] = {}
    for s in spans:
        pid = pids.setdefault(s.who or "?", len(pids) + 1)
        events.append(
            {
                "name": s.stage,
                "cat": s.where or "span",
                "ph": "X",
                "ts": s.t0 / 1000.0,
                "dur": (s.t1 - s.t0) / 1000.0,
                "pid": pid,
                "tid": 1,
                "args": {"flow": s.flow, "packet": s.packet, "ns": s.t1 - s.t0},
            }
        )
    for who, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "args": {"name": who},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"clock": unit_label},
    }


def export_chrome_trace(spans: Iterable[Span], path: str) -> None:
    """Write :func:`chrome_trace` output to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(chrome_trace(spans), fp, indent=1)


def stage_totals(spans: Iterable[Span]) -> dict[str, int]:
    """Total nanoseconds per stage, in first-appearance order."""
    totals: dict[str, int] = {}
    for s in spans:
        totals[s.stage] = totals.get(s.stage, 0) + s.ns
    return totals


def render_stage_report(spans: Iterable[Span], title: str = "recorded spans") -> str:
    """Fig. 9-style per-stage latency table over the given spans."""
    spans = list(spans)
    totals = stage_totals(spans)
    counts: dict[str, int] = {}
    wheres: dict[str, str] = {}
    for s in spans:
        counts[s.stage] = counts.get(s.stage, 0) + 1
        wheres.setdefault(s.stage, s.where)
    grand = sum(totals.values())
    lines = [f"== per-stage breakdown ({title}) ==",
             f"{'stage':16} {'where':6} {'spans':>6} {'us':>9} {'share':>6}"]
    for stage, ns in totals.items():
        share = ns / grand if grand else 0.0
        lines.append(
            f"{stage:16} {wheres[stage]:6} {counts[stage]:6d} {ns / 1000:9.2f} {share:6.1%}"
        )
    lines.append(f"{'TOTAL':16} {'':6} {len(spans):6d} {grand / 1000:9.2f}")
    return "\n".join(lines)
