"""Health: declarative SLO monitors and anomaly detectors over telemetry.

The chaos subsystem (:mod:`repro.chaos`) can break an overlay; this
module is how the breakage is *read off the telemetry* instead of by
poking route tables.  Three pieces:

* :class:`HealthEvent` / :class:`HealthLog` — the timestamped event
  bus.  Instrumented subsystems (the phi detector in
  :mod:`repro.vnet.monitor`, failover in :mod:`repro.vnet.adaptation`,
  fault windows in :mod:`repro.chaos.schedule`) emit state transitions
  here with exact virtual timestamps, so "when was the partition
  detected" is a log query, not a data-structure inspection.
* detectors — :class:`SloMonitor` (declarative bound on a series),
  :class:`GoodputCollapseDetector` (rate falls below a fraction of its
  observed peak), :class:`LatencySpikeDetector` (latency exceeds a
  multiple of its observed median), :class:`HeartbeatSilenceDetector`
  (a counter stops advancing).  Each consumes one
  :class:`~repro.obs.timeline.Series` (or counter) and emits paired
  breach/recovery events, so durations fall out of the log.
* :class:`HealthHub` — owns the log and the monitors and rides a
  :class:`~repro.obs.timeline.Timeline`'s sampling cadence: monitors
  are checked after every tick, and cost nothing when none are
  registered.

Events are plain data (``to_dict``/``from_dict`` round-trip through
JSONL like spans do), deterministic in virtual time, and ordered by
``(t_ns, seq)``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import IO, Callable, Iterable, Optional, Union

from .metrics import Counter
from .timeline import Series, Timeline

__all__ = [
    "HealthEvent",
    "HealthLog",
    "HealthHub",
    "SloMonitor",
    "GoodputCollapseDetector",
    "LatencySpikeDetector",
    "HeartbeatSilenceDetector",
    "export_health_jsonl",
    "parse_health_jsonl",
]

#: Event severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass
class HealthEvent:
    """One timestamped health-state transition."""

    t_ns: int
    monitor: str
    kind: str
    severity: str = "info"
    message: str = ""
    value: float = math.nan
    seq: int = 0

    def to_dict(self) -> dict:
        """JSON-serialisable form (the JSONL schema)."""
        return {
            "t_ns": self.t_ns,
            "monitor": self.monitor,
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
            "value": None if math.isnan(self.value) else self.value,
            "seq": self.seq,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "HealthEvent":
        """Inverse of :meth:`to_dict`."""
        value = d.get("value")
        return cls(
            t_ns=d["t_ns"],
            monitor=d["monitor"],
            kind=d["kind"],
            severity=d.get("severity", "info"),
            message=d.get("message", ""),
            value=math.nan if value is None else value,
            seq=d.get("seq", 0),
        )


class HealthLog:
    """Ordered, timestamped health events for one simulation."""

    def __init__(self):
        self.events: list[HealthEvent] = []
        self._seq = 0

    def emit(self, t_ns: int, monitor: str, kind: str, severity: str = "info",
             message: str = "", value: float = math.nan) -> HealthEvent:
        """Append one event; returns it."""
        if severity not in SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        self._seq += 1
        event = HealthEvent(t_ns=t_ns, monitor=monitor, kind=kind,
                            severity=severity, message=message, value=value,
                            seq=self._seq)
        self.events.append(event)
        return event

    def of_kind(self, kind: str, monitor: Optional[str] = None
                ) -> list[HealthEvent]:
        """Events with the given kind (and monitor, when given)."""
        return [e for e in self.events
                if e.kind == kind and (monitor is None or e.monitor == monitor)]

    def first(self, kind: str, monitor: Optional[str] = None,
              after_ns: int = -1) -> Optional[HealthEvent]:
        """Earliest event of ``kind`` at or after ``after_ns``, or None."""
        for e in self.events:
            if e.kind == kind and e.t_ns >= after_ns and (
                monitor is None or e.monitor == monitor
            ):
                return e
        return None

    def __len__(self) -> int:
        return len(self.events)

    def reset(self) -> None:
        """Drop all events (sequence numbering restarts)."""
        self.events.clear()
        self._seq = 0

    def render(self, title: str = "health events") -> str:
        """Text table of the log, one event per line."""
        lines = [f"== {title} ==",
                 f"{'t (ms)':>10} {'sev':8} {'monitor':28} {'kind':20} message"]
        for e in self.events:
            lines.append(
                f"{e.t_ns / 1e6:10.3f} {e.severity:8} {e.monitor:28} "
                f"{e.kind:20} {e.message}"
            )
        return "\n".join(lines)


def export_health_jsonl(events: Iterable[HealthEvent],
                        fp: Union[IO[str], None] = None) -> str:
    """Serialise health events as JSON Lines (schema = ``to_dict``)."""
    text = "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in events)
    if text:
        text += "\n"
    if fp is not None:
        fp.write(text)
    return text


def parse_health_jsonl(text: Union[str, Iterable[str]]) -> list[HealthEvent]:
    """Inverse of :func:`export_health_jsonl`."""
    lines = text.splitlines() if isinstance(text, str) else text
    out = []
    for line in lines:
        line = line.strip()
        if line:
            out.append(HealthEvent.from_dict(json.loads(line)))
    return out


class Monitor:
    """Base class: checked after every timeline tick.

    Subclasses implement :meth:`check`, emitting paired breach/recovery
    events into ``self.log``; ``self.breached`` tracks current state so
    transitions emit exactly once.
    """

    def __init__(self, name: str, log: HealthLog):
        self.name = name
        self.log = log
        self.breached = False

    def check(self, now_ns: int) -> None:  # pragma: no cover - interface
        """Inspect the watched telemetry at ``now_ns``."""
        raise NotImplementedError

    def _transition(self, now_ns: int, breach: bool, kind: str,
                    severity: str, message: str, value: float) -> None:
        if breach and not self.breached:
            self.breached = True
            self.log.emit(now_ns, self.name, kind, severity, message, value)
        elif not breach and self.breached:
            self.breached = False
            self.log.emit(now_ns, self.name, f"{kind}-recovered", "info",
                          message, value)


class SloMonitor(Monitor):
    """Declarative SLO: a series must stay within ``[min_value, max_value]``.

    NaN samples (empty windows) are skipped.  ``for_windows`` debounces:
    the bound must be violated for that many consecutive samples before
    the breach event fires (1 = immediate).
    """

    def __init__(self, name: str, log: HealthLog, series: Series,
                 min_value: float = -math.inf, max_value: float = math.inf,
                 for_windows: int = 1, severity: str = "critical"):
        super().__init__(name, log)
        if for_windows < 1:
            raise ValueError(f"for_windows must be >= 1, got {for_windows}")
        self.series = series
        self.min_value = min_value
        self.max_value = max_value
        self.for_windows = for_windows
        self.severity = severity
        self._bad_streak = 0

    def check(self, now_ns: int) -> None:
        """Compare the newest sample against the declared bounds."""
        last = self.series.last()
        if last is None or math.isnan(last[1]):
            return
        value = last[1]
        violated = not (self.min_value <= value <= self.max_value)
        self._bad_streak = self._bad_streak + 1 if violated else 0
        self._transition(
            now_ns, self._bad_streak >= self.for_windows, "slo-violation",
            self.severity,
            f"{self.series.name}={value:g} outside "
            f"[{self.min_value:g}, {self.max_value:g}]",
            value,
        )


class GoodputCollapseDetector(Monitor):
    """Fires when a rate series collapses below a fraction of its peak.

    The baseline is the running peak of the series (goodput ramps up,
    then a fault knocks it down); collapse = sample below
    ``collapse_frac * peak`` once the peak has cleared ``min_rate``
    (warm-up guard).  Emits ``goodput-collapse`` / ``-recovered``.
    """

    def __init__(self, name: str, log: HealthLog, series: Series,
                 collapse_frac: float = 0.2, min_rate: float = 1.0):
        super().__init__(name, log)
        if not 0 < collapse_frac < 1:
            raise ValueError(f"collapse_frac must be in (0, 1), got {collapse_frac}")
        self.series = series
        self.collapse_frac = collapse_frac
        self.min_rate = min_rate
        self.peak = 0.0

    def check(self, now_ns: int) -> None:
        """Update the peak and test the newest sample against it."""
        last = self.series.last()
        if last is None or math.isnan(last[1]):
            return
        value = last[1]
        if value > self.peak:
            self.peak = value
        if self.peak < self.min_rate:
            return
        self._transition(
            now_ns, value < self.collapse_frac * self.peak, "goodput-collapse",
            "critical",
            f"{self.series.name}={value:g} < {self.collapse_frac:g} x "
            f"peak {self.peak:g}",
            value,
        )


class LatencySpikeDetector(Monitor):
    """Fires when latency exceeds a multiple of its observed median.

    The baseline is the median of the finite samples seen so far (at
    least ``warmup`` of them); spike = newest sample above
    ``factor * median`` and above ``floor_ns``.  Emits
    ``latency-spike`` / ``-recovered``.
    """

    def __init__(self, name: str, log: HealthLog, series: Series,
                 factor: float = 3.0, floor_ns: float = 0.0, warmup: int = 5):
        super().__init__(name, log)
        if factor <= 1:
            raise ValueError(f"factor must be > 1, got {factor}")
        self.series = series
        self.factor = factor
        self.floor_ns = floor_ns
        self.warmup = warmup
        self._history: list[float] = []

    def check(self, now_ns: int) -> None:
        """Compare the newest latency sample against the running median."""
        last = self.series.last()
        if last is None or math.isnan(last[1]):
            return
        value = last[1]
        history = self._history
        if len(history) >= self.warmup:
            ordered = sorted(history)
            median = ordered[len(ordered) // 2]
            self._transition(
                now_ns,
                value > max(self.factor * median, self.floor_ns),
                "latency-spike", "warning",
                f"{self.series.name}={value:g} > {self.factor:g} x "
                f"median {median:g}",
                value,
            )
        # Spikes do not poison the baseline: only accepted samples join.
        if not self.breached:
            history.append(value)


class HeartbeatSilenceDetector(Monitor):
    """Fires when a counter stops advancing for consecutive windows.

    Watches any monotonically increasing counter (heartbeats received,
    packets delivered); silence = no increment for ``windows``
    consecutive checks after the counter has moved at least once.
    Emits ``heartbeat-silence`` / ``heartbeat-silence-recovered``.
    """

    def __init__(self, name: str, log: HealthLog, counter: Counter,
                 windows: int = 2):
        super().__init__(name, log)
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows}")
        self.counter = counter
        self.windows = windows
        self._last = counter.value
        self._still = 0
        self._ever_moved = False

    def check(self, now_ns: int) -> None:
        """Compare the counter against its value at the previous check."""
        value = self.counter.value
        if value != self._last:
            self._ever_moved = True
            self._still = 0
        else:
            self._still += 1
        self._last = value
        if not self._ever_moved:
            return
        self._transition(
            now_ns, self._still >= self.windows, "heartbeat-silence",
            "critical",
            f"{self.counter.name} stalled at {value} "
            f"for {self._still} window(s)",
            float(value),
        )


class HealthHub:
    """Monitors + log, riding a timeline's sampling cadence.

    ``hub.attach_to(timeline)`` registers the hub as a tick observer;
    every monitor is checked after each sampling tick, in registration
    order, so event timestamps land on window boundaries — except for
    events emitted directly into :attr:`log` by instrumented
    subsystems, which carry their exact transition time.
    """

    def __init__(self, log: Optional[HealthLog] = None):
        self.log = log if log is not None else HealthLog()
        self.monitors: list[Monitor] = []

    def add(self, monitor: Monitor) -> Monitor:
        """Register a monitor (returns it, for chaining)."""
        self.monitors.append(monitor)
        return monitor

    def slo(self, name: str, series: Series, **kwargs) -> SloMonitor:
        """Shorthand: add an :class:`SloMonitor` on ``series``."""
        return self.add(SloMonitor(name, self.log, series, **kwargs))

    def attach_to(self, timeline: Timeline) -> "HealthHub":
        """Check all monitors after every tick of ``timeline``."""
        timeline.attach(self.check)
        return self

    def check(self, now_ns: int) -> None:
        """Run every monitor once against the current telemetry."""
        for monitor in self.monitors:
            monitor.check(now_ns)


def make_detector(kind: str, name: str, log: HealthLog, target,
                  **kwargs) -> Monitor:
    """Factory for the built-in detectors by kind name.

    ``kind`` is one of ``slo``, ``goodput-collapse``, ``latency-spike``,
    ``heartbeat-silence``; ``target`` is the series (or counter, for
    heartbeat silence) to watch.  Declarative configs (experiment
    harnesses, CLI) map straight onto this.
    """
    factories: dict[str, Callable[..., Monitor]] = {
        "slo": SloMonitor,
        "goodput-collapse": GoodputCollapseDetector,
        "latency-spike": LatencySpikeDetector,
        "heartbeat-silence": HeartbeatSilenceDetector,
    }
    if kind not in factories:
        raise ValueError(f"unknown detector kind {kind!r}")
    return factories[kind](name, log, target, **kwargs)
