"""Sim-time time-series: windowed samplers over the metrics registry.

The registry (:mod:`repro.obs.metrics`) answers "how much, in total";
this module answers "how much, *when*".  A :class:`Timeline` owns a set
of :class:`Series` — fixed-size ring buffers of ``(t_ns, value)``
samples — each fed by a sampler closure that reads one instrument on a
virtual-time cadence:

* **counter rates** — per-window deltas of a counter, scaled to a
  per-second rate (``bytes`` counters become goodput curves, heartbeat
  counters become beat-rate curves);
* **gauge values** — the gauge's last value, or its per-window
  time-weighted average when the gauge records set timestamps
  (:meth:`repro.obs.metrics.Gauge.time_avg`);
* **histogram window percentiles** — the approximate percentile of the
  observations that landed *in this window*, from bucket-count deltas
  (latency-over-time, Fig. 9 as a function of run time);
* **callables** — any ``fn(now_ns) -> float``, which is how
  :mod:`repro.obs.flows` feeds percentile-over-time series.

All sampling is driven by one bounded simulator process
(:meth:`Timeline.start`); until the first series is registered no
process exists and nothing on any hot path changes, so the cost of the
subsystem is exactly zero when unused.  Sampling reads instruments the
components already maintain — registering a series never adds work to a
packet path.

Exports: :meth:`Timeline.to_csv` (long-format ``series,t_ns,value``),
:meth:`Timeline.chrome_counter_events` (Chrome ``trace_event`` counter
(``"ph": "C"``) events, mergeable with span traces), and
:meth:`Timeline.render` (text summary table).  For cross-process
aggregation (``repro.exec`` worker fan-out) :meth:`Timeline.dump`
produces a plain-data snapshot and :func:`merge_dumps` recombines any
number of them by series name.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from ..units import SECOND
from .metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..sim import Simulator

__all__ = [
    "Series",
    "Timeline",
    "bucket_percentile",
    "merge_dumps",
    "DEFAULT_INTERVAL_NS",
    "DEFAULT_CAPACITY",
]

#: Default sampling cadence: 100 µs of virtual time per window.
DEFAULT_INTERVAL_NS = 100_000
#: Default ring capacity per series (samples beyond this evict oldest).
DEFAULT_CAPACITY = 4096


def bucket_percentile(edges: Sequence[float], counts: Sequence[int], q: float) -> float:
    """Approximate percentile from fixed-bucket counts alone.

    Used for *windowed* histogram deltas, where exact min/max are not
    tracked: interpolation uses the bucket edges as bounds (the first
    bucket's lower bound is its upper edge, the overflow bucket is
    pinned to the last edge).  NaN when the window saw no observations.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    total = sum(counts)
    if total == 0:
        return math.nan
    rank = q / 100 * total
    seen = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if seen + c >= rank:
            lo = edges[i - 1] if i > 0 else edges[0]
            hi = edges[i] if i < len(edges) else edges[-1]
            frac = (rank - seen) / c
            return lo + (hi - lo) * frac
        seen += c
    return float(edges[-1])


class Series:
    """Fixed-size ring buffer of ``(t_ns, value)`` samples for one signal."""

    __slots__ = ("name", "unit", "capacity", "_t", "_v")

    def __init__(self, name: str, unit: str = "", capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError(f"series {name}: capacity must be >= 1")
        self.name = name
        self.unit = unit
        self.capacity = capacity
        self._t: deque[int] = deque(maxlen=capacity)
        self._v: deque[float] = deque(maxlen=capacity)

    def append(self, t_ns: int, value: float) -> None:
        """Record one sample (oldest sample evicted once full)."""
        self._t.append(t_ns)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> list[int]:
        """Sample timestamps (ns), oldest first."""
        return list(self._t)

    @property
    def values(self) -> list[float]:
        """Sample values, oldest first."""
        return list(self._v)

    def samples(self) -> list[tuple[int, float]]:
        """``(t_ns, value)`` pairs, oldest first."""
        return list(zip(self._t, self._v))

    def last(self) -> Optional[tuple[int, float]]:
        """Most recent sample, or None when empty."""
        if not self._t:
            return None
        return self._t[-1], self._v[-1]

    def finite_values(self) -> list[float]:
        """Values with NaN windows (e.g. empty histogram windows) dropped."""
        return [v for v in self._v if not math.isnan(v)]

    def to_dict(self) -> dict:
        """Plain-data form for :meth:`Timeline.dump` / :func:`merge_dumps`."""
        return {
            "name": self.name,
            "unit": self.unit,
            "capacity": self.capacity,
            "t": list(self._t),
            "v": list(self._v),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Series":
        """Inverse of :meth:`to_dict`."""
        s = cls(d["name"], unit=d.get("unit", ""), capacity=d["capacity"])
        for t, v in zip(d["t"], d["v"]):
            s.append(t, v)
        return s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Series {self.name} n={len(self)}>"


class Timeline:
    """A set of sampled series over one simulator's virtual clock.

    Registration is get-or-create by series name (like the registry),
    so wiring code may run twice.  The sampling process is spawned by
    :meth:`start` and is bounded by ``until_ns`` so a drained
    ``sim.run()`` terminates; :meth:`tick` can also be called directly
    (e.g. from a harness loop) for cadence-free sampling.
    """

    def __init__(
        self,
        sim: "Simulator",
        registry: MetricsRegistry,
        interval_ns: int = DEFAULT_INTERVAL_NS,
        capacity: int = DEFAULT_CAPACITY,
    ):
        if interval_ns <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval_ns}")
        self.sim = sim
        self.registry = registry
        self.interval_ns = int(interval_ns)
        self.capacity = capacity
        self.series: dict[str, Series] = {}
        self._samplers: list[tuple[Series, Callable[[int], float]]] = []
        self._observers: list[Callable[[int], None]] = []
        self._running = False

    @property
    def active(self) -> bool:
        """Whether any series is registered (sampling has a purpose)."""
        return bool(self._samplers)

    # -- registration ------------------------------------------------------
    def _register(
        self, name: str, fn: Callable[[int], float], unit: str
    ) -> Series:
        existing = self.series.get(name)
        if existing is not None:
            return existing
        series = Series(name, unit=unit, capacity=self.capacity)
        self.series[name] = series
        self._samplers.append((series, fn))
        return series

    def counter_rate(self, metric: str, series: Optional[str] = None,
                     unit: str = "/s") -> Series:
        """Sample a counter's per-window delta as a per-second rate."""
        counter = self.registry.counter(metric)
        state = [counter.value, self.sim.now]

        def sample(now_ns: int) -> float:
            delta = counter.value - state[0]
            dt = now_ns - state[1]
            state[0] = counter.value
            state[1] = now_ns
            return delta * SECOND / dt if dt > 0 else 0.0

        return self._register(series or f"{metric}.rate", sample, unit)

    def gauge_value(self, metric: str, series: Optional[str] = None,
                    time_avg: bool = False, unit: str = "") -> Series:
        """Sample a gauge: last value, or per-window time-weighted average.

        ``time_avg=True`` differences the gauge's value·time integral
        across the window, so it needs a gauge whose writers pass set
        timestamps; a timestamp-free gauge degenerates to last-value.
        """
        gauge = self.registry.gauge(metric)
        if not time_avg:
            return self._register(series or metric, lambda now: gauge.value, unit)
        state = [gauge.integral_ns(self.sim.now), self.sim.now]

        def sample(now_ns: int) -> float:
            integral = gauge.integral_ns(now_ns)
            dt = now_ns - state[1]
            avg = (integral - state[0]) / dt if dt > 0 else gauge.value
            state[0] = integral
            state[1] = now_ns
            return avg

        return self._register(series or f"{metric}.time_avg", sample, unit)

    def histogram_percentile(self, metric: str, q: float,
                             series: Optional[str] = None,
                             unit: str = "ns") -> Series:
        """Sample the approximate ``q``-th percentile of the observations
        that landed in each window (NaN for empty windows)."""
        hist = self.registry.get(metric)
        if hist is None or not hasattr(hist, "edges"):
            raise ValueError(f"{metric!r} is not a registered histogram")
        state = [list(hist.counts)]

        def sample(now_ns: int) -> float:
            counts = hist.counts
            delta = [c - p for c, p in zip(counts, state[0])]
            state[0] = list(counts)
            return bucket_percentile(hist.edges, delta, q)

        return self._register(series or f"{metric}.p{q:g}", sample, unit)

    def record(self, series: str, fn: Callable[[int], float],
               unit: str = "") -> Series:
        """Register an arbitrary sampler ``fn(now_ns) -> float``."""
        return self._register(series, fn, unit)

    def attach(self, observer: Callable[[int], None]) -> None:
        """Call ``observer(now_ns)`` after each tick (health monitors)."""
        self._observers.append(observer)

    # -- sampling ----------------------------------------------------------
    def tick(self) -> None:
        """Take one sample of every series at ``sim.now``."""
        now = self.sim.now
        for series, fn in self._samplers:
            series.append(now, fn(now))
        for observer in self._observers:
            observer(now)

    def start(self, until_ns: int):
        """Spawn the sampling process (one per timeline); returns it.

        Samples every ``interval_ns`` of virtual time until ``until_ns``,
        with a final tick at the horizon so the last partial window is
        captured.  Raises if the driver is already running.
        """
        if self._running:
            raise RuntimeError("timeline sampler already running")
        self._running = True
        return self.sim.process(self._run(int(until_ns)), name="obs.timeline")

    def _run(self, until_ns: int):
        while self.sim.now + self.interval_ns <= until_ns:
            yield self.sim.timeout(self.interval_ns)
            self.tick()
        if self.sim.now < until_ns:
            yield self.sim.timeout(until_ns - self.sim.now)
            self.tick()
        self._running = False

    # -- exports -----------------------------------------------------------
    def to_csv(self) -> str:
        """Long-format CSV: ``series,unit,t_ns,value`` (NaN as empty)."""
        lines = ["series,unit,t_ns,value"]
        for name in sorted(self.series):
            s = self.series[name]
            for t, v in s.samples():
                val = "" if math.isnan(v) else repr(v)
                lines.append(f"{name},{s.unit},{t},{val}")
        return "\n".join(lines) + "\n"

    def chrome_counter_events(self) -> list[dict]:
        """Chrome ``trace_event`` counter (``"ph": "C"``) events.

        Merge into a span trace's ``traceEvents`` list to see rate and
        occupancy curves under the per-packet spans in Perfetto.
        """
        events = []
        for name in sorted(self.series):
            s = self.series[name]
            for t, v in s.samples():
                if math.isnan(v):
                    continue
                events.append(
                    {
                        "name": name,
                        "ph": "C",
                        "ts": t / 1000.0,
                        "pid": 0,
                        "tid": 0,
                        "args": {"value": v},
                    }
                )
        return events

    def render(self, title: str = "timelines") -> str:
        """Summary table: one row per series over its retained window."""
        lines = [
            f"== time-series ({title}; window {self.interval_ns / 1000:.0f} us) ==",
            f"{'series':44} {'n':>5} {'min':>12} {'mean':>12} {'max':>12} {'last':>12}",
        ]
        for name in sorted(self.series):
            s = self.series[name]
            vals = s.finite_values()
            if vals:
                mn, mx = min(vals), max(vals)
                mean = sum(vals) / len(vals)
                last = s.last()[1]
                last_s = "" if math.isnan(last) else f"{last:12.1f}"
                lines.append(
                    f"{name:44} {len(s):5d} {mn:12.1f} {mean:12.1f} {mx:12.1f} {last_s:>12}"
                )
            else:
                lines.append(f"{name:44} {len(s):5d} {'-':>12} {'-':>12} {'-':>12} {'-':>12}")
        return "\n".join(lines)

    # -- cross-process aggregation ----------------------------------------
    def dump(self) -> dict:
        """Plain-data snapshot of every series (picklable, JSONable)."""
        return {
            "interval_ns": self.interval_ns,
            "series": {name: s.to_dict() for name, s in self.series.items()},
        }


def merge_dumps(dumps: Iterable[dict]) -> dict[str, Series]:
    """Recombine :meth:`Timeline.dump` snapshots by series name.

    Same-name series from different workers (or cached points) are
    concatenated and re-sorted by sample time; capacity grows to hold
    the union so merging never silently drops samples.
    """
    merged: dict[str, list[tuple[int, float]]] = {}
    units: dict[str, str] = {}
    for dump in dumps:
        for name, d in dump.get("series", {}).items():
            merged.setdefault(name, []).extend(zip(d["t"], d["v"]))
            units.setdefault(name, d.get("unit", ""))
    out: dict[str, Series] = {}
    for name, samples in merged.items():
        samples.sort(key=lambda tv: tv[0])
        series = Series(name, unit=units[name], capacity=max(1, len(samples)))
        for t, v in samples:
            series.append(t, v)
        out[name] = series
    return out
