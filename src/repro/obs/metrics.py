"""Metrics registry: named counters, gauges, and fixed-bucket histograms.

The registry is the always-on half of the observability layer (spans are
the opt-in half).  Components create their instruments once at
construction time and bump them on the hot path; instruments are plain
Python objects with integer/float fields, so the cost per update is one
attribute add.

Naming convention (see ``docs/observability.md``): dot-separated
``<subsystem>.<component>.<metric>``, e.g. ::

    vnet.core.h0.pkts_from_guest
    palacios.virtio.vm1.virtio0.tx_packets
    hw.nic.h0.nic.tx_bytes
    palacios.h0.exits.virtio-kick

Counter *families* that the old code kept as ``collections.Counter``
(e.g. per-reason VM-exit counts) are modelled by :class:`LabeledCounters`
— a mapping-like view over ``<prefix>.<label>`` counters that preserves
``family["label"]`` read access.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabeledCounters",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value that can move both ways.

    A gauge can optionally record *set timestamps*: ``set(v, now_ns=...)``
    accumulates the time-weighted integral of the value, and
    :meth:`time_avg` then reports the average **weighted by how long each
    value was held** rather than the last value written.  That is the
    right reading for queue depths: a ring that held 40 entries for 1 µs
    and then sat empty for a second averages ≈0, where the last-value
    reading would report whatever the final sample happened to be.
    Timestamp-free ``set(v)`` keeps the old one-attribute-write cost.
    """

    __slots__ = ("name", "value", "first_set_ns", "last_set_ns", "weighted_ns")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.first_set_ns: Optional[int] = None
        self.last_set_ns: Optional[int] = None
        self.weighted_ns = 0.0

    def set(self, v: float, now_ns: Optional[int] = None) -> None:
        if now_ns is not None:
            if self.last_set_ns is None:
                self.first_set_ns = now_ns
            else:
                self.weighted_ns += self.value * (now_ns - self.last_set_ns)
            self.last_set_ns = now_ns
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def time_avg(self, now_ns: int) -> float:
        """Time-weighted average value since the first timestamped set.

        The current value is extrapolated to ``now_ns``.  A gauge that
        has never been set with a timestamp degenerates to its current
        value (last-value semantics), so callers need not special-case
        un-migrated gauges.
        """
        if self.last_set_ns is None:
            return self.value
        span = now_ns - self.first_set_ns
        if span <= 0:
            return self.value
        held = self.weighted_ns + self.value * (now_ns - self.last_set_ns)
        return held / span

    def integral_ns(self, now_ns: int) -> float:
        """Value·time integral since the first timestamped set (the raw
        accumulator behind :meth:`time_avg`; timelines difference it to
        get per-window averages)."""
        if self.last_set_ns is None:
            return 0.0
        return self.weighted_ns + self.value * (now_ns - self.last_set_ns)

    def reset(self) -> None:
        self.value = 0.0
        self.first_set_ns = None
        self.last_set_ns = None
        self.weighted_ns = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram with streaming moments.

    ``edges`` are ascending upper bounds; an observation ``x`` lands in
    the first bucket whose edge satisfies ``x <= edge``, and in the
    implicit overflow bucket (``+inf``) beyond the last edge — so
    ``counts`` has ``len(edges) + 1`` entries.  Mean/min/max are kept
    exactly; percentiles interpolate within the bucket, which is the
    usual fixed-bucket approximation.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, edges: Sequence[float]):
        if not edges:
            raise ValueError(f"histogram {name}: needs at least one bucket edge")
        if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError(f"histogram {name}: edges must be strictly ascending")
        self.name = name
        self.edges: tuple[float, ...] = tuple(float(e) for e in edges)
        self.counts: list[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, x: float) -> None:
        self.counts[bisect_left(self.edges, x)] += 1
        self.count += 1
        self.sum += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def observe_weighted(self, x: float, n: int) -> None:
        """Record ``x`` as ``n`` observations at once.

        Equivalent to ``n`` calls to :meth:`observe` — used by aggregate
        recorders (the fluid fast path logs one value per stride for the
        whole stride's packets) so histograms stay packet-weighted, not
        wakeup-weighted.
        """
        if n <= 0:
            return
        self.counts[bisect_left(self.edges, x)] += n
        self.count += n
        self.sum += x * n
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def percentile(self, q: float) -> float:
        """Approximate percentile by linear interpolation within a bucket."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        if self.count == 0:
            return math.nan
        rank = q / 100 * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = self.edges[i - 1] if i > 0 else min(self.min, self.edges[0])
                hi = self.edges[i] if i < len(self.edges) else self.max
                frac = (rank - seen) / c
                return lo + (hi - lo) * frac
            seen += c
        return self.max

    def reset(self) -> None:
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Histogram {self.name} n={self.count}>"


class LabeledCounters:
    """Mapping-like family of counters sharing a dotted name prefix.

    Replaces the private ``collections.Counter`` pattern: reads keep the
    familiar ``family["label"]`` shape (missing labels read as 0), while
    every label lives in the registry as ``<prefix>.<label>``.
    """

    def __init__(self, registry: "MetricsRegistry", prefix: str):
        self._registry = registry
        self._prefix = prefix
        self._by_label: dict[str, Counter] = {}

    def inc(self, label: str, n: int = 1) -> None:
        counter = self._by_label.get(label)
        if counter is None:
            counter = self._registry.counter(f"{self._prefix}.{label}")
            self._by_label[label] = counter
        counter.inc(n)

    def __getitem__(self, label: str) -> int:
        counter = self._by_label.get(label)
        return counter.value if counter is not None else 0

    def __contains__(self, label: str) -> bool:
        return label in self._by_label

    def __iter__(self) -> Iterator[str]:
        return iter(self._by_label)

    def keys(self) -> Iterable[str]:
        return self._by_label.keys()

    def items(self) -> Iterable[tuple[str, int]]:
        return [(label, c.value) for label, c in self._by_label.items()]

    def values(self) -> Iterable[int]:
        return [c.value for c in self._by_label.values()]

    def total(self) -> int:
        return sum(c.value for c in self._by_label.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LabeledCounters {self._prefix} {dict(self.items())}>"


class MetricsRegistry:
    """Name-keyed home for every metric one simulation publishes.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking for
    an existing name returns the same instrument (so wiring code may run
    twice), but asking with a conflicting type — or conflicting histogram
    edges — raises ``ValueError``.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, kind, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as {type(existing).__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        hist = self._get_or_create(name, Histogram, lambda: Histogram(name, edges))
        if hist.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges {hist.edges}"
            )
        return hist

    def labeled(self, prefix: str) -> LabeledCounters:
        return LabeledCounters(self, prefix)

    # -- queries ----------------------------------------------------------
    def get(self, name: str) -> Optional[Counter | Gauge | Histogram]:
        return self._metrics.get(name)

    def names(self, prefix: str = "") -> list[str]:
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self, prefix: str = "") -> dict:
        """Plain-data view of every metric under ``prefix``.

        Counters/gauges map to their value; histograms map to a dict with
        ``count``, ``sum``, ``edges``, and ``counts``.
        """
        out: dict[str, object] = {}
        for name in self.names(prefix):
            m = self._metrics[name]
            if isinstance(m, Histogram):
                out[name] = {
                    "count": m.count,
                    "sum": m.sum,
                    "edges": list(m.edges),
                    "counts": list(m.counts),
                }
            else:
                out[name] = m.value
        return out

    def reset(self) -> None:
        """Zero every registered metric (registrations are kept)."""
        for m in self._metrics.values():
            m.reset()

    # -- cross-process aggregation ----------------------------------------
    def dump(self) -> dict:
        """Typed, picklable snapshot of every metric, for :meth:`merge`.

        Unlike :meth:`snapshot` (a flat name→value view for humans and
        exporters), the dump records each instrument's kind so another
        registry — typically in the parent process of a worker pool —
        can reconstruct and combine it.  The dump is plain data (dicts,
        lists, numbers) and pickles cleanly across process boundaries.
        """
        out: dict[str, dict] = {}
        for name, m in self._metrics.items():
            if isinstance(m, Histogram):
                out[name] = {
                    "type": "histogram",
                    "edges": list(m.edges),
                    "counts": list(m.counts),
                    "count": m.count,
                    "sum": m.sum,
                    "min": m.min,
                    "max": m.max,
                }
            elif isinstance(m, Counter):
                out[name] = {"type": "counter", "value": m.value}
            else:
                entry = {"type": "gauge", "value": m.value}
                if m.last_set_ns is not None:
                    entry["first_set_ns"] = m.first_set_ns
                    entry["last_set_ns"] = m.last_set_ns
                    entry["weighted_ns"] = m.weighted_ns
                out[name] = entry
        return out

    def merge(self, dump: dict) -> None:
        """Merge a :meth:`dump` from another registry into this one.

        Counters and gauges add their values (a gauge dump is the
        instrument's final state in the source registry, so summing
        aggregates per-worker totals); histograms require identical
        edges and combine bucket counts, totals, and extrema.  Metric
        kinds must match any instrument already registered here —
        mismatches raise ``ValueError`` just like conflicting
        registrations do.
        """
        for name, entry in dump.items():
            kind = entry["type"]
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                g = self.gauge(name)
                g.value += entry["value"]
                if "last_set_ns" in entry:
                    # Combine time-weighted state: integrals add, the
                    # observation window spans both sources.
                    g.weighted_ns += entry["weighted_ns"]
                    g.first_set_ns = (
                        entry["first_set_ns"] if g.first_set_ns is None
                        else min(g.first_set_ns, entry["first_set_ns"])
                    )
                    g.last_set_ns = (
                        entry["last_set_ns"] if g.last_set_ns is None
                        else max(g.last_set_ns, entry["last_set_ns"])
                    )
            elif kind == "histogram":
                h = self.histogram(name, entry["edges"])
                if len(entry["counts"]) != len(h.counts):
                    raise ValueError(
                        f"histogram {name!r}: merge with mismatched bucket count"
                    )
                for i, c in enumerate(entry["counts"]):
                    h.counts[i] += c
                h.count += entry["count"]
                h.sum += entry["sum"]
                h.min = min(h.min, entry["min"])
                h.max = max(h.max, entry["max"])
            else:
                raise ValueError(f"metric {name!r}: unknown dump kind {kind!r}")
