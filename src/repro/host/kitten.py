"""VNET/P for the Kitten lightweight kernel (Sect. 6.3, Fig. 17).

Kitten deliberately has a minimal set of in-kernel services, so the
bridge cannot live in the host kernel: it runs in a privileged service
VM (the **bridge VM**) with direct access to the physical InfiniBand
device.  Instead of UDP encapsulation, guest Ethernet frames are mapped
directly onto InfiniBand frames sent through a queue pair.

The guest-visible abstraction is identical to the Linux embedding: the
VNET/P core, virtio NICs, and routing are reused unchanged; only the
bridge component differs.  Each packet pays a VM crossing into/out of
the bridge VM plus a copy each way — which is why the Kitten data path
(4.0 Gbps) trails in-kernel expectations, while Kitten's low-noise
environment gives it very low jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import HostParams, NICParams, VnetTuning, default_host
from ..hw.cpu import CPU
from ..hw.link import Link
from ..hw.memory import MemorySystem
from ..hw.nic import PhysicalNIC
from ..palacios.vmm import PalaciosVMM
from ..proto.ethernet import BROADCAST_MAC, EthernetFrame, mac_addr
from ..sim import PacketStage, Simulator, Store
from ..vnet.core import VnetCore
from ..vnet.overlay import DestType, InterfaceSpec, LinkProto, LinkSpec, RouteEntry

__all__ = ["BridgeVMParams", "KittenBridgeVM", "KittenHost", "build_vnetp_kitten"]


@dataclass(frozen=True)
class BridgeVMParams:
    """Costs of the service-VM bridge data path."""

    vm_crossing_ns: int = 2_100       # shared ring notify + exit/entry
    # Bridge-VM copies cross two address spaces (guest ring -> VMM ->
    # service VM), so the effective rate is well below a plain memcpy.
    copy_bw_Bps: float = 0.65e9
    ipoib_tx_ns: int = 2_000          # IPoIB framework send (queue pair post)
    ipoib_rx_ns: int = 2_200
    queue_frames: int = 4096


class KittenBridgeVM(PacketStage):
    """The privileged bridge VM: VNET/P core <-> InfiniBand queue pair.

    Presents the same ``txq`` interface the VNET/P core expects from a
    bridge, so the core is reused verbatim; frames are transmitted raw
    (mapped to IB frames), not UDP-encapsulated.
    """

    def __init__(
        self,
        sim: Simulator,
        host: "KittenHost",
        core: VnetCore,
        params: Optional[BridgeVMParams] = None,
    ):
        self._init_stage(sim, f"{host.name}.bridgevm")
        self.host = host
        self.core = core
        self.params = params or BridgeVMParams()
        self.txq: Store = Store(sim, capacity=self.params.queue_frames, name=f"{self.name}.txq")
        self.rxq: Store = Store(sim, capacity=self.params.queue_frames, name=f"{self.name}.rxq")
        self.tx_frames = 0
        self.rx_frames = 0
        self.rx_dropped = 0
        core.attach_bridge(self)
        host.nic.rx_port.connect(self._on_ib_rx)
        sim.process(self._tx_loop(), name=f"{self.name}.tx")
        sim.process(self._rx_loop(), name=f"{self.name}.rx")

    def _copy_ns(self, nbytes: int) -> int:
        return int(round(nbytes * 1e9 / self.params.copy_bw_Bps))

    def _tx_loop(self):
        params = self.params
        while True:
            frame, link = yield self.txq.get()
            if link.proto is not LinkProto.DIRECT:
                raise ValueError(
                    f"{self.name}: Kitten bridge maps frames directly to IB "
                    f"frames; got a {link.proto.value} link"
                )
            # Cross into the bridge VM with the frame, then post it on the
            # InfiniBand queue pair.
            yield self.sim.timeout(
                params.vm_crossing_ns + self._copy_ns(frame.size) + params.ipoib_tx_ns
            )
            self.tx_frames += 1
            yield self.host.nic.txq.put(frame)

    def _on_ib_rx(self, frame: EthernetFrame) -> bool:
        # Accept only frames for local guests (or broadcasts) — the same
        # MAC filter the Linux bridge applies in direct-receive mode.
        # Without it, switch flooding would be re-forwarded by every
        # non-target node's core, creating a storm.
        if frame.dst not in self.core.if_by_mac and frame.dst != BROADCAST_MAC:
            return True  # filtered, not backpressure
        if not self.rxq.try_put(frame):
            self.rx_dropped += 1
            return False
        return True

    # PacketStage entry point (IB NIC rx port sink).
    ingress = _on_ib_rx

    def _rx_loop(self):
        """Single bridge-VM thread: frames are processed in order."""
        params = self.params
        while True:
            frame = yield self.rxq.get()
            yield self.sim.timeout(
                params.ipoib_rx_ns + self._copy_ns(frame.size) + params.vm_crossing_ns
            )
            self.rx_frames += 1
            self.core.inbound.push(frame)


class KittenHost:
    """A compute node running Kitten + Palacios (a 'type-I' arrangement)."""

    _counter = 0

    def __init__(
        self,
        sim: Simulator,
        params: HostParams,
        nic_params: NICParams,
        name: Optional[str] = None,
    ):
        KittenHost._counter += 1
        self.sim = sim
        self.params = params
        self.name = name or f"kitten{KittenHost._counter}"
        self.cpu = CPU(sim, params.cpu, name=f"{self.name}.cpu")
        self.memory = MemorySystem(sim, params.memory, name=f"{self.name}.mem")
        self.nic = PhysicalNIC(sim, nic_params, name=f"{self.name}.ib")
        self.vmm: Optional[PalaciosVMM] = None
        self.vnet_core = None
        self.vnet_bridge = None
        from ..config import KITTEN_NOISE
        from ..sim import RandomStreams

        self._noise_params = KITTEN_NOISE
        self._noise_rng = RandomStreams(seed=0).stream(f"{self.name}.noise")

    def wakeup_noise_ns(self) -> int:
        """Kitten is a low-noise LWK: almost no scheduling jitter (Sect. 6.3)."""
        jitter = self._noise_params.jitter_max_ns
        if jitter <= 0:
            return 0
        return int(self._noise_rng.integers(0, jitter + 1))


def build_vnetp_kitten(
    n_hosts: int = 2,
    nic_params: Optional[NICParams] = None,
    host_params: Optional[HostParams] = None,
    tuning: Optional[VnetTuning] = None,
    guest_mtu: int = 8958,
    sim: Optional[Simulator] = None,
):
    """Two (or more) Kitten nodes over InfiniBand, one guest VM each.

    Returns a Testbed whose endpoints are the guest stacks, as with the
    Linux builders.  The testbed's 8900-byte-payload ttcp measurement is
    the Sect. 6.3 experiment.
    """
    import dataclasses

    from ..config import MELLANOX_IPOIB
    from ..harness.testbed import Endpoint, Testbed
    from ..hw.switch import Switch, SwitchParams

    sim = sim or Simulator()
    nic_params = nic_params or dataclasses.replace(MELLANOX_IPOIB, max_mtu=65520)
    hosts: list[KittenHost] = []
    vms = []
    cores = []
    macs = [mac_addr(i + 1, prefix=0x5B) for i in range(n_hosts)]
    for i in range(n_hosts):
        host = KittenHost(sim, host_params or default_host(), nic_params, name=f"kitten{i}")
        vmm = PalaciosVMM(sim, host)  # type: ignore[arg-type]
        vm = vmm.create_vm(f"kvm{i}", guest_ip=f"172.16.1.{i + 1}")
        nic = vm.attach_virtio_nic(mac=macs[i], mtu=guest_mtu)
        core = VnetCore(sim, host, tuning=tuning)  # type: ignore[arg-type]
        core.register_interface(InterfaceSpec(name="if0", mac=macs[i]), nic)
        KittenBridgeVM(sim, host, core)
        hosts.append(host)
        vms.append(vm)
        cores.append(core)
    # Two nodes are cabled directly (the Sect. 6.3 testbed); more go
    # through an InfiniBand switch (Mellanox MTS3600-style).  The switch
    # forwards on the *guest* MACs, since Kitten's bridge VM maps guest
    # Ethernet frames directly onto IB frames.
    switch = None
    if n_hosts == 2:
        Link(sim, hosts[0].nic, hosts[1].nic)
    else:
        switch = Switch(
            sim,
            SwitchParams(
                name="mellanox-mts3600",
                latency_ns=700,
                port_rate_bps=nic_params.rate_bps,
            ),
        )
        for host in hosts:
            switch.attach(host.nic)
    for i, core in enumerate(cores):
        for j in range(n_hosts):
            if i == j:
                continue
            core.add_link(LinkSpec(name=f"ib{j}", proto=LinkProto.DIRECT))
            core.add_route(
                RouteEntry(
                    src_mac="any",
                    dst_mac=macs[j],
                    dest_type=DestType.LINK,
                    dest_name=f"ib{j}",
                )
            )
        core.add_route(
            RouteEntry(
                src_mac="any",
                dst_mac=macs[i],
                dest_type=DestType.INTERFACE,
                dest_name="if0",
            )
        )
    for i, vm in enumerate(vms):
        for j, other in enumerate(vms):
            if i != j:
                vm.stack.add_neighbor(other.guest_ip, macs[j])
    endpoints = [
        Endpoint(stack=vm.stack, ip=vm.guest_ip, host=hosts[i], vm=vm)  # type: ignore[arg-type]
        for i, vm in enumerate(vms)
    ]
    return Testbed(
        sim=sim,
        config="vnet/p-kitten",
        hosts=hosts,  # type: ignore[arg-type]
        endpoints=endpoints,
        switch=switch,
        cores=cores,
    )
