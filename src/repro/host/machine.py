"""A physical machine: CPU, memory, NICs, and the host OS stack."""

from __future__ import annotations

from typing import Optional

from ..config import HostParams, NICParams
from ..hw.cpu import CPU
from ..hw.memory import MemorySystem
from ..hw.nic import PhysicalNIC
from ..proto.ethernet import mac_addr
from ..proto.stack import Stack
from ..sim import RandomStreams, Simulator, Tracer
from .linux import EthernetDevice

__all__ = ["Host"]

_host_counter = 0


class Host:
    """One physical machine running Linux (optionally hosting Palacios).

    Construction wires: PhysicalNIC <-> EthernetDevice <-> host Stack.
    The topology builder attaches the NIC to a link or a switch, and
    fills in neighbor tables.
    """

    def __init__(
        self,
        sim: Simulator,
        params: HostParams,
        nic_params: NICParams,
        ip: str,
        name: Optional[str] = None,
        tracer: Optional[Tracer] = None,
    ):
        global _host_counter
        _host_counter += 1
        self.sim = sim
        self.params = params
        self.ip = ip
        self.name = name or f"host{_host_counter}"
        self.tracer = tracer or Tracer()
        self.cpu = CPU(sim, params.cpu, name=f"{self.name}.cpu")
        self.memory = MemorySystem(sim, params.memory, name=f"{self.name}.mem")
        self.nic = PhysicalNIC(sim, nic_params, name=f"{self.name}.nic", tracer=self.tracer)
        self.dev = EthernetDevice(self.nic, mac=mac_addr(_host_counter), name=f"{self.name}.eth0")
        self.stack = Stack(sim, params.stack, ip=ip, name=f"{self.name}.stack", tracer=self.tracer)
        self.dev.bind(self.stack)
        # Seeded by name (not creation order) so identical testbeds built
        # in one process behave identically — determinism tests rely on it.
        self._noise_rng = RandomStreams(seed=0).stream(f"{self.name}.noise")
        # Populated when a VM / VNET components are instantiated on this host.
        self.vmm = None
        self.vnet_core = None
        self.vnet_bridge = None

    def wakeup_noise_ns(self) -> int:
        """One sample of OS scheduling noise (Linux: up to a few us)."""
        jitter = self.params.noise.jitter_max_ns
        if jitter <= 0:
            return 0
        return int(self._noise_rng.integers(0, jitter + 1))

    def add_neighbor(self, other: "Host") -> None:
        """Static ARP entry for a peer host on the same L2 segment."""
        self.stack.add_neighbor(other.ip, other.dev.mac, self.dev)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.name} ip={self.ip}>"
