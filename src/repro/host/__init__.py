"""Host operating-system models (Linux embedding, Kitten LWK)."""

from .linux import EthernetDevice
from .machine import Host

__all__ = ["EthernetDevice", "Host"]
