"""Linux host-side device driver adapter.

Binds a :class:`~repro.hw.nic.PhysicalNIC` to a :class:`~repro.proto.stack.Stack`
as a :class:`~repro.proto.stack.NetDevice`.  The driver costs per frame are
carried by the NIC model (ring handling) and the stack model (softirq);
the adapter itself only moves frames.
"""

from __future__ import annotations

from typing import Optional

from ..hw.nic import PhysicalNIC
from ..proto.ethernet import EthernetFrame
from ..proto.stack import Stack
from ..sim import PacketStage

__all__ = ["EthernetDevice"]


class EthernetDevice(PacketStage):
    """NetDevice adapter over a physical NIC (the host's ethX)."""

    def __init__(self, nic: PhysicalNIC, mac: str, name: Optional[str] = None):
        self._init_stage(nic.sim, name or f"eth-{nic.name}")
        self.nic = nic
        self.mac = mac
        self.mtu = nic.params.max_mtu
        self.stack: Optional[Stack] = None
        nic.rx_port.connect(self._on_rx)

    def bind(self, stack: Stack, default: bool = True) -> None:
        self.stack = stack
        stack.add_device(self, default=default)

    def send_blocking(self, frame: EthernetFrame):
        """Generator: enqueue on the NIC, blocking while the tx ring is full."""
        if frame.payload_size > self.mtu:
            raise ValueError(
                f"{self.name}: frame payload {frame.payload_size} B > MTU {self.mtu}"
            )
        yield self.nic.txq.put(frame)

    def try_send(self, frame: EthernetFrame) -> bool:
        return self.nic.send(frame)

    def _on_rx(self, frame: EthernetFrame) -> None:
        if self.stack is not None:
            self.stack.rx_frame(self, frame)

    # PacketStage entry point (NIC rx port sink).
    ingress = _on_rx
