"""Chaos engineering for the VNET/P reproduction (``repro.chaos``).

Deterministic fault injection on the unified datapath pipeline:

* :mod:`repro.chaos.stages` — injector :class:`~repro.sim.pipeline.PacketStage`\\ s
  (Bernoulli loss, Gilbert–Elliott burst loss, partition, reorder,
  duplication) that install on any pipeline :class:`~repro.sim.pipeline.Port`
  with order-safe removal and ``chaos.*`` metrics;
* :mod:`repro.chaos.schedule` — :class:`~repro.chaos.schedule.FaultSchedule`,
  a declarative timeline of fault windows (including link flap and host
  pause) executed by bounded simulator processes.

The overlay-resilience loop this subsystem exercises lives in
:mod:`repro.vnet.heartbeat` (liveness probes),
:mod:`repro.vnet.monitor` (phi-style failure detection) and
:mod:`repro.vnet.adaptation` (failover rerouting); the measured
experiments are :mod:`repro.harness.experiments.resilience`.  See
``docs/robustness.md``.
"""

from .schedule import FaultSchedule, FaultWindow
from .stages import (
    DelayStage,
    DuplicateStage,
    FaultInjector,
    GilbertElliottStage,
    LossStage,
    PartitionStage,
    ReorderStage,
    chain_on,
)

__all__ = [
    "FaultSchedule",
    "FaultWindow",
    "FaultInjector",
    "LossStage",
    "GilbertElliottStage",
    "PartitionStage",
    "ReorderStage",
    "DelayStage",
    "DuplicateStage",
    "chain_on",
]
