"""Composable fault-injector stages for the datapath pipeline.

The injectors generalize what ``hw/faults.py`` used to hard-wire onto a
NIC's medium callable: each one is a :class:`~repro.sim.pipeline.PacketStage`
that installs onto **any** :class:`~repro.sim.pipeline.Port` — a physical
NIC transmit port, a switch ingress, or the per-link egress filter the
VNET/P bridge exposes on its UDP encapsulation path
(:meth:`repro.vnet.bridge.VnetBridge.link_out`) — by wrapping the port's
sink with :meth:`Port.rebind`.

Two properties the old wrappers lacked:

* **Order-safe removal.**  Injectors stacked on one port form a chain;
  ``remove()`` unwinds the chain by splicing the injector out wherever
  it sits, instead of restoring a callable captured at install time.
  Removing A then B and removing B then A both restore the original
  sink (the ``LossyMedium.remove()`` mis-restore bug).
* **Observable counters.**  Every injector publishes its counters as
  dotted ``chaos.<kind>.<port>.*`` metrics through the shared
  :mod:`repro.obs` registry, so exporters and the cross-process metrics
  merge see fault activity like any other subsystem.

Determinism: all randomness comes from a per-injector
``numpy.random.default_rng(seed)``; two runs with the same seeds and
the same schedule drop/delay/duplicate exactly the same frames.

Drop-family injectors (:class:`LossStage`, :class:`GilbertElliottStage`,
:class:`PartitionStage`) are timing-transparent predicates and compose
on any port, including the bridge's synchronous filter ports.
:class:`ReorderStage` and :class:`DuplicateStage` re-invoke the
downstream sink (possibly later in virtual time), so they belong on
*delivery* ports — e.g. ``nic.rx_port``, ``core.inbound`` or a switch
port — where the sink is an actual delivery callable, not a predicate
consulted mid-generator.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..obs.context import Observability
from ..sim import Simulator
from ..sim.pipeline import PacketStage, Port

__all__ = [
    "FaultInjector",
    "LossStage",
    "GilbertElliottStage",
    "PartitionStage",
    "ReorderStage",
    "DuplicateStage",
    "chain_on",
]

# Injector chains per wrapped Port, keyed by id(port) because Port is
# slotted (no attribute attachment).  Entries are removed when the last
# injector leaves a port, so the registry never outlives the harness.
_CHAINS: dict[int, list["FaultInjector"]] = {}


class FaultInjector(PacketStage):
    """Base class: a removable sink-wrapping stage on one Port.

    Subclasses implement :meth:`ingress`; on a pass they must forward by
    returning ``self.forward(frame)``, on a drop they count and return
    ``False`` (the wrapped port then counts the drop too, exactly as if
    the sink itself had refused the frame).
    """

    kind = "fault"

    def __init__(self, sim: Simulator, name: Optional[str] = None):
        self._init_stage(sim, name or f"chaos.{self.kind}")
        self._explicit_name = name is not None
        self._port: Optional[Port] = None
        self._downstream: Optional[Callable[[Any], Any]] = None
        # Bound-method cache: each ``self.ingress`` attribute access makes
        # a fresh bound method, so identity checks against the port sink
        # must go through this single captured reference.
        self._entry: Optional[Callable[[Any], Any]] = None
        self._metrics = Observability.of(sim).metrics
        self._counters: dict[str, Any] = {}

    # -- metrics -----------------------------------------------------------
    def counter(self, metric: str):
        """Get-or-create the ``chaos.<name>.<metric>`` registry counter."""
        c = self._counters.get(metric)
        if c is None:
            c = self._metrics.counter(f"{self.name}.{metric}")
            self._counters[metric] = c
        return c

    def counts(self) -> dict:
        """Snapshot of this injector's chaos counters."""
        return {metric: c.value for metric, c in sorted(self._counters.items())}

    # -- chain management --------------------------------------------------
    @property
    def installed(self) -> bool:
        return self._port is not None

    def install(self, port: Port) -> "FaultInjector":
        """Interpose on ``port`` (idempotent-unsafe: install once)."""
        if self._port is not None:
            raise RuntimeError(f"{self.name} already installed on {self._port.name}")
        if not self._explicit_name:
            # Late-bind the display/metric name to the injection point so
            # counters read ``chaos.loss.h0.nic.tx.dropped``.
            self.name = f"chaos.{self.kind}.{port.name}"
        self._port = port
        self._downstream = port.sink
        self._entry = self.ingress
        port.rebind(self._entry)
        _CHAINS.setdefault(id(port), []).append(self)
        return self

    def remove(self) -> None:
        """Splice this injector out of its port's chain, wherever it sits.

        Order-safe: the chain is unwound structurally, so stacked
        injectors may be removed in any order and the port's original
        sink is restored once the chain empties.
        """
        port = self._port
        if port is None:
            return
        chain = _CHAINS.get(id(port), [])
        if port.sink is self._entry:
            # We are the outermost wrapper: the port points at us.
            port.rebind(self._downstream)
        else:
            # Some later-installed injector forwards into us; re-aim it at
            # whatever we were forwarding into.
            for other in chain:
                if other is not self and other._downstream is self._entry:
                    other._downstream = self._downstream
                    break
        if self in chain:
            chain.remove(self)
        if not chain:
            _CHAINS.pop(id(port), None)
        self._port = None
        self._downstream = None
        self._entry = None

    def forward(self, frame: Any) -> Any:
        """Hand ``frame`` to whatever this injector wraps."""
        return self._downstream(frame)


class LossStage(FaultInjector):
    """Bernoulli frame loss: drop each frame independently with ``rate``."""

    kind = "loss"

    def __init__(self, sim: Simulator, rate: float, seed: int = 0,
                 name: Optional[str] = None):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        super().__init__(sim, name)
        self.rate = rate
        self._rng = np.random.default_rng(seed)

    @property
    def dropped(self) -> int:
        return self.counter("dropped").value

    @property
    def passed(self) -> int:
        return self.counter("passed").value

    def ingress(self, frame: Any) -> Any:
        """Drop with probability ``rate``; otherwise forward."""
        if self._rng.random() < self.rate:
            self.counter("dropped").inc()
            return False
        self.counter("passed").inc()
        return self.forward(frame)


class GilbertElliottStage(FaultInjector):
    """Two-state Markov (Gilbert–Elliott) burst loss.

    The channel is either *good* or *bad*; each frame first advances the
    state (good→bad with ``p_gb``, bad→good with ``p_bg``) and is then
    dropped with the state's loss probability (``loss_good`` /
    ``loss_bad``).  Expected stationary bad-state occupancy is
    ``p_gb / (p_gb + p_bg)`` and mean burst length ``1 / p_bg`` frames.
    """

    kind = "burst"

    def __init__(
        self,
        sim: Simulator,
        p_gb: float,
        p_bg: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        seed: int = 0,
        name: Optional[str] = None,
    ):
        for label, p in (("p_gb", p_gb), ("p_bg", p_bg),
                         ("loss_good", loss_good), ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {p}")
        super().__init__(sim, name)
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = False
        self._rng = np.random.default_rng(seed)

    @property
    def dropped(self) -> int:
        return self.counter("dropped").value

    @property
    def passed(self) -> int:
        return self.counter("passed").value

    def ingress(self, frame: Any) -> Any:
        """Advance the channel state, then drop per the state's loss prob."""
        rng = self._rng
        if self.bad:
            if rng.random() < self.p_bg:
                self.bad = False
        elif rng.random() < self.p_gb:
            self.bad = True
        p_loss = self.loss_bad if self.bad else self.loss_good
        if p_loss > 0.0 and rng.random() < p_loss:
            self.counter("dropped").inc()
            if self.bad:
                self.counter("burst_dropped").inc()
            return False
        self.counter("passed").inc()
        return self.forward(frame)


class PartitionStage(FaultInjector):
    """A controllable blackhole: ``fail()`` drops everything, ``heal()``
    restores forwarding.  Bidirectional partitions use one stage per
    direction."""

    kind = "partition"

    def __init__(self, sim: Simulator, name: Optional[str] = None,
                 failed: bool = False):
        super().__init__(sim, name)
        self.failed = failed

    @property
    def blackholed(self) -> int:
        return self.counter("blackholed").value

    @property
    def passed(self) -> int:
        return self.counter("passed").value

    def ingress(self, frame: Any) -> Any:
        """Blackhole while failed; otherwise forward untouched."""
        if self.failed:
            self.counter("blackholed").inc()
            return False
        self.counter("passed").inc()
        return self.forward(frame)

    def fail(self) -> None:
        """Start blackholing."""
        if not self.failed:
            self.failed = True
            self.counter("failures").inc()

    def heal(self) -> None:
        """Stop blackholing."""
        self.failed = False

    def fail_for(self, sim: Simulator, duration_ns: int):
        """Generator: partition for a fixed window, then heal."""
        self.fail()
        yield sim.timeout(duration_ns)
        self.heal()


class ReorderStage(FaultInjector):
    """Probabilistically delays frames so later ones overtake them.

    A selected frame is delivered ``delay_ns`` later through a pooled
    kernel event; everything else passes synchronously, so any frame
    arriving within the delay window overtakes the held one.  Install on
    a *delivery* port (``nic.rx_port``, ``core.inbound``, a switch
    port): the held frame is re-injected by calling the downstream sink
    directly, which a mid-generator predicate port cannot honour.
    """

    kind = "reorder"

    def __init__(self, sim: Simulator, prob: float, delay_ns: int,
                 seed: int = 0, name: Optional[str] = None):
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"reorder prob must be in [0, 1], got {prob}")
        if delay_ns <= 0:
            raise ValueError(f"reorder delay must be positive, got {delay_ns}")
        super().__init__(sim, name)
        self.prob = prob
        self.delay_ns = int(delay_ns)
        self._rng = np.random.default_rng(seed)

    @property
    def reordered(self) -> int:
        return self.counter("reordered").value

    @property
    def passed(self) -> int:
        return self.counter("passed").value

    def ingress(self, frame: Any) -> Any:
        """Hold the frame for ``delay_ns`` with probability ``prob``."""
        if self._rng.random() < self.prob:
            self.counter("reordered").inc()
            # Capture the downstream sink now: if the injector is removed
            # before delivery, the in-flight frame still lands.
            sink = self._downstream
            evt = self.sim.timeout(self.delay_ns)
            evt.callbacks.append(lambda _evt, f=frame, s=sink: s(f))
            return True
        self.counter("passed").inc()
        return self.forward(frame)


class DelayStage(FaultInjector):
    """Delays *every* frame by a fixed ``delay_ns``, order-preserving.

    Unlike :class:`ReorderStage` this is deterministic (no RNG) and
    uniform: each frame is held for exactly ``delay_ns`` through a
    pooled kernel event, so relative ordering is preserved — the stage
    models added path latency (a longer overlay hop, a WAN leg), not
    reordering.  The fairness family uses it to build asymmetric-RTT
    competing flows.  Same placement rule as :class:`ReorderStage`:
    install on a *delivery* port (``nic.rx_port``, ``core.inbound``)
    whose downstream sink tolerates direct re-invocation.
    """

    kind = "delay"

    def __init__(self, sim: Simulator, delay_ns: int, name: Optional[str] = None):
        if delay_ns <= 0:
            raise ValueError(f"delay must be positive, got {delay_ns}")
        super().__init__(sim, name)
        self.delay_ns = int(delay_ns)

    @property
    def delayed(self) -> int:
        return self.counter("delayed").value

    def ingress(self, frame: Any) -> Any:
        """Hold the frame for exactly ``delay_ns``, then deliver it."""
        self.counter("delayed").inc()
        # Capture the downstream sink now: if the injector is removed
        # before delivery, the in-flight frame still lands.
        sink = self._downstream
        evt = self.sim.timeout(self.delay_ns)
        evt.callbacks.append(lambda _evt, f=frame, s=sink: s(f))
        return True


class DuplicateStage(FaultInjector):
    """Probabilistically delivers a frame twice (UDP overlay duplication).

    Descriptor payloads are immutable in flight (pipeline ownership rule
    2), so re-presenting the same descriptor models duplication safely.
    Same placement rule as :class:`ReorderStage`: install on a delivery
    port whose sink tolerates re-invocation.
    """

    kind = "duplicate"

    def __init__(self, sim: Simulator, prob: float, seed: int = 0,
                 name: Optional[str] = None):
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"duplicate prob must be in [0, 1], got {prob}")
        super().__init__(sim, name)
        self.prob = prob
        self._rng = np.random.default_rng(seed)

    @property
    def duplicated(self) -> int:
        return self.counter("duplicated").value

    @property
    def passed(self) -> int:
        return self.counter("passed").value

    def ingress(self, frame: Any) -> Any:
        """Forward once, and a second time with probability ``prob``."""
        self.counter("passed").inc()
        result = self.forward(frame)
        if self._rng.random() < self.prob:
            self.counter("duplicated").inc()
            self.forward(frame)
        return result


def chain_on(port: Port) -> list[FaultInjector]:
    """The injectors currently installed on ``port`` (install order)."""
    return list(_CHAINS.get(id(port), ()))
