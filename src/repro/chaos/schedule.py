"""Declarative fault schedules: timed chaos windows over injector stages.

A :class:`FaultSchedule` is built before the simulation runs — each
builder call (:meth:`FaultSchedule.loss`, :meth:`~FaultSchedule.burst`,
:meth:`~FaultSchedule.partition`, :meth:`~FaultSchedule.flap`,
:meth:`~FaultSchedule.reorder`, :meth:`~FaultSchedule.duplicate`,
:meth:`~FaultSchedule.pause`) records one *window*: a fault kind, the
port (or host) it applies to, and a ``[start_ns, stop_ns)`` interval.
:meth:`~FaultSchedule.start` then spawns one bounded simulator process
per window that installs the injector at ``start_ns`` and removes it at
``stop_ns``, so a drained ``sim.run()`` still terminates (every window
has a finite horizon; ``stop_ns=None`` leaves the injector in place
without keeping any timer pending).

Everything is deterministic: windows fire at exact virtual times and
each stochastic injector owns a seeded generator, so the same schedule
over the same workload produces bit-identical results — the property
the ``chaos-suite`` CI job asserts by diffing two same-seed runs.

Example::

    sched = FaultSchedule(sim)
    sched.loss(h0.nic.tx_port, start_ns=1 * MS, stop_ns=3 * MS, rate=0.05, seed=7)
    sched.partition(bridge.link_out("to1"), start_ns=4 * MS, stop_ns=8 * MS)
    sched.flap(switch_port, start_ns=2 * MS, down_ns=100_000, up_ns=400_000, cycles=3)
    sched.start()
    sim.run()

The activity log (:attr:`FaultSchedule.log`) records every install /
remove / state flip with its virtual timestamp, and the schedule counts
events under ``chaos.schedule.<name>.events`` in the obs registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..obs.context import Observability
from ..sim import Simulator
from ..sim.fluid import fluid_region_of
from ..sim.pipeline import Port
from ..vnet.flowcache import invalidate_for_fault
from .stages import (
    DuplicateStage,
    FaultInjector,
    GilbertElliottStage,
    LossStage,
    PartitionStage,
    ReorderStage,
)

__all__ = ["FaultSchedule", "FaultWindow"]


@dataclass
class FaultWindow:
    """One scheduled fault: what, where, and when."""

    kind: str
    target: str
    start_ns: int
    stop_ns: Optional[int]
    params: dict = field(default_factory=dict)
    stage: Optional[FaultInjector] = None


class FaultSchedule:
    """A timed chaos scenario over any number of pipeline ports."""

    def __init__(self, sim: Simulator, name: str = "default"):
        self.sim = sim
        self.name = name
        self.windows: list[FaultWindow] = []
        self.log: list[tuple[int, str]] = []
        self.obs = Observability.of(sim)
        self._events = self.obs.metrics.counter(
            f"chaos.schedule.{name}.events"
        )
        self._started = False

    # -- builder calls (pre-run) ------------------------------------------
    def loss(self, port: Port, start_ns: int, stop_ns: Optional[int],
             rate: float, seed: int = 0) -> FaultWindow:
        """Bernoulli loss window at ``rate`` on ``port``."""
        stage = LossStage(self.sim, rate=rate, seed=seed)
        return self._add("loss", port, start_ns, stop_ns, stage,
                         rate=rate, seed=seed)

    def burst(self, port: Port, start_ns: int, stop_ns: Optional[int],
              p_gb: float, p_bg: float, loss_good: float = 0.0,
              loss_bad: float = 1.0, seed: int = 0) -> FaultWindow:
        """Gilbert–Elliott burst-loss window on ``port``."""
        stage = GilbertElliottStage(
            self.sim, p_gb=p_gb, p_bg=p_bg,
            loss_good=loss_good, loss_bad=loss_bad, seed=seed,
        )
        return self._add("burst", port, start_ns, stop_ns, stage,
                         p_gb=p_gb, p_bg=p_bg, seed=seed)

    def partition(self, port: Port, start_ns: int,
                  stop_ns: Optional[int]) -> FaultWindow:
        """Blackhole everything crossing ``port`` for the window."""
        stage = PartitionStage(self.sim, failed=True)
        return self._add("partition", port, start_ns, stop_ns, stage)

    def reorder(self, port: Port, start_ns: int, stop_ns: Optional[int],
                prob: float, delay_ns: int, seed: int = 0) -> FaultWindow:
        """Reorder window on a delivery ``port`` (see stage placement rule)."""
        stage = ReorderStage(self.sim, prob=prob, delay_ns=delay_ns, seed=seed)
        return self._add("reorder", port, start_ns, stop_ns, stage,
                         prob=prob, delay_ns=delay_ns, seed=seed)

    def duplicate(self, port: Port, start_ns: int, stop_ns: Optional[int],
                  prob: float, seed: int = 0) -> FaultWindow:
        """Duplication window on a delivery ``port``."""
        stage = DuplicateStage(self.sim, prob=prob, seed=seed)
        return self._add("duplicate", port, start_ns, stop_ns, stage,
                         prob=prob, seed=seed)

    def flap(self, port: Port, start_ns: int, down_ns: int, up_ns: int,
             cycles: int) -> FaultWindow:
        """Link flapping: ``cycles`` repetitions of down/up on ``port``."""
        if cycles < 1:
            raise ValueError(f"flap needs >= 1 cycle, got {cycles}")
        stage = PartitionStage(self.sim)
        stop_ns = start_ns + cycles * (down_ns + up_ns)
        window = FaultWindow(
            kind="flap", target=port.name, start_ns=start_ns, stop_ns=stop_ns,
            params={"down_ns": down_ns, "up_ns": up_ns, "cycles": cycles},
            stage=stage,
        )
        window.params["_port"] = port
        self.windows.append(window)
        return window

    def pause(self, host: Any, start_ns: int, duration_ns: int) -> FaultWindow:
        """Host pause: blackhole the host NIC in both directions.

        Models a VMM stall / live-migration brownout — the host neither
        sends nor receives for ``duration_ns``; in-flight frames on the
        wire at pause start are lost at the rx port like real silicon
        with its DMA engine quiesced.
        """
        stage = PartitionStage(self.sim, failed=True)
        rx_stage = PartitionStage(self.sim, failed=True)
        window = FaultWindow(
            kind="pause", target=host.name, start_ns=start_ns,
            stop_ns=start_ns + duration_ns,
            params={"_tx_port": host.nic.tx_port, "_rx_port": host.nic.rx_port,
                    "_rx_stage": rx_stage},
            stage=stage,
        )
        self.windows.append(window)
        return window

    # -- execution ---------------------------------------------------------
    def transition_times(self) -> tuple[list[int], list[tuple[int, Optional[int]]]]:
        """Every instant this schedule changes the network, pre-run.

        Returns ``(points, blackouts)``: ``points`` are the exact install/
        remove/flip instants (the fluid fast path clips its strides to
        these so an analytic segment never spans a transition), and
        ``blackouts`` the ``[start, stop_or_None)`` intervals during which
        a fault is live anywhere (no flow may be captured inside one).
        """
        points: list[int] = []
        blackouts: list[tuple[int, Optional[int]]] = []
        for w in self.windows:
            points.append(w.start_ns)
            if w.kind == "flap":
                down = w.params["down_ns"]
                up = w.params["up_ns"]
                t = w.start_ns
                for _ in range(w.params["cycles"]):
                    points.append(t + down)       # heal instant
                    blackouts.append((t, t + down))
                    t += down + up
                    points.append(t)              # next fail (or removal)
            else:
                if w.stop_ns is not None:
                    points.append(w.stop_ns)
                blackouts.append((w.start_ns, w.stop_ns))
        return points, blackouts

    def start(self) -> None:
        """Spawn one bounded process per window (call before ``sim.run``)."""
        if self._started:
            raise RuntimeError(f"schedule {self.name!r} already started")
        self._started = True
        region = fluid_region_of(self.sim)
        if region is not None:
            points, blackouts = self.transition_times()
            region.note_transitions(points, blackouts)
        for i, window in enumerate(self.windows):
            runner = {
                "flap": self._run_flap,
                "pause": self._run_pause,
            }.get(window.kind, self._run_window)
            self.sim.process(runner(window), name=f"chaos.{self.name}.w{i}")

    def active_stages(self) -> list[FaultInjector]:
        """Injectors currently installed by this schedule."""
        return [w.stage for w in self.windows
                if w.stage is not None and w.stage.installed]

    def _note(self, message: str) -> None:
        self.log.append((self.sim.now, message))
        self._events.inc()
        # Ground truth for the health log: every injector install/remove/
        # flip is also a timestamped "fault" event, so detection latency
        # is (first detector event) - (matching fault event).
        self.obs.health.log.emit(
            self.sim.now, f"chaos.schedule.{self.name}", "fault", "info",
            message)

    def _add(self, kind: str, port: Port, start_ns: int,
             stop_ns: Optional[int], stage: FaultInjector,
             **params: Any) -> FaultWindow:
        if self._started:
            raise RuntimeError(f"schedule {self.name!r} already started")
        if stop_ns is not None and stop_ns <= start_ns:
            raise ValueError(f"window must end after it starts: "
                             f"[{start_ns}, {stop_ns})")
        window = FaultWindow(kind=kind, target=port.name, start_ns=start_ns,
                             stop_ns=stop_ns, params=params, stage=stage)
        window.params["_port"] = port
        self.windows.append(window)
        return window

    # Fault kinds whose install can strand a compiled fast-path route
    # (drop-family); reorder/duplicate only perturb delivery order.
    _INVALIDATING = frozenset({"loss", "burst", "partition"})

    def _run_window(self, window: FaultWindow):
        port: Port = window.params["_port"]
        if window.start_ns > self.sim.now:
            yield self.sim.timeout(window.start_ns - self.sim.now)
        window.stage.install(port)
        self._note(f"install {window.kind} on {window.target}")
        if window.kind in self._INVALIDATING:
            # Timing-free flush of per-flow fast-path entries the fault
            # could strand (see repro.vnet.flowcache invalidation rules).
            invalidate_for_fault(self.sim, port.name)
        if window.stop_ns is None:
            return
        yield self.sim.timeout(window.stop_ns - self.sim.now)
        window.stage.remove()
        self._note(f"remove {window.kind} from {window.target}")

    def _run_flap(self, window: FaultWindow):
        port: Port = window.params["_port"]
        stage: PartitionStage = window.stage
        if window.start_ns > self.sim.now:
            yield self.sim.timeout(window.start_ns - self.sim.now)
        stage.install(port)
        for _ in range(window.params["cycles"]):
            stage.fail()
            self._note(f"flap down {window.target}")
            invalidate_for_fault(self.sim, port.name)
            yield self.sim.timeout(window.params["down_ns"])
            stage.heal()
            self._note(f"flap up {window.target}")
            yield self.sim.timeout(window.params["up_ns"])
        stage.remove()
        self._note(f"remove flap from {window.target}")

    def _run_pause(self, window: FaultWindow):
        tx_stage: PartitionStage = window.stage
        rx_stage: PartitionStage = window.params["_rx_stage"]
        if window.start_ns > self.sim.now:
            yield self.sim.timeout(window.start_ns - self.sim.now)
        tx_stage.install(window.params["_tx_port"])
        rx_stage.install(window.params["_rx_port"])
        self._note(f"pause host {window.target}")
        # Host-level fault: below link granularity, so every core's
        # compiled flows are flushed (conservative, timing-free).
        invalidate_for_fault(self.sim, window.params["_tx_port"].name)
        yield self.sim.timeout(window.stop_ns - self.sim.now)
        tx_stage.remove()
        rx_stage.remove()
        self._note(f"resume host {window.target}")
