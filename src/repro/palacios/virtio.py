"""Palacios virtio-net virtual NIC (Sect. 4.4).

The virtio NIC is the guest-visible network device.  Its transmit ring
(TXQ) and receive ring (RXQ) are bounded stores; a registered *backend*
(the VNET/P core, or any object with the same interface) consumes
transmitted packets and produces received ones.

Exit behaviour is the crux of the paper's two dispatch modes:

* **guest-driven** — every TX kick causes a VM exit whose handler runs
  the packet dispatch inline; every RX packet raises an interrupt.
* **VMM-driven** — kicks are suppressed (`suppress_kicks`), a dispatcher
  thread polls the TXQ, and RX interrupts are naturally batched: one
  injection wakes the guest, which then drains the whole ring backlog.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..proto.ethernet import EthernetFrame
from ..proto.stack import Stack
from ..sim import Signal, Store

if TYPE_CHECKING:  # pragma: no cover
    from .vmm import VirtualMachine

__all__ = ["VirtioNIC"]


class VirtioNIC:
    """Virtio network device; satisfies the stack's NetDevice duck type."""

    def __init__(self, vm: "VirtualMachine", mac: str, mtu: int = 9000):
        self.vm = vm
        self.sim = vm.sim
        self.mac = mac
        self.mtu = mtu
        params = vm.vmm.virtio_params
        self.params = params
        self.vmm_params = vm.vmm.params
        self.name = f"{vm.name}.virtio{len(vm.virtio_nics)}"
        self.txq: Store = Store(self.sim, capacity=params.ring_size, name=f"{self.name}.txq")
        self.rxq: Store = Store(self.sim, capacity=params.ring_size, name=f"{self.name}.rxq")
        self.stack: Optional[Stack] = None
        # Backend hooks, registered by the VNET/P core (Sect. 4.4: a virtual
        # NIC must register with VNET/P before use).
        self._kick_handler: Optional[Callable[["VirtioNIC"], Generator]] = None
        self._ever_registered = False
        self.suppress_kicks = False
        self._irq = Signal(self.sim, f"{self.name}.irq")
        self.irq_injections = 0
        self.full_irq_wakeups = 0
        self.tx_packets = 0
        self.rx_packets = 0
        self.rx_drops = 0
        self.tx_kicks = 0
        self.sim.process(self._guest_rx_loop(), name=f"{self.name}.rxloop")

    # -- registration -----------------------------------------------------------
    def bind(self, stack: Stack, default: bool = True) -> None:
        self.stack = stack
        stack.add_device(self, default=default)

    def register_backend(self, kick_handler: Callable[["VirtioNIC"], Generator]) -> None:
        """Register packet-dispatch callbacks (VNET/P core attach)."""
        self._kick_handler = kick_handler
        self._ever_registered = True

    @property
    def registered(self) -> bool:
        return self._kick_handler is not None

    # -- guest transmit path (runs in guest/VCPU context) -----------------------
    def send_blocking(self, frame: EthernetFrame):
        """Generator: guest driver queues a frame and (maybe) kicks."""
        if frame.payload_size > self.mtu:
            raise ValueError(
                f"{self.name}: frame payload {frame.payload_size} B > MTU {self.mtu}"
            )
        if self._kick_handler is None and not self._ever_registered:
            raise RuntimeError(f"{self.name}: no backend registered with VNET/P")
        # A detached-but-previously-registered NIC (mid-migration) queues
        # frames in the ring; the new core drains them after reattachment.
        params = self.params
        yield self.sim.timeout(params.guest_driver_tx_ns + params.per_descriptor_ns)
        yield self.txq.put(frame)
        self.tx_packets += 1
        if not self.suppress_kicks:
            # I/O port write -> VM exit; the kick handler (packet dispatch in
            # guest-driven mode, a cheap wakeup in VMM-driven mode) runs
            # inside the exit, stalling this VCPU.
            self.tx_kicks += 1
            self.vm.vmm.count_exit("virtio-kick")
            yield self.sim.timeout(self.vmm_params.exit_ns + params.kick_ns)
            handler = self._kick_handler
            if handler is not None:  # may detach mid-send (VM migration)
                yield from handler(self)
            yield self.sim.timeout(self.vmm_params.entry_ns)

    # -- VMM-side receive path (called from dispatcher context) ----------------
    def deliver_to_guest(self, frame: EthernetFrame) -> bool:
        """Place a frame in the RXQ; returns False if the ring overflowed."""
        if not self.rxq.try_put(frame):
            self.rx_drops += 1
            return False
        return True

    def raise_irq(self) -> None:
        """Interrupt injection request (the injection cost itself is charged
        by the dispatcher; the guest-side exit/entry is charged in the rx
        loop when it wakes)."""
        self.irq_injections += 1
        self._irq.fire()

    # -- guest receive loop ------------------------------------------------------
    def _guest_rx_loop(self):
        """Guest interrupt handler + NAPI-style ring drain.

        One wakeup (interrupt) costs a guest exit/entry plus injection
        bookkeeping; the backlog present at wakeup is then drained at
        per-descriptor cost, which is what makes VMM-driven mode cheap at
        high packet rates.
        """
        params = self.params
        vmm_params = self.vmm_params
        last_work = 0
        while True:
            if len(self.rxq) == 0:
                yield self._irq.wait()
                # Interrupt delivery: vector injection always costs an
                # exit/entry; waking the halted VCPU on top of that is only
                # paid after the guest has actually gone idle (back-to-back
                # interrupts find it still polling, NAPI-style).
                cost = (
                    vmm_params.exit_ns
                    + vmm_params.interrupt_inject_ns
                    + vmm_params.entry_ns
                )
                if self.sim.now - last_work > params.irq_coalesce_ns:
                    cost += params.irq_wakeup_ns
                    self.full_irq_wakeups += 1
                yield self.sim.timeout(cost)
            frame = self.rxq.try_get()
            if frame is None:
                continue
            yield self.sim.timeout(params.guest_driver_rx_ns + params.per_descriptor_ns)
            self.rx_packets += 1
            last_work = self.sim.now
            if self.stack is not None:
                self.stack.rx_frame(self, frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VirtioNIC {self.name} mtu={self.mtu}>"
