"""Palacios virtio-net virtual NIC (Sect. 4.4).

The virtio NIC is the guest-visible network device.  Its transmit ring
(TXQ) and receive ring (RXQ) are bounded stores; a registered *backend*
(the VNET/P core, or any object with the same interface) consumes
transmitted packets and produces received ones.

Exit behaviour is the crux of the paper's two dispatch modes:

* **guest-driven** — every TX kick causes a VM exit whose handler runs
  the packet dispatch inline; every RX packet raises an interrupt.
* **VMM-driven** — kicks are suppressed (`suppress_kicks`), a dispatcher
  thread polls the TXQ, and RX interrupts are naturally batched: one
  injection wakes the guest, which then drains the whole ring backlog.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Optional

from ..obs.context import Observability
from ..obs.span import (
    STAGE_GUEST_WAKE,
    STAGE_VIRTIO_RX,
    STAGE_VIRTIO_TX,
    STAGE_VMENTRY,
    STAGE_VMEXIT,
)
from ..proto.ethernet import EthernetFrame
from ..proto.stack import Stack
from ..sim import PacketStage, Signal, Store

if TYPE_CHECKING:  # pragma: no cover
    from .vmm import VirtualMachine

__all__ = ["VirtioNIC"]


class VirtioNIC(PacketStage):
    """Virtio network device; satisfies the stack's NetDevice duck type."""

    def __init__(self, vm: "VirtualMachine", mac: str, mtu: int = 9000):
        self._init_stage(vm.sim, f"{vm.name}.virtio{len(vm.virtio_nics)}")
        self.vm = vm
        self.mac = mac
        self.mtu = mtu
        params = vm.vmm.virtio_params
        self.params = params
        self.vmm_params = vm.vmm.params
        # Hand-off to the guest stack after rx descriptor processing.
        self.guest_rx = self.make_port("guest_rx")
        self.txq: Store = Store(self.sim, capacity=params.ring_size, name=f"{self.name}.txq")
        self.rxq: Store = Store(self.sim, capacity=params.ring_size, name=f"{self.name}.rxq")
        self.stack: Optional[Stack] = None
        # Backend hooks, registered by the VNET/P core (Sect. 4.4: a virtual
        # NIC must register with VNET/P before use).
        self._kick_handler: Optional[Callable[["VirtioNIC"], Generator]] = None
        self._ever_registered = False
        self.suppress_kicks = False
        self._irq = Signal(self.sim, f"{self.name}.irq")
        self.obs = Observability.of(self.sim)
        metrics = self.obs.metrics
        prefix = f"palacios.virtio.{self.name}"
        self._irq_injections = metrics.counter(f"{prefix}.irq_injections")
        self._full_irq_wakeups = metrics.counter(f"{prefix}.full_irq_wakeups")
        self._tx_packets = metrics.counter(f"{prefix}.tx_packets")
        self._rx_packets = metrics.counter(f"{prefix}.rx_packets")
        self._rx_drops = metrics.counter(f"{prefix}.rx_drops")
        self._tx_kicks = metrics.counter(f"{prefix}.tx_kicks")
        # Ring occupancy as a time-weighted gauge: set with timestamps so
        # time_avg() reads true mean depth, not the last sampled value.
        self._rxq_depth = metrics.gauge(f"{prefix}.rxq_depth")
        self.sim.process(self._guest_rx_loop(), name=f"{self.name}.rxloop")

    # -- counters (registry-backed, read-only views) ----------------------------
    @property
    def irq_injections(self) -> int:
        return self._irq_injections.value

    @property
    def full_irq_wakeups(self) -> int:
        return self._full_irq_wakeups.value

    @property
    def tx_packets(self) -> int:
        return self._tx_packets.value

    @property
    def rx_packets(self) -> int:
        return self._rx_packets.value

    @property
    def rx_drops(self) -> int:
        return self._rx_drops.value

    @property
    def tx_kicks(self) -> int:
        return self._tx_kicks.value

    # -- registration -----------------------------------------------------------
    def bind(self, stack: Stack, default: bool = True) -> None:
        self.stack = stack
        self.guest_rx.rebind(lambda frame: stack.rx_frame(self, frame))
        stack.add_device(self, default=default)

    def register_backend(self, kick_handler: Callable[["VirtioNIC"], Generator]) -> None:
        """Register packet-dispatch callbacks (VNET/P core attach)."""
        self._kick_handler = kick_handler
        self._ever_registered = True

    @property
    def registered(self) -> bool:
        return self._kick_handler is not None

    # -- guest transmit path (runs in guest/VCPU context) -----------------------
    def send_blocking(self, frame: EthernetFrame):
        """Generator: guest driver queues a frame and (maybe) kicks."""
        if frame.payload_size > self.mtu:
            raise ValueError(
                f"{self.name}: frame payload {frame.payload_size} B > MTU {self.mtu}"
            )
        if self._kick_handler is None and not self._ever_registered:
            raise RuntimeError(f"{self.name}: no backend registered with VNET/P")
        # A detached-but-previously-registered NIC (mid-migration) queues
        # frames in the ring; the new core drains them after reattachment.
        params = self.params
        spans = self.obs.spans
        with spans.span(STAGE_VIRTIO_TX, who=self.name, where="guest", flow_of=frame):
            yield self.sim.timeout(params.guest_driver_tx_ns + params.per_descriptor_ns)
        yield self.txq.put(frame)
        self._tx_packets.inc()
        if not self.suppress_kicks:
            # I/O port write -> VM exit; the kick handler (packet dispatch in
            # guest-driven mode, a cheap wakeup in VMM-driven mode) runs
            # inside the exit, stalling this VCPU.
            self._tx_kicks.inc()
            self.vm.vmm.count_exit("virtio-kick")
            with spans.span(STAGE_VMEXIT, who=self.name, where="vmm", flow_of=frame):
                yield self.sim.timeout(self.vmm_params.exit_ns + params.kick_ns)
            handler = self._kick_handler
            if handler is not None:  # may detach mid-send (VM migration)
                yield from handler(self)
            with spans.span(STAGE_VMENTRY, who=self.name, where="vmm", flow_of=frame):
                yield self.sim.timeout(self.vmm_params.entry_ns)

    # -- VMM-side receive path (called from dispatcher context) ----------------
    def deliver_to_guest(self, frame: EthernetFrame) -> bool:
        """Place a frame in the RXQ; returns False if the ring overflowed."""
        if not self.rxq.try_put(frame):
            self._rx_drops.inc()
            return False
        self._rxq_depth.set(len(self.rxq), now_ns=self.sim.now)
        return True

    # PacketStage entry point: the VNET/P core pushes delivered frames here.
    ingress = deliver_to_guest

    def raise_irq(self) -> None:
        """Interrupt injection request (the injection cost itself is charged
        by the dispatcher; the guest-side exit/entry is charged in the rx
        loop when it wakes)."""
        self._irq_injections.inc()
        self._irq.fire()

    # -- guest receive loop ------------------------------------------------------
    def _guest_rx_loop(self):
        """Guest interrupt handler + NAPI-style ring drain.

        One wakeup (interrupt) costs a guest exit/entry plus injection
        bookkeeping; the backlog present at wakeup is then drained at
        per-descriptor cost, which is what makes VMM-driven mode cheap at
        high packet rates.
        """
        params = self.params
        vmm_params = self.vmm_params
        spans = self.obs.spans
        last_work = 0
        while True:
            if len(self.rxq) == 0:
                yield self._irq.wait()
                # Interrupt delivery: vector injection always costs an
                # exit/entry; waking the halted VCPU on top of that is only
                # paid after the guest has actually gone idle (back-to-back
                # interrupts find it still polling, NAPI-style).
                cost = (
                    vmm_params.exit_ns
                    + vmm_params.interrupt_inject_ns
                    + vmm_params.entry_ns
                )
                if self.sim.now - last_work > params.irq_coalesce_ns:
                    cost += params.irq_wakeup_ns
                    self._full_irq_wakeups.inc()
                with spans.span(STAGE_GUEST_WAKE, who=self.name, where="vmm"):
                    yield self.sim.timeout(cost)
            # NAPI batch: one wakeup drains the whole backlog, one frame per
            # descriptor charge.  The ring is popped frame-by-frame (not
            # bulk-drained) so concurrent deliveries observe the true ring
            # occupancy — that occupancy gates interrupt-injection charges.
            frame = self.rxq.try_get()
            if frame is None:
                continue
            self._rxq_depth.set(len(self.rxq), now_ns=self.sim.now)
            with spans.span(
                STAGE_VIRTIO_RX, who=self.name, where="guest", flow_of=frame
            ):
                yield self.sim.timeout(
                    params.guest_driver_rx_ns + params.per_descriptor_ns
                )
            self._rx_packets.inc()
            last_work = self.sim.now
            self.guest_rx.push(frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VirtioNIC {self.name} mtu={self.mtu}>"
