"""Palacios VMM model.

Palacios (Sect. 4.1) is modelled by what the data path pays it: VM
exits/entries, I/O-port handling, and interrupt injection, with per-
reason exit accounting so tests can assert on exit *counts* (the paper's
central performance argument is about eliminating exits).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..config import VMMParams, VirtioParams
from ..obs.context import Observability
from ..obs.metrics import LabeledCounters
from ..proto.stack import Stack
from ..sim import Simulator, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from ..host.machine import Host
    from .virtio import VirtioNIC

__all__ = ["PalaciosVMM", "VirtualMachine"]


class PalaciosVMM:
    """The VMM instance embedded in a host's Linux kernel."""

    def __init__(self, sim: Simulator, host: "Host"):
        self.sim = sim
        self.host = host
        self.params: VMMParams = host.params.vmm
        self.virtio_params: VirtioParams = host.params.virtio
        self.vms: list[VirtualMachine] = []
        self.obs = Observability.of(sim)
        # Per-reason VM-exit counts, published as
        # ``palacios.<host>.exits.<reason>`` in the metrics registry while
        # keeping the familiar ``exit_counts["reason"]`` read shape.
        self.exit_counts: LabeledCounters = self.obs.metrics.labeled(
            f"palacios.{host.name}.exits"
        )
        host.vmm = self

    def create_vm(
        self,
        name: str,
        guest_ip: str,
        vcpus: int = 2,
        mem_mb: int = 1024,
        tracer: Optional[Tracer] = None,
    ) -> "VirtualMachine":
        vm = VirtualMachine(self, name, guest_ip, vcpus=vcpus, mem_mb=mem_mb, tracer=tracer)
        self.vms.append(vm)
        return vm

    # -- exit accounting ------------------------------------------------------
    def count_exit(self, reason: str) -> None:
        self.exit_counts.inc(reason)

    def exit_entry(self, reason: str, handler_ns: int = 0):
        """Generator: charge one full exit + handler + entry to the caller
        (i.e. the guest VCPU is stalled for this long)."""
        self.count_exit(reason)
        yield self.sim.timeout(self.params.exit_ns + handler_ns + self.params.entry_ns)

    @property
    def total_exits(self) -> int:
        return self.exit_counts.total()


class VirtualMachine:
    """An application VM: guest OS stack plus virtio NICs.

    The guest runs an unmodified stack (the same :class:`Stack` model used
    natively — the paper uses identical kernels in both configurations,
    Sect. 5.1), bound to virtio devices instead of physical ones.
    """

    def __init__(
        self,
        vmm: PalaciosVMM,
        name: str,
        guest_ip: str,
        vcpus: int = 2,
        mem_mb: int = 1024,
        tracer: Optional[Tracer] = None,
    ):
        self.vmm = vmm
        self.sim = vmm.sim
        self.name = name
        self.guest_ip = guest_ip
        self.vcpus = vcpus
        self.mem_mb = mem_mb
        self.tracer = tracer or Tracer()
        self.stack = Stack(
            self.sim,
            vmm.host.params.stack,
            ip=guest_ip,
            name=f"{name}.gstack",
            tracer=self.tracer,
            role="guest",
        )
        self.virtio_nics: list["VirtioNIC"] = []

    def attach_virtio_nic(self, mac: str, mtu: int = 9000) -> "VirtioNIC":
        from .virtio import VirtioNIC

        nic = VirtioNIC(self, mac=mac, mtu=mtu)
        self.virtio_nics.append(nic)
        nic.bind(self.stack)
        return nic

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VirtualMachine {self.name} ip={self.guest_ip}>"
