"""Palacios VMM model: VMs, VM exits, virtio NICs."""

from .virtio import VirtioNIC
from .vmm import PalaciosVMM, VirtualMachine

__all__ = ["PalaciosVMM", "VirtualMachine", "VirtioNIC"]
