"""Unit conventions and conversion helpers.

Conventions used throughout the library:

* **time** — integer nanoseconds (the simulation clock).
* **sizes** — bytes.
* **bandwidth** — bits per second for link rates (`*_bps`), bytes per
  second for memory/application rates (`*_Bps`).

Helpers return integers for times (rounding up, so costs are never
optimistically truncated to zero) and floats for rates.
"""

from __future__ import annotations

import math

__all__ = [
    "NS", "US", "MS", "SECOND",
    "KB", "MB", "GB", "KIB", "MIB",
    "Kbps", "Mbps", "Gbps",
    "usec", "msec", "sec",
    "tx_time_ns", "bytes_per_sec", "to_mbps", "to_gbps", "to_MBps",
]

NS = 1
US = 1_000
MS = 1_000_000
SECOND = 1_000_000_000

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
KIB = 1_024
MIB = 1_048_576

Kbps = 1_000
Mbps = 1_000_000
Gbps = 1_000_000_000


def usec(x: float) -> int:
    """Microseconds -> integer nanoseconds."""
    return int(round(x * US))


def msec(x: float) -> int:
    """Milliseconds -> integer nanoseconds."""
    return int(round(x * MS))


def sec(x: float) -> int:
    """Seconds -> integer nanoseconds."""
    return int(round(x * SECOND))


def tx_time_ns(nbytes: int, rate_bps: float) -> int:
    """Serialization time of ``nbytes`` on a ``rate_bps`` link, in ns (ceil)."""
    if rate_bps <= 0:
        raise ValueError(f"non-positive link rate: {rate_bps}")
    return int(math.ceil(nbytes * 8 * SECOND / rate_bps))


def bytes_per_sec(nbytes: int, elapsed_ns: int) -> float:
    """Average rate in bytes/second over ``elapsed_ns``."""
    if elapsed_ns <= 0:
        return 0.0
    return nbytes * SECOND / elapsed_ns


def to_mbps(rate_Bps: float) -> float:
    """Bytes/second -> megabits/second."""
    return rate_Bps * 8 / Mbps


def to_gbps(rate_Bps: float) -> float:
    """Bytes/second -> gigabits/second."""
    return rate_Bps * 8 / Gbps


def to_MBps(rate_Bps: float) -> float:
    """Bytes/second -> megabytes/second (decimal MB, as the paper reports)."""
    return rate_Bps / MB
