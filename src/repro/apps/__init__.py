"""Workload programs: ping, ttcp, IMB, HPCC, and the NAS suite."""

from . import hpcc, imb, imb_collectives, npb, ping, ttcp

__all__ = ["hpcc", "imb", "imb_collectives", "npb", "ping", "ttcp"]
