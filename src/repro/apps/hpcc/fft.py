"""HPCC MPIFFT skeleton (Sect. 5.5, Figs. 13b and 16b).

A double-precision complex 1-D FFT of N points distributed over p
processes: each iteration performs local FFT compute (5 N log2 N flops
total) and global transposes implemented as all-to-alls of the whole
vector — the classic six-step algorithm has three transposes.  The
metric is Gflop/s.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2

from ... import units
from ...mpi import MPIWorld

__all__ = ["FftResult", "run_mpifft"]

# Vector size: 2^26 complex doubles = 1 GiB total (HPCC picks the largest
# power of two fitting memory; scaled for simulation turnaround).
FFT_POINTS = 1 << 26
COMPLEX_BYTES = 16
TRANSPOSES = 3
FLOP_RATE_PER_RANK = 1.4e9            # sustained local FFT flop/s per process


@dataclass
class FftResult:
    n_procs: int
    points: int
    elapsed_ns: int

    @property
    def total_flops(self) -> float:
        return 5.0 * self.points * log2(self.points)

    @property
    def gflops(self) -> float:
        return self.total_flops / (self.elapsed_ns / units.SECOND) / 1e9


def run_mpifft(world: MPIWorld) -> FftResult:
    sim = world.sim
    n = world.size
    finish: dict[int, int] = {}
    flops_per_rank = 5.0 * FFT_POINTS * log2(FFT_POINTS) / n
    compute_ns_per_phase = int(flops_per_rank / FLOP_RATE_PER_RANK / (TRANSPOSES + 1) * 1e9)
    # Each transpose moves the whole distributed vector: every pair
    # exchanges points/p^2 elements.
    per_pair_bytes = max(1, FFT_POINTS // (n * n)) * COMPLEX_BYTES

    def program(comm):
        yield from comm.barrier()
        start = sim.now
        for _ in range(TRANSPOSES):
            yield from comm.compute(compute_ns_per_phase)
            yield from comm.alltoall(per_pair_bytes)
        yield from comm.compute(compute_ns_per_phase)
        # Residue check.
        yield from comm.allreduce(16)
        finish[comm.rank] = sim.now - start

    world.run(program)
    return FftResult(n_procs=n, points=FFT_POINTS, elapsed_ns=max(finish.values()))
