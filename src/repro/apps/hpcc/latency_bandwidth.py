"""HPCC latency-bandwidth benchmark (Sect. 5.4, Figs. 12 and 15).

Three components, as in the HPC Challenge b_eff suite:

* **ping-pong** — latency (8 B) and bandwidth (2 MB) between all
  distinct process pairs, averaged;
* **naturally ordered ring** — every process exchanges with its ring
  neighbours simultaneously (MPI_Sendrecv), ranks in natural order;
* **randomly ordered ring** — the same over randomly permuted rings,
  averaged over several permutations.

Ring bandwidth is reported per the paper: the per-process bandwidth
(total volume / processes / max time) multiplied back by the number of
processes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ... import units
from ...mpi import MPIWorld
from ...mpi.transport import FlowTransport

__all__ = ["HpccLatBw", "run_latency_bandwidth"]

LAT_BYTES = 8
BW_BYTES = 2_000_000
RING_REPS = 4
RANDOM_RINGS = 6


@dataclass
class HpccLatBw:
    """Results for one (configuration, process count) cell."""

    n_procs: int
    pingpong_lat_us: float
    pingpong_bw_MBps: float
    natural_ring_lat_us: float
    natural_ring_bw_MBps: float       # summed over processes (paper convention)
    random_ring_lat_us: float
    random_ring_bw_MBps: float


def _pingpong_phase(world: MPIWorld, pairs: list[tuple[int, int]], nbytes: int) -> float:
    """Average one-way time (ns) over the given pairs, run serially."""
    sim = world.sim
    times: list[int] = []

    def program(comm):
        for idx, (i, j) in enumerate(pairs):
            yield from comm.barrier()
            if comm.rank == i:
                start = sim.now
                yield from comm.send(j, nbytes, tag=idx)
                yield from comm.recv(j, idx)
                times.append((sim.now - start) // 2)
            elif comm.rank == j:
                yield from comm.recv(i, idx)
                yield from comm.send(i, nbytes, tag=idx)

    world.run(program)
    return float(np.mean(times))


def _ring_phase(world: MPIWorld, order: list[int], nbytes: int) -> float:
    """Max per-process time (ns) for RING_REPS bidirectional ring rounds."""
    sim = world.sim
    n = len(order)
    pos = {rank: k for k, rank in enumerate(order)}
    finish: dict[int, int] = {}

    def program(comm):
        k = pos[comm.rank]
        right = order[(k + 1) % n]
        left = order[(k - 1) % n]
        yield from comm.barrier()
        start = sim.now
        for rep in range(RING_REPS):
            # Exchange with both neighbours each round (HPCC sends in both
            # ring directions).
            r1 = comm.isend(right, nbytes, tag=rep * 2)
            r2 = comm.isend(left, nbytes, tag=rep * 2 + 1)
            yield from comm.recv(left, rep * 2)
            yield from comm.recv(right, rep * 2 + 1)
            yield from comm.waitall([r1, r2])
        finish[comm.rank] = sim.now - start

    world.run(program)
    return max(finish.values()) / RING_REPS


def run_latency_bandwidth(
    make_world,
    n_procs: int,
    seed: int = 42,
) -> HpccLatBw:
    """Run the full latency-bandwidth suite.

    ``make_world`` builds a fresh MPIWorld for each phase (phases must not
    share simulators, since each run consumes its simulation).
    """
    rng = np.random.default_rng(seed)
    all_pairs = [(i, j) for i in range(n_procs) for j in range(i + 1, n_procs)]
    # HPCC benchmarks a bounded subset of pairs on large runs.
    if len(all_pairs) > 64:
        idx = rng.choice(len(all_pairs), size=64, replace=False)
        pairs = [all_pairs[i] for i in idx]
    else:
        pairs = all_pairs

    lat_ns = _pingpong_phase(make_world(), pairs, LAT_BYTES)
    bw_ns = _pingpong_phase(make_world(), pairs, BW_BYTES)
    natural = list(range(n_procs))
    nat_lat_ns = _ring_phase(make_world(), natural, LAT_BYTES)
    nat_bw_ns = _ring_phase(make_world(), natural, BW_BYTES)
    rand_lats, rand_bws = [], []
    for _ in range(RANDOM_RINGS):
        order = list(rng.permutation(n_procs))
        rand_lats.append(_ring_phase(make_world(), order, LAT_BYTES))
        rand_bws.append(_ring_phase(make_world(), order, BW_BYTES))

    def ring_bw(per_round_ns: float) -> float:
        # Each process moves 2 x nbytes per round (both directions).
        per_proc = 2 * BW_BYTES / (per_round_ns / units.SECOND) / units.MB
        return per_proc * n_procs

    return HpccLatBw(
        n_procs=n_procs,
        pingpong_lat_us=lat_ns / 1_000,
        pingpong_bw_MBps=BW_BYTES / (bw_ns / units.SECOND) / units.MB,
        natural_ring_lat_us=nat_lat_ns / 1_000,
        natural_ring_bw_MBps=ring_bw(nat_bw_ns),
        random_ring_lat_us=float(np.mean(rand_lats)) / 1_000,
        random_ring_bw_MBps=ring_bw(float(np.mean(rand_bws))),
    )


def flow_world(model, n_procs: int, ranks_per_node: int = 4) -> MPIWorld:
    """Standard cluster world: 4 HPCC processes per node (Sect. 5.4)."""
    from ...sim import Simulator

    sim = Simulator()
    n_nodes = (n_procs + ranks_per_node - 1) // ranks_per_node
    transport = FlowTransport(
        sim, n_nodes=n_nodes, model=model, ranks_per_node=ranks_per_node
    )
    return MPIWorld(sim, transport, n_procs)
