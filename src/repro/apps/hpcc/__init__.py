"""HPCC benchmark suite skeletons: latency-bandwidth, RandomAccess, FFT."""

from .extras import (
    DgemmResult,
    HplResult,
    PtransResult,
    StreamResult,
    run_dgemm,
    run_hpl,
    run_ptrans,
    run_stream,
)
from .fft import FftResult, run_mpifft
from .latency_bandwidth import HpccLatBw, flow_world, run_latency_bandwidth
from .random_access import GupsResult, run_random_access

__all__ = [
    "DgemmResult",
    "HplResult",
    "PtransResult",
    "StreamResult",
    "run_dgemm",
    "run_hpl",
    "run_ptrans",
    "run_stream",
    "FftResult",
    "run_mpifft",
    "HpccLatBw",
    "flow_world",
    "run_latency_bandwidth",
    "GupsResult",
    "run_random_access",
]
