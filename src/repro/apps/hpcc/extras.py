"""The remaining HPC Challenge benchmarks: PTRANS, HPL, STREAM, DGEMM.

The paper's evaluation uses the latency-bandwidth suite plus
MPIRandomAccess and MPIFFT; the other four HPCC components round out the
library so a user can run the complete suite.  STREAM and DGEMM are
purely node-local (they show VNET/P ~ native by construction); PTRANS is
the most bandwidth-hungry global benchmark (a full matrix transpose);
HPL's skeleton captures the broadcast-then-update panel pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isqrt

from ... import units
from ...mpi import MPIWorld

__all__ = [
    "PtransResult",
    "run_ptrans",
    "HplResult",
    "run_hpl",
    "StreamResult",
    "run_stream",
    "DgemmResult",
    "run_dgemm",
]

# Scaled problem sizes for simulation turnaround.
PTRANS_MATRIX_BYTES = 512 * units.MB      # total double matrix
HPL_N = 16_384                            # matrix order
HPL_NB = 256                              # panel width
STREAM_BYTES_PER_RANK = 128 * units.MB
NODE_FLOP_RATE = 2.2e9                    # per-rank sustained flop/s
NODE_STREAM_BW = 5.5e9                    # per-rank triad bandwidth


@dataclass
class PtransResult:
    n_procs: int
    total_bytes: int
    elapsed_ns: int

    @property
    def GBps(self) -> float:
        return self.total_bytes / (self.elapsed_ns / units.SECOND) / units.GB


def run_ptrans(world: MPIWorld) -> PtransResult:
    """Parallel matrix transpose: A = A^T + beta*B.

    Every rank exchanges its block with the transpose-partner rank: a
    single, maximally bandwidth-bound global permutation.
    """
    sim = world.sim
    p = world.size
    q = max(1, isqrt(p))
    block = max(1, PTRANS_MATRIX_BYTES // p)
    finish: dict[int, int] = {}

    def program(comm):
        yield from comm.barrier()
        start = sim.now
        row, col = comm.rank // q, comm.rank % q
        partner = col * q + row if col * q + row < p else comm.rank
        if partner != comm.rank:
            yield from comm.sendrecv(partner, block, partner)
        # Local add: 2 flops per element.
        yield from comm.compute(int(block / 8 * 2 / NODE_FLOP_RATE * units.SECOND))
        yield from comm.barrier()
        finish[comm.rank] = sim.now - start

    world.run(program)
    return PtransResult(
        n_procs=p, total_bytes=PTRANS_MATRIX_BYTES, elapsed_ns=max(finish.values())
    )


@dataclass
class HplResult:
    n_procs: int
    n: int
    elapsed_ns: int

    @property
    def gflops(self) -> float:
        flops = 2 / 3 * self.n**3 + 3 / 2 * self.n**2
        return flops / (self.elapsed_ns / units.SECOND) / 1e9


def run_hpl(world: MPIWorld) -> HplResult:
    """High-Performance Linpack skeleton.

    Right-looking LU: for each panel, factor (compute), broadcast the
    panel along the process row, then update the trailing matrix
    (compute, shrinking with the iteration).  Captures HPL's
    broadcast-latency sensitivity at small trailing sizes and its
    compute-bound bulk.
    """
    sim = world.sim
    p = world.size
    n, nb = HPL_N, HPL_NB
    panels = n // nb
    finish: dict[int, int] = {}

    def program(comm):
        yield from comm.barrier()
        start = sim.now
        for k in range(panels):
            trailing = n - k * nb
            # Panel factorisation on the owning column (all ranks modelled
            # symmetrically: work is 2/3*nb^2*trailing flops split over p).
            factor_flops = nb * nb * trailing
            yield from comm.compute(int(factor_flops / p / NODE_FLOP_RATE * units.SECOND))
            # Panel broadcast: nb x trailing doubles.
            yield from comm.bcast(8 * nb * trailing // max(1, isqrt(p)), root=k % p)
            # Trailing update: 2*nb*trailing^2 flops over p ranks.
            update_flops = 2 * nb * trailing * trailing
            yield from comm.compute(int(update_flops / p / NODE_FLOP_RATE * units.SECOND))
        yield from comm.barrier()
        finish[comm.rank] = sim.now - start

    world.run(program)
    return HplResult(n_procs=p, n=n, elapsed_ns=max(finish.values()))


@dataclass
class StreamResult:
    n_procs: int
    bytes_per_rank: int
    elapsed_ns: int

    @property
    def triad_GBps_total(self) -> float:
        # Triad moves 3 arrays per iteration.
        moved = 3 * self.bytes_per_rank * self.n_procs
        return moved / (self.elapsed_ns / units.SECOND) / units.GB


def run_stream(world: MPIWorld) -> StreamResult:
    """EP-STREAM triad: embarrassingly parallel memory bandwidth.

    No communication beyond the final reduction — like EP, this runs at
    native speed under any overlay.
    """
    sim = world.sim
    finish: dict[int, int] = {}

    def program(comm):
        yield from comm.barrier()
        start = sim.now
        yield from comm.compute(
            int(3 * STREAM_BYTES_PER_RANK / NODE_STREAM_BW * units.SECOND)
        )
        yield from comm.allreduce(8)
        finish[comm.rank] = sim.now - start

    world.run(program)
    return StreamResult(
        n_procs=world.size,
        bytes_per_rank=STREAM_BYTES_PER_RANK,
        elapsed_ns=max(finish.values()),
    )


@dataclass
class DgemmResult:
    n_procs: int
    n: int
    elapsed_ns: int

    @property
    def gflops_total(self) -> float:
        return 2 * self.n**3 * self.n_procs / (self.elapsed_ns / units.SECOND) / 1e9


def run_dgemm(world: MPIWorld, n: int = 2048) -> DgemmResult:
    """EP-DGEMM: per-rank matrix multiply, purely local."""
    sim = world.sim
    finish: dict[int, int] = {}

    def program(comm):
        yield from comm.barrier()
        start = sim.now
        yield from comm.compute(int(2 * n**3 / NODE_FLOP_RATE * units.SECOND))
        yield from comm.allreduce(8)
        finish[comm.rank] = sim.now - start

    world.run(program)
    return DgemmResult(n_procs=world.size, n=n, elapsed_ns=max(finish.values()))
