"""HPCC MPIRandomAccess (GUPs) skeleton (Sect. 5.5, Figs. 13a and 16a).

Random updates to a distributed table: each process generates updates,
buckets them by destination process, and exchanges buckets in rounds of
all-to-all traffic with local-buffering (the HPCC algorithm).  The
metric is billions of updates per second (GUPs).  The communication
pattern — many small-to-medium irregular messages — is what makes this
benchmark latency- *and* bandwidth-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass

from ... import units
from ...mpi import MPIWorld

__all__ = ["GupsResult", "run_random_access"]

# Per-process table: 2^21 64-bit words (scaled for simulation turnaround;
# GUPs is insensitive to table size once out of cache).
TABLE_WORDS_PER_PROC = 1 << 21
UPDATES_PER_WORD = 1 / 4              # HPCC default: 4x table words total updates
BUCKET_UPDATES = 2048                 # updates exchanged per bucket message
UPDATE_BYTES = 8
LOCAL_UPDATE_NS = 14                  # one table update: ~cache-miss bound


@dataclass
class GupsResult:
    n_procs: int
    total_updates: int
    elapsed_ns: int

    @property
    def gups(self) -> float:
        return self.total_updates / (self.elapsed_ns / units.SECOND) / 1e9


def run_random_access(world: MPIWorld) -> GupsResult:
    """Run the skeleton on an attached world; returns the GUPs result."""
    sim = world.sim
    n = world.size
    updates_per_proc = int(TABLE_WORDS_PER_PROC * 4 * UPDATES_PER_WORD)
    rounds = max(1, updates_per_proc // (BUCKET_UPDATES * max(1, n - 1)))
    finish: dict[int, int] = {}

    def program(comm):
        yield from comm.barrier()
        start = sim.now
        for _ in range(rounds):
            # Generate + bucket the next batch locally.
            batch = BUCKET_UPDATES * max(1, n - 1)
            yield from comm.compute(batch * LOCAL_UPDATE_NS // 2)
            # Exchange buckets with every peer.
            yield from comm.alltoall(BUCKET_UPDATES * UPDATE_BYTES)
            # Apply the updates that arrived.
            yield from comm.compute(batch * LOCAL_UPDATE_NS // 2)
        yield from comm.barrier()
        finish[comm.rank] = sim.now - start

    world.run(program)
    elapsed = max(finish.values())
    total = rounds * BUCKET_UPDATES * max(1, n - 1) * n
    return GupsResult(n_procs=n, total_updates=total, elapsed_ns=elapsed)
