"""ttcp: TCP throughput and UDP goodput measurement (Sect. 5.2, Fig. 8).

Mirrors ttcp-1.10 as the paper configures it: TCP with a 256 KB socket
buffer and fixed-size writes; UDP with large writes sent as fast as
possible for a fixed duration, goodput measured at the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..harness.testbed import Endpoint
from ..proto.base import Blob

__all__ = ["TtcpResult", "run_ttcp_tcp", "run_ttcp_udp"]

TTCP_PORT = 5010


@dataclass
class TtcpResult:
    """One ttcp run."""

    proto: str
    bytes_moved: int
    elapsed_ns: int
    sent_bytes: int = 0

    @property
    def rate_Bps(self) -> float:
        return units.bytes_per_sec(self.bytes_moved, self.elapsed_ns)

    @property
    def mbps(self) -> float:
        return units.to_mbps(self.rate_Bps)

    @property
    def gbps(self) -> float:
        return units.to_gbps(self.rate_Bps)

    @property
    def MBps(self) -> float:
        return units.to_MBps(self.rate_Bps)

    @property
    def loss_fraction(self) -> float:
        if self.proto != "udp" or self.sent_bytes == 0:
            return 0.0
        return 1.0 - self.bytes_moved / self.sent_bytes


def run_ttcp_tcp(
    src: Endpoint,
    dst: Endpoint,
    total_bytes: int = 40 * units.MB,
    write_size: int = 64 * units.KIB,
    sndbuf: int = 256 * units.KIB,
    rcvbuf: int = 256 * units.KIB,
) -> TtcpResult:
    """ttcp -t over TCP; returns receiver-measured throughput."""
    sim = src.stack.sim
    result = {}

    def server():
        listener = dst.stack.tcp_listen(TTCP_PORT, sndbuf=sndbuf, rcvbuf=rcvbuf)
        conn = yield from listener.accept()
        first = yield from conn.recv(1)
        start = sim.now
        got = first
        while True:
            n = yield from conn.recv(1 << 30)
            got += n
            if conn.peer_fin and conn.recv_available == 0:
                break
        result["bytes"] = got
        result["elapsed"] = sim.now - start

    def client():
        conn = yield from src.stack.tcp_connect(
            dst.ip, TTCP_PORT, sndbuf=sndbuf, rcvbuf=rcvbuf
        )
        remaining = total_bytes
        while remaining > 0:
            chunk = min(write_size, remaining)
            yield from conn.send(chunk)
            remaining -= chunk
        yield from conn.close()

    s = sim.process(server(), name="ttcp.server")
    sim.process(client(), name="ttcp.client")
    sim.run(until=s)
    return TtcpResult(proto="tcp", bytes_moved=result["bytes"], elapsed_ns=result["elapsed"])


def run_ttcp_udp(
    src: Endpoint,
    dst: Endpoint,
    duration_ns: int = 20 * units.MS,
    write_size: int = 64_000,
) -> TtcpResult:
    """ttcp -u: blast UDP writes for ``duration_ns``; goodput at receiver.

    The paper uses 64000-byte writes for standard-MTU tests and
    MTU-sized writes for jumbo-frame tests; large writes fragment at the
    IP layer exactly as real ttcp's do.
    """
    sim = src.stack.sim
    state = {"rx_bytes": 0, "first": None, "last": None, "tx_bytes": 0, "done": False}

    def server():
        sock = dst.stack.udp_socket(TTCP_PORT)
        while True:
            payload, _, _ = yield from sock.recv()
            if state["first"] is None:
                state["first"] = sim.now
            state["last"] = sim.now
            state["rx_bytes"] += payload.size

    def client():
        sock = src.stack.udp_socket()
        deadline = sim.now + duration_ns
        while sim.now < deadline:
            yield from sock.sendto(Blob(write_size), dst.ip, TTCP_PORT)
            state["tx_bytes"] += write_size
        state["done"] = True

    sim.process(server(), name="ttcp.userver")
    c = sim.process(client(), name="ttcp.uclient")
    sim.run(until=c)
    # Drain all in-flight datagrams (the simulation quiesces once queues
    # empty; receiver-side goodput uses first/last arrival timestamps).
    sim.run()
    elapsed = (state["last"] - state["first"]) if state["first"] is not None else 1
    return TtcpResult(
        proto="udp",
        bytes_moved=state["rx_bytes"],
        elapsed_ns=max(1, elapsed),
        sent_bytes=state["tx_bytes"],
    )
