"""ping: ICMP round-trip latency measurement (Sect. 5.2, Fig. 9)."""

from __future__ import annotations

from dataclasses import dataclass

from ..harness.testbed import Endpoint
from ..sim import SampleStats

__all__ = ["PingResult", "run_ping"]


@dataclass
class PingResult:
    """Round-trip latency statistics for one payload size."""

    data_size: int
    count: int
    rtt_ns: SampleStats

    @property
    def avg_rtt_us(self) -> float:
        return self.rtt_ns.mean / 1_000

    @property
    def min_rtt_us(self) -> float:
        return self.rtt_ns.min / 1_000

    @property
    def max_rtt_us(self) -> float:
        return self.rtt_ns.max / 1_000


def run_ping(
    src: Endpoint,
    dst: Endpoint,
    data_size: int = 56,
    count: int = 100,
    interval_ns: int = 1_000_000,
) -> PingResult:
    """Ping ``dst`` from ``src`` ``count`` times; runs the simulation.

    The default 1 ms inter-ping interval keeps the path quiescent between
    probes, as ping(8) does (the paper averages 100 measurements).
    """
    sim = src.stack.sim
    stats = SampleStats()

    def pinger():
        for _ in range(count):
            rtt = yield from src.stack.ping(dst.ip, data_size=data_size)
            stats.add(rtt)
            yield sim.timeout(interval_ns)
        return stats

    proc = sim.process(pinger(), name="ping")
    sim.run(until=proc)
    return PingResult(data_size=data_size, count=count, rtt_ns=stats)
