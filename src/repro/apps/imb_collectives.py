"""Intel MPI Benchmarks: the collective operations.

The paper's MPI microbenchmarks use PingPong and SendRecv (Fig. 10-11);
the rest of the IMB suite — Barrier, Bcast, Allreduce, Allgather,
Alltoall, Exchange — completes the library's IMB coverage and is what
application skeletons' communication is built from.  Each benchmark
reports the average per-operation time at a message size, IMB-style.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..mpi import Communicator, MPIWorld

__all__ = ["CollectivePoint", "run_collective", "COLLECTIVES"]


@dataclass
class CollectivePoint:
    """One (collective, message size, process count) measurement."""

    name: str
    msg_size: int
    n_procs: int
    repetitions: int
    total_ns: int

    @property
    def avg_us(self) -> float:
        return self.total_ns / self.repetitions / 1_000


def _barrier(comm: Communicator, size: int):
    yield from comm.barrier()


def _bcast(comm: Communicator, size: int):
    yield from comm.bcast(size, root=0)


def _allreduce(comm: Communicator, size: int):
    yield from comm.allreduce(size)


def _allgather(comm: Communicator, size: int):
    yield from comm.allgather(size)


def _alltoall(comm: Communicator, size: int):
    yield from comm.alltoall(size)


def _exchange(comm: Communicator, size: int):
    """IMB Exchange: sendrecv with both ring neighbours."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    r1 = comm.isend(right, size, tag=1)
    r2 = comm.isend(left, size, tag=2)
    yield from comm.recv(left, 1)
    yield from comm.recv(right, 2)
    yield from comm.waitall([r1, r2])


COLLECTIVES: dict[str, Callable] = {
    "Barrier": _barrier,
    "Bcast": _bcast,
    "Allreduce": _allreduce,
    "Allgather": _allgather,
    "Alltoall": _alltoall,
    "Exchange": _exchange,
}


def run_collective(
    world: MPIWorld,
    name: str,
    msg_size: int = 1024,
    repetitions: int = 10,
) -> CollectivePoint:
    """Run one IMB collective benchmark on an attached world."""
    op = COLLECTIVES.get(name)
    if op is None:
        raise KeyError(f"unknown collective {name!r}; options: {sorted(COLLECTIVES)}")
    sim = world.sim
    result = {}

    def program(comm):
        # Warm-up round, then a barrier so timing starts aligned.
        yield from op(comm, msg_size)
        yield from comm.barrier()
        start = sim.now
        for _ in range(repetitions):
            yield from op(comm, msg_size)
        if comm.rank == 0:
            result["total"] = sim.now - start

    world.run(program)
    return CollectivePoint(
        name=name,
        msg_size=msg_size,
        n_procs=world.size,
        repetitions=repetitions,
        total_ns=result["total"],
    )
