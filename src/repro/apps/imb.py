"""Intel MPI Benchmarks: PingPong and SendRecv (Sect. 5.3, Figs. 10-11).

PingPong measures one-way application-level latency (half the measured
round trip) and derived bandwidth as a function of message size;
SendRecv measures bidirectional bandwidth with both ranks sending and
receiving simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import units
from ..harness.testbed import Endpoint
from ..mpi import MPIWorld, SocketTransport

__all__ = ["ImbPoint", "run_pingpong", "run_sendrecv", "IMB_SIZES"]

# IMB default size ladder (1 B .. 4 MB in powers of two).
IMB_SIZES = [1 << i for i in range(0, 23)]


@dataclass
class ImbPoint:
    """One (message size, repetitions) measurement."""

    msg_size: int
    repetitions: int
    total_ns: int
    bidirectional: bool = False

    @property
    def one_way_latency_us(self) -> float:
        """Time from send start to matching receive completion (IMB's
        PingPong metric: half the round trip)."""
        return self.total_ns / self.repetitions / 2 / 1_000

    @property
    def bandwidth_MBps(self) -> float:
        """PingPong: msgsize / one-way time.  SendRecv: counts both
        directions, as IMB reports."""
        per_phase_ns = self.total_ns / self.repetitions / (1 if self.bidirectional else 2)
        volume = self.msg_size * (2 if self.bidirectional else 1)
        return volume / (per_phase_ns / 1e9) / units.MB


def _world(a: Endpoint, b: Endpoint) -> MPIWorld:
    transport = SocketTransport([a, b], rank_map=[0, 1])
    return MPIWorld(a.stack.sim, transport, size=2)


def _reps_for(msg_size: int) -> int:
    """IMB-style repetition scaling: many reps for small messages."""
    if msg_size <= 4096:
        return 50
    if msg_size <= 262_144:
        return 12
    return 4


def run_pingpong(
    a: Endpoint, b: Endpoint, msg_size: int, repetitions: int | None = None
) -> ImbPoint:
    """IMB PingPong at one message size; runs the simulation."""
    reps = repetitions or _reps_for(msg_size)
    world = _world(a, b)
    sim = world.sim
    result = {}

    def program(comm):
        # Warm-up exchange (connection setup, cache warm).
        if comm.rank == 0:
            yield from comm.send(1, msg_size, tag=999)
            yield from comm.recv(1, 999)
        else:
            yield from comm.recv(0, 999)
            yield from comm.send(0, msg_size, tag=999)
        yield from comm.barrier()
        start = sim.now
        for i in range(reps):
            if comm.rank == 0:
                yield from comm.send(1, msg_size, tag=i)
                yield from comm.recv(1, i)
            else:
                yield from comm.recv(0, i)
                yield from comm.send(0, msg_size, tag=i)
        if comm.rank == 0:
            result["total"] = sim.now - start

    world.run(program)
    return ImbPoint(msg_size=msg_size, repetitions=reps, total_ns=result["total"])


def run_sendrecv(
    a: Endpoint, b: Endpoint, msg_size: int, repetitions: int | None = None
) -> ImbPoint:
    """IMB SendRecv: both ranks send and receive simultaneously."""
    reps = repetitions or _reps_for(msg_size)
    world = _world(a, b)
    sim = world.sim
    result = {}

    def program(comm):
        other = 1 - comm.rank
        yield from comm.sendrecv(other, msg_size, other, send_tag=999, recv_tag=999)
        yield from comm.barrier()
        start = sim.now
        for i in range(reps):
            yield from comm.sendrecv(other, msg_size, other, send_tag=i, recv_tag=i)
        if comm.rank == 0:
            result["total"] = sim.now - start

    world.run(program)
    return ImbPoint(
        msg_size=msg_size, repetitions=reps, total_ns=result["total"], bidirectional=True
    )
