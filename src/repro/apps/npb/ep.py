"""NPB EP: embarrassingly parallel random-number kernel.

Communication: three small all-reduces collecting the Gaussian-pair
counts at the very end — negligible next to compute, which is why EP
achieves native performance in every configuration (Fig. 14).
"""

from __future__ import annotations

from ...mpi import Communicator
from .common import NpbSpec

COMM_FRACTION = {"B": 0.002, "C": 0.001}


def _comm(comm: Communicator, it: int):
    # EP runs as a single "iteration" whose epilogue reduces 3 sums + the
    # 10 concentric counts.
    yield from comm.allreduce(8 * 3)
    yield from comm.allreduce(8 * 10)


def spec(klass: str, nprocs: int) -> NpbSpec:
    return NpbSpec(
        name="ep",
        klass=klass,
        nprocs=nprocs,
        iterations=1,
        comm_fn=_comm,
        comm_fraction_ref=COMM_FRACTION[klass],
    )
