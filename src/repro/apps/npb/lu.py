"""NPB LU: SSOR solver for regular-sparse block-triangular systems.

Class B: 102^3 grid, 250 time steps.  Each step performs lower- and
upper-triangular sweeps whose 2-D wavefront pipelines many *small*
dependent messages — LU is the most latency-sensitive NPB benchmark,
which is why it shows VNET/P's largest degradation (74-85 %) on *both*
1 and 10 Gbps (Fig. 14 discussion).
"""

from __future__ import annotations

from ...mpi import Communicator
from .common import NpbSpec, grid_q

GRID = {"B": 102, "C": 162}
ITERS = {"B": 250, "C": 250}
COMM_FRACTION = {"B": 0.35, "C": 0.35}


def _make_comm(klass: str, nprocs: int):
    n = GRID[klass]

    def _comm(comm: Communicator, it: int):
        p = comm.size
        q = grid_q(p)
        # Pencil exchange per wavefront stage: 5 variables x one k-plane row.
        pencil = max(64, 8 * 5 * n // max(1, q))
        # Two triangular sweeps, each a dependent chain of 2q small hops
        # (the wavefront crosses the process grid diagonally).
        for sweep in range(2):
            for hop in range(2 * q):
                tag = (it * 8 + sweep * 4) * 64 + hop
                dst = (comm.rank + 1) % p
                src = (comm.rank - 1) % p
                req = comm.isend(dst, pencil, tag=tag)
                yield from comm.recv(src, tag)
                yield from req.wait()
        # Face exchange after the sweeps (larger message).
        face = max(64, 8 * 5 * n * n // p)
        dst = (comm.rank + grid_q(p)) % p
        src = (comm.rank - grid_q(p)) % p
        req = comm.isend(dst, face, tag=it * 8 + 7)
        yield from comm.recv(src, it * 8 + 7)
        yield from req.wait()

    return _comm


def spec(klass: str, nprocs: int) -> NpbSpec:
    return NpbSpec(
        name="lu",
        klass=klass,
        nprocs=nprocs,
        iterations=ITERS[klass],
        comm_fn=_make_comm(klass, nprocs),
        comm_fraction_ref=COMM_FRACTION[klass],
    )
