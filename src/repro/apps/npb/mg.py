"""NPB MG: V-cycle multigrid on a 256^3 (class B) grid.

Communication: ghost-face exchanges at every grid level of each V-cycle
— large faces at the fine levels, many tiny messages at the coarse
levels.  That mix of "highly structured long distance communication"
testing "both short and long distance data communication" is what makes
MG one of the most network-sensitive NPB kernels (74-81 % of native
under VNET/P at 10 Gbps).
"""

from __future__ import annotations

from ...mpi import Communicator
from .common import NpbSpec

GRID = {"B": 256, "C": 512}
ITERS = {"B": 20, "C": 20}
LEVELS = 8
COMM_FRACTION = {"B": 0.22, "C": 0.20}


def _make_comm(klass: str, nprocs: int):
    n = GRID[klass]

    def _comm(comm: Communicator, it: int):
        p = comm.size
        for level in range(LEVELS):
            side = max(2, n >> level)
            # Face area per rank for a 3-D decomposition over p ranks.
            face_bytes = max(64, int(24 * side * side / max(1.0, p ** (2 / 3))))
            # Three axes of neighbour exchange per level.
            for k, dist in enumerate((1, 2, 4)):
                if p > dist:
                    dst = (comm.rank + dist) % p
                    src = (comm.rank - dist) % p
                    req = comm.isend(dst, face_bytes, tag=(it * 64 + level * 4 + k))
                    yield from comm.recv(src, it * 64 + level * 4 + k)
                    yield from req.wait()
        # Residual norm.
        yield from comm.allreduce(8)

    return _comm


def spec(klass: str, nprocs: int) -> NpbSpec:
    return NpbSpec(
        name="mg",
        klass=klass,
        nprocs=nprocs,
        iterations=ITERS[klass],
        comm_fn=_make_comm(klass, nprocs),
        comm_fraction_ref=COMM_FRACTION[klass],
    )
