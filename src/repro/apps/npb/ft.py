"""NPB FT: 3-D FFT PDE solver.

Class B: a 512 x 256 x 256 complex grid (512 MiB), 20 iterations, each
performing a global transpose — an all-to-all of the entire grid — "a
rigorous test of long-distance communication performance".
"""

from __future__ import annotations

from ...mpi import Communicator
from .common import NpbSpec

TOTAL_BYTES = {"B": 8 * 512 * 256 * 256, "C": 8 * 512 * 512 * 512}
ITERS = {"B": 20, "C": 20}
COMM_FRACTION = {"B": 0.15, "C": 0.15}


def _make_comm(klass: str, nprocs: int):
    total = TOTAL_BYTES[klass]

    def _comm(comm: Communicator, it: int):
        per_pair = max(1, total // (comm.size * comm.size))
        yield from comm.alltoall(per_pair)
        # Checksum reduction.
        yield from comm.allreduce(16)

    return _comm


def spec(klass: str, nprocs: int) -> NpbSpec:
    return NpbSpec(
        name="ft",
        klass=klass,
        nprocs=nprocs,
        iterations=ITERS[klass],
        comm_fn=_make_comm(klass, nprocs),
        comm_fraction_ref=COMM_FRACTION[klass],
    )
