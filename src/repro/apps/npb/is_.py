"""NPB IS: parallel integer bucket sort.

Class B: 2^25 keys, 10 ranking iterations; each iteration reduces the
bucket histogram and redistributes keys with an all-to-all(v).  Tests
"both integer computation speed and communication performance".
"""

from __future__ import annotations

from ...mpi import Communicator
from .common import NpbSpec

TOTAL_KEYS = {"B": 1 << 25, "C": 1 << 27}
ITERS = 10
KEY_BYTES = 4
COMM_FRACTION = {"B": 0.04, "C": 0.04}


def _make_comm(klass: str, nprocs: int):
    total_bytes = TOTAL_KEYS[klass] * KEY_BYTES

    def _comm(comm: Communicator, it: int):
        # Bucket-size histogram.
        yield from comm.allreduce(1024 * 4)
        # Key redistribution.
        per_pair = max(1, total_bytes // (comm.size * comm.size))
        yield from comm.alltoall(per_pair)

    return _comm


def spec(klass: str, nprocs: int) -> NpbSpec:
    return NpbSpec(
        name="is",
        klass=klass,
        nprocs=nprocs,
        iterations=ITERS,
        comm_fn=_make_comm(klass, nprocs),
        comm_fraction_ref=COMM_FRACTION[klass],
    )
