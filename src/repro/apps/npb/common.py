"""NAS Parallel Benchmark skeletons (Sect. 5.5, Fig. 14).

Each NPB kernel/pseudo-application is modelled as its authentic
iteration structure: per-iteration communication (the real benchmark's
message pattern and class-B/C message sizes) interleaved with local
computation.  Reported Mop/s = total operation count / wall time, as
NPB reports.

Calibration: the operation count W and the per-rank compute time are
fixed per (benchmark, class) by anchoring ONE reference cell — the
16-process Native-10G measurement from the paper's Fig. 14 — with a
benchmark-specific communication fraction; every other cell (8/9
processes, 1 Gbps, VNET/P) is then *predicted* by the model, not fitted.
The communication fraction is the single free parameter per benchmark;
message structure and sizes come from the NPB 2.4 specifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import isqrt
from typing import Callable, Generator, Optional

from ... import units
from ...mpi import Communicator, MPIWorld
from ...mpi.transport import FlowModel, FlowTransport
from ...sim import Simulator

__all__ = ["NpbSpec", "NpbResult", "CalibratedNpb", "run_npb", "npb_world"]


@dataclass
class NpbSpec:
    """Structure of one benchmark at one (class, process count)."""

    name: str                 # e.g. "mg"
    klass: str                # "B" or "C"
    nprocs: int
    iterations: int
    comm_fn: Callable[[Communicator, int], Generator]
    # Fraction of the reference-cell native runtime spent communicating
    # (the per-benchmark calibration knob; see module docstring).
    comm_fraction_ref: float

    @property
    def label(self) -> str:
        return f"{self.name}.{self.klass}.{self.nprocs}"


@dataclass
class NpbResult:
    spec_label: str
    nprocs: int
    total_mop: float
    elapsed_ns: int

    @property
    def mops(self) -> float:
        """Total Mop/s, as NPB's 'Mop/s total' reports."""
        return self.total_mop / (self.elapsed_ns / units.SECOND)


@dataclass
class CalibratedNpb:
    """Fitted constants for one (benchmark, class): op count and the
    per-rank compute time of the reference configuration."""

    total_mop: float
    compute_ns_ref: int       # per-rank, whole-run compute at nprocs_ref
    nprocs_ref: int

    def compute_ns(self, nprocs: int) -> int:
        """Perfect compute scaling from the reference process count (NPB
        kernels are compute-scalable; losses come from communication)."""
        return int(self.compute_ns_ref * self.nprocs_ref / nprocs)


def npb_world(
    model: FlowModel, nprocs: int, ranks_per_node: int = 4
) -> MPIWorld:
    sim = Simulator()
    n_nodes = (nprocs + ranks_per_node - 1) // ranks_per_node
    transport = FlowTransport(
        sim, n_nodes=n_nodes, model=model, ranks_per_node=ranks_per_node
    )
    return MPIWorld(sim, transport, nprocs)


def measure_comm_ns(spec: NpbSpec, model: FlowModel, ranks_per_node: int = 4) -> int:
    """Run the skeleton with zero compute; returns max per-rank comm time."""
    result = run_npb(spec, model, compute_ns_per_rank=0, ranks_per_node=ranks_per_node)
    return result.elapsed_ns


def calibrate(
    spec_ref: NpbSpec,
    model_native: FlowModel,
    paper_native_mops: float,
    ranks_per_node: int = 4,
) -> CalibratedNpb:
    """Fit (W, compute time) from the reference cell.

    ``T = K/f`` where K is the simulated communication time and f the
    benchmark's communication fraction; ``W = paper_mops * T``.
    """
    comm_ns = measure_comm_ns(spec_ref, model_native, ranks_per_node)
    f = spec_ref.comm_fraction_ref
    total_ns = int(comm_ns / f)
    compute_ns = total_ns - comm_ns
    total_mop = paper_native_mops * (total_ns / units.SECOND)
    return CalibratedNpb(
        total_mop=total_mop,
        compute_ns_ref=compute_ns,
        nprocs_ref=spec_ref.nprocs,
    )


def run_npb(
    spec: NpbSpec,
    model: FlowModel,
    calibrated: Optional[CalibratedNpb] = None,
    compute_ns_per_rank: Optional[int] = None,
    ranks_per_node: int = 4,
) -> NpbResult:
    """Run one benchmark cell; returns the NPB-style result."""
    if compute_ns_per_rank is None:
        if calibrated is None:
            raise ValueError("need either calibrated constants or explicit compute")
        compute_ns_per_rank = calibrated.compute_ns(spec.nprocs)
    per_iter_compute = compute_ns_per_rank // spec.iterations
    world = npb_world(model, spec.nprocs, ranks_per_node)
    sim = world.sim
    finish: dict[int, int] = {}

    def program(comm):
        yield from comm.barrier()
        start = sim.now
        for it in range(spec.iterations):
            if per_iter_compute:
                yield from comm.compute(per_iter_compute)
            yield from spec.comm_fn(comm, it)
        yield from comm.barrier()
        finish[comm.rank] = sim.now - start

    world.run(program)
    total_mop = calibrated.total_mop if calibrated else 0.0
    return NpbResult(
        spec_label=spec.label,
        nprocs=spec.nprocs,
        total_mop=total_mop,
        elapsed_ns=max(finish.values()),
    )


def grid_q(p: int) -> int:
    """Side of the (near-)square process grid NPB uses."""
    return max(1, isqrt(p))
