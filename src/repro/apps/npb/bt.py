"""NPB BT: block-tridiagonal pseudo-application.

Same multi-partition structure as SP (102^3 class B grid) but 200 time
steps and a lower communication-to-computation ratio — "the salient
difference between the two" (Sect. 5.5) — so BT sits closest to native
of the pseudo-applications.
"""

from __future__ import annotations

from ...mpi import Communicator
from .common import NpbSpec, grid_q

GRID = {"B": 102, "C": 162}
ITERS = {"B": 200, "C": 200}
COMM_FRACTION = {"B": 0.05, "C": 0.05}


def _make_comm(klass: str, nprocs: int):
    n = GRID[klass]

    def _comm(comm: Communicator, it: int):
        p = comm.size
        q = grid_q(p)
        face = max(64, 8 * 5 * n * n // p)
        for axis, dist in enumerate((1, q, q * q if q * q < p else 1)):
            tag = it * 8 + axis
            dst = (comm.rank + dist) % p
            src = (comm.rank - dist) % p
            req = comm.isend(dst, face, tag=tag)
            yield from comm.recv(src, tag)
            yield from req.wait()
            req = comm.isend(src, face, tag=tag + 4)
            yield from comm.recv(dst, tag + 4)
            yield from req.wait()

    return _comm


def spec(klass: str, nprocs: int) -> NpbSpec:
    return NpbSpec(
        name="bt",
        klass=klass,
        nprocs=nprocs,
        iterations=ITERS[klass],
        comm_fn=_make_comm(klass, nprocs),
        comm_fraction_ref=COMM_FRACTION[klass],
    )
