"""The NPB suite runner for Fig. 14.

``PAPER_FIG14`` holds the paper's measured Mop/s for every cell
(Native/VNET-P x 1G/10G); ``run_cell`` produces our simulated values.
Calibration anchors each (benchmark, class) at its largest-process
Native-10G cell; all other 7 cells of that row family are predictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...mpi.transport import FlowModel
from . import bt, cg, ep, ft, is_, lu, mg, sp
from .common import CalibratedNpb, NpbResult, calibrate, run_npb

__all__ = ["PAPER_FIG14", "FIG14_CELLS", "Fig14Row", "run_cell", "run_table"]

_MODULES = {"ep": ep, "mg": mg, "cg": cg, "ft": ft, "is": is_, "lu": lu, "sp": sp, "bt": bt}

# Fig. 14: Mop/s as (Native-1G, VNET/P-1G, Native-10G, VNET/P-10G).
PAPER_FIG14: dict[str, tuple[float, float, float, float]] = {
    "ep.B.8": (103.15, 101.94, 102.18, 102.12),
    "ep.B.16": (204.88, 203.9, 208.0, 206.52),
    "ep.C.8": (103.12, 102.1, 103.13, 102.14),
    "ep.C.16": (206.24, 204.14, 206.22, 203.98),
    "mg.B.8": (4400.52, 3840.47, 5110.29, 3796.03),
    "mg.B.16": (1506.77, 1498.65, 9137.26, 7405.0),
    "cg.B.8": (1542.79, 1319.43, 2096.64, 1806.57),
    "cg.B.16": (160.64, 159.69, 592.08, 554.91),
    "ft.B.16": (1575.83, 1290.78, 1432.3, 1228.39),
    "is.B.8": (78.88, 74.61, 59.15, 59.04),
    "is.B.16": (35.99, 35.78, 23.09, 23.0),
    "is.C.8": (89.54, 82.15, 132.08, 131.87),
    "is.C.16": (84.76, 82.22, 77.77, 76.94),
    "lu.B.8": (6818.52, 5495.23, 7173.65, 6021.78),
    "lu.B.16": (7847.99, 6694.12, 12981.86, 9643.21),
    "sp.B.9": (1361.38, 1215.85, 2634.53, 2421.98),
    "sp.B.16": (1489.32, 1399.6, 3010.71, 2916.81),
    "bt.B.9": (3423.52, 3297.04, 5229.01, 4076.52),
    "bt.B.16": (4599.38, 4348.99, 6315.11, 6105.11),
}

FIG14_CELLS = list(PAPER_FIG14)

_CALIBRATION: dict[tuple[str, str], CalibratedNpb] = {}


def _reference_cell(name: str, klass: str) -> str:
    """Largest-process cell of a (benchmark, class) family."""
    candidates = [
        c for c in FIG14_CELLS if c.startswith(f"{name}.{klass}.")
    ]
    return max(candidates, key=lambda c: int(c.rsplit(".", 1)[1]))


def _calibrated(name: str, klass: str, model_native_10g: FlowModel) -> CalibratedNpb:
    key = (name, klass)
    cached = _CALIBRATION.get(key)
    if cached is None:
        ref = _reference_cell(name, klass)
        nprocs_ref = int(ref.rsplit(".", 1)[1])
        spec_ref = _MODULES[name].spec(klass, nprocs_ref)
        cached = calibrate(spec_ref, model_native_10g, PAPER_FIG14[ref][2])
        _CALIBRATION[key] = cached
    return cached


@dataclass
class Fig14Row:
    """One row of the reproduced table plus the paper's values."""

    label: str
    native_1g: float
    vnetp_1g: float
    native_10g: float
    vnetp_10g: float
    paper: tuple[float, float, float, float]

    @property
    def ratio_1g(self) -> float:
        return self.vnetp_1g / self.native_1g

    @property
    def ratio_10g(self) -> float:
        return self.vnetp_10g / self.native_10g

    @property
    def paper_ratio_1g(self) -> float:
        return self.paper[1] / self.paper[0]

    @property
    def paper_ratio_10g(self) -> float:
        return self.paper[3] / self.paper[2]


def run_cell(
    label: str,
    models: dict[str, FlowModel],
) -> Fig14Row:
    """Run one Fig. 14 row across all four configurations.

    ``models`` maps {"native-1g", "vnetp-1g", "native-10g", "vnetp-10g"}
    to calibrated flow models.
    """
    name, klass, nprocs_s = label.split(".")
    nprocs = int(nprocs_s)
    spec = _MODULES[name].spec(klass, nprocs)
    cal = _calibrated(name, klass, models["native-10g"])
    values = {}
    for cfg, model in models.items():
        result: NpbResult = run_npb(spec, model, calibrated=cal)
        values[cfg] = result.mops
    return Fig14Row(
        label=label,
        native_1g=values["native-1g"],
        vnetp_1g=values["vnetp-1g"],
        native_10g=values["native-10g"],
        vnetp_10g=values["vnetp-10g"],
        paper=PAPER_FIG14[label],
    )


def run_table(models: dict[str, FlowModel], cells: Optional[list[str]] = None) -> list[Fig14Row]:
    return [run_cell(label, models) for label in (cells or FIG14_CELLS)]
