"""NAS Parallel Benchmark skeletons (NPB-MPI 2.4): EP MG CG FT IS LU SP BT."""

from . import bt, cg, ep, ft, is_, lu, mg, sp
from .common import CalibratedNpb, NpbResult, NpbSpec, calibrate, npb_world, run_npb
from .suite import FIG14_CELLS, PAPER_FIG14, Fig14Row, run_cell, run_table

__all__ = [
    "bt", "cg", "ep", "ft", "is_", "lu", "mg", "sp",
    "CalibratedNpb", "NpbResult", "NpbSpec", "calibrate", "npb_world", "run_npb",
    "FIG14_CELLS", "PAPER_FIG14", "Fig14Row", "run_cell", "run_table",
]
