"""NPB CG: conjugate gradient with an irregular sparse matrix.

Class B: n = 75000, 75 outer iterations each containing 25 inner CG
iterations.  Per inner iteration the 2-D process grid exchanges vector
segments (row/column transposes) and reduces two dot products —
"irregular long distance communication" (Fig. 14 text).
"""

from __future__ import annotations

from ...mpi import Communicator
from .common import NpbSpec, grid_q

N = {"B": 75_000, "C": 150_000}
OUTER = {"B": 75, "C": 75}
INNER = 25
COMM_FRACTION = {"B": 0.18, "C": 0.18}


def _make_comm(klass: str, nprocs: int):
    n = N[klass]

    def _comm(comm: Communicator, it: int):
        p = comm.size
        q = grid_q(p)
        seg_bytes = 16 * n // max(1, q)
        for inner in range(INNER):
            # Matrix-vector product: exchange vector segments across the
            # processor row/column (transpose partner pattern).
            partner = (comm.rank + q) % p
            back = (comm.rank - q) % p
            tag = (it * INNER + inner) * 4
            req = comm.isend(partner, seg_bytes, tag=tag)
            yield from comm.recv(back, tag)
            yield from req.wait()
            # Two dot-product reductions per inner iteration (merged).
            yield from comm.allreduce(16)

    return _comm


def spec(klass: str, nprocs: int) -> NpbSpec:
    return NpbSpec(
        name="cg",
        klass=klass,
        nprocs=nprocs,
        iterations=OUTER[klass],
        comm_fn=_make_comm(klass, nprocs),
        comm_fraction_ref=COMM_FRACTION[klass],
    )
