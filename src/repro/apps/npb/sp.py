"""NPB SP: scalar-pentadiagonal pseudo-application.

Class B: 102^3 grid, 400 time steps on a square process grid; each step
exchanges faces in all three directions (multi-partition scheme).  SP
has a higher communication/computation ratio than BT (Fig. 14 text) but
both stay within a few percent of native.
"""

from __future__ import annotations

from ...mpi import Communicator
from .common import NpbSpec, grid_q

GRID = {"B": 102, "C": 162}
ITERS = {"B": 400, "C": 400}
COMM_FRACTION = {"B": 0.075, "C": 0.075}


def _make_comm(klass: str, nprocs: int):
    n = GRID[klass]

    def _comm(comm: Communicator, it: int):
        p = comm.size
        q = grid_q(p)
        face = max(64, 8 * 5 * n * n // p)
        # Three sweep directions, forward + backward neighbour exchange.
        for axis, dist in enumerate((1, q, q * q if q * q < p else 1)):
            tag = it * 8 + axis
            dst = (comm.rank + dist) % p
            src = (comm.rank - dist) % p
            req = comm.isend(dst, face, tag=tag)
            yield from comm.recv(src, tag)
            yield from req.wait()
            req = comm.isend(src, face, tag=tag + 4)
            yield from comm.recv(dst, tag + 4)
            yield from req.wait()

    return _comm


def spec(klass: str, nprocs: int) -> NpbSpec:
    return NpbSpec(
        name="sp",
        klass=klass,
        nprocs=nprocs,
        iterations=ITERS[klass],
        comm_fn=_make_comm(klass, nprocs),
        comm_fraction_ref=COMM_FRACTION[klass],
    )
