"""Hardware models: NICs, links, switches, CPUs, memory."""

from .cpu import CPU, Core
from .link import Link
from .memory import MemorySystem
from .nic import PhysicalNIC
from .switch import Switch, SwitchParams

__all__ = ["CPU", "Core", "Link", "MemorySystem", "PhysicalNIC", "Switch", "SwitchParams"]
