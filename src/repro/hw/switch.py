"""Store-and-forward Ethernet switch (e.g. the Fujitsu XG2000 in Sect. 5.4).

The switch learns source addresses, forwards unicast frames out the
learned port, and floods unknown/broadcast destinations.  Every egress
port has its own serializer at the port rate, so simultaneous flows to
different destinations do not contend, while flows converging on one
port do — which is what drives ring-test contention in the HPCC
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..sim import Port, Simulator, Store, Tracer
from ..units import tx_time_ns
from .nic import PhysicalNIC

__all__ = ["SwitchParams", "Switch"]


@dataclass(frozen=True)
class SwitchParams:
    """Switch fabric characteristics."""

    name: str = "fujitsu-xg2000"
    latency_ns: int = 900          # fabric forwarding latency per frame
    port_rate_bps: float = 10e9
    port_queue_frames: int = 1024
    header_bytes: int = 18


class _Port:
    """One switch port: an egress queue plus serializer process."""

    def __init__(self, switch: "Switch", index: int, nic: PhysicalNIC):
        self.switch = switch
        self.index = index
        self.nic = nic
        sim = switch.sim
        self.egress: Store = Store(
            sim, capacity=switch.params.port_queue_frames, name=f"port{index}.egress"
        )
        self.dropped = 0
        # Fabric traversal is a latency-charged port push (no per-frame
        # process): the forwarding decision runs on arrival at the fabric
        # output, after the learning step on ingress — same ordering as a
        # store-and-forward lookup pipeline.
        self.fabric = Port(sim, f"{switch.params.name}.port{index}.fabric")
        self.fabric.connect(self._fabric_arrive)
        sim.process(self._egress_loop(), name=f"{switch.params.name}.port{index}")
        nic.attach_medium(self._ingress)

    def _ingress(self, frame: Any) -> None:
        """Frame fully serialized by the attached NIC; hand to the fabric."""
        self.switch.fdb[frame.src] = self
        self.fabric.push_after(frame, self.switch.params.latency_ns)

    def _fabric_arrive(self, frame: Any) -> None:
        switch = self.switch
        dst_port = switch.fdb.get(frame.dst)
        if frame.dst == switch.BROADCAST or dst_port is None:
            switch.flooded_frames += 1
            for port in switch.ports:
                if port is not self:
                    port.enqueue(frame)
        else:
            switch.forwarded_frames += 1
            dst_port.enqueue(frame)

    def enqueue(self, frame: Any) -> None:
        if not self.egress.try_put(frame):
            self.dropped += 1
            self.switch.tracer.record(self.switch.sim.now, "switch.drop", frame)

    def _egress_loop(self):
        sim = self.switch.sim
        params = self.switch.params
        # Egress serializes at the attached device's line rate (switches
        # with mixed-speed ports negotiate per port), falling back to the
        # fabric port rate if it is lower.
        rate = min(self.nic.params.rate_bps, params.port_rate_bps)
        while True:
            frame = yield self.egress.get()
            yield sim.timeout(tx_time_ns(frame.size + params.header_bytes, rate))
            yield sim.timeout(self.nic.params.propagation_ns)
            self.nic.deliver(frame)


class Switch:
    """A learning layer-2 switch connecting several NICs."""

    BROADCAST = "ff:ff:ff:ff:ff:ff"

    def __init__(
        self,
        sim: Simulator,
        params: Optional[SwitchParams] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.params = params or SwitchParams()
        self.tracer = tracer or Tracer()
        self.ports: list[_Port] = []
        self.fdb: dict[Any, _Port] = {}   # forwarding database: addr -> port
        self.forwarded_frames = 0
        self.flooded_frames = 0

    def attach(self, nic: PhysicalNIC) -> int:
        """Attach a NIC; returns the port index."""
        port = _Port(self, len(self.ports), nic)
        self.ports.append(port)
        return port.index

    def _forward(self, frame: Any, ingress: _Port) -> None:
        """Inject a frame at a port as if its NIC had serialized it."""
        ingress._ingress(frame)
