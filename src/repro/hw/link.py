"""Point-to-point full-duplex link (patch cable between two NICs)."""

from __future__ import annotations

from typing import Any

from ..obs.context import Observability
from ..obs.span import STAGE_LINK, flow_id
from ..sim import Simulator
from .nic import PhysicalNIC

__all__ = ["Link"]


class Link:
    """Direct cable between two NICs, as in the paper's two-node testbed.

    Serialization is charged by the sending NIC; the link adds only
    propagation delay (cable + PHY) in each direction, concurrently.
    """

    def __init__(self, sim: Simulator, a: PhysicalNIC, b: PhysicalNIC):
        if a.params.rate_bps != b.params.rate_bps:
            raise ValueError(
                f"link speed mismatch: {a.name}={a.params.rate_bps} "
                f"vs {b.name}={b.params.rate_bps}"
            )
        self.sim = sim
        self.a = a
        self.b = b
        self.obs = Observability.of(sim)
        a.attach_medium(lambda frame: self._propagate(frame, b))
        b.attach_medium(lambda frame: self._propagate(frame, a))

    def _propagate(self, frame: Any, dst: PhysicalNIC) -> None:
        delay = dst.params.propagation_ns
        self.sim.process(self._deliver_after(frame, dst, delay))

    def _deliver_after(self, frame: Any, dst: PhysicalNIC, delay: int):
        with self.obs.spans.span(
            STAGE_LINK, who=f"link:{self.a.name}-{self.b.name}", where="wire",
            flow=flow_id(frame),
        ):
            yield self.sim.timeout(delay)
        dst.deliver(frame)
