"""Point-to-point full-duplex link (patch cable between two NICs)."""

from __future__ import annotations

from ..obs.context import Observability
from ..obs.span import STAGE_LINK
from ..sim import Port, Simulator
from .nic import PhysicalNIC

__all__ = ["Link"]


class Link:
    """Direct cable between two NICs, as in the paper's two-node testbed.

    Serialization is charged by the sending NIC; the link adds only
    propagation delay (cable + PHY) in each direction, concurrently —
    one latency-charged :class:`~repro.sim.pipeline.Port` per direction,
    no per-frame process.
    """

    def __init__(self, sim: Simulator, a: PhysicalNIC, b: PhysicalNIC):
        if a.params.rate_bps != b.params.rate_bps:
            raise ValueError(
                f"link speed mismatch: {a.name}={a.params.rate_bps} "
                f"vs {b.name}={b.params.rate_bps}"
            )
        self.sim = sim
        self.a = a
        self.b = b
        self.obs = Observability.of(sim)
        who = f"link:{a.name}-{b.name}"
        spans = self.obs.spans
        self.to_b = Port(sim, f"{who}.ab", spans=spans, stage=STAGE_LINK,
                         who=who, where="wire")
        self.to_b.connect(b.deliver)
        self.to_a = Port(sim, f"{who}.ba", spans=spans, stage=STAGE_LINK,
                         who=who, where="wire")
        self.to_a.connect(a.deliver)
        a.attach_medium(
            lambda frame: self.to_b.push_after(frame, b.params.propagation_ns)
        )
        b.attach_medium(
            lambda frame: self.to_a.push_after(frame, a.params.propagation_ns)
        )
