"""Physical NIC model.

A :class:`PhysicalNIC` owns a transmit queue and a serializer process
(the wire can carry one frame at a time per direction), and a receive
path that charges descriptor-ring cost serially and interrupt/wakeup
latency in parallel (interrupt delay is latency, not occupancy — frames
arriving back-to-back are coalesced by real NICs).

Frames are duck-typed: anything with ``size`` (payload bytes on the
wire, excluding the link header accounted by ``NICParams``), ``src`` and
``dst`` (link-layer addresses; used by switches) can be transported.

The NIC is a :class:`~repro.sim.pipeline.PacketStage` with two ports:
``tx`` (to the attached medium — link or switch port) and ``rx`` (to
the host driver).  The legacy ``attach_medium`` / ``rx_handler`` names
are kept as thin facades over those ports so existing harnesses
(pcap taps, fault injectors) keep working unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..config import NICParams
from ..obs.context import Observability
from ..obs.span import STAGE_NIC_RX, STAGE_NIC_TX
from ..sim import PacketStage, Simulator, Store, Tracer

__all__ = ["PhysicalNIC"]


class PhysicalNIC(PacketStage):
    """One physical network device attached to a link or switch port."""

    def __init__(
        self,
        sim: Simulator,
        params: NICParams,
        name: str = "nic",
        tracer: Optional[Tracer] = None,
    ):
        self._init_stage(sim, name)
        self.params = params
        self.tracer = tracer or Tracer()
        self.txq: Store = Store(sim, capacity=params.tx_queue_frames, name=f"{name}.txq")
        self.obs = Observability.of(sim)
        # tx: frame fully serialized -> medium (link/switch ingress).
        # rx: ring + interrupt latency charged -> host driver.
        self.tx_port = self.make_port("tx")
        self.rx_port = self.make_port(
            "rx", spans=self.obs.spans, stage=STAGE_NIC_RX, who=name, where="host"
        )
        metrics = self.obs.metrics
        prefix = f"hw.nic.{name}"
        self._tx_bytes = metrics.counter(f"{prefix}.tx_bytes")
        self._rx_bytes = metrics.counter(f"{prefix}.rx_bytes")
        self._tx_frames = metrics.counter(f"{prefix}.tx_frames")
        self._rx_frames = metrics.counter(f"{prefix}.rx_frames")
        self._dropped_frames = metrics.counter(f"{prefix}.dropped_frames")
        sim.process(self._tx_loop(), name=f"{name}.tx")

    # -- counters (registry-backed, read-only views) -----------------------
    @property
    def tx_bytes(self) -> int:
        return self._tx_bytes.value

    @property
    def rx_bytes(self) -> int:
        return self._rx_bytes.value

    @property
    def tx_frames(self) -> int:
        return self._tx_frames.value

    @property
    def rx_frames(self) -> int:
        return self._rx_frames.value

    @property
    def dropped_frames(self) -> int:
        return self._dropped_frames.value

    # -- attachment --------------------------------------------------------
    def attach_medium(self, medium: Callable[[Any], None]) -> None:
        if self.tx_port.connected:
            raise RuntimeError(f"NIC {self.name} already attached to a medium")
        self.tx_port.connect(medium)

    @property
    def attached(self) -> bool:
        return self.tx_port.connected

    # Legacy facades: harnesses (pcap tap, fault injection) wrap and
    # restore these; they map straight onto the ports' sinks.
    @property
    def _medium(self) -> Optional[Callable[[Any], None]]:
        return self.tx_port.sink

    @_medium.setter
    def _medium(self, medium: Optional[Callable[[Any], None]]) -> None:
        self.tx_port.rebind(medium)

    @property
    def rx_handler(self) -> Optional[Callable[[Any], None]]:
        return self.rx_port.sink

    @rx_handler.setter
    def rx_handler(self, handler: Optional[Callable[[Any], None]]) -> None:
        self.rx_port.rebind(handler)

    # -- transmit ----------------------------------------------------------
    def send(self, frame: Any) -> bool:
        """Queue a frame for transmission; returns False on tail drop."""
        if frame.payload_size > self.params.max_mtu:
            raise ValueError(
                f"frame payload of {frame.payload_size} B exceeds "
                f"{self.name} MTU {self.params.max_mtu}"
            )
        ok = self.txq.try_put(frame)
        if not ok:
            self._dropped_frames.inc()
            self.tracer.record(self.sim.now, f"{self.name}.tx_drop", frame)
        return ok

    def _tx_loop(self):
        params = self.params
        tx_port = self.tx_port
        while True:
            frame = yield self.txq.get()
            if not tx_port.connected:
                raise RuntimeError(f"NIC {self.name} transmitting while unattached")
            with self.obs.spans.span(
                STAGE_NIC_TX, who=self.name, where="host", flow_of=frame
            ):
                yield self.sim.timeout(
                    params.tx_ring_ns + params.serialize_ns(frame.size)
                )
            self._tx_bytes.inc(frame.size)
            self._tx_frames.inc()
            self.tracer.record(self.sim.now, f"{self.name}.tx", frame)
            tx_port.push(frame)

    # -- receive -----------------------------------------------------------
    def deliver(self, frame: Any) -> None:
        """Called by the medium when a frame arrives at this NIC.

        Ring handling plus interrupt delay is latency, not occupancy, so
        the hand-off to the driver is a single latency-charged port push
        (no per-frame process).
        """
        self._rx_bytes.inc(frame.size)
        self._rx_frames.inc()
        self.tracer.record(self.sim.now, f"{self.name}.rx", frame)
        params = self.params
        self.rx_port.push_after(
            frame, params.rx_ring_ns + params.rx_interrupt_delay_ns
        )

    # PacketStage entry point: the medium pushes arriving frames here.
    ingress = deliver

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PhysicalNIC {self.name} ({self.params.name})>"
