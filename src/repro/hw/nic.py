"""Physical NIC model.

A :class:`PhysicalNIC` owns a transmit queue and a serializer process
(the wire can carry one frame at a time per direction), and a receive
path that charges descriptor-ring cost serially and interrupt/wakeup
latency in parallel (interrupt delay is latency, not occupancy — frames
arriving back-to-back are coalesced by real NICs).

Frames are duck-typed: anything with ``size`` (payload bytes on the
wire, excluding the link header accounted by ``NICParams``), ``src`` and
``dst`` (link-layer addresses; used by switches) can be transported.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..config import NICParams
from ..obs.context import Observability
from ..obs.span import STAGE_NIC_RX, STAGE_NIC_TX, flow_id
from ..sim import Simulator, Store, Tracer

__all__ = ["PhysicalNIC"]


class PhysicalNIC:
    """One physical network device attached to a link or switch port."""

    def __init__(
        self,
        sim: Simulator,
        params: NICParams,
        name: str = "nic",
        tracer: Optional[Tracer] = None,
    ):
        self.sim = sim
        self.params = params
        self.name = name
        self.tracer = tracer or Tracer()
        self.txq: Store = Store(sim, capacity=params.tx_queue_frames, name=f"{name}.txq")
        # Set by Link/SwitchPort when attached: callable(frame) that puts
        # the frame onto the medium (handles propagation + remote delivery).
        self._medium: Optional[Callable[[Any], None]] = None
        # Set by the host driver: callable(frame) invoked when the frame is
        # visible to host software (after ring + interrupt costs).
        self.rx_handler: Optional[Callable[[Any], None]] = None
        self.obs = Observability.of(sim)
        metrics = self.obs.metrics
        prefix = f"hw.nic.{name}"
        self._tx_bytes = metrics.counter(f"{prefix}.tx_bytes")
        self._rx_bytes = metrics.counter(f"{prefix}.rx_bytes")
        self._tx_frames = metrics.counter(f"{prefix}.tx_frames")
        self._rx_frames = metrics.counter(f"{prefix}.rx_frames")
        self._dropped_frames = metrics.counter(f"{prefix}.dropped_frames")
        sim.process(self._tx_loop(), name=f"{name}.tx")

    # -- counters (registry-backed, read-only views) -----------------------
    @property
    def tx_bytes(self) -> int:
        return self._tx_bytes.value

    @property
    def rx_bytes(self) -> int:
        return self._rx_bytes.value

    @property
    def tx_frames(self) -> int:
        return self._tx_frames.value

    @property
    def rx_frames(self) -> int:
        return self._rx_frames.value

    @property
    def dropped_frames(self) -> int:
        return self._dropped_frames.value

    # -- attachment --------------------------------------------------------
    def attach_medium(self, medium: Callable[[Any], None]) -> None:
        if self._medium is not None:
            raise RuntimeError(f"NIC {self.name} already attached to a medium")
        self._medium = medium

    @property
    def attached(self) -> bool:
        return self._medium is not None

    # -- transmit ----------------------------------------------------------
    def send(self, frame: Any) -> bool:
        """Queue a frame for transmission; returns False on tail drop."""
        if frame.payload_size > self.params.max_mtu:
            raise ValueError(
                f"frame payload of {frame.payload_size} B exceeds "
                f"{self.name} MTU {self.params.max_mtu}"
            )
        ok = self.txq.try_put(frame)
        if not ok:
            self._dropped_frames.inc()
            self.tracer.record(self.sim.now, f"{self.name}.tx_drop", frame)
        return ok

    def _tx_loop(self):
        params = self.params
        while True:
            frame = yield self.txq.get()
            if self._medium is None:
                raise RuntimeError(f"NIC {self.name} transmitting while unattached")
            with self.obs.spans.span(
                STAGE_NIC_TX, who=self.name, where="host", flow=flow_id(frame)
            ):
                yield self.sim.timeout(
                    params.tx_ring_ns + params.serialize_ns(frame.size)
                )
            self._tx_bytes.inc(frame.size)
            self._tx_frames.inc()
            self.tracer.record(self.sim.now, f"{self.name}.tx", frame)
            self._medium(frame)

    # -- receive -----------------------------------------------------------
    def deliver(self, frame: Any) -> None:
        """Called by the medium when a frame arrives at this NIC."""
        self._rx_bytes.inc(frame.size)
        self._rx_frames.inc()
        self.tracer.record(self.sim.now, f"{self.name}.rx", frame)
        self.sim.process(self._rx_one(frame), name=f"{self.name}.rx1")

    def _rx_one(self, frame: Any):
        params = self.params
        with self.obs.spans.span(
            STAGE_NIC_RX, who=self.name, where="host", flow=flow_id(frame)
        ):
            yield self.sim.timeout(params.rx_ring_ns + params.rx_interrupt_delay_ns)
        if self.rx_handler is not None:
            self.rx_handler(frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<PhysicalNIC {self.name} ({self.params.name})>"
