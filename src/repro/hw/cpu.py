"""CPU core model.

Software activities that contend for processor time (packet dispatcher
threads, the bridge thread, guest VCPUs) acquire a core for the duration
of each burst of work.  The model deliberately keeps scheduling simple —
FIFO per-core — because the paper's evaluation pins its threads and
measures with otherwise-idle machines.
"""

from __future__ import annotations

from typing import Optional

from ..config import CPUParams
from ..sim import Resource, Simulator

__all__ = ["Core", "CPU"]


class Core:
    """One processor core; a unit-capacity resource plus busy accounting."""

    def __init__(self, sim: Simulator, index: int, name: str = "core"):
        self.sim = sim
        self.index = index
        self.name = f"{name}{index}"
        self._res = Resource(sim, capacity=1, name=self.name)
        self.busy_ns = 0

    def execute(self, duration_ns: int):
        """Generator: occupy this core for ``duration_ns``."""
        yield self._res.request()
        try:
            yield self.sim.timeout(duration_ns)
            self.busy_ns += duration_ns
        finally:
            self._res.release()

    @property
    def idle(self) -> bool:
        return self._res.available > 0


class CPU:
    """A socket's worth of cores."""

    def __init__(self, sim: Simulator, params: CPUParams, name: str = "cpu"):
        self.sim = sim
        self.params = params
        self.name = name
        self.cores = [Core(sim, i, name=f"{name}.core") for i in range(params.cores)]

    def __len__(self) -> int:
        return len(self.cores)

    def core(self, index: int) -> Core:
        return self.cores[index]

    def any_idle_core(self) -> Optional[Core]:
        for core in self.cores:
            if core.idle:
                return core
        return None

    def utilization(self, elapsed_ns: int) -> float:
        """Aggregate busy fraction across cores over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return sum(c.busy_ns for c in self.cores) / (elapsed_ns * len(self.cores))
