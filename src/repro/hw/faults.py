"""Fault injection for links and media.

Tests and robustness experiments need controlled failure: random frame
loss, burst loss, and full partitions.  These wrappers interpose on a
NIC's attached medium, so they compose with any topology (point-to-point
links, switch ports) without the components knowing.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..sim import Simulator
from .nic import PhysicalNIC

__all__ = ["LossyMedium", "Partition"]


class LossyMedium:
    """Drops a fraction of frames a NIC transmits.

    Deterministic per seed.  Attach *after* the link/switch wiring::

        fault = LossyMedium(nic, rate=0.01, seed=7)
    """

    def __init__(self, nic: PhysicalNIC, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        if not nic.attached:
            raise RuntimeError(f"{nic.name} must be attached to a medium first")
        self.nic = nic
        self.rate = rate
        self._rng = np.random.default_rng(seed)
        self._inner: Callable[[Any], None] = nic._medium
        self.dropped = 0
        self.passed = 0
        nic._medium = self._send

    def _send(self, frame: Any) -> None:
        if self._rng.random() < self.rate:
            self.dropped += 1
            return
        self.passed += 1
        self._inner(frame)

    def remove(self) -> None:
        """Restore the original medium."""
        self.nic._medium = self._inner


class Partition:
    """A controllable network partition on one NIC's transmit path.

    ``fail()`` blackholes everything the NIC sends; ``heal()`` restores
    it.  Bidirectional partitions use one Partition per side.
    """

    def __init__(self, nic: PhysicalNIC):
        if not nic.attached:
            raise RuntimeError(f"{nic.name} must be attached to a medium first")
        self.nic = nic
        self._inner: Callable[[Any], None] = nic._medium
        self.failed = False
        self.blackholed = 0
        nic._medium = self._send

    def _send(self, frame: Any) -> None:
        if self.failed:
            self.blackholed += 1
            return
        self._inner(frame)

    def fail(self) -> None:
        self.failed = True

    def heal(self) -> None:
        self.failed = False

    def fail_for(self, sim: Simulator, duration_ns: int):
        """Generator: partition for a fixed window, then heal."""
        self.fail()
        yield sim.timeout(duration_ns)
        self.heal()
