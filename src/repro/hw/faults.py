"""Fault injection for links and media (compat facades).

Tests and robustness experiments need controlled failure: random frame
loss, burst loss, and full partitions.  The actual injectors now live in
:mod:`repro.chaos.stages` as pipeline stages that install on any
:class:`~repro.sim.pipeline.Port`; the wrappers here keep the historical
NIC-centric API (``LossyMedium(nic, rate)``, ``Partition(nic)``) as thin
facades over a stage on ``nic.tx_port``.

Two upgrades ride along for free:

* counters are registry-backed ``chaos.*`` metrics (the ``dropped`` /
  ``passed`` / ``blackholed`` attributes are read-only views), so
  exporters and the cross-process metrics merge see fault activity;
* removal is order-safe — stacked injectors restore the original medium
  no matter which is removed first, because the chain is unwound
  structurally rather than via a callable captured at install time.
"""

from __future__ import annotations

from ..chaos.stages import LossStage, PartitionStage
from ..sim import Simulator
from .nic import PhysicalNIC

__all__ = ["LossyMedium", "Partition"]


class LossyMedium:
    """Drops a fraction of frames a NIC transmits.

    Deterministic per seed.  Attach *after* the link/switch wiring::

        fault = LossyMedium(nic, rate=0.01, seed=7)
    """

    def __init__(self, nic: PhysicalNIC, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        if not nic.attached:
            raise RuntimeError(f"{nic.name} must be attached to a medium first")
        self.nic = nic
        self.rate = rate
        self.stage = LossStage(nic.sim, rate=rate, seed=seed).install(nic.tx_port)

    @property
    def dropped(self) -> int:
        """Frames dropped (view of the ``chaos.loss.*.dropped`` counter)."""
        return self.stage.dropped

    @property
    def passed(self) -> int:
        """Frames passed through (view of ``chaos.loss.*.passed``)."""
        return self.stage.passed

    def remove(self) -> None:
        """Restore the original medium (order-safe when stacked)."""
        self.stage.remove()


class Partition:
    """A controllable network partition on one NIC's transmit path.

    ``fail()`` blackholes everything the NIC sends; ``heal()`` restores
    it.  Bidirectional partitions use one Partition per side.
    """

    def __init__(self, nic: PhysicalNIC):
        if not nic.attached:
            raise RuntimeError(f"{nic.name} must be attached to a medium first")
        self.nic = nic
        self.stage = PartitionStage(nic.sim).install(nic.tx_port)

    @property
    def failed(self) -> bool:
        """Whether the partition is currently active."""
        return self.stage.failed

    @property
    def blackholed(self) -> int:
        """Frames blackholed (view of ``chaos.partition.*.blackholed``)."""
        return self.stage.blackholed

    def fail(self) -> None:
        """Start blackholing the NIC's transmit path."""
        self.stage.fail()

    def heal(self) -> None:
        """Restore the transmit path."""
        self.stage.heal()

    def fail_for(self, sim: Simulator, duration_ns: int):
        """Generator: partition for a fixed window, then heal."""
        yield from self.stage.fail_for(sim, duration_ns)

    def remove(self) -> None:
        """Detach the partition stage entirely (order-safe when stacked)."""
        self.stage.remove()
