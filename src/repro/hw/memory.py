"""Memory-copy engine.

The paper attributes VNET/P's 10 Gbps large-message ceiling partly to
memory copy bandwidth (Sect. 5.3).  Copies inside one host share the
memory system, so concurrent copies serialize through this engine.
"""

from __future__ import annotations

from ..config import MemoryParams
from ..sim import Resource, Simulator

__all__ = ["MemorySystem"]


class MemorySystem:
    """Shared per-host memory-copy bandwidth."""

    def __init__(self, sim: Simulator, params: MemoryParams, name: str = "mem"):
        self.sim = sim
        self.params = params
        self.name = name
        self._res = Resource(sim, capacity=1, name=name)
        self.bytes_copied = 0

    def copy(self, nbytes: int):
        """Generator: perform one packet copy of ``nbytes``."""
        yield self._res.request()
        try:
            yield self.sim.timeout(self.params.copy_ns(nbytes))
            self.bytes_copied += nbytes
        finally:
            self._res.release()

    def copy_at(self, nbytes: int, bw_Bps: float):
        """Generator: copy at a caller-specified effective bandwidth.

        Used for paths whose copies are cache-cold or double-crossing
        (e.g. the VMM's TXQ->bridge copy) and therefore run well below
        streaming bandwidth, while still contending for the one memory
        system.
        """
        yield self._res.request()
        try:
            yield self.sim.timeout(
                self.params.copy_setup_ns + int(round(nbytes * 1e9 / bw_Bps))
            )
            self.bytes_copied += nbytes
        finally:
            self._res.release()

    def copy_ns(self, nbytes: int) -> int:
        """Pure cost of a copy, for callers that account contention themselves."""
        return self.params.copy_ns(nbytes)
