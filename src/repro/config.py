"""Cost-model parameters for every simulated component.

All timing constants live here, expressed in nanoseconds (or bits/bytes
per second for rates), grouped into frozen dataclasses per subsystem.
Defaults are calibrated so that *native* microbenchmark results match the
paper's testbed (Sect. 5.1: dual quad-core Xeon X3430 hosts, Broadcom
1 Gbps NIC, NetEffect NE020 10 Gbps NIC, direct-connected), and the
virtualization-side constants match the paper's reported VNET/P and
VNET/U overheads.  Calibration anchors are listed in DESIGN.md.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace
from typing import Optional

from .units import Gbps, usec

__all__ = [
    "CPUParams",
    "MemoryParams",
    "NICParams",
    "HostStackParams",
    "VMMParams",
    "VirtioParams",
    "VnetMode",
    "YieldStrategy",
    "VnetTuning",
    "VnetCostParams",
    "VnetUParams",
    "HostParams",
    "BROADCOM_1G",
    "NETEFFECT_10G",
    "MELLANOX_IPOIB",
    "GEMINI_IPOG",
    "XEON_X3430",
    "OPTERON_2376",
    "DEFAULT_MEMORY",
    "DEFAULT_STACK",
    "DEFAULT_VMM",
    "DEFAULT_VIRTIO",
    "DEFAULT_VNET_COSTS",
    "DEFAULT_VNETU",
    "default_tuning",
]


@dataclass(frozen=True)
class CPUParams:
    """A host processor."""

    name: str = "xeon-x3430"
    freq_hz: float = 2.4e9
    cores: int = 4

    def cycles_ns(self, cycles: float) -> int:
        """Convert a cycle count to nanoseconds on this CPU."""
        return int(round(cycles * 1e9 / self.freq_hz))


@dataclass(frozen=True)
class MemoryParams:
    """Memory-copy cost model: fixed setup plus per-byte streaming cost."""

    copy_bw_Bps: float = 6.0e9
    copy_setup_ns: int = 60

    def copy_ns(self, nbytes: int) -> int:
        return self.copy_setup_ns + int(round(nbytes * 1e9 / self.copy_bw_Bps))


@dataclass(frozen=True)
class NICParams:
    """A physical network device (or an IPoIB/IPoG pseudo-Ethernet device).

    ``rx_interrupt_delay_ns`` models interrupt moderation + wakeup latency
    between frame arrival and the host driver running; it dominates native
    small-packet round-trip times.
    """

    name: str
    rate_bps: float
    max_mtu: int
    header_bytes: int = 18            # Ethernet header + FCS
    propagation_ns: int = 500         # cable + PHY
    tx_ring_ns: int = 300             # descriptor handling per frame (tx)
    rx_ring_ns: int = 300             # descriptor handling per frame (rx)
    rx_interrupt_delay_ns: int = 4_000
    tx_queue_frames: int = 512

    def serialize_ns(self, nbytes: int) -> int:
        from .units import tx_time_ns

        return tx_time_ns(nbytes + self.header_bytes, self.rate_bps)


@dataclass(frozen=True)
class HostStackParams:
    """Linux host networking-stack costs (per packet + per byte)."""

    syscall_ns: int = 700             # user->kernel->user round trip
    udp_tx_ns: int = 1_500            # UDP/IP send path, headers + route
    udp_rx_ns: int = 1_800            # UDP/IP receive path + demux
    tcp_tx_ns: int = 2_200
    tcp_rx_ns: int = 2_600
    tcp_ack_tx_ns: int = 600      # pure-ACK transmit path
    tcp_ack_rx_ns: int = 700      # pure-ACK receive path
    icmp_ns: int = 1_200              # ICMP echo handling
    per_byte_checksum_ns: float = 0.10   # checksum+touch cost per byte
    softirq_wakeup_ns: int = 1_500    # driver IRQ -> stack processing
    sched_wakeup_ns: int = 3_000      # blocked thread wakeup (ksoftirqd->app)
    kernel_user_copy_setup_ns: int = 250

    def checksum_ns(self, nbytes: int) -> int:
        return int(round(nbytes * self.per_byte_checksum_ns))


@dataclass(frozen=True)
class VMMParams:
    """Palacios virtualization costs on SVM/VT hardware."""

    exit_ns: int = 1_200              # guest -> VMM world switch
    entry_ns: int = 900               # VMM -> guest world switch
    interrupt_inject_ns: int = 400    # event-injection bookkeeping (plus exit/entry)
    hypercall_handler_ns: int = 300
    halt_poll_check_ns: int = 120     # one iteration of the halt poll loop

    @property
    def round_trip_ns(self) -> int:
        """Cost of a full VM exit + re-entry."""
        return self.exit_ns + self.entry_ns


@dataclass(frozen=True)
class VirtioParams:
    """Palacios virtio-net virtual NIC."""

    ring_size: int = 256
    kick_ns: int = 350                # I/O port write handling (inside exit)
    per_descriptor_ns: int = 150      # ring bookkeeping per packet
    guest_driver_tx_ns: int = 900     # guest-side driver work per packet
    guest_driver_rx_ns: int = 1_100
    irq_wakeup_ns: int = 7_000        # waking a halted VCPU for an injected interrupt
    irq_coalesce_ns: int = 25_000     # back-to-back interrupts within this window
                                      # skip the halt wakeup (NAPI-style polling)


class VnetMode(enum.Enum):
    """Packet-dispatch operating mode (Sect. 4.3)."""

    GUEST_DRIVEN = "guest-driven"
    VMM_DRIVEN = "vmm-driven"
    ADAPTIVE = "adaptive"


class YieldStrategy(enum.Enum):
    """Poll-loop yield strategy (Sect. 4.8)."""

    IMMEDIATE = "immediate"
    TIMED = "timed"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class VnetTuning:
    """Table 1: the user-visible VNET/P tuning parameters."""

    mode: VnetMode = VnetMode.ADAPTIVE
    alpha_l: float = 1e3              # packets/s, VMM->guest switch bound
    alpha_u: float = 1e4              # packets/s, guest->VMM switch bound
    window_ns: int = usec(5_000)      # rate-estimation window (5 ms)
    n_dispatchers: int = 1
    yield_strategy: YieldStrategy = YieldStrategy.IMMEDIATE
    t_sleep_ns: int = usec(100)       # timed-yield sleep quantum
    t_nowork_ns: int = usec(50)       # adaptive-yield threshold
    routing_cache: bool = True
    # Per-flow fast-path cache (repro.vnet.flowcache, ONCache-style).
    # Default on; the env override lets CI A/B the datapath without
    # code changes (REPRO_FLOW_CACHE=0 disables).  flow_cache_hit_ns
    # None = timing-neutral (hit charges the warm full-path cost;
    # golden observables bit-identical); an int models a genuinely
    # cheaper cached path and changes simulated time (ablations only).
    flow_cache: bool = field(
        default_factory=lambda: os.environ.get("REPRO_FLOW_CACHE", "1") != "0"
    )
    flow_cache_hit_ns: Optional[int] = None
    # Hybrid fluid/packet simulation (repro.sim.fluid): steady bulk TCP
    # flows are advanced analytically in large sim-time strides instead
    # of packet by packet.  Default off (the packet path is the golden
    # reference); REPRO_FLUID=1 enables it for benches and CI A/B runs.
    fluid: bool = field(
        default_factory=lambda: os.environ.get("REPRO_FLUID", "0") != "0"
    )
    fluid_min_bytes: int = 128 * 1024   # pending bytes before capture pays off
    fluid_check_ns: int = usec(200)     # steady-state probe window
    fluid_max_stride_ns: int = usec(1_000)  # stride ceiling (1 ms)
    fluid_min_stride_ns: int = usec(50)     # don't capture below this horizon
    fluid_rate_tolerance: float = 0.2   # consecutive-window rate stability
    vnet_mtu: int = 9000              # MTU advertised to the guest
    # VNET/P+ techniques (Cui et al., SC'12; Sect. 6.3 notes these are
    # being back-ported into the Linux version):
    cut_through: bool = False         # forward before the packet copy completes
    optimistic_interrupts: bool = False  # inject the irq while data still moves


@dataclass(frozen=True)
class VnetCostParams:
    """Per-packet processing costs inside the VNET/P core and bridge."""

    route_cache_hit_ns: int = 180
    route_table_per_entry_ns: int = 90
    dispatch_ns: int = 450            # dequeue, demux, hand-off bookkeeping
    copy_bw_Bps: float = 1.1e9        # effective bandwidth of the in-VMM packet copy
    idle_wakeup_ns: int = 7_000       # waking an idle dispatcher/bridge thread (IPI + sched)
    encap_ns: int = 500               # UDP header construction
    decap_ns: int = 450
    encap_header_bytes: int = 42      # outer Ethernet+IP+UDP headers
    bridge_tx_ns: int = 800           # bridge kernel-module send path
    bridge_rx_ns: int = 900
    frag_per_fragment_ns: int = 900
    reasm_per_fragment_ns: int = 1_100
    cut_through_ns: int = 600         # header peek + ring-slot reservation when
                                      # the body copy is taken off the serial path


@dataclass(frozen=True)
class VnetUParams:
    """User-level VNET/U daemon costs (the baseline, Sect. 3).

    Each packet crosses the kernel/user boundary multiple times (guest ->
    VMM -> host tap -> daemon -> host socket, and symmetrically on
    receive), each crossing paying a transition plus a copy.
    """

    transitions_per_packet: int = 4
    transition_ns: int = 1_800
    select_overhead_ns: int = 2_500   # poll/select dispatch per packet
    daemon_process_ns: int = 5_000    # routing + encapsulation at user level
    copy_bw_Bps: float = 1.2e9        # user-level copies are not streaming-optimised
    copies_per_packet: int = 3
    sched_latency_ns: int = 180_000   # daemon scheduling delay per hop (dominates latency)


@dataclass(frozen=True)
class OsNoiseParams:
    """Host OS scheduling noise.

    Commodity Linux adds unpredictable microseconds to every thread
    wakeup (timer ticks, RCU, kworkers); lightweight kernels like Kitten
    are engineered to have almost none, which is why the Kitten VNET/P
    shows "very little jitter in latency compared to the Linux version"
    (Sect. 6.3).  Noise is uniform in [0, jitter_max_ns] per wakeup,
    drawn from a per-host deterministic stream.
    """

    jitter_max_ns: int = 6_000


DEFAULT_NOISE = OsNoiseParams()
KITTEN_NOISE = OsNoiseParams(jitter_max_ns=150)
__all__.extend(["OsNoiseParams", "DEFAULT_NOISE", "KITTEN_NOISE"])


@dataclass(frozen=True)
class MPIParams:
    """OpenMPI-style library costs (Sect. 5.3 runs OpenMPI 1.3 over TCP).

    ``copy_bw_Bps`` is the user-buffer <-> transport copy each side pays
    per message; it is what pulls native MPI bandwidth below raw TCP
    throughput (Fig. 11 vs Fig. 8).
    """

    overhead_ns: int = 2_500          # per-call matching/progress engine cost
    copy_bw_Bps: float = 3.4e9        # per-side message copy
    copy_bw_virtual_Bps: float = 2.3e9  # same copy inside a guest: contends with
                                        # the VMM's packet copies for the memory
                                        # system (Sect. 5.3's "memory copy
                                        # bandwidth limited" interpretation)
    shm_latency_ns: int = 1_200       # intra-node (shared-memory BTL) latency
    shm_bw_Bps: float = 2.8e9         # intra-node bandwidth per message


DEFAULT_MPI = MPIParams()
__all__.extend(["MPIParams", "DEFAULT_MPI"])


@dataclass(frozen=True)
class HostParams:
    """Everything describing one physical host."""

    cpu: CPUParams
    memory: MemoryParams
    stack: HostStackParams
    vmm: VMMParams
    virtio: VirtioParams
    vnet_costs: VnetCostParams
    vnetu: VnetUParams
    noise: OsNoiseParams = DEFAULT_NOISE
    name: str = "host"

    def with_(self, **kw) -> "HostParams":
        return replace(self, **kw)


# --- Named hardware ----------------------------------------------------------

BROADCOM_1G = NICParams(
    name="broadcom-netxtreme2-1g",
    rate_bps=1 * Gbps,
    max_mtu=1500,
    rx_interrupt_delay_ns=50_000,     # 1G NICs coalesce aggressively
    tx_ring_ns=500,
    rx_ring_ns=500,
)

NETEFFECT_10G = NICParams(
    name="neteffect-ne020-10g",
    rate_bps=10 * Gbps,
    max_mtu=9000,
    rx_interrupt_delay_ns=15_500,
    tx_ring_ns=250,
    rx_ring_ns=250,
)

# IPoIB pseudo-Ethernet over Mellanox ConnectX DDR/QDR.  The rate is the
# effective IPoIB throughput ceiling, not the signalling rate; IPoIB in
# connected mode on this hardware tops out well below the link rate.
MELLANOX_IPOIB = NICParams(
    name="mellanox-ipoib",
    rate_bps=6.8 * Gbps,
    max_mtu=65520,
    header_bytes=44,                  # IPoIB encapsulation overhead
    propagation_ns=900,
    tx_ring_ns=700,
    rx_ring_ns=700,
    rx_interrupt_delay_ns=9_000,
)

# Cray Gemini IPoG virtual Ethernet.  Theoretical 40 Gbps; the IPoG TCP
# path is far below that (the paper measures 1.6 GB/s for VNET/P and
# attributes part of the gap to a precision-timing problem).
GEMINI_IPOG = NICParams(
    name="cray-gemini-ipog",
    rate_bps=22 * Gbps,
    max_mtu=64000,
    header_bytes=32,
    propagation_ns=1_500,             # multi-hop torus average
    tx_ring_ns=900,
    rx_ring_ns=900,
    rx_interrupt_delay_ns=7_000,
)

XEON_X3430 = CPUParams(name="xeon-x3430", freq_hz=2.4e9, cores=4)
OPTERON_2376 = CPUParams(name="opteron-2376", freq_hz=2.3e9, cores=8)

DEFAULT_MEMORY = MemoryParams()
DEFAULT_STACK = HostStackParams()
DEFAULT_VMM = VMMParams()
DEFAULT_VIRTIO = VirtioParams()
DEFAULT_VNET_COSTS = VnetCostParams()
DEFAULT_VNETU = VnetUParams()


def default_tuning(**kw) -> VnetTuning:
    """Table 1 defaults, overridable per experiment."""
    return replace(VnetTuning(), **kw)


def default_host(name: str = "host", cpu: CPUParams = XEON_X3430) -> HostParams:
    """A host with the paper's testbed defaults."""
    return HostParams(
        cpu=cpu,
        memory=DEFAULT_MEMORY,
        stack=DEFAULT_STACK,
        vmm=DEFAULT_VMM,
        virtio=DEFAULT_VIRTIO,
        vnet_costs=DEFAULT_VNET_COSTS,
        vnetu=DEFAULT_VNETU,
        name=name,
    )


__all__.append("default_host")
