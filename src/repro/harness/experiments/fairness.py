"""Fairness experiments: competing Reno flows over a shared bottleneck.

The congestion-control counterpart to the resilience family: instead of
asking "does the overlay survive faults?", this family asks "does the
Reno machinery (:mod:`repro.proto.tcp`) share a bottleneck the way TCP
should?".  Four scenarios, all over a VNET/P mesh whose hosts carry the
paper's 1 Gbps Broadcom NICs so the receiving host's access link is a
genuine tail-drop bottleneck:

* **fixed-bandwidth utilization** — two (and four) symmetric flows from
  distinct source hosts into one sink host.  Scored with Jain's
  Fairness Index over per-flow goodputs plus bottleneck utilization
  (:mod:`repro.obs.fairness`); the CI ``fairness-suite`` job and the
  benchgate ``fairness`` section pin JFI ≥ 0.95 and utilization ≥ 0.80.
* **varying-loss goodput** — one flow under Bernoulli loss windows of
  increasing rate: goodput must degrade monotonically-ish and the
  retransmit counters must show fast retransmits doing the work (RTO
  recoveries stay rare until loss is heavy).
* **asymmetric RTT** — two symmetric flows, but one sender's delivery
  path gains a fixed :class:`~repro.chaos.DelayStage` latency, so its
  RTT is strictly longer.  Reno's window dynamics favour the short-RTT
  flow; the JFI lands below the symmetric case but must stay finite and
  bit-reproducible.
* **background UDP** — one Reno flow sharing the sink link with a paced
  constant-rate UDP blast that does not back off.  TCP keeps the
  leftover share; JFI is computed across both flows.

Per-flow goodputs are measured at the receivers (delivered in-order
bytes) over a window that starts after a warmup, so slow-start
transients do not dilute steady-state utilization.  Every scenario
publishes ``fairness.<scenario>.{jfi,utilization,utilization_raw,
utilization_estimated,score}`` gauges, which ride the experiment
engine's metrics capture into CI diffs and
:class:`~repro.obs.runinfo.RunArtifact` bundles.  Under ``REPRO_FLUID=1``
the background-UDP scenario's raw utilization can exceed 1.0 (the fluid
model over-grants the captured flow because it cannot see packet-level
UDP sharing the link); the published utilization is clamped and the
``estimated`` flag marks those rows.
"""

from __future__ import annotations

from ... import units
from ...chaos import DelayStage, FaultSchedule
from ...config import BROADCOM_1G
from ...exec import Engine, Point, run_points
from ...obs.context import Observability
from ...obs.fairness import publish_fairness, score_flows
from ...proto.base import Blob
from ...topo import TopoSpec
from ..report import ExperimentResult, Table
from ..testbed import build_topo

__all__ = ["fairness"]

# TCP flow i listens on FLOW_PORT_BASE + i on the sink; the UDP blast
# uses UDP_PORT.  Clear of encap (5002), ttcp (5010), probes (5020).
FLOW_PORT_BASE = 5100
UDP_PORT = 5130

#: Line rate of the shared access link every scenario contends for.
BOTTLENECK_BPS = BROADCOM_1G.rate_bps


def _run_competing_flows(
    tb,
    flow_pairs,
    horizon_ns: int,
    warmup_ns: int,
    udp_pairs=(),
    udp_gap_ns: int = 0,
    udp_payload: int = 1400,
):
    """Run TCP flows (src_idx, dst_idx) + optional paced UDP blasts.

    Returns ``(tcp_bytes, udp_bytes)``: per-flow bytes delivered inside
    the ``[warmup_ns, horizon_ns]`` measurement window, in ``flow_pairs``
    order then ``udp_pairs`` order.
    """
    sim = tb.sim
    server_conns: dict[int, object] = {}
    udp_counts = [0] * len(udp_pairs)

    def server(dst, port, key):
        listener = dst.stack.tcp_listen(port)
        conn = yield from listener.accept()
        server_conns[key] = conn
        while True:
            yield from conn.recv(1 << 30)

    def client(src, dst, port):
        conn = yield from src.stack.tcp_connect(dst.ip, port)
        while True:
            yield from conn.send(256 * units.KIB)

    for i, (s, d) in enumerate(flow_pairs):
        src, dst = tb.endpoints[s], tb.endpoints[d]
        port = FLOW_PORT_BASE + i
        sim.process(server(dst, port, i), name=f"fair.server.{i}")
        sim.process(client(src, dst, port), name=f"fair.client.{i}")

    def udp_rx(dst, port, key):
        sock = dst.stack.udp_socket(port)
        while True:
            yield from sock.recv()
            if sim.now >= warmup_ns:
                udp_counts[key] += udp_payload

    def udp_tx(src, dst, port):
        sock = src.stack.udp_socket()
        while True:
            yield from sock.sendto(Blob(udp_payload), dst.ip, port)
            if udp_gap_ns:
                yield sim.timeout(udp_gap_ns)

    for i, (s, d) in enumerate(udp_pairs):
        src, dst = tb.endpoints[s], tb.endpoints[d]
        sim.process(udp_rx(dst, UDP_PORT + i, i), name=f"fair.udp-rx.{i}")
        sim.process(udp_tx(src, dst, UDP_PORT + i), name=f"fair.udp-tx.{i}")

    baseline: dict[int, int] = {}

    def sampler():
        yield sim.timeout(warmup_ns)
        for key, conn in server_conns.items():
            baseline[key] = conn.bytes_delivered

    sim.process(sampler(), name="fair.sampler")
    sim.run(until=sim.timeout(horizon_ns))

    tcp_bytes = [
        server_conns[i].bytes_delivered - baseline.get(i, 0)
        if i in server_conns
        else 0
        for i in range(len(flow_pairs))
    ]
    return tcp_bytes, list(udp_counts)


def _fixed_bw_point(
    label: str,
    n_flows: int,
    horizon_ns: int,
    warmup_ns: int,
    topo: TopoSpec,
) -> dict:
    """``n_flows`` symmetric Reno flows into one sink host; JFI + utilization."""
    tb = build_topo(topo, nic_params=BROADCOM_1G)
    sink = topo.n_hosts - 1
    pairs = [(i, sink) for i in range(n_flows)]
    tcp_bytes, _ = _run_competing_flows(tb, pairs, horizon_ns, warmup_ns)
    window = horizon_ns - warmup_ns
    score = publish_fairness(
        Observability.of(tb.sim).metrics,
        score_flows(f"fixed_bw.{n_flows}", tcp_bytes, window, BOTTLENECK_BPS),
    )
    return {
        "config": label,
        "flows": n_flows,
        "per_flow_mbps": [round(b * 8e3 / window, 1) for b in tcp_bytes],
        "jfi": score.jfi,
        "utilization": score.utilization,
        "score": score.score,
    }


def _varying_loss_point(
    label: str,
    rate: float,
    seed: int,
    horizon_ns: int,
    warmup_ns: int,
    topo: TopoSpec,
) -> dict:
    """One Reno flow under Bernoulli loss; goodput + recovery counters."""
    tb = build_topo(topo, nic_params=BROADCOM_1G)
    if rate > 0.0:
        sched = FaultSchedule(tb.sim, name="fairness-loss")
        sched.loss(tb.hosts[0].nic.tx_port, start_ns=0, stop_ns=None,
                   rate=rate, seed=seed)
        sched.start()
    tcp_bytes, _ = _run_competing_flows(tb, [(0, 1)], horizon_ns, warmup_ns)
    window = horizon_ns - warmup_ns
    score = publish_fairness(
        Observability.of(tb.sim).metrics,
        score_flows(f"varying_loss.{label}", tcp_bytes, window, BOTTLENECK_BPS),
    )
    conns = [
        c
        for ep in tb.endpoints
        for c in ep.stack._tcp_conns.values()
        if c.remote_port == FLOW_PORT_BASE  # sender side only
    ]
    fast = sum(c.fast_retransmits for c in conns)
    retx = sum(c.retransmits for c in conns)
    return {
        "config": label,
        "loss_pct": rate * 100.0,
        "goodput_mbps": tcp_bytes[0] * 8e3 / window,
        "utilization": score.utilization,
        "fast_retransmits": fast,
        "retransmits": retx,
    }


def _asymmetric_rtt_point(
    label: str,
    delay_ns: int,
    horizon_ns: int,
    warmup_ns: int,
    topo: TopoSpec,
) -> dict:
    """Two flows, one with ``delay_ns`` extra on its delivery path."""
    tb = build_topo(topo, nic_params=BROADCOM_1G)
    if delay_ns > 0:
        # Everything delivered *to* h1 (the long-RTT sender) — i.e. its
        # returning ACK stream — arrives delay_ns late, lengthening that
        # flow's control loop without touching the shared data direction.
        DelayStage(tb.sim, delay_ns=delay_ns).install(tb.hosts[1].nic.rx_port)
    sink = topo.n_hosts - 1
    tcp_bytes, _ = _run_competing_flows(tb, [(0, sink), (1, sink)],
                                        horizon_ns, warmup_ns)
    window = horizon_ns - warmup_ns
    score = publish_fairness(
        Observability.of(tb.sim).metrics,
        score_flows(f"asymmetric_rtt.{label}", tcp_bytes, window, BOTTLENECK_BPS),
    )
    return {
        "config": label,
        "rtt_delta_us": delay_ns / 1_000.0,
        "per_flow_mbps": [round(b * 8e3 / window, 1) for b in tcp_bytes],
        "jfi": score.jfi,
        "utilization": score.utilization,
        "score": score.score,
    }


def _background_udp_point(
    label: str,
    udp_fraction: float,
    udp_payload: int,
    horizon_ns: int,
    warmup_ns: int,
    topo: TopoSpec,
) -> dict:
    """One Reno flow vs a paced UDP blast at ``udp_fraction`` of line rate."""
    tb = build_topo(topo, nic_params=BROADCOM_1G)
    sink = topo.n_hosts - 1
    gap_ns = (
        int(udp_payload * 8 * 1e9 / (udp_fraction * BOTTLENECK_BPS))
        if udp_fraction > 0.0
        else 0
    )
    tcp_bytes, udp_bytes = _run_competing_flows(
        tb, [(0, sink)], horizon_ns, warmup_ns,
        udp_pairs=[(1, sink)], udp_gap_ns=gap_ns, udp_payload=udp_payload,
    )
    window = horizon_ns - warmup_ns
    flows = [tcp_bytes[0], udp_bytes[0]]
    score = publish_fairness(
        Observability.of(tb.sim).metrics,
        score_flows(f"background_udp.{label}", flows, window, BOTTLENECK_BPS),
    )
    return {
        "config": label,
        "udp_offered_pct": udp_fraction * 100.0,
        "tcp_mbps": tcp_bytes[0] * 8e3 / window,
        "udp_mbps": udp_bytes[0] * 8e3 / window,
        "jfi": score.jfi,
        "utilization": score.utilization,
        "utilization_estimated": score.utilization_estimated,
        "score": score.score,
    }


def fairness(quick: bool = False, engine: Engine | None = None) -> ExperimentResult:
    """Reno fairness: utilization, loss response, RTT bias, UDP interference."""
    horizon = (24 if quick else 60) * units.MS
    warmup = (6 if quick else 12) * units.MS

    def mesh(n: int) -> TopoSpec:
        return TopoSpec(kind="mesh", n_hosts=n)

    points = [
        Point(
            "fairness",
            f"fixed_bw.{n}",
            _fixed_bw_point,
            {"label": f"{n} symmetric flows", "n_flows": n,
             "horizon_ns": horizon, "warmup_ns": warmup,
             "topo": mesh(n + 1)},
        )
        for n in ((2,) if quick else (2, 4))
    ]
    loss_rates = (0.0, 0.005, 0.02) if quick else (0.0, 0.005, 0.01, 0.02, 0.05)
    points += [
        Point(
            "fairness",
            f"varying_loss.{rate:g}",
            _varying_loss_point,
            {"label": f"loss {rate * 100:g}%", "rate": rate, "seed": 2027,
             "horizon_ns": horizon, "warmup_ns": warmup, "topo": mesh(2)},
        )
        for rate in loss_rates
    ]
    points += [
        Point(
            "fairness",
            f"asymmetric_rtt.{delay_us}us",
            _asymmetric_rtt_point,
            {"label": f"+{delay_us} us RTT", "delay_ns": delay_us * 1_000,
             "horizon_ns": horizon, "warmup_ns": warmup, "topo": mesh(3)},
        )
        for delay_us in ((0, 200) if quick else (0, 100, 200, 400))
    ]
    points += [
        Point(
            "fairness",
            f"background_udp.{int(frac * 100)}",
            _background_udp_point,
            {"label": f"UDP at {int(frac * 100)}% line rate",
             "udp_fraction": frac, "udp_payload": 1400,
             "horizon_ns": horizon, "warmup_ns": warmup, "topo": mesh(3)},
        )
        for frac in ((0.5,) if quick else (0.3, 0.5, 0.8))
    ]
    rows = run_points(points, engine)

    bw_table = Table(
        ["configuration", "per-flow (Mbps)", "JFI", "utilization", "score"],
        title="Fixed bandwidth: symmetric Reno flows into one 1G sink",
    )
    loss_table = Table(
        ["configuration", "goodput (Mbps)", "utilization",
         "fast rtx", "total rtx"],
        title="Varying loss: single-flow Reno goodput (1G, Bernoulli loss)",
    )
    rtt_table = Table(
        ["configuration", "per-flow (Mbps)", "JFI", "utilization", "score"],
        title="Asymmetric RTT: short- vs long-control-loop Reno flows",
    )
    udp_table = Table(
        ["configuration", "tcp (Mbps)", "udp (Mbps)", "JFI", "utilization",
         "est?"],
        title="Background UDP: Reno sharing the sink link with a paced blast",
    )
    result = ExperimentResult(
        "fairness", "Reno congestion control under contention",
        tables=[bw_table, loss_table, rtt_table, udp_table],
    )
    for row in rows:
        if "flows" in row:
            bw_table.add(row["config"], "/".join(map(str, row["per_flow_mbps"])),
                         row["jfi"], row["utilization"], row["score"])
        elif "loss_pct" in row:
            loss_table.add(row["config"], row["goodput_mbps"],
                           row["utilization"], row["fast_retransmits"],
                           row["retransmits"])
        elif "rtt_delta_us" in row:
            rtt_table.add(row["config"], "/".join(map(str, row["per_flow_mbps"])),
                          row["jfi"], row["utilization"], row["score"])
        else:
            udp_table.add(row["config"], row["tcp_mbps"], row["udp_mbps"],
                          row["jfi"], row["utilization"],
                          "yes" if row["utilization_estimated"] else "no")
        result.rows.append(row)
    result.notes.append(
        "goodputs are measured at the receivers over the post-warmup "
        "window, so slow start does not dilute steady-state utilization"
    )
    result.notes.append(
        "JFI = (Σx)²/(n·Σx²) over per-flow goodputs; score = JFI × "
        "bottleneck utilization (repro.obs.fairness); the fairness-suite "
        "CI job pins symmetric JFI ≥ 0.95 and utilization ≥ 0.80"
    )
    result.notes.append(
        "the asymmetric-RTT rows use chaos.DelayStage on the long flow's "
        "ACK path: deterministic added latency, not reordering"
    )
    return result
