"""Cluster experiments: HPCC latency-bandwidth (Fig. 12), HPCC
applications (Fig. 13), and the NAS table (Fig. 14)."""

from __future__ import annotations

from ...apps.hpcc import (
    flow_world,
    run_latency_bandwidth,
    run_mpifft,
    run_random_access,
)
from ...apps.npb import FIG14_CELLS, run_table
from ..calibrate import flow_model_for
from ..report import ExperimentResult, Table

__all__ = ["fig12", "fig13", "fig14", "extra_hpcc", "extra_imb_collectives", "PROC_COUNTS"]

PROC_COUNTS = (8, 12, 16, 20, 24)


def _latbw_tables(configs: list[str], procs, title_suffix: str) -> ExperimentResult:
    lat = Table(
        ["procs"] + [f"{c} pp-lat (us)" for c in configs]
        + [f"{c} rring-lat (us)" for c in configs],
        title=f"Latency ({title_suffix})",
    )
    bw = Table(
        ["procs"] + [f"{c} pp-bw (MB/s)" for c in configs]
        + [f"{c} rring-bw (MB/s)" for c in configs],
        title=f"Bandwidth ({title_suffix}; ring bw summed over processes)",
    )
    result = ExperimentResult("fig12", f"HPCC latency-bandwidth ({title_suffix})", tables=[lat, bw])
    for p in procs:
        cells = {}
        for cfg in configs:
            model = flow_model_for(cfg)
            cells[cfg] = run_latency_bandwidth(lambda m=model, p=p: flow_world(m, p), p)
        lat.add(
            p,
            *[cells[c].pingpong_lat_us for c in configs],
            *[cells[c].random_ring_lat_us for c in configs],
        )
        bw.add(
            p,
            *[cells[c].pingpong_bw_MBps for c in configs],
            *[cells[c].random_ring_bw_MBps for c in configs],
        )
        result.rows.append({"procs": p, **{c: vars(cells[c]) for c in configs}})
    return result


def fig12(procs=PROC_COUNTS, quick: bool = False) -> ExperimentResult:
    """Fig. 12: HPCC latency-bandwidth, 1G + 10G, 8-24 processes."""
    if quick:
        procs = (8, 24)
    result = _latbw_tables(
        ["native-1g", "vnetp-1g", "native-10g", "vnetp-10g"], procs, "Ethernet"
    )
    result.notes.append(
        "paper anchors: 1G bw ~ native with 1.2-2x latency; "
        "10G bw 60-75 % of native with 2-3x latency; scaling tracks native"
    )
    return result


def fig13(procs=PROC_COUNTS, quick: bool = False) -> ExperimentResult:
    """Fig. 13: HPCC MPIRandomAccess (GUPs) and MPIFFT (Gflops), 10G."""
    if quick:
        procs = (8, 24)
    table = Table(
        ["procs", "Native GUPs", "VNET/P GUPs", "ratio", "Native Gflops", "VNET/P Gflops", "ratio"],
        title="HPCC application benchmarks, 10G",
    )
    result = ExperimentResult("fig13", "HPCC MPIRandomAccess + MPIFFT", tables=[table])
    mn = flow_model_for("native-10g")
    mv = flow_model_for("vnetp-10g")
    for p in procs:
        gn = run_random_access(flow_world(mn, p))
        gv = run_random_access(flow_world(mv, p))
        fn = run_mpifft(flow_world(mn, p))
        fv = run_mpifft(flow_world(mv, p))
        table.add(p, gn.gups, gv.gups, gv.gups / gn.gups, fn.gflops, fv.gflops, fv.gflops / fn.gflops)
        result.rows.append(
            {
                "procs": p,
                "gups_native": gn.gups,
                "gups_vnetp": gv.gups,
                "fft_native": fn.gflops,
                "fft_vnetp": fv.gflops,
            }
        )
    result.notes.append(
        "paper anchors: RandomAccess 65-70 % of native, FFT 60-70 %, similar scaling"
    )
    return result


_FIG14_QUICK_CELLS = ["ep.B.16", "mg.B.16", "cg.B.16", "ft.B.16", "is.B.16",
                      "lu.B.16", "sp.B.16", "bt.B.16"]


def fig14(cells=None, quick: bool = False) -> ExperimentResult:
    """Fig. 14: the NAS Parallel Benchmark table (Mop/s, four configs)."""
    if cells is None:
        cells = _FIG14_QUICK_CELLS if quick else FIG14_CELLS
    models = {
        c: flow_model_for(c)
        for c in ("native-1g", "vnetp-1g", "native-10g", "vnetp-10g")
    }
    table = Table(
        [
            "cell",
            "Native-1G", "VNET/P-1G", "%1G", "paper %1G",
            "Native-10G", "VNET/P-10G", "%10G", "paper %10G",
        ],
        title="NAS Parallel Benchmarks (Mop/s total)",
    )
    result = ExperimentResult("fig14", "NAS parallel benchmark table", tables=[table])
    for row in run_table(models, cells=cells):
        table.add(
            row.label,
            row.native_1g, row.vnetp_1g,
            f"{row.ratio_1g:.0%}", f"{row.paper_ratio_1g:.0%}",
            row.native_10g, row.vnetp_10g,
            f"{row.ratio_10g:.0%}", f"{row.paper_ratio_10g:.0%}",
        )
        result.rows.append(
            {
                "cell": row.label,
                "native_1g": row.native_1g,
                "vnetp_1g": row.vnetp_1g,
                "native_10g": row.native_10g,
                "vnetp_10g": row.vnetp_10g,
                "ratio_1g": row.ratio_1g,
                "ratio_10g": row.ratio_10g,
                "paper_ratio_1g": row.paper_ratio_1g,
                "paper_ratio_10g": row.paper_ratio_10g,
            }
        )
    result.notes.append(
        "each (benchmark, class) is calibrated only at its largest Native-10G cell; "
        "all other cells are model predictions"
    )
    return result


def extra_hpcc(procs=(16,), quick: bool = False) -> ExperimentResult:
    """Beyond the paper: the remaining HPCC components (PTRANS, HPL,
    EP-STREAM, EP-DGEMM), native vs VNET/P at 10G.

    Completes the HPCC suite the paper samples from; the expected shape
    follows each benchmark's communication intensity: PTRANS (pure bulk
    transfer) degrades to roughly the bandwidth ratio, HPL is mostly
    compute-bound, STREAM/DGEMM are node-local and unaffected.
    """
    from ...apps.hpcc import run_dgemm, run_hpl, run_ptrans, run_stream

    table = Table(
        ["benchmark", "metric", "Native", "VNET/P", "ratio"],
        title="Remaining HPCC components (10G, 16 processes)",
    )
    result = ExperimentResult("extra-hpcc", "full HPCC suite components", tables=[table])
    mn = flow_model_for("native-10g")
    mv = flow_model_for("vnetp-10g")
    p = procs[0]
    rows = [
        ("PTRANS", "GB/s", lambda m: run_ptrans(flow_world(m, p)).GBps),
        ("HPL", "Gflop/s", lambda m: run_hpl(flow_world(m, p)).gflops),
        ("EP-STREAM", "GB/s", lambda m: run_stream(flow_world(m, p)).triad_GBps_total),
        ("EP-DGEMM", "Gflop/s", lambda m: run_dgemm(flow_world(m, p)).gflops_total),
    ]
    for name, metric, runner in rows:
        native = runner(mn)
        vnetp = runner(mv)
        table.add(name, metric, native, vnetp, vnetp / native)
        result.rows.append(
            {"benchmark": name, "native": native, "vnetp": vnetp, "ratio": vnetp / native}
        )
    result.notes.append(
        "expected ordering: STREAM = DGEMM = 100 % > HPL > PTRANS"
    )
    return result


def extra_imb_collectives(quick: bool = False) -> ExperimentResult:
    """Beyond the paper: IMB collective benchmarks, native vs VNET/P.

    The paper measures point-to-point MPI only (Figs. 10-11); collectives
    are where overlay latency compounds (log-p rounds for barriers and
    allreduce, p-1 rounds for alltoall).
    """
    from ...apps.imb_collectives import run_collective

    procs = 16
    size = 16 * 1024
    table = Table(
        ["collective", "Native (us)", "VNET/P (us)", "ratio"],
        title=f"IMB collectives, {procs} processes, {size} B payloads (10G)",
    )
    result = ExperimentResult(
        "extra-imb", "IMB collective benchmarks", tables=[table]
    )
    mn = flow_model_for("native-10g")
    mv = flow_model_for("vnetp-10g")
    reps = 5 if quick else 12
    for name in ("Barrier", "Bcast", "Allreduce", "Allgather", "Alltoall", "Exchange"):
        native = run_collective(flow_world(mn, procs), name, size, repetitions=reps)
        vnetp = run_collective(flow_world(mv, procs), name, size, repetitions=reps)
        table.add(name, native.avg_us, vnetp.avg_us, vnetp.avg_us / native.avg_us)
        result.rows.append(
            {
                "collective": name,
                "native_us": native.avg_us,
                "vnetp_us": vnetp.avg_us,
                "ratio": vnetp.avg_us / native.avg_us,
            }
        )
    result.notes.append(
        "expected: every collective slows by 1.5-2.5x at this size — "
        "between the latency multiple and the bandwidth ratio"
    )
    return result
