"""Cluster experiments: HPCC latency-bandwidth (Fig. 12), HPCC
applications (Fig. 13), and the NAS table (Fig. 14).

Flow-level points call :func:`~repro.harness.calibrate.flow_model_for`
*inside* the point function: calibration is deterministic across
processes (pinned by a test) and memoised per process, so pool workers
warm their own calibration caches and still produce values identical to
a serial run.
"""

from __future__ import annotations

from ...apps.hpcc import (
    flow_world,
    run_latency_bandwidth,
    run_mpifft,
    run_random_access,
)
from ...apps.npb import FIG14_CELLS, run_table
from ...exec import Engine, Point, run_points
from ..calibrate import flow_model_for
from ..report import ExperimentResult, Table

__all__ = ["fig12", "fig13", "fig14", "extra_hpcc", "extra_imb_collectives", "PROC_COUNTS"]

PROC_COUNTS = (8, 12, 16, 20, 24)

_FIG14_MODEL_CONFIGS = ("native-1g", "vnetp-1g", "native-10g", "vnetp-10g")


def _latbw_point(cfg: str, procs: int) -> dict:
    """One HPCC latency-bandwidth cell: (configuration, process count)."""
    model = flow_model_for(cfg)
    r = run_latency_bandwidth(lambda: flow_world(model, procs), procs)
    return dict(vars(r))


def _latbw_tables(experiment_id: str, configs: list[str], procs, title_suffix: str,
                  engine: Engine | None) -> ExperimentResult:
    points = [
        Point(experiment_id, f"p{p}.{cfg}", _latbw_point, {"cfg": cfg, "procs": p})
        for p in procs
        for cfg in configs
    ]
    values = run_points(points, engine)
    lat = Table(
        ["procs"] + [f"{c} pp-lat (us)" for c in configs]
        + [f"{c} rring-lat (us)" for c in configs],
        title=f"Latency ({title_suffix})",
    )
    bw = Table(
        ["procs"] + [f"{c} pp-bw (MB/s)" for c in configs]
        + [f"{c} rring-bw (MB/s)" for c in configs],
        title=f"Bandwidth ({title_suffix}; ring bw summed over processes)",
    )
    result = ExperimentResult(
        experiment_id, f"HPCC latency-bandwidth ({title_suffix})", tables=[lat, bw]
    )
    for i, p in enumerate(procs):
        cells = {
            cfg: values[i * len(configs) + j] for j, cfg in enumerate(configs)
        }
        lat.add(
            p,
            *[cells[c]["pingpong_lat_us"] for c in configs],
            *[cells[c]["random_ring_lat_us"] for c in configs],
        )
        bw.add(
            p,
            *[cells[c]["pingpong_bw_MBps"] for c in configs],
            *[cells[c]["random_ring_bw_MBps"] for c in configs],
        )
        result.rows.append({"procs": p, **cells})
    return result


def fig12(procs=PROC_COUNTS, quick: bool = False,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 12: HPCC latency-bandwidth, 1G + 10G, 8-24 processes."""
    if quick:
        procs = (8, 24)
    result = _latbw_tables(
        "fig12", ["native-1g", "vnetp-1g", "native-10g", "vnetp-10g"],
        procs, "Ethernet", engine,
    )
    result.notes.append(
        "paper anchors: 1G bw ~ native with 1.2-2x latency; "
        "10G bw 60-75 % of native with 2-3x latency; scaling tracks native"
    )
    return result


def _hpcc_apps_point(cfg: str, procs: int) -> dict:
    """One HPCC application cell: RandomAccess GUPs + MPIFFT Gflops."""
    model = flow_model_for(cfg)
    gups = run_random_access(flow_world(model, procs))
    fft = run_mpifft(flow_world(model, procs))
    return {"gups": gups.gups, "gflops": fft.gflops}


def fig13(procs=PROC_COUNTS, quick: bool = False,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 13: HPCC MPIRandomAccess (GUPs) and MPIFFT (Gflops), 10G."""
    if quick:
        procs = (8, 24)
    points = [
        Point("fig13", f"p{p}.{cfg}", _hpcc_apps_point, {"cfg": cfg, "procs": p})
        for p in procs
        for cfg in ("native-10g", "vnetp-10g")
    ]
    values = run_points(points, engine)
    table = Table(
        ["procs", "Native GUPs", "VNET/P GUPs", "ratio", "Native Gflops", "VNET/P Gflops", "ratio"],
        title="HPCC application benchmarks, 10G",
    )
    result = ExperimentResult("fig13", "HPCC MPIRandomAccess + MPIFFT", tables=[table])
    for i, p in enumerate(procs):
        n, v = values[2 * i], values[2 * i + 1]
        table.add(p, n["gups"], v["gups"], v["gups"] / n["gups"],
                  n["gflops"], v["gflops"], v["gflops"] / n["gflops"])
        result.rows.append(
            {
                "procs": p,
                "gups_native": n["gups"],
                "gups_vnetp": v["gups"],
                "fft_native": n["gflops"],
                "fft_vnetp": v["gflops"],
            }
        )
    result.notes.append(
        "paper anchors: RandomAccess 65-70 % of native, FFT 60-70 %, similar scaling"
    )
    return result


_FIG14_QUICK_CELLS = ["ep.B.16", "mg.B.16", "cg.B.16", "ft.B.16", "is.B.16",
                      "lu.B.16", "sp.B.16", "bt.B.16"]


def _fig14_point(cell: str) -> dict:
    """One NAS table row across all four configurations."""
    models = {c: flow_model_for(c) for c in _FIG14_MODEL_CONFIGS}
    row = run_table(models, cells=[cell])[0]
    return {
        "cell": row.label,
        "native_1g": row.native_1g,
        "vnetp_1g": row.vnetp_1g,
        "native_10g": row.native_10g,
        "vnetp_10g": row.vnetp_10g,
        "ratio_1g": row.ratio_1g,
        "ratio_10g": row.ratio_10g,
        "paper_ratio_1g": row.paper_ratio_1g,
        "paper_ratio_10g": row.paper_ratio_10g,
    }


def fig14(cells=None, quick: bool = False,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 14: the NAS Parallel Benchmark table (Mop/s, four configs)."""
    if cells is None:
        cells = _FIG14_QUICK_CELLS if quick else FIG14_CELLS
    rows = run_points(
        [Point("fig14", cell, _fig14_point, {"cell": cell}) for cell in cells],
        engine,
    )
    table = Table(
        [
            "cell",
            "Native-1G", "VNET/P-1G", "%1G", "paper %1G",
            "Native-10G", "VNET/P-10G", "%10G", "paper %10G",
        ],
        title="NAS Parallel Benchmarks (Mop/s total)",
    )
    result = ExperimentResult("fig14", "NAS parallel benchmark table", tables=[table])
    for row in rows:
        table.add(
            row["cell"],
            row["native_1g"], row["vnetp_1g"],
            f"{row['ratio_1g']:.0%}", f"{row['paper_ratio_1g']:.0%}",
            row["native_10g"], row["vnetp_10g"],
            f"{row['ratio_10g']:.0%}", f"{row['paper_ratio_10g']:.0%}",
        )
        result.rows.append(row)
    result.notes.append(
        "each (benchmark, class) is calibrated only at its largest Native-10G cell; "
        "all other cells are model predictions"
    )
    return result


def _extra_hpcc_metric(name: str, model, procs: int) -> float:
    from ...apps.hpcc import run_dgemm, run_hpl, run_ptrans, run_stream

    if name == "PTRANS":
        return run_ptrans(flow_world(model, procs)).GBps
    if name == "HPL":
        return run_hpl(flow_world(model, procs)).gflops
    if name == "EP-STREAM":
        return run_stream(flow_world(model, procs)).triad_GBps_total
    if name == "EP-DGEMM":
        return run_dgemm(flow_world(model, procs)).gflops_total
    raise KeyError(f"unknown HPCC component {name!r}")


def _extra_hpcc_point(name: str, procs: int) -> dict:
    native = _extra_hpcc_metric(name, flow_model_for("native-10g"), procs)
    vnetp = _extra_hpcc_metric(name, flow_model_for("vnetp-10g"), procs)
    return {"benchmark": name, "native": native, "vnetp": vnetp,
            "ratio": vnetp / native}


_EXTRA_HPCC_METRICS = {
    "PTRANS": "GB/s",
    "HPL": "Gflop/s",
    "EP-STREAM": "GB/s",
    "EP-DGEMM": "Gflop/s",
}


def extra_hpcc(procs=(16,), quick: bool = False,
               engine: Engine | None = None) -> ExperimentResult:
    """Beyond the paper: the remaining HPCC components (PTRANS, HPL,
    EP-STREAM, EP-DGEMM), native vs VNET/P at 10G.

    Completes the HPCC suite the paper samples from; the expected shape
    follows each benchmark's communication intensity: PTRANS (pure bulk
    transfer) degrades to roughly the bandwidth ratio, HPL is mostly
    compute-bound, STREAM/DGEMM are node-local and unaffected.
    """
    p = procs[0]
    rows = run_points(
        [
            Point("extra-hpcc", name, _extra_hpcc_point, {"name": name, "procs": p})
            for name in _EXTRA_HPCC_METRICS
        ],
        engine,
    )
    table = Table(
        ["benchmark", "metric", "Native", "VNET/P", "ratio"],
        title="Remaining HPCC components (10G, 16 processes)",
    )
    result = ExperimentResult("extra-hpcc", "full HPCC suite components", tables=[table])
    for row in rows:
        table.add(row["benchmark"], _EXTRA_HPCC_METRICS[row["benchmark"]],
                  row["native"], row["vnetp"], row["ratio"])
        result.rows.append(row)
    result.notes.append(
        "expected ordering: STREAM = DGEMM = 100 % > HPL > PTRANS"
    )
    return result


def _imb_collective_point(name: str, procs: int, size: int, repetitions: int) -> dict:
    from ...apps.imb_collectives import run_collective

    native = run_collective(
        flow_world(flow_model_for("native-10g"), procs), name, size,
        repetitions=repetitions,
    )
    vnetp = run_collective(
        flow_world(flow_model_for("vnetp-10g"), procs), name, size,
        repetitions=repetitions,
    )
    return {
        "collective": name,
        "native_us": native.avg_us,
        "vnetp_us": vnetp.avg_us,
        "ratio": vnetp.avg_us / native.avg_us,
    }


def extra_imb_collectives(quick: bool = False,
                          engine: Engine | None = None) -> ExperimentResult:
    """Beyond the paper: IMB collective benchmarks, native vs VNET/P.

    The paper measures point-to-point MPI only (Figs. 10-11); collectives
    are where overlay latency compounds (log-p rounds for barriers and
    allreduce, p-1 rounds for alltoall).
    """
    procs = 16
    size = 16 * 1024
    reps = 5 if quick else 12
    rows = run_points(
        [
            Point(
                "extra-imb",
                name,
                _imb_collective_point,
                {"name": name, "procs": procs, "size": size, "repetitions": reps},
            )
            for name in ("Barrier", "Bcast", "Allreduce", "Allgather", "Alltoall", "Exchange")
        ],
        engine,
    )
    table = Table(
        ["collective", "Native (us)", "VNET/P (us)", "ratio"],
        title=f"IMB collectives, {procs} processes, {size} B payloads (10G)",
    )
    result = ExperimentResult(
        "extra-imb", "IMB collective benchmarks", tables=[table]
    )
    for row in rows:
        table.add(row["collective"], row["native_us"], row["vnetp_us"], row["ratio"])
        result.rows.append(row)
    result.notes.append(
        "expected: every collective slows by 1.5-2.5x at this size — "
        "between the latency multiple and the bandwidth ratio"
    )
    return result
