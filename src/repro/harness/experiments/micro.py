"""Microbenchmark experiments: Figs. 5, 8, 9, 10, 11 and the Sect. 5.2
VNET/U baseline numbers.

Each experiment is a list of independent :class:`~repro.exec.Point`\\ s
(one per testbed configuration) plus an assembly step that builds the
paper-style tables from the point values — so ``engine=`` can fan the
points out across a process pool or answer them from the result cache
with row-identical output.
"""

from __future__ import annotations

import dataclasses

from ... import units
from ...apps.imb import run_pingpong, run_sendrecv
from ...apps.ping import run_ping
from ...apps.ttcp import run_ttcp_tcp, run_ttcp_udp
from ...config import (
    BROADCOM_1G,
    NETEFFECT_10G,
    HostParams,
    NICParams,
    VnetMode,
    default_host,
    default_tuning,
)
from ...exec import Engine, Point, run_points
from ..report import ExperimentResult, Table
from ..testbed import build_native, build_vnetp, build_vnetu

__all__ = ["fig05", "fig08", "fig09", "fig10", "fig11", "sec52_vnetu"]


def _fig05_point(n: int, duration_ns: int) -> dict:
    # The dispatcher threads exist in VMM-driven mode (Fig. 4).
    tuning = default_tuning(n_dispatchers=n, vnet_mtu=1500, mode=VnetMode.VMM_DRIVEN)
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning, guest_mtu=1458)
    r = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=duration_ns)
    return {"dispatchers": n, "gbps": r.gbps}


def fig05(dispatcher_counts=(1, 2, 3), quick: bool = False,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 5: receive-throughput scaling with dispatcher core count
    (small, 1500-byte wire MTU over 10G)."""
    duration = (8 if quick else 20) * units.MS
    rows = run_points(
        [
            Point("fig05", f"d{n}", _fig05_point, {"n": n, "duration_ns": duration})
            for n in dispatcher_counts
        ],
        engine,
    )
    table = Table(
        ["dispatchers", "udp goodput (Gbps)"],
        title="Receive throughput vs packet-dispatcher cores (1500 B MTU, 10G)",
    )
    result = ExperimentResult("fig05", "dispatcher offload scaling", tables=[table])
    for row in rows:
        table.add(row["dispatchers"], row["gbps"])
        result.rows.append(row)
    return result


# Paper Fig. 8 approximate values for reference printing (read off the
# figure; the text anchors are exact: VNET/P ~ native at 1G, 74 % UDP /
# 78 % TCP of native at 10G).
_FIG08_CONFIGS = [
    # (label, builder, nic)
    ("Native-1G (1500)", build_native, BROADCOM_1G),
    ("VNET/P-1G (1500)", build_vnetp, BROADCOM_1G),
    ("VNET/U-1G (1500)", build_vnetu, BROADCOM_1G),
    ("Native-10G (1500)", build_native, dataclasses.replace(NETEFFECT_10G, max_mtu=1500)),
    ("VNET/P-10G (1500)", build_vnetp, dataclasses.replace(NETEFFECT_10G, max_mtu=1500)),
    ("Native-10G (9000)", build_native, NETEFFECT_10G),
    ("VNET/P-10G (9000)", build_vnetp, NETEFFECT_10G),
]


def _fig08_point(label: str, builder, nic: NICParams,
                 tcp_bytes: int, udp_ns: int) -> dict:
    tb = builder(nic_params=nic)
    tcp = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=tcp_bytes)
    tb2 = builder(nic_params=nic)
    udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=udp_ns)
    return {"config": label, "tcp_mbps": tcp.mbps, "udp_mbps": udp.mbps}


def fig08(quick: bool = False, engine: Engine | None = None) -> ExperimentResult:
    """Fig. 8: end-to-end TCP throughput and UDP goodput."""
    tcp_bytes = (10 if quick else 40) * units.MB
    udp_ns = (8 if quick else 20) * units.MS
    rows = run_points(
        [
            Point(
                "fig08",
                label,
                _fig08_point,
                {
                    "label": label,
                    "builder": builder,
                    "nic": nic,
                    "tcp_bytes": tcp_bytes,
                    "udp_ns": udp_ns,
                },
            )
            for label, builder, nic in _FIG08_CONFIGS
        ],
        engine,
    )
    table = Table(
        ["configuration", "TCP (Mbps)", "UDP goodput (Mbps)"],
        title="ttcp TCP throughput / UDP goodput",
    )
    result = ExperimentResult("fig08", "TCP/UDP throughput (ttcp)", tables=[table])
    for row in rows:
        table.add(row["config"], row["tcp_mbps"], row["udp_mbps"])
        result.rows.append(row)
    result.notes.append(
        "paper anchors: VNET/P-1G ~ native; VNET/P-10G ~ 78 % (TCP) / 74 % (UDP) of native"
    )
    return result


_FIG09_CONFIGS = [
    ("native-1g", build_native, BROADCOM_1G),
    ("vnetp-1g", build_vnetp, BROADCOM_1G),
    ("native-10g", build_native, NETEFFECT_10G),
    ("vnetp-10g", build_vnetp, NETEFFECT_10G),
]


def _fig09_point(builder, nic: NICParams, size: int, count: int) -> float:
    # Sizes above the 1G MTU fragment, as real ping does.
    tb = builder(nic_params=nic)
    r = run_ping(tb.endpoints[0], tb.endpoints[1], data_size=size, count=count)
    return r.avg_rtt_us


def fig09(sizes=(56, 256, 1024, 4096, 8192, 16384), quick: bool = False,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 9: ping round-trip latency vs ICMP payload size."""
    count = 20 if quick else 100
    points = [
        Point(
            "fig09",
            f"{size}.{cfg}",
            _fig09_point,
            {"builder": builder, "nic": nic, "size": size, "count": count},
        )
        for size in sizes
        for cfg, builder, nic in _FIG09_CONFIGS
    ]
    values = run_points(points, engine)
    table = Table(
        ["size (B)", "Native-1G (us)", "VNET/P-1G (us)", "Native-10G (us)", "VNET/P-10G (us)"],
        title="ICMP round-trip latency",
    )
    result = ExperimentResult("fig09", "round-trip latency vs packet size", tables=[table])
    for i, size in enumerate(sizes):
        cells = values[i * len(_FIG09_CONFIGS):(i + 1) * len(_FIG09_CONFIGS)]
        table.add(size, *cells)
        result.rows.append(
            {
                "size": size,
                "native_1g_us": cells[0],
                "vnetp_1g_us": cells[1],
                "native_10g_us": cells[2],
                "vnetp_10g_us": cells[3],
            }
        )
    result.notes.append("paper anchors: VNET/P-10G ~130 us small-packet RTT, ~3x native; 1G ~2x")
    return result


_IMB_SIZES_FULL = [1, 64, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20]
_IMB_SIZES_QUICK = [64, 4096, 65536, 1 << 20]


def _imb_pingpong_point(builder, size: int) -> dict:
    tb = builder(nic_params=NETEFFECT_10G)
    r = run_pingpong(tb.endpoints[0], tb.endpoints[1], size)
    return {
        "one_way_latency_us": r.one_way_latency_us,
        "bandwidth_MBps": r.bandwidth_MBps,
    }


def _imb_sendrecv_point(builder, size: int) -> dict:
    tb = builder(nic_params=NETEFFECT_10G)
    r = run_sendrecv(tb.endpoints[0], tb.endpoints[1], size)
    return {"bandwidth_MBps": r.bandwidth_MBps}


def fig10(quick: bool = False, engine: Engine | None = None) -> ExperimentResult:
    """Fig. 10: IMB PingPong one-way latency vs message size (10G)."""
    sizes = _IMB_SIZES_QUICK if quick else _IMB_SIZES_FULL
    points = [
        Point("fig10", f"{size}.{cfg}", _imb_pingpong_point,
              {"builder": builder, "size": size})
        for size in sizes
        for cfg, builder in (("native", build_native), ("vnetp", build_vnetp))
    ]
    values = run_points(points, engine)
    table = Table(
        ["size (B)", "Native (us)", "VNET/P (us)", "ratio"],
        title="MPI PingPong one-way latency, 10G",
    )
    result = ExperimentResult("fig10", "MPI PingPong latency", tables=[table])
    for i, size in enumerate(sizes):
        n, v = values[2 * i], values[2 * i + 1]
        table.add(size, n["one_way_latency_us"], v["one_way_latency_us"],
                  v["one_way_latency_us"] / n["one_way_latency_us"])
        result.rows.append(
            {
                "size": size,
                "native_us": n["one_way_latency_us"],
                "vnetp_us": v["one_way_latency_us"],
            }
        )
    result.notes.append("paper anchors: VNET/P small-message ~55 us (~2.5x native)")
    return result


def fig11(quick: bool = False, engine: Engine | None = None) -> ExperimentResult:
    """Fig. 11: IMB PingPong one-way bandwidth (a) and SendRecv
    bidirectional bandwidth (b) vs message size (10G)."""
    sizes = _IMB_SIZES_QUICK if quick else _IMB_SIZES_FULL
    points = []
    for size in sizes:
        for cfg, builder in (("native", build_native), ("vnetp", build_vnetp)):
            points.append(
                Point("fig11", f"pp.{size}.{cfg}", _imb_pingpong_point,
                      {"builder": builder, "size": size})
            )
        for cfg, builder in (("native", build_native), ("vnetp", build_vnetp)):
            points.append(
                Point("fig11", f"sr.{size}.{cfg}", _imb_sendrecv_point,
                      {"builder": builder, "size": size})
            )
    values = run_points(points, engine)
    t1 = Table(
        ["size (B)", "Native (MB/s)", "VNET/P (MB/s)", "ratio"],
        title="(a) PingPong one-way bandwidth, 10G",
    )
    t2 = Table(
        ["size (B)", "Native (MB/s)", "VNET/P (MB/s)", "ratio"],
        title="(b) SendRecv bidirectional bandwidth, 10G",
    )
    result = ExperimentResult("fig11", "MPI bandwidth", tables=[t1, t2])
    for i, size in enumerate(sizes):
        n, v, ns, vs = values[4 * i:4 * i + 4]
        t1.add(size, n["bandwidth_MBps"], v["bandwidth_MBps"],
               v["bandwidth_MBps"] / n["bandwidth_MBps"])
        t2.add(size, ns["bandwidth_MBps"], vs["bandwidth_MBps"],
               vs["bandwidth_MBps"] / ns["bandwidth_MBps"])
        result.rows.append(
            {
                "size": size,
                "oneway_native": n["bandwidth_MBps"],
                "oneway_vnetp": v["bandwidth_MBps"],
                "bidir_native": ns["bandwidth_MBps"],
                "bidir_vnetp": vs["bandwidth_MBps"],
            }
        )
    result.notes.append(
        "paper anchors: beyond 256K one-way ~74 % of native (510 MB/s), two-way ~62 %"
    )
    return result


def _vmware_like_host():
    """VNET/U under VMware GSX: no custom tap interface, so transitions
    and daemon copies cost roughly twice the Palacios embedding
    (Sect. 5.2 measures 35 MB/s vs 71 MB/s)."""
    base = default_host()
    return dataclasses.replace(
        base,
        vnetu=dataclasses.replace(
            base.vnetu,
            transition_ns=3_600,
            select_overhead_ns=5_500,
            daemon_process_ns=12_000,
            copy_bw_Bps=0.8e9,
        ),
    )


def _sec52_point(label: str, host_params: HostParams | None,
                 tcp_bytes: int, ping_count: int) -> dict:
    kwargs = {"host_params": host_params} if host_params else {}
    tb = build_vnetu(nic_params=BROADCOM_1G, **kwargs)
    tcp = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=tcp_bytes)
    tb2 = build_vnetu(nic_params=BROADCOM_1G, **kwargs)
    ping = run_ping(tb2.endpoints[0], tb2.endpoints[1], count=ping_count)
    return {"embedding": label, "MBps": tcp.MBps, "rtt_ms": ping.avg_rtt_us / 1000}


def sec52_vnetu(quick: bool = False, engine: Engine | None = None) -> ExperimentResult:
    """Sect. 5.2 text: VNET/U baseline on Palacios (71 MB/s, 0.88 ms) and
    on a VMware-like VMM (35 MB/s)."""
    tcp_bytes = (4 if quick else 10) * units.MB
    ping_count = 10 if quick else 50
    configs = [
        ("Palacios (custom tap)", None),
        ("VMware-like (standard tap)", _vmware_like_host()),
    ]
    rows = run_points(
        [
            Point(
                "sec5.2-vnetu",
                label,
                _sec52_point,
                {
                    "label": label,
                    "host_params": host_params,
                    "tcp_bytes": tcp_bytes,
                    "ping_count": ping_count,
                },
            )
            for label, host_params in configs
        ],
        engine,
    )
    table = Table(
        ["embedding", "TCP (MB/s)", "ping RTT (ms)"],
        title="VNET/U baseline (1G)",
    )
    result = ExperimentResult("sec5.2-vnetu", "VNET/U user-level baseline", tables=[table])
    for row in rows:
        table.add(row["embedding"], row["MBps"], row["rtt_ms"])
        result.rows.append(row)
    result.notes.append("paper anchors: 71 MB/s @ 0.88 ms (Palacios), 35 MB/s (VMware)")
    return result
