"""Microbenchmark experiments: Figs. 5, 8, 9, 10, 11 and the Sect. 5.2
VNET/U baseline numbers."""

from __future__ import annotations

import dataclasses

from ... import units
from ...apps.imb import run_pingpong, run_sendrecv
from ...apps.ping import run_ping
from ...apps.ttcp import run_ttcp_tcp, run_ttcp_udp
from ...config import (
    BROADCOM_1G,
    NETEFFECT_10G,
    default_host,
    default_tuning,
)
from ..report import ExperimentResult, Table
from ..testbed import build_native, build_vnetp, build_vnetu

__all__ = ["fig05", "fig08", "fig09", "fig10", "fig11", "sec52_vnetu"]


def fig05(dispatcher_counts=(1, 2, 3), quick: bool = False) -> ExperimentResult:
    """Fig. 5: receive-throughput scaling with dispatcher core count
    (small, 1500-byte wire MTU over 10G)."""
    from ...config import VnetMode

    duration = (8 if quick else 20) * units.MS
    table = Table(
        ["dispatchers", "udp goodput (Gbps)"],
        title="Receive throughput vs packet-dispatcher cores (1500 B MTU, 10G)",
    )
    result = ExperimentResult("fig05", "dispatcher offload scaling", tables=[table])
    for n in dispatcher_counts:
        # The dispatcher threads exist in VMM-driven mode (Fig. 4).
        tuning = default_tuning(
            n_dispatchers=n, vnet_mtu=1500, mode=VnetMode.VMM_DRIVEN
        )
        tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning, guest_mtu=1458)
        r = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=duration)
        table.add(n, r.gbps)
        result.rows.append({"dispatchers": n, "gbps": r.gbps})
    return result


# Paper Fig. 8 approximate values for reference printing (read off the
# figure; the text anchors are exact: VNET/P ~ native at 1G, 74 % UDP /
# 78 % TCP of native at 10G).
_FIG08_CONFIGS = [
    # (label, builder, nic, guest_mtu or None, host mtu note)
    ("Native-1G (1500)", build_native, BROADCOM_1G, None),
    ("VNET/P-1G (1500)", build_vnetp, BROADCOM_1G, None),
    ("VNET/U-1G (1500)", build_vnetu, BROADCOM_1G, None),
    ("Native-10G (1500)", build_native, dataclasses.replace(NETEFFECT_10G, max_mtu=1500), None),
    ("VNET/P-10G (1500)", build_vnetp, dataclasses.replace(NETEFFECT_10G, max_mtu=1500), None),
    ("Native-10G (9000)", build_native, NETEFFECT_10G, None),
    ("VNET/P-10G (9000)", build_vnetp, NETEFFECT_10G, None),
]


def fig08(quick: bool = False) -> ExperimentResult:
    """Fig. 8: end-to-end TCP throughput and UDP goodput."""
    tcp_bytes = (10 if quick else 40) * units.MB
    udp_ns = (8 if quick else 20) * units.MS
    table = Table(
        ["configuration", "TCP (Mbps)", "UDP goodput (Mbps)"],
        title="ttcp TCP throughput / UDP goodput",
    )
    result = ExperimentResult("fig08", "TCP/UDP throughput (ttcp)", tables=[table])
    for label, builder, nic, _ in _FIG08_CONFIGS:
        tb = builder(nic_params=nic)
        tcp = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=tcp_bytes)
        tb2 = builder(nic_params=nic)
        udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=udp_ns)
        table.add(label, tcp.mbps, udp.mbps)
        result.rows.append({"config": label, "tcp_mbps": tcp.mbps, "udp_mbps": udp.mbps})
    result.notes.append(
        "paper anchors: VNET/P-1G ~ native; VNET/P-10G ~ 78 % (TCP) / 74 % (UDP) of native"
    )
    return result


def fig09(sizes=(56, 256, 1024, 4096, 8192, 16384), quick: bool = False) -> ExperimentResult:
    """Fig. 9: ping round-trip latency vs ICMP payload size."""
    count = 20 if quick else 100
    table = Table(
        ["size (B)", "Native-1G (us)", "VNET/P-1G (us)", "Native-10G (us)", "VNET/P-10G (us)"],
        title="ICMP round-trip latency",
    )
    result = ExperimentResult("fig09", "round-trip latency vs packet size", tables=[table])
    configs = [
        (build_native, BROADCOM_1G),
        (build_vnetp, BROADCOM_1G),
        (build_native, NETEFFECT_10G),
        (build_vnetp, NETEFFECT_10G),
    ]
    for size in sizes:
        cells = []
        for builder, nic in configs:
            # Sizes above the 1G MTU fragment, as real ping does.
            tb = builder(nic_params=nic)
            r = run_ping(tb.endpoints[0], tb.endpoints[1], data_size=size, count=count)
            cells.append(r.avg_rtt_us)
        table.add(size, *cells)
        result.rows.append(
            {
                "size": size,
                "native_1g_us": cells[0],
                "vnetp_1g_us": cells[1],
                "native_10g_us": cells[2],
                "vnetp_10g_us": cells[3],
            }
        )
    result.notes.append("paper anchors: VNET/P-10G ~130 us small-packet RTT, ~3x native; 1G ~2x")
    return result


_IMB_SIZES_FULL = [1, 64, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20]
_IMB_SIZES_QUICK = [64, 4096, 65536, 1 << 20]


def fig10(quick: bool = False) -> ExperimentResult:
    """Fig. 10: IMB PingPong one-way latency vs message size (10G)."""
    sizes = _IMB_SIZES_QUICK if quick else _IMB_SIZES_FULL
    table = Table(
        ["size (B)", "Native (us)", "VNET/P (us)", "ratio"],
        title="MPI PingPong one-way latency, 10G",
    )
    result = ExperimentResult("fig10", "MPI PingPong latency", tables=[table])
    for size in sizes:
        tn = build_native(nic_params=NETEFFECT_10G)
        n = run_pingpong(tn.endpoints[0], tn.endpoints[1], size)
        tv = build_vnetp(nic_params=NETEFFECT_10G)
        v = run_pingpong(tv.endpoints[0], tv.endpoints[1], size)
        table.add(size, n.one_way_latency_us, v.one_way_latency_us,
                  v.one_way_latency_us / n.one_way_latency_us)
        result.rows.append(
            {
                "size": size,
                "native_us": n.one_way_latency_us,
                "vnetp_us": v.one_way_latency_us,
            }
        )
    result.notes.append("paper anchors: VNET/P small-message ~55 us (~2.5x native)")
    return result


def fig11(quick: bool = False) -> ExperimentResult:
    """Fig. 11: IMB PingPong one-way bandwidth (a) and SendRecv
    bidirectional bandwidth (b) vs message size (10G)."""
    sizes = _IMB_SIZES_QUICK if quick else _IMB_SIZES_FULL
    t1 = Table(
        ["size (B)", "Native (MB/s)", "VNET/P (MB/s)", "ratio"],
        title="(a) PingPong one-way bandwidth, 10G",
    )
    t2 = Table(
        ["size (B)", "Native (MB/s)", "VNET/P (MB/s)", "ratio"],
        title="(b) SendRecv bidirectional bandwidth, 10G",
    )
    result = ExperimentResult("fig11", "MPI bandwidth", tables=[t1, t2])
    for size in sizes:
        tn = build_native(nic_params=NETEFFECT_10G)
        n = run_pingpong(tn.endpoints[0], tn.endpoints[1], size)
        tv = build_vnetp(nic_params=NETEFFECT_10G)
        v = run_pingpong(tv.endpoints[0], tv.endpoints[1], size)
        t1.add(size, n.bandwidth_MBps, v.bandwidth_MBps, v.bandwidth_MBps / n.bandwidth_MBps)
        tns = build_native(nic_params=NETEFFECT_10G)
        ns = run_sendrecv(tns.endpoints[0], tns.endpoints[1], size)
        tvs = build_vnetp(nic_params=NETEFFECT_10G)
        vs = run_sendrecv(tvs.endpoints[0], tvs.endpoints[1], size)
        t2.add(size, ns.bandwidth_MBps, vs.bandwidth_MBps, vs.bandwidth_MBps / ns.bandwidth_MBps)
        result.rows.append(
            {
                "size": size,
                "oneway_native": n.bandwidth_MBps,
                "oneway_vnetp": v.bandwidth_MBps,
                "bidir_native": ns.bandwidth_MBps,
                "bidir_vnetp": vs.bandwidth_MBps,
            }
        )
    result.notes.append(
        "paper anchors: beyond 256K one-way ~74 % of native (510 MB/s), two-way ~62 %"
    )
    return result


def _vmware_like_host():
    """VNET/U under VMware GSX: no custom tap interface, so transitions
    and daemon copies cost roughly twice the Palacios embedding
    (Sect. 5.2 measures 35 MB/s vs 71 MB/s)."""
    base = default_host()
    return dataclasses.replace(
        base,
        vnetu=dataclasses.replace(
            base.vnetu,
            transition_ns=3_600,
            select_overhead_ns=5_500,
            daemon_process_ns=12_000,
            copy_bw_Bps=0.8e9,
        ),
    )


def sec52_vnetu(quick: bool = False) -> ExperimentResult:
    """Sect. 5.2 text: VNET/U baseline on Palacios (71 MB/s, 0.88 ms) and
    on a VMware-like VMM (35 MB/s)."""
    tcp_bytes = (4 if quick else 10) * units.MB
    table = Table(
        ["embedding", "TCP (MB/s)", "ping RTT (ms)"],
        title="VNET/U baseline (1G)",
    )
    result = ExperimentResult("sec5.2-vnetu", "VNET/U user-level baseline", tables=[table])
    for label, host_params in [
        ("Palacios (custom tap)", None),
        ("VMware-like (standard tap)", _vmware_like_host()),
    ]:
        kwargs = {"host_params": host_params} if host_params else {}
        tb = build_vnetu(nic_params=BROADCOM_1G, **kwargs)
        tcp = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=tcp_bytes)
        tb2 = build_vnetu(nic_params=BROADCOM_1G, **kwargs)
        ping = run_ping(tb2.endpoints[0], tb2.endpoints[1], count=10 if quick else 50)
        table.add(label, tcp.MBps, ping.avg_rtt_us / 1000)
        result.rows.append(
            {"embedding": label, "MBps": tcp.MBps, "rtt_ms": ping.avg_rtt_us / 1000}
        )
    result.notes.append("paper anchors: 71 MB/s @ 0.88 ms (Palacios), 35 MB/s (VMware)")
    return result
