"""Resilience experiments: overlay behaviour under injected faults.

Two scenario families, both built from :class:`~repro.exec.Point`\\ s so
they parallelize and cache like every other experiment:

* **goodput vs. loss** — a two-host VNET/P testbed running the ttcp UDP
  workload while a :class:`~repro.chaos.FaultSchedule` holds a loss (or
  Gilbert–Elliott burst-loss) window on the sender's physical NIC.  The
  ``loss=0`` row must be bit-identical to the clean row: injectors are
  timing-transparent when they pass a frame, which is what makes the
  same-seed ``chaos-suite`` CI diff meaningful.
* **partition / failover** — a three-host testbed with heartbeats on
  every overlay link, a phi-style failure detector
  (:class:`~repro.vnet.monitor.TrafficMonitor`) and the
  :class:`~repro.vnet.adaptation.AdaptationEngine` failover pass.  A
  bidirectional partition of the h0↔h1 overlay link is injected
  mid-stream; the experiment reports detection time (fault →
  failover action), recovery time (fault → first datagram arriving via
  the h2 waypoint) and failback time after the link heals.

All partition/failover timings are read off the **health log**
(:mod:`repro.obs.health`): the adaptation engine and failure detector
emit timestamped ``HealthEvent``\\ s at the exact virtual instant they
act, and the probe receiver emits ``probe-delivered`` events — the
point function also derives the same numbers the legacy way (route
tables + arrival list) and raises if the two disagree by even one
nanosecond.  A timeline + :class:`~repro.obs.health.HeartbeatSilenceDetector`
additionally detects the outage purely from the delivered-probe
counter going quiet (the ``telemetry outage`` column).
"""

from __future__ import annotations

from ... import units
from ...apps.ttcp import run_ttcp_udp
from ...chaos import FaultSchedule
from ...exec import Engine, Point, run_points
from ...obs.context import Observability
from ...obs.health import HeartbeatSilenceDetector
from ...proto.base import Blob
from ...topo import TopoSpec
from ...vnet.adaptation import AdaptationEngine
from ...vnet.heartbeat import HeartbeatService
from ..report import ExperimentResult, Table
from ..testbed import build_topo

__all__ = ["resilience"]

# UDP port for the paced probe stream (clear of VNET encapsulation 5002
# and ttcp 5010).
PROBE_PORT = 5020


def _loss_goodput_point(label: str, kind: str, rate: float, seed: int,
                        duration_ns: int,
                        topo: TopoSpec = TopoSpec(kind="mesh", n_hosts=2)) -> dict:
    """One goodput measurement under a (possibly empty) loss regime.

    ``kind`` is ``"clean"`` (no injector at all), ``"loss"`` (Bernoulli
    at ``rate``) or ``"burst"`` (Gilbert–Elliott with bad-state
    occupancy ≈ ``rate``).  The testbed comes from the declarative
    ``topo`` spec (a plain-data kwarg, so it fingerprints/caches).
    """
    tb = build_topo(topo)
    if kind != "clean":
        sched = FaultSchedule(tb.sim, name="goodput")
        port = tb.hosts[0].nic.tx_port
        if kind == "loss":
            sched.loss(port, start_ns=0, stop_ns=None, rate=rate, seed=seed)
        else:
            # p_gb / (p_gb + p_bg) = rate with mean burst of 20 frames.
            p_bg = 0.05
            p_gb = rate * p_bg / max(1e-9, 1.0 - rate)
            sched.burst(port, start_ns=0, stop_ns=None,
                        p_gb=p_gb, p_bg=p_bg, seed=seed)
        sched.start()
    r = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=duration_ns)
    return {
        "config": label,
        "gbps": r.gbps,
        "delivered_MB": r.bytes_moved / units.MB,
        "loss_pct": r.loss_fraction * 100.0,
    }


def _partition_failover_point(
    horizon_ns: int,
    fail_at_ns: int,
    heal_at_ns: int,
    hb_interval_ns: int,
    failover_interval_ns: int,
    failback_backoff_ns: int,
    send_gap_ns: int,
    payload: int,
    topo: TopoSpec = TopoSpec(kind="mesh", n_hosts=3),
) -> dict:
    """Kill the h0<->h1 overlay link mid-stream; measure the repair loop."""
    tb = build_topo(topo)
    sim = tb.sim
    obs = Observability.of(sim)
    engine = AdaptationEngine(
        sim, tb.cores, controls=tb.controls,
        failback_backoff_ns=failback_backoff_ns,
    )
    for core in tb.cores:
        HeartbeatService(
            sim, core, interval_ns=hb_interval_ns, until_ns=horizon_ns
        ).start()
    sim.process(
        engine.run_failover(failover_interval_ns, until_ns=horizon_ns),
        name="resilience.failover",
    )
    # Bidirectional partition of the h0<->h1 overlay link, at the
    # bridge's per-link egress filters (the physical net stays up; only
    # this overlay link dies — the failure mode overlays actually see).
    sched = FaultSchedule(sim, name="partition")
    sched.partition(tb.hosts[0].vnet_bridge.link_out("to1"),
                    start_ns=fail_at_ns, stop_ns=heal_at_ns)
    sched.partition(tb.hosts[1].vnet_bridge.link_out("to0"),
                    start_ns=fail_at_ns, stop_ns=heal_at_ns)
    sched.start()

    # Telemetry: a timeline samples the delivered-probe rate, and a
    # silence detector on the same counter flags the outage without any
    # knowledge of routes, links, or the fault schedule.
    probes = obs.metrics.counter("resilience.probes_delivered")
    timeline = obs.timeline
    timeline.counter_rate("resilience.probes_delivered",
                          series="resilience.goodput", unit="pkt/s")
    hub = obs.health
    hub.add(HeartbeatSilenceDetector(
        "resilience.probe-silence", hub.log, probes, windows=2))
    hub.attach_to(timeline)
    timeline.start(until_ns=horizon_ns)

    arrivals: list[int] = []
    sent = [0]
    stop_tx_ns = horizon_ns - 2 * units.MS
    src, dst = tb.endpoints[0], tb.endpoints[1]

    def rx():
        sock = dst.stack.udp_socket(PROBE_PORT)
        while True:
            yield from sock.recv()
            arrivals.append(sim.now)
            probes.inc()
            hub.log.emit(sim.now, "resilience.rx", "probe-delivered")

    def tx():
        sock = src.stack.udp_socket()
        yield sim.timeout(500_000)
        while sim.now < stop_tx_ns:
            yield from sock.sendto(Blob(payload), dst.ip, PROBE_PORT)
            sent[0] += 1
            yield sim.timeout(send_gap_ns)

    sim.process(rx(), name="resilience.rx")
    sim.process(tx(), name="resilience.tx")
    sim.run()

    # Timings read off the health log alone.
    log = hub.log
    fo_ev = log.first("failover")
    fb_ev = log.first("failback")
    failover_at = fo_ev.t_ns if fo_ev is not None else None
    failback_at = fb_ev.t_ns if fb_ev is not None else None
    rec_ev = (log.first("probe-delivered", after_ns=failover_at)
              if failover_at is not None else None)
    recovery_at = rec_ev.t_ns if rec_ev is not None else None

    # Cross-check against the legacy derivation (route-table actions +
    # the raw arrival list): the two must agree to the nanosecond.
    legacy_failover = next(
        (a.when_ns for a in engine.actions if a.description.startswith("failover:")),
        None,
    )
    legacy_failback = next(
        (a.when_ns for a in engine.actions if a.description.startswith("failback:")),
        None,
    )
    legacy_recovery = next((t for t in arrivals if legacy_failover is not None
                            and t >= legacy_failover), None)
    health = (failover_at, recovery_at, failback_at)
    legacy = (legacy_failover, legacy_recovery, legacy_failback)
    if health != legacy:
        raise RuntimeError(
            f"health-derived timings {health} diverge from "
            f"route-table-derived {legacy}"
        )

    detection_ms = ((failover_at - fail_at_ns) / units.MS
                    if failover_at is not None else -1.0)
    recovery_ms = ((recovery_at - fail_at_ns) / units.MS
                   if recovery_at is not None else -1.0)
    failback_ms = ((failback_at - heal_at_ns) / units.MS
                   if failback_at is not None else -1.0)
    silence_ev = log.first("heartbeat-silence", after_ns=fail_at_ns)
    telemetry_ms = ((silence_ev.t_ns - fail_at_ns) / units.MS
                    if silence_ev is not None else -1.0)
    return {
        "config": "partition h0<->h1",
        "detection_ms": detection_ms,
        "recovery_ms": recovery_ms,
        "failback_ms": failback_ms,
        "telemetry_outage_ms": telemetry_ms,
        "waypoint_pkts": tb.cores[2].pkts_to_bridge,
        "delivered_pct": 100.0 * len(arrivals) / max(1, sent[0]),
        "health_events": len(log),
    }


def resilience(quick: bool = False, engine: Engine | None = None) -> ExperimentResult:
    """Overlay resilience: goodput under loss + failover after partition."""
    duration = (4 if quick else 12) * units.MS
    loss_configs = [
        ("clean", "clean", 0.0),
        ("loss 0%", "loss", 0.0),
        ("loss 1%", "loss", 0.01),
        ("loss 5%", "loss", 0.05),
        ("loss 10%", "loss", 0.10),
        ("burst 5%", "burst", 0.05),
    ]
    points = [
        Point(
            "resilience",
            f"goodput.{label}",
            _loss_goodput_point,
            {"label": label, "kind": kind, "rate": rate, "seed": 1009,
             "duration_ns": duration, "topo": TopoSpec(kind="mesh", n_hosts=2)},
        )
        for label, kind, rate in loss_configs
    ]
    horizon = (20 if quick else 30) * units.MS
    points.append(
        Point(
            "resilience",
            "partition",
            _partition_failover_point,
            {
                "horizon_ns": horizon,
                "fail_at_ns": 4 * units.MS,
                "heal_at_ns": 12 * units.MS,
                "hb_interval_ns": 250_000,
                "failover_interval_ns": 100_000,
                "failback_backoff_ns": 1_500_000,
                "send_gap_ns": 25_000 if quick else 10_000,
                "payload": 1024,
                "topo": TopoSpec(kind="mesh", n_hosts=3),
            },
        )
    )
    rows = run_points(points, engine)

    goodput_table = Table(
        ["configuration", "udp goodput (Gbps)", "delivered (MB)", "loss (%)"],
        title="UDP goodput vs injected loss (VNET/P, 10G)",
    )
    partition_table = Table(
        ["scenario", "detection (ms)", "recovery (ms)", "failback (ms)",
         "telemetry outage (ms)", "waypoint pkts", "delivered (%)"],
        title="Overlay partition: detection, failover, failback",
    )
    result = ExperimentResult(
        "resilience", "overlay behaviour under injected faults",
        tables=[goodput_table, partition_table],
    )
    for row in rows:
        if "gbps" in row:
            goodput_table.add(row["config"], row["gbps"],
                              row["delivered_MB"], row["loss_pct"])
        else:
            partition_table.add(row["config"], row["detection_ms"],
                                row["recovery_ms"], row["failback_ms"],
                                row["telemetry_outage_ms"],
                                row["waypoint_pkts"], row["delivered_pct"])
        result.rows.append(row)
    result.notes.append(
        "the clean and loss-0% rows are bit-identical by construction: "
        "injectors are timing-transparent when they pass a frame"
    )
    result.notes.append(
        "partition detection = phi-accrual heartbeat timeout; recovery = "
        "first datagram delivered via the h2 waypoint after rerouting"
    )
    result.notes.append(
        "partition timings are read off obs.health events and cross-checked "
        "against the route-table derivation to the nanosecond; telemetry "
        "outage = HeartbeatSilenceDetector on the delivered-probe counter"
    )
    return result
