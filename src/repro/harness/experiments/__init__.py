"""Experiment registry: one function per paper table/figure + ablations.

Every function returns an :class:`~repro.harness.report.ExperimentResult`
and accepts ``quick=True`` to run a reduced (but same-shaped) version.
"""

from .ablations import (
    abl_adaptive_mode,
    abl_mtu,
    abl_routing_cache,
    abl_vnetp_plus,
    abl_yield_strategy,
)
from .cluster import extra_hpcc, extra_imb_collectives, fig12, fig13, fig14
from .fairness import fairness
from .micro import fig05, fig08, fig09, fig10, fig11, sec52_vnetu
from .portability import fig15, fig16, sec61_infiniband, sec62_gemini, sec63_kitten
from .provisioning import provisioning_convergence
from .resilience import resilience

ALL_EXPERIMENTS = {
    "fig05": fig05,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "sec5.2-vnetu": sec52_vnetu,
    "sec6.1-ib": sec61_infiniband,
    "sec6.2-gemini": sec62_gemini,
    "sec6.3-kitten": sec63_kitten,
    "abl-adaptive": abl_adaptive_mode,
    "abl-yield": abl_yield_strategy,
    "abl-mtu": abl_mtu,
    "abl-cache": abl_routing_cache,
    "abl-vnetp-plus": abl_vnetp_plus,
    "extra-hpcc": extra_hpcc,
    "extra-imb": extra_imb_collectives,
    "resilience": resilience,
    "provisioning": provisioning_convergence,
    "fairness": fairness,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "fig05", "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
    "fig15", "fig16",
    "sec52_vnetu", "sec61_infiniband", "sec62_gemini", "sec63_kitten",
    "abl_adaptive_mode", "abl_yield_strategy", "abl_mtu", "abl_routing_cache",
    "abl_vnetp_plus",
    "extra_hpcc",
    "extra_imb_collectives",
    "resilience",
    "provisioning_convergence",
    "fairness",
]
