"""Cluster-scale provisioning experiments: overlay bring-up vs N.

The paper's testbeds are a handful of hosts wired by hand; the cloud
story ("bridging the cloud and HPC") is about *provisioning* an HPC
overlay across hundreds of hosts.  This family measures, entirely in
simulated time, what that costs as the fabric grows:

* **convergence** — route compilation size and the simulated time for a
  staggered controller push to configure every host of a fat-tree
  (:mod:`repro.topo.generators`), tracked by
  :class:`~repro.obs.convergence.ConvergenceTracker`;
* **first packet** — guest-to-guest RTT across the freshly converged
  fabric's longest path (cross-pod, multi-hop through VM-less router
  hosts);
* **flow-cache behaviour** — the per-flow fast path's hit rate on
  deep (5-hop) forwarding paths, reported per point.

Every observable is deterministic and simulated; no wall-clock values
appear in rows (the exec engine's cold/warm and serial/parallel CI
diffs depend on that).
"""

from __future__ import annotations

from ...exec import Engine, Point, run_points
from ...topo import TopologyCompiler, TopoSpec, generate, probe_rtt_ns, provision
from ..report import ExperimentResult, Table

__all__ = ["provisioning_convergence"]


def _provisioning_point(spec: TopoSpec, apply_ns: int, stagger_ns: int,
                        probe_count: int) -> dict:
    topo = generate(spec)
    compiled = TopologyCompiler(topo).compile()
    tb = compiled.build(configure=False)
    report = provision(tb, apply_ns=apply_ns, stagger_ns=stagger_ns)
    # Longest path: first VM to last VM (different pods in a fat-tree).
    rtt_ns = probe_rtt_ns(tb, 0, len(tb.endpoints) - 1, count=probe_count)
    hits = sum(c.flowcache.hits for c in tb.cores if c.flowcache)
    misses = sum(c.flowcache.misses for c in tb.cores if c.flowcache)
    return {
        "topo": spec.label(),
        "n_hosts": spec.n_hosts,
        "routers": compiled.n_routers,
        "routes_total": compiled.routes_total,
        "max_table": compiled.max_table,
        "commands": compiled.n_commands,
        "convergence_ms": report.converged_ms,
        "first_packet_us": rtt_ns / 1e3,
        "flowcache_hit_rate": hits / max(1, hits + misses),
    }


def provisioning_convergence(
    sizes=(16, 64, 256, 1024),
    quick: bool = False,
    engine: Engine | None = None,
) -> ExperimentResult:
    """Overlay convergence and first-packet latency vs cluster size.

    Spins up fat-tree overlays of ``sizes`` compute hosts (plus the
    edge/agg/core routers the fabric needs), provisions each with a
    staggered simulated controller push, and reports route-table size,
    convergence time, cross-pod first-packet RTT and flow-cache hit
    rate per point.
    """
    if quick:
        sizes = tuple(n for n in sizes if n <= 64) or (16,)
    probe_count = 3 if quick else 10
    rows = run_points(
        [
            Point(
                "provisioning",
                f"fat-tree.{n}",
                _provisioning_point,
                {
                    "spec": TopoSpec(kind="fat-tree", n_hosts=n),
                    "apply_ns": 20_000,
                    "stagger_ns": 50_000,
                    "probe_count": probe_count,
                },
            )
            for n in sizes
        ],
        engine,
    )
    table = Table(
        ["topology", "hosts", "routers", "routes", "max table", "commands",
         "converge (ms)", "first pkt (us)", "flow-cache hit"],
        title="Provisioning: overlay convergence vs cluster size",
    )
    result = ExperimentResult(
        "provisioning", "overlay provisioning and convergence", tables=[table]
    )
    for row in rows:
        table.add(row["topo"], row["n_hosts"], row["routers"],
                  row["routes_total"], row["max_table"], row["commands"],
                  row["convergence_ms"], row["first_packet_us"],
                  row["flowcache_hit_rate"])
        result.rows.append(row)
    result.notes.append(
        "convergence time is simulated (staggered controller push, "
        "20 us/command); expected to grow with total command count, while "
        "first-packet RTT grows only with path depth"
    )
    return result
