"""Portability experiments: IPoIB (Figs. 15-16, Sect. 6.1), Cray Gemini
(Sect. 6.2), and the Kitten embedding (Sect. 6.3)."""

from __future__ import annotations

from ... import units
from ...apps.hpcc import (
    flow_world,
    run_latency_bandwidth,
    run_mpifft,
    run_random_access,
)
from ...apps.ping import run_ping
from ...apps.ttcp import run_ttcp_tcp
from ...host.kitten import build_vnetp_kitten
from ...interconnect import (
    build_native_gemini,
    build_native_ipoib,
    build_vnetp_gemini,
    build_vnetp_ipoib,
)
from ..calibrate import flow_model_for
from ..report import ExperimentResult, Table
from .cluster import PROC_COUNTS

__all__ = ["sec61_infiniband", "fig15", "fig16", "sec62_gemini", "sec63_kitten"]


def sec61_infiniband(quick: bool = False) -> ExperimentResult:
    """Sect. 6.1 text: out-of-the-box VNET/P on IPoIB."""
    tcp_bytes = (10 if quick else 30) * units.MB
    table = Table(["metric", "Native IPoIB", "VNET/P on IPoIB"], title="IPoIB (untuned)")
    result = ExperimentResult("sec6.1-ib", "VNET/P over InfiniBand (IPoIB)", tables=[table])
    tn = build_native_ipoib()
    pn = run_ping(tn.endpoints[0], tn.endpoints[1], count=10 if quick else 50)
    tv = build_vnetp_ipoib()
    pv = run_ping(tv.endpoints[0], tv.endpoints[1], count=10 if quick else 50)
    tn2 = build_native_ipoib()
    bn = run_ttcp_tcp(tn2.endpoints[0], tn2.endpoints[1], total_bytes=tcp_bytes)
    tv2 = build_vnetp_ipoib()
    bv = run_ttcp_tcp(tv2.endpoints[0], tv2.endpoints[1], total_bytes=tcp_bytes)
    table.add("ping RTT (us)", pn.avg_rtt_us, pv.avg_rtt_us)
    table.add("ttcp TCP (Gbps)", bn.gbps, bv.gbps)
    result.rows.append(
        {
            "native_ping_us": pn.avg_rtt_us,
            "vnetp_ping_us": pv.avg_rtt_us,
            "native_gbps": bn.gbps,
            "vnetp_gbps": bv.gbps,
        }
    )
    result.notes.append("paper anchors: VNET/P ping ~155 us, ttcp ~3.6 Gbps (preliminary)")
    return result


def fig15(procs=PROC_COUNTS, quick: bool = False) -> ExperimentResult:
    """Fig. 15: HPCC latency-bandwidth over IPoIB."""
    if quick:
        procs = (8, 24)
    table = Table(
        [
            "procs",
            "nat pp-lat (us)", "vp pp-lat (us)",
            "nat pp-bw (MB/s)", "vp pp-bw (MB/s)",
            "nat rring-bw", "vp rring-bw",
        ],
        title="HPCC latency-bandwidth over IPoIB",
    )
    result = ExperimentResult("fig15", "HPCC latency-bandwidth on IPoIB", tables=[table])
    mn = flow_model_for("native-ipoib")
    mv = flow_model_for("vnetp-ipoib")
    for p in procs:
        rn = run_latency_bandwidth(lambda m=mn, p=p: flow_world(m, p), p)
        rv = run_latency_bandwidth(lambda m=mv, p=p: flow_world(m, p), p)
        table.add(
            p,
            rn.pingpong_lat_us, rv.pingpong_lat_us,
            rn.pingpong_bw_MBps, rv.pingpong_bw_MBps,
            rn.random_ring_bw_MBps, rv.random_ring_bw_MBps,
        )
        result.rows.append({"procs": p, "native": vars(rn), "vnetp": vars(rv)})
    result.notes.append(
        "paper anchors: pingpong 70-75 % of native bw at 3-4x latency; "
        "rings ~50-55 % of native bw"
    )
    return result


def fig16(procs=PROC_COUNTS, quick: bool = False) -> ExperimentResult:
    """Fig. 16: HPCC applications over IPoIB."""
    if quick:
        procs = (8, 24)
    table = Table(
        ["procs", "nat GUPs", "vp GUPs", "ratio", "nat Gflops", "vp Gflops", "ratio"],
        title="HPCC applications over IPoIB",
    )
    result = ExperimentResult("fig16", "HPCC applications on IPoIB", tables=[table])
    mn = flow_model_for("native-ipoib")
    mv = flow_model_for("vnetp-ipoib")
    for p in procs:
        gn = run_random_access(flow_world(mn, p))
        gv = run_random_access(flow_world(mv, p))
        fn = run_mpifft(flow_world(mn, p))
        fv = run_mpifft(flow_world(mv, p))
        table.add(p, gn.gups, gv.gups, gv.gups / gn.gups,
                  fn.gflops, fv.gflops, fv.gflops / fn.gflops)
        result.rows.append(
            {
                "procs": p,
                "gups_native": gn.gups, "gups_vnetp": gv.gups,
                "fft_native": fn.gflops, "fft_vnetp": fv.gflops,
            }
        )
    result.notes.append(
        "paper anchors: RandomAccess 75-80 % of native; FFT 30-45 % of native"
    )
    return result


def sec62_gemini(quick: bool = False) -> ExperimentResult:
    """Sect. 6.2: VNET/P over Cray Gemini's IPoG layer."""
    tcp_bytes = (30 if quick else 80) * units.MB
    buf = 4 * units.MB
    table = Table(["configuration", "ttcp TCP (GB/s)"], title="Gemini IPoG")
    result = ExperimentResult("sec6.2-gemini", "VNET/P over Cray Gemini", tables=[table])
    tn = build_native_gemini()
    rn = run_ttcp_tcp(tn.endpoints[0], tn.endpoints[1], total_bytes=tcp_bytes,
                      sndbuf=buf, rcvbuf=buf)
    tv = build_vnetp_gemini()
    rv = run_ttcp_tcp(tv.endpoints[0], tv.endpoints[1], total_bytes=tcp_bytes,
                      sndbuf=buf, rcvbuf=buf)
    table.add("Native IPoG", rn.MBps / 1000)
    table.add("VNET/P on IPoG", rv.MBps / 1000)
    result.rows.append({"native_GBps": rn.MBps / 1000, "vnetp_GBps": rv.MBps / 1000})
    result.notes.append(
        "paper anchor: VNET/P ~1.6 GB/s (13 Gbps), preliminary, against a "
        "40 Gbps theoretical peak"
    )
    return result


def sec63_kitten(quick: bool = False) -> ExperimentResult:
    """Sect. 6.3: VNET/P for Kitten over InfiniBand (bridge service VM),
    including the low-jitter comparison against the Linux embedding."""
    from ...config import NETEFFECT_10G
    from ..testbed import build_vnetp

    tcp_bytes = (10 if quick else 30) * units.MB
    count = 30 if quick else 100
    table = Table(["configuration", "ttcp TCP (Gbps)"], title="Kitten / InfiniBand, 8900 B payloads")
    jitter = Table(
        ["embedding", "ping RTT (us)", "jitter stdev (us)"],
        title="Latency jitter: Linux vs Kitten embedding",
    )
    result = ExperimentResult("sec6.3-kitten", "VNET/P for Kitten", tables=[table, jitter])
    tn = build_native_ipoib()
    rn = run_ttcp_tcp(tn.endpoints[0], tn.endpoints[1], total_bytes=tcp_bytes)
    tk = build_vnetp_kitten()
    rk = run_ttcp_tcp(tk.endpoints[0], tk.endpoints[1], total_bytes=tcp_bytes)
    table.add("Native IPoIB (RC mode)", rn.gbps)
    table.add("VNET/P on Kitten (bridge VM)", rk.gbps)
    tl = build_vnetp(nic_params=NETEFFECT_10G)
    pl = run_ping(tl.endpoints[0], tl.endpoints[1], count=count)
    tk2 = build_vnetp_kitten()
    pk = run_ping(tk2.endpoints[0], tk2.endpoints[1], count=count)
    jitter.add("Linux host", pl.avg_rtt_us, pl.rtt_ns.stdev / 1000)
    jitter.add("Kitten LWK", pk.avg_rtt_us, pk.rtt_ns.stdev / 1000)
    result.rows.append(
        {
            "native_gbps": rn.gbps,
            "kitten_gbps": rk.gbps,
            "linux_jitter_us": pl.rtt_ns.stdev / 1000,
            "kitten_jitter_us": pk.rtt_ns.stdev / 1000,
        }
    )
    result.notes.append(
        "paper anchors: 4.0 Gbps vs 6.5 Gbps native; Kitten provides "
        "'very little jitter in latency compared to the Linux version'"
    )
    return result
