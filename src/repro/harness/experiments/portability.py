"""Portability experiments: IPoIB (Figs. 15-16, Sect. 6.1), Cray Gemini
(Sect. 6.2), and the Kitten embedding (Sect. 6.3)."""

from __future__ import annotations

from ... import units
from ...apps.ping import run_ping
from ...apps.ttcp import run_ttcp_tcp
from ...exec import Engine, Point, run_points
from ...host.kitten import build_vnetp_kitten
from ...interconnect import (
    build_native_gemini,
    build_native_ipoib,
    build_vnetp_gemini,
    build_vnetp_ipoib,
)
from ..report import ExperimentResult, Table
from .cluster import PROC_COUNTS, _hpcc_apps_point, _latbw_point

__all__ = ["sec61_infiniband", "fig15", "fig16", "sec62_gemini", "sec63_kitten"]


def _ping_point(builder, count: int, **builder_kwargs) -> dict:
    """Ping RTT over a freshly built testbed."""
    tb = builder(**builder_kwargs)
    p = run_ping(tb.endpoints[0], tb.endpoints[1], count=count)
    return {"avg_rtt_us": p.avg_rtt_us, "stdev_ns": p.rtt_ns.stdev}


def _ttcp_tcp_point(builder, tcp_bytes: int, sndbuf: int | None = None,
                    rcvbuf: int | None = None) -> dict:
    """ttcp TCP throughput over a freshly built testbed."""
    tb = builder()
    kwargs = {}
    if sndbuf is not None:
        kwargs.update(sndbuf=sndbuf, rcvbuf=rcvbuf)
    r = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=tcp_bytes, **kwargs)
    return {"gbps": r.gbps, "MBps": r.MBps}


def sec61_infiniband(quick: bool = False,
                     engine: Engine | None = None) -> ExperimentResult:
    """Sect. 6.1 text: out-of-the-box VNET/P on IPoIB."""
    tcp_bytes = (10 if quick else 30) * units.MB
    count = 10 if quick else 50
    pn, pv, bn, bv = run_points(
        [
            Point("sec6.1-ib", "ping.native", _ping_point,
                  {"builder": build_native_ipoib, "count": count}),
            Point("sec6.1-ib", "ping.vnetp", _ping_point,
                  {"builder": build_vnetp_ipoib, "count": count}),
            Point("sec6.1-ib", "tcp.native", _ttcp_tcp_point,
                  {"builder": build_native_ipoib, "tcp_bytes": tcp_bytes}),
            Point("sec6.1-ib", "tcp.vnetp", _ttcp_tcp_point,
                  {"builder": build_vnetp_ipoib, "tcp_bytes": tcp_bytes}),
        ],
        engine,
    )
    table = Table(["metric", "Native IPoIB", "VNET/P on IPoIB"], title="IPoIB (untuned)")
    result = ExperimentResult("sec6.1-ib", "VNET/P over InfiniBand (IPoIB)", tables=[table])
    table.add("ping RTT (us)", pn["avg_rtt_us"], pv["avg_rtt_us"])
    table.add("ttcp TCP (Gbps)", bn["gbps"], bv["gbps"])
    result.rows.append(
        {
            "native_ping_us": pn["avg_rtt_us"],
            "vnetp_ping_us": pv["avg_rtt_us"],
            "native_gbps": bn["gbps"],
            "vnetp_gbps": bv["gbps"],
        }
    )
    result.notes.append("paper anchors: VNET/P ping ~155 us, ttcp ~3.6 Gbps (preliminary)")
    return result


def fig15(procs=PROC_COUNTS, quick: bool = False,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 15: HPCC latency-bandwidth over IPoIB."""
    if quick:
        procs = (8, 24)
    points = [
        Point("fig15", f"p{p}.{cfg}", _latbw_point, {"cfg": cfg, "procs": p})
        for p in procs
        for cfg in ("native-ipoib", "vnetp-ipoib")
    ]
    values = run_points(points, engine)
    table = Table(
        [
            "procs",
            "nat pp-lat (us)", "vp pp-lat (us)",
            "nat pp-bw (MB/s)", "vp pp-bw (MB/s)",
            "nat rring-bw", "vp rring-bw",
        ],
        title="HPCC latency-bandwidth over IPoIB",
    )
    result = ExperimentResult("fig15", "HPCC latency-bandwidth on IPoIB", tables=[table])
    for i, p in enumerate(procs):
        rn, rv = values[2 * i], values[2 * i + 1]
        table.add(
            p,
            rn["pingpong_lat_us"], rv["pingpong_lat_us"],
            rn["pingpong_bw_MBps"], rv["pingpong_bw_MBps"],
            rn["random_ring_bw_MBps"], rv["random_ring_bw_MBps"],
        )
        result.rows.append({"procs": p, "native": rn, "vnetp": rv})
    result.notes.append(
        "paper anchors: pingpong 70-75 % of native bw at 3-4x latency; "
        "rings ~50-55 % of native bw"
    )
    return result


def fig16(procs=PROC_COUNTS, quick: bool = False,
          engine: Engine | None = None) -> ExperimentResult:
    """Fig. 16: HPCC applications over IPoIB."""
    if quick:
        procs = (8, 24)
    points = [
        Point("fig16", f"p{p}.{cfg}", _hpcc_apps_point, {"cfg": cfg, "procs": p})
        for p in procs
        for cfg in ("native-ipoib", "vnetp-ipoib")
    ]
    values = run_points(points, engine)
    table = Table(
        ["procs", "nat GUPs", "vp GUPs", "ratio", "nat Gflops", "vp Gflops", "ratio"],
        title="HPCC applications over IPoIB",
    )
    result = ExperimentResult("fig16", "HPCC applications on IPoIB", tables=[table])
    for i, p in enumerate(procs):
        n, v = values[2 * i], values[2 * i + 1]
        table.add(p, n["gups"], v["gups"], v["gups"] / n["gups"],
                  n["gflops"], v["gflops"], v["gflops"] / n["gflops"])
        result.rows.append(
            {
                "procs": p,
                "gups_native": n["gups"], "gups_vnetp": v["gups"],
                "fft_native": n["gflops"], "fft_vnetp": v["gflops"],
            }
        )
    result.notes.append(
        "paper anchors: RandomAccess 75-80 % of native; FFT 30-45 % of native"
    )
    return result


def sec62_gemini(quick: bool = False,
                 engine: Engine | None = None) -> ExperimentResult:
    """Sect. 6.2: VNET/P over Cray Gemini's IPoG layer."""
    tcp_bytes = (30 if quick else 80) * units.MB
    buf = 4 * units.MB
    rn, rv = run_points(
        [
            Point("sec6.2-gemini", "native", _ttcp_tcp_point,
                  {"builder": build_native_gemini, "tcp_bytes": tcp_bytes,
                   "sndbuf": buf, "rcvbuf": buf}),
            Point("sec6.2-gemini", "vnetp", _ttcp_tcp_point,
                  {"builder": build_vnetp_gemini, "tcp_bytes": tcp_bytes,
                   "sndbuf": buf, "rcvbuf": buf}),
        ],
        engine,
    )
    table = Table(["configuration", "ttcp TCP (GB/s)"], title="Gemini IPoG")
    result = ExperimentResult("sec6.2-gemini", "VNET/P over Cray Gemini", tables=[table])
    table.add("Native IPoG", rn["MBps"] / 1000)
    table.add("VNET/P on IPoG", rv["MBps"] / 1000)
    result.rows.append({"native_GBps": rn["MBps"] / 1000, "vnetp_GBps": rv["MBps"] / 1000})
    result.notes.append(
        "paper anchor: VNET/P ~1.6 GB/s (13 Gbps), preliminary, against a "
        "40 Gbps theoretical peak"
    )
    return result


def _kitten_linux_ping_point(count: int) -> dict:
    """Ping on the Linux embedding (10G NIC) for the jitter comparison."""
    from ...config import NETEFFECT_10G
    from ..testbed import build_vnetp

    return _ping_point(build_vnetp, count, nic_params=NETEFFECT_10G)


def sec63_kitten(quick: bool = False,
                 engine: Engine | None = None) -> ExperimentResult:
    """Sect. 6.3: VNET/P for Kitten over InfiniBand (bridge service VM),
    including the low-jitter comparison against the Linux embedding."""
    tcp_bytes = (10 if quick else 30) * units.MB
    count = 30 if quick else 100
    rn, rk, pl, pk = run_points(
        [
            Point("sec6.3-kitten", "tcp.native", _ttcp_tcp_point,
                  {"builder": build_native_ipoib, "tcp_bytes": tcp_bytes}),
            Point("sec6.3-kitten", "tcp.kitten", _ttcp_tcp_point,
                  {"builder": build_vnetp_kitten, "tcp_bytes": tcp_bytes}),
            Point("sec6.3-kitten", "ping.linux", _kitten_linux_ping_point,
                  {"count": count}),
            Point("sec6.3-kitten", "ping.kitten", _ping_point,
                  {"builder": build_vnetp_kitten, "count": count}),
        ],
        engine,
    )
    table = Table(["configuration", "ttcp TCP (Gbps)"], title="Kitten / InfiniBand, 8900 B payloads")
    jitter = Table(
        ["embedding", "ping RTT (us)", "jitter stdev (us)"],
        title="Latency jitter: Linux vs Kitten embedding",
    )
    result = ExperimentResult("sec6.3-kitten", "VNET/P for Kitten", tables=[table, jitter])
    table.add("Native IPoIB (RC mode)", rn["gbps"])
    table.add("VNET/P on Kitten (bridge VM)", rk["gbps"])
    jitter.add("Linux host", pl["avg_rtt_us"], pl["stdev_ns"] / 1000)
    jitter.add("Kitten LWK", pk["avg_rtt_us"], pk["stdev_ns"] / 1000)
    result.rows.append(
        {
            "native_gbps": rn["gbps"],
            "kitten_gbps": rk["gbps"],
            "linux_jitter_us": pl["stdev_ns"] / 1000,
            "kitten_jitter_us": pk["stdev_ns"] / 1000,
        }
    )
    result.notes.append(
        "paper anchors: 4.0 Gbps vs 6.5 Gbps native; Kitten provides "
        "'very little jitter in latency compared to the Linux version'"
    )
    return result
