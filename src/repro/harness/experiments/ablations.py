"""Ablation experiments for the design choices Sect. 4 calls out:
dispatch modes (Fig. 6), yield strategies (Sect. 4.8), MTU selection
(Sect. 4.4), and the routing cache (Sect. 4.3)."""

from __future__ import annotations

from ... import units
from ...apps.ping import run_ping
from ...apps.ttcp import run_ttcp_udp
from ...config import (
    NETEFFECT_10G,
    VnetMode,
    YieldStrategy,
    default_tuning,
)
from ...vnet.overlay import ANY_MAC, DestType, RouteEntry
from ..report import ExperimentResult, Table
from ..testbed import build_vnetp

__all__ = [
    "abl_adaptive_mode",
    "abl_yield_strategy",
    "abl_mtu",
    "abl_routing_cache",
    "abl_vnetp_plus",
]


def abl_adaptive_mode(quick: bool = False) -> ExperimentResult:
    """Guest-driven vs VMM-driven vs adaptive: latency AND throughput.

    The point of Fig. 6's adaptive controller: guest-driven wins on
    latency, VMM-driven wins on throughput, adaptive gets both.
    """
    count = 10 if quick else 50
    duration = (5 if quick else 15) * units.MS
    table = Table(
        ["mode", "ping RTT (us)", "UDP goodput (Gbps)", "kick exits/pkt"],
        title="Dispatch-mode ablation (10G)",
    )
    result = ExperimentResult("abl-adaptive", "dispatch mode ablation", tables=[table])
    for mode in (VnetMode.GUEST_DRIVEN, VnetMode.VMM_DRIVEN, VnetMode.ADAPTIVE):
        tuning = default_tuning(mode=mode)
        tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
        ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=count)
        tb2 = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
        udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=duration)
        nic = tb2.endpoints[0].vm.virtio_nics[0]
        kicks_per_pkt = nic.tx_kicks / max(1, nic.tx_packets)
        table.add(mode.value, ping.avg_rtt_us, udp.gbps, kicks_per_pkt)
        result.rows.append(
            {
                "mode": mode.value,
                "rtt_us": ping.avg_rtt_us,
                "udp_gbps": udp.gbps,
                "kicks_per_pkt": kicks_per_pkt,
            }
        )
    result.notes.append(
        "expected: guest-driven = lowest latency; VMM-driven = highest "
        "throughput with ~0 kick exits; adaptive matches both"
    )
    return result


def abl_yield_strategy(quick: bool = False) -> ExperimentResult:
    """Immediate vs timed vs adaptive yield: the latency/CPU tradeoff of
    Sect. 4.8 (Table 1 uses immediate yield to probe performance limits)."""
    count = 10 if quick else 50
    table = Table(
        ["strategy", "ping RTT (us)", "UDP goodput (Gbps)"],
        title="Yield-strategy ablation (10G)",
    )
    result = ExperimentResult("abl-yield", "yield strategy ablation", tables=[table])
    for strategy in (YieldStrategy.IMMEDIATE, YieldStrategy.TIMED, YieldStrategy.ADAPTIVE):
        tuning = default_tuning(yield_strategy=strategy)
        tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
        ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=count)
        tb2 = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
        udp = run_ttcp_udp(
            tb2.endpoints[0], tb2.endpoints[1], duration_ns=(5 if quick else 10) * units.MS
        )
        table.add(strategy.value, ping.avg_rtt_us, udp.gbps)
        result.rows.append(
            {"strategy": strategy.value, "rtt_us": ping.avg_rtt_us, "udp_gbps": udp.gbps}
        )
    result.notes.append(
        "expected: timed yield adds ~Tsleep/2 per wakeup to latency; "
        "throughput is unaffected (loops never sleep under load)"
    )
    return result


def abl_mtu(mtus=(1458, 4000, 8958, 9100, 16000), quick: bool = False) -> ExperimentResult:
    """Guest MTU sweep over a 9000-byte physical MTU.

    Shows both effects of Sect. 4.4: throughput grows with MTU while
    encapsulated packets fit, then fragmentation overhead appears once
    guest MTU + 42 exceeds the physical MTU.
    """
    duration = (8 if quick else 20) * units.MS
    table = Table(
        ["guest MTU (B)", "fits w/o frag", "UDP goodput (Gbps)"],
        title="Guest MTU sweep (10G, 9000 B physical MTU)",
    )
    result = ExperimentResult("abl-mtu", "MTU and fragmentation", tables=[table])
    for mtu in mtus:
        fits = mtu + 42 <= 9000
        # VMM-driven isolates the data-path effect from kick-exit noise.
        tb = build_vnetp(
            nic_params=NETEFFECT_10G,
            guest_mtu=mtu,
            tuning=default_tuning(mode=VnetMode.VMM_DRIVEN),
        )
        udp = run_ttcp_udp(
            tb.endpoints[0], tb.endpoints[1], duration_ns=duration, write_size=60_000
        )
        table.add(mtu, "yes" if fits else "no", udp.gbps)
        result.rows.append({"mtu": mtu, "fits": fits, "udp_gbps": udp.gbps})
    result.notes.append(
        "expected: goodput rises with MTU, with a fragmentation penalty "
        "once encapsulation overflows the physical MTU"
    )
    return result


def abl_routing_cache(table_sizes=(1, 64, 256), quick: bool = False) -> ExperimentResult:
    """Routing cache on/off with growing routing tables.

    The table scan is linear (Sect. 4.3); the hash cache keeps the
    common case constant time.  This measures the data-path impact.
    """
    duration = (5 if quick else 10) * units.MS
    table = Table(
        ["routes", "cache", "ping RTT (us)", "UDP goodput (Gbps)"],
        title="Routing-cache ablation (10G)",
    )
    result = ExperimentResult("abl-cache", "routing cache ablation", tables=[table])
    for n_routes in table_sizes:
        for cache in (True, False):
            tuning = default_tuning(routing_cache=cache)
            tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
            # Pad the routing tables with inert entries ahead of the real ones.
            for core in tb.cores:
                for i in range(n_routes):
                    core.routing.entries.insert(
                        0,
                        RouteEntry(
                            src_mac=f"0e:00:00:00:{i >> 8:02x}:{i & 0xff:02x}",
                            dst_mac=ANY_MAC,
                            dest_type=DestType.LINK,
                            dest_name=next(iter(core.links)),
                        ),
                    )
                core.routing._cache.clear()
            ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=10)
            tb.cores[0].routing._cache.clear()
            udp = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=duration)
            hit_rate = tb.cores[0].routing.cache_hit_rate
            table.add(n_routes, "on" if cache else "off", ping.avg_rtt_us, udp.gbps)
            result.rows.append(
                {
                    "routes": n_routes,
                    "cache": cache,
                    "rtt_us": ping.avg_rtt_us,
                    "udp_gbps": udp.gbps,
                    "hit_rate": hit_rate,
                }
            )
    result.notes.append(
        "expected: without the cache, throughput/latency degrade as the "
        "table grows; with it they are flat"
    )
    return result


def abl_vnetp_plus(quick: bool = False) -> ExperimentResult:
    """VNET/P+ techniques (Cui et al., SC'12): optimistic interrupts and
    cut-through forwarding.

    The companion paper reports that these bring 10 Gbps throughput to
    near-native and cut the latency overhead to 1.2-1.3x; Sect. 6.3 says
    they are being back-ported into the Linux VNET/P.  This ablation
    turns them on incrementally.
    """
    from ..testbed import build_native

    count = 10 if quick else 50
    duration = (8 if quick else 20) * units.MS
    table = Table(
        ["configuration", "ping RTT (us)", "UDP goodput (Gbps)", "% of native UDP"],
        title="VNET/P+ techniques (10G)",
    )
    result = ExperimentResult("abl-vnetp-plus", "optimistic interrupts + cut-through", tables=[table])
    tn = build_native(nic_params=NETEFFECT_10G)
    native_udp = run_ttcp_udp(tn.endpoints[0], tn.endpoints[1], duration_ns=duration)
    configs = [
        ("VNET/P", default_tuning()),
        ("+ cut-through", default_tuning(cut_through=True)),
        ("+ optimistic irq", default_tuning(cut_through=True, optimistic_interrupts=True)),
    ]
    for label, tuning in configs:
        tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
        ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=count)
        tb2 = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
        udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=duration)
        table.add(label, ping.avg_rtt_us, udp.gbps, f"{udp.gbps * 1000 / native_udp.mbps:.0%}")
        result.rows.append(
            {
                "config": label,
                "rtt_us": ping.avg_rtt_us,
                "udp_gbps": udp.gbps,
                "native_fraction": udp.gbps * 1000 / native_udp.mbps,
            }
        )
    result.notes.append(
        "expected: cut-through lifts 10G throughput toward native "
        "(VNET/P+ reports native); optimistic interrupts trim latency"
    )
    return result
