"""Ablation experiments for the design choices Sect. 4 calls out:
dispatch modes (Fig. 6), yield strategies (Sect. 4.8), MTU selection
(Sect. 4.4), and the routing cache (Sect. 4.3).

Every ablation is expressed as independent :class:`~repro.exec.Point`\\ s
so the execution engine can fan configurations out across worker
processes and cache unchanged points; cross-point derived values (the
native fraction in :func:`abl_vnetp_plus`) are computed at assembly
time from the point values.
"""

from __future__ import annotations

from ... import units
from ...apps.ping import run_ping
from ...apps.ttcp import run_ttcp_udp
from ...config import (
    NETEFFECT_10G,
    VnetMode,
    VnetTuning,
    YieldStrategy,
    default_tuning,
)
from ...exec import Engine, Point, run_points
from ...vnet.overlay import ANY_MAC, DestType, RouteEntry
from ..report import ExperimentResult, Table
from ..testbed import build_native, build_vnetp

__all__ = [
    "abl_adaptive_mode",
    "abl_yield_strategy",
    "abl_mtu",
    "abl_routing_cache",
    "abl_vnetp_plus",
]


def _adaptive_mode_point(mode: VnetMode, ping_count: int, duration_ns: int) -> dict:
    tuning = default_tuning(mode=mode)
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=ping_count)
    tb2 = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=duration_ns)
    nic = tb2.endpoints[0].vm.virtio_nics[0]
    kicks_per_pkt = nic.tx_kicks / max(1, nic.tx_packets)
    return {
        "mode": mode.value,
        "rtt_us": ping.avg_rtt_us,
        "udp_gbps": udp.gbps,
        "kicks_per_pkt": kicks_per_pkt,
    }


def abl_adaptive_mode(quick: bool = False, engine: Engine | None = None) -> ExperimentResult:
    """Guest-driven vs VMM-driven vs adaptive: latency AND throughput.

    The point of Fig. 6's adaptive controller: guest-driven wins on
    latency, VMM-driven wins on throughput, adaptive gets both.
    """
    count = 10 if quick else 50
    duration = (5 if quick else 15) * units.MS
    rows = run_points(
        [
            Point(
                "abl-adaptive",
                mode.value,
                _adaptive_mode_point,
                {"mode": mode, "ping_count": count, "duration_ns": duration},
            )
            for mode in (VnetMode.GUEST_DRIVEN, VnetMode.VMM_DRIVEN, VnetMode.ADAPTIVE)
        ],
        engine,
    )
    table = Table(
        ["mode", "ping RTT (us)", "UDP goodput (Gbps)", "kick exits/pkt"],
        title="Dispatch-mode ablation (10G)",
    )
    result = ExperimentResult("abl-adaptive", "dispatch mode ablation", tables=[table])
    for row in rows:
        table.add(row["mode"], row["rtt_us"], row["udp_gbps"], row["kicks_per_pkt"])
        result.rows.append(row)
    result.notes.append(
        "expected: guest-driven = lowest latency; VMM-driven = highest "
        "throughput with ~0 kick exits; adaptive matches both"
    )
    return result


def _yield_point(strategy: YieldStrategy, ping_count: int, duration_ns: int) -> dict:
    tuning = default_tuning(yield_strategy=strategy)
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=ping_count)
    tb2 = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=duration_ns)
    return {"strategy": strategy.value, "rtt_us": ping.avg_rtt_us, "udp_gbps": udp.gbps}


def abl_yield_strategy(quick: bool = False, engine: Engine | None = None) -> ExperimentResult:
    """Immediate vs timed vs adaptive yield: the latency/CPU tradeoff of
    Sect. 4.8 (Table 1 uses immediate yield to probe performance limits)."""
    count = 10 if quick else 50
    duration = (5 if quick else 10) * units.MS
    rows = run_points(
        [
            Point(
                "abl-yield",
                strategy.value,
                _yield_point,
                {"strategy": strategy, "ping_count": count, "duration_ns": duration},
            )
            for strategy in (
                YieldStrategy.IMMEDIATE, YieldStrategy.TIMED, YieldStrategy.ADAPTIVE
            )
        ],
        engine,
    )
    table = Table(
        ["strategy", "ping RTT (us)", "UDP goodput (Gbps)"],
        title="Yield-strategy ablation (10G)",
    )
    result = ExperimentResult("abl-yield", "yield strategy ablation", tables=[table])
    for row in rows:
        table.add(row["strategy"], row["rtt_us"], row["udp_gbps"])
        result.rows.append(row)
    result.notes.append(
        "expected: timed yield adds ~Tsleep/2 per wakeup to latency; "
        "throughput is unaffected (loops never sleep under load)"
    )
    return result


def _mtu_point(mtu: int, duration_ns: int) -> dict:
    fits = mtu + 42 <= 9000
    # VMM-driven isolates the data-path effect from kick-exit noise.
    tb = build_vnetp(
        nic_params=NETEFFECT_10G,
        guest_mtu=mtu,
        tuning=default_tuning(mode=VnetMode.VMM_DRIVEN),
    )
    udp = run_ttcp_udp(
        tb.endpoints[0], tb.endpoints[1], duration_ns=duration_ns, write_size=60_000
    )
    return {"mtu": mtu, "fits": fits, "udp_gbps": udp.gbps}


def abl_mtu(mtus=(1458, 4000, 8958, 9100, 16000), quick: bool = False,
            engine: Engine | None = None) -> ExperimentResult:
    """Guest MTU sweep over a 9000-byte physical MTU.

    Shows both effects of Sect. 4.4: throughput grows with MTU while
    encapsulated packets fit, then fragmentation overhead appears once
    guest MTU + 42 exceeds the physical MTU.
    """
    duration = (8 if quick else 20) * units.MS
    rows = run_points(
        [
            Point("abl-mtu", f"mtu{mtu}", _mtu_point,
                  {"mtu": mtu, "duration_ns": duration})
            for mtu in mtus
        ],
        engine,
    )
    table = Table(
        ["guest MTU (B)", "fits w/o frag", "UDP goodput (Gbps)"],
        title="Guest MTU sweep (10G, 9000 B physical MTU)",
    )
    result = ExperimentResult("abl-mtu", "MTU and fragmentation", tables=[table])
    for row in rows:
        table.add(row["mtu"], "yes" if row["fits"] else "no", row["udp_gbps"])
        result.rows.append(row)
    result.notes.append(
        "expected: goodput rises with MTU, with a fragmentation penalty "
        "once encapsulation overflows the physical MTU"
    )
    return result


def _routing_cache_point(n_routes: int, cache: bool, duration_ns: int) -> dict:
    tuning = default_tuning(routing_cache=cache)
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    # Pad the routing tables with inert entries (exact-src, any-dst:
    # lower specificity than every real route, so selection is
    # unchanged while the charged scan cost grows with table size).
    for core in tb.cores:
        core.routing.load(
            [
                RouteEntry(
                    src_mac=f"0e:00:00:00:{i >> 8:02x}:{i & 0xff:02x}",
                    dst_mac=ANY_MAC,
                    dest_type=DestType.LINK,
                    dest_name=next(iter(core.links)),
                )
                for i in range(n_routes)
            ]
        )
    ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=10)
    tb.cores[0].routing._cache.clear()
    udp = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1], duration_ns=duration_ns)
    hit_rate = tb.cores[0].routing.cache_hit_rate
    return {
        "routes": n_routes,
        "cache": cache,
        "rtt_us": ping.avg_rtt_us,
        "udp_gbps": udp.gbps,
        "hit_rate": hit_rate,
    }


def abl_routing_cache(table_sizes=(1, 64, 256), quick: bool = False,
                      engine: Engine | None = None) -> ExperimentResult:
    """Routing cache on/off with growing routing tables.

    The table scan is linear (Sect. 4.3); the hash cache keeps the
    common case constant time.  This measures the data-path impact.
    """
    duration = (5 if quick else 10) * units.MS
    rows = run_points(
        [
            Point(
                "abl-cache",
                f"r{n_routes}.{'on' if cache else 'off'}",
                _routing_cache_point,
                {"n_routes": n_routes, "cache": cache, "duration_ns": duration},
            )
            for n_routes in table_sizes
            for cache in (True, False)
        ],
        engine,
    )
    table = Table(
        ["routes", "cache", "ping RTT (us)", "UDP goodput (Gbps)"],
        title="Routing-cache ablation (10G)",
    )
    result = ExperimentResult("abl-cache", "routing cache ablation", tables=[table])
    for row in rows:
        table.add(row["routes"], "on" if row["cache"] else "off",
                  row["rtt_us"], row["udp_gbps"])
        result.rows.append(row)
    result.notes.append(
        "expected: without the cache, throughput/latency degrade as the "
        "table grows; with it they are flat"
    )
    return result


def _vnetp_plus_native_point(duration_ns: int) -> dict:
    tn = build_native(nic_params=NETEFFECT_10G)
    udp = run_ttcp_udp(tn.endpoints[0], tn.endpoints[1], duration_ns=duration_ns)
    return {"udp_mbps": udp.mbps}


def _vnetp_plus_point(label: str, tuning: VnetTuning,
                      ping_count: int, duration_ns: int) -> dict:
    tb = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=ping_count)
    tb2 = build_vnetp(nic_params=NETEFFECT_10G, tuning=tuning)
    udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=duration_ns)
    return {"config": label, "rtt_us": ping.avg_rtt_us, "udp_gbps": udp.gbps}


def abl_vnetp_plus(quick: bool = False, engine: Engine | None = None) -> ExperimentResult:
    """VNET/P+ techniques (Cui et al., SC'12): optimistic interrupts and
    cut-through forwarding.

    The companion paper reports that these bring 10 Gbps throughput to
    near-native and cut the latency overhead to 1.2-1.3x; Sect. 6.3 says
    they are being back-ported into the Linux VNET/P.  This ablation
    turns them on incrementally.
    """
    count = 10 if quick else 50
    duration = (8 if quick else 20) * units.MS
    configs = [
        ("VNET/P", default_tuning()),
        ("+ cut-through", default_tuning(cut_through=True)),
        ("+ optimistic irq", default_tuning(cut_through=True, optimistic_interrupts=True)),
    ]
    points = [
        Point("abl-vnetp-plus", "native-baseline", _vnetp_plus_native_point,
              {"duration_ns": duration})
    ] + [
        Point(
            "abl-vnetp-plus",
            label,
            _vnetp_plus_point,
            {"label": label, "tuning": tuning,
             "ping_count": count, "duration_ns": duration},
        )
        for label, tuning in configs
    ]
    values = run_points(points, engine)
    native_udp_mbps = values[0]["udp_mbps"]
    table = Table(
        ["configuration", "ping RTT (us)", "UDP goodput (Gbps)", "% of native UDP"],
        title="VNET/P+ techniques (10G)",
    )
    result = ExperimentResult("abl-vnetp-plus", "optimistic interrupts + cut-through", tables=[table])
    for row in values[1:]:
        fraction = row["udp_gbps"] * 1000 / native_udp_mbps
        table.add(row["config"], row["rtt_us"], row["udp_gbps"], f"{fraction:.0%}")
        result.rows.append(
            {
                "config": row["config"],
                "rtt_us": row["rtt_us"],
                "udp_gbps": row["udp_gbps"],
                "native_fraction": fraction,
            }
        )
    result.notes.append(
        "expected: cut-through lifts 10G throughput toward native "
        "(VNET/P+ reports native); optimistic interrupts trim latency"
    )
    return result
