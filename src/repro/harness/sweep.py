"""Parameter sweeps: which cost dominates an observed behaviour?

The calibration (docs/calibration.md) claims one knob per phenomenon;
this module lets you check by sweeping any cost parameter across a grid
and measuring the standard microbenchmarks.  Sweeps rebuild the whole
testbed per point (parameters are frozen dataclasses), so points are
independent and deterministic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from .. import units
from ..apps.ping import run_ping
from ..apps.ttcp import run_ttcp_udp
from ..config import HostParams, NICParams, default_host
from .report import Table
from .testbed import Testbed, build_vnetp

__all__ = ["SweepPoint", "sweep_host_param", "set_nested"]


@dataclass
class SweepPoint:
    """One grid point: the parameter value and the measured metrics."""

    value: Any
    rtt_us: float
    udp_gbps: float


def set_nested(host: HostParams, path: str, value: Any) -> HostParams:
    """Return host params with ``path`` (e.g. ``"vnet_costs.copy_bw_Bps"``)
    replaced by ``value``.  Works on the frozen dataclass tree."""
    parts = path.split(".")
    if len(parts) == 1:
        return dataclasses.replace(host, **{parts[0]: value})
    if len(parts) != 2:
        raise ValueError(f"unsupported parameter path {path!r}")
    group_name, field_name = parts
    group = getattr(host, group_name)
    if not hasattr(group, field_name):
        raise AttributeError(f"{group_name} has no field {field_name!r}")
    new_group = dataclasses.replace(group, **{field_name: value})
    return dataclasses.replace(host, **{group_name: new_group})


def sweep_host_param(
    path: str,
    values: Sequence[Any],
    nic_params: NICParams,
    builder: Callable[..., Testbed] = build_vnetp,
    ping_count: int = 20,
    udp_ns: int = 8 * units.MS,
    **builder_kwargs,
) -> list[SweepPoint]:
    """Sweep one host cost parameter; returns measured points in order."""
    points = []
    for value in values:
        host = set_nested(default_host(), path, value)
        tb = builder(nic_params=nic_params, host_params=host, **builder_kwargs)
        ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=ping_count)
        tb2 = builder(nic_params=nic_params, host_params=host, **builder_kwargs)
        udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=udp_ns)
        points.append(SweepPoint(value=value, rtt_us=ping.avg_rtt_us, udp_gbps=udp.gbps))
    return points


def render_sweep(path: str, points: list[SweepPoint]) -> str:
    table = Table([path, "ping RTT (us)", "UDP (Gbps)"], title=f"sweep: {path}")
    for p in points:
        table.add(p.value, p.rtt_us, p.udp_gbps)
    return table.render()
