"""Parameter sweeps: which cost dominates an observed behaviour?

The calibration (docs/calibration.md) claims one knob per phenomenon;
this module lets you check by sweeping any cost parameter across a grid
and measuring the standard microbenchmarks.  Sweeps rebuild the whole
testbed per point (parameters are frozen dataclasses), so points are
independent and deterministic — and, via :class:`repro.exec.Engine`,
parallelisable and cacheable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from .. import units
from ..apps.ping import run_ping
from ..apps.ttcp import run_ttcp_udp
from ..config import HostParams, NICParams, default_host
from ..exec import Engine, Point, run_points
from .report import Table
from .testbed import Testbed, build_vnetp

__all__ = ["SweepPoint", "sweep_host_param", "set_nested"]


@dataclass
class SweepPoint:
    """One grid point: the parameter value and the measured metrics."""

    value: Any
    rtt_us: float
    udp_gbps: float


def set_nested(host: HostParams, path: str, value: Any) -> HostParams:
    """Return host params with ``path`` (e.g. ``"vnet_costs.copy_bw_Bps"``)
    replaced by ``value``.  Works on the frozen dataclass tree at any
    depth: each dotted component except the last names a nested
    dataclass, and every level is rebuilt with ``dataclasses.replace``.
    """
    parts = path.split(".")
    if not all(parts):
        raise ValueError(f"malformed parameter path {path!r}")
    nodes = [host]
    for part in parts[:-1]:
        node = getattr(nodes[-1], part)
        if not dataclasses.is_dataclass(node):
            raise ValueError(
                f"path component {part!r} in {path!r} is not a nested dataclass"
            )
        nodes.append(node)
    if not hasattr(nodes[-1], parts[-1]):
        raise AttributeError(
            f"{type(nodes[-1]).__name__} has no field {parts[-1]!r}"
        )
    rebuilt = dataclasses.replace(nodes[-1], **{parts[-1]: value})
    for node, part in zip(reversed(nodes[:-1]), reversed(parts[:-1])):
        rebuilt = dataclasses.replace(node, **{part: rebuilt})
    return rebuilt


def _sweep_point(
    path: str,
    value: Any,
    nic_params: NICParams,
    builder: Callable[..., Testbed],
    ping_count: int,
    udp_ns: int,
    builder_kwargs: dict,
) -> dict:
    """Measure one grid point: ping RTT + UDP throughput at ``path=value``."""
    host = set_nested(default_host(), path, value)
    tb = builder(nic_params=nic_params, host_params=host, **builder_kwargs)
    ping = run_ping(tb.endpoints[0], tb.endpoints[1], count=ping_count)
    tb2 = builder(nic_params=nic_params, host_params=host, **builder_kwargs)
    udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=udp_ns)
    return {"rtt_us": ping.avg_rtt_us, "udp_gbps": udp.gbps}


def sweep_host_param(
    path: str,
    values: Sequence[Any],
    nic_params: NICParams,
    builder: Callable[..., Testbed] = build_vnetp,
    ping_count: int = 20,
    udp_ns: int = 8 * units.MS,
    engine: Optional[Engine] = None,
    **builder_kwargs,
) -> list[SweepPoint]:
    """Sweep one host cost parameter; returns measured points in order."""
    measured = run_points(
        [
            Point(
                "sweep",
                f"{path}={value!r}",
                _sweep_point,
                {
                    "path": path,
                    "value": value,
                    "nic_params": nic_params,
                    "builder": builder,
                    "ping_count": ping_count,
                    "udp_ns": udp_ns,
                    "builder_kwargs": dict(builder_kwargs),
                },
            )
            for value in values
        ],
        engine,
    )
    return [
        SweepPoint(value=value, rtt_us=m["rtt_us"], udp_gbps=m["udp_gbps"])
        for value, m in zip(values, measured)
    ]


def render_sweep(path: str, points: list[SweepPoint]) -> str:
    table = Table([path, "ping RTT (us)", "UDP (Gbps)"], title=f"sweep: {path}")
    for p in points:
        table.add(p.value, p.rtt_us, p.udp_gbps)
    return table.render()
