"""Testbed builders: the paper's hardware/software configurations in a box.

Each builder returns a :class:`Testbed` with ready-to-use *endpoints*
(the stacks benchmarks talk to): native host stacks for the Native
configurations, guest stacks inside Palacios VMs for the VNET/P and
VNET/U configurations.

Conventions: host IPs are ``10.0.0.x``, guest IPs ``172.16.0.x``; guest
MTU is clamped so encapsulated packets fit the physical MTU without
fragmentation (Sect. 5.2, "UDP and TCP with a large MTU").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..config import (
    HostParams,
    NICParams,
    VnetTuning,
    default_host,
)
from ..host.machine import Host
from ..hw.link import Link
from ..hw.switch import Switch, SwitchParams
from ..palacios.vmm import PalaciosVMM, VirtualMachine
from ..proto.ethernet import mac_addr
from ..proto.stack import Stack
from ..sim import Simulator
from ..vnet.bridge import VnetBridge
from ..vnet.control import VnetControl
from ..vnet.core import VnetCore
from ..vnet.encap import ENCAP_OVERHEAD
from ..vnet.overlay import DEFAULT_VNET_PORT, InterfaceSpec
from ..vnet.vnetu import DEFAULT_VNETU_PORT, VnetUDaemon

__all__ = ["Endpoint", "Testbed", "build_native", "build_vnetp", "build_vnetu"]

GUEST_MAC_PREFIX = 0x5A


@dataclass
class Endpoint:
    """What a benchmark binds to: one communicating stack."""

    stack: Stack
    ip: str
    host: Host
    vm: Optional[VirtualMachine] = None

    @property
    def is_virtual(self) -> bool:
        return self.vm is not None


@dataclass
class Testbed:
    """A constructed configuration: simulator, hosts, endpoints."""

    sim: Simulator
    config: str
    hosts: list[Host]
    endpoints: list[Endpoint]
    switch: Optional[Switch] = None
    cores: list[VnetCore] = field(default_factory=list)
    daemons: list[VnetUDaemon] = field(default_factory=list)
    controls: list[VnetControl] = field(default_factory=list)


def _wire_physical(
    sim: Simulator, hosts: list[Host], switch_params: Optional[SwitchParams]
) -> Optional[Switch]:
    """Direct cable for two hosts, a switch for more (as in Sect. 5.1/5.4)."""
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.add_neighbor(b)
    if len(hosts) == 2 and switch_params is None:
        Link(sim, hosts[0].nic, hosts[1].nic)
        return None
    switch = Switch(sim, switch_params or SwitchParams(port_rate_bps=hosts[0].nic.params.rate_bps))
    for h in hosts:
        switch.attach(h.nic)
    return switch


def build_native(
    n_hosts: int = 2,
    nic_params: Optional[NICParams] = None,
    host_params: Optional[HostParams] = None,
    switch_params: Optional[SwitchParams] = None,
    sim: Optional[Simulator] = None,
) -> Testbed:
    """The Native configuration: BusyBox Linux directly on the hardware."""
    from ..config import NETEFFECT_10G

    sim = sim or Simulator()
    nic_params = nic_params or NETEFFECT_10G
    hosts = [
        Host(
            sim,
            host_params or default_host(f"h{i}"),
            nic_params,
            ip=f"10.0.0.{i + 1}",
            name=f"h{i}",
        )
        for i in range(n_hosts)
    ]
    switch = _wire_physical(sim, hosts, switch_params)
    endpoints = [Endpoint(stack=h.stack, ip=h.ip, host=h) for h in hosts]
    return Testbed(sim=sim, config="native", hosts=hosts, endpoints=endpoints, switch=switch)


def guest_mtu_for(nic_params: NICParams, tuning: VnetTuning) -> int:
    """Largest guest MTU whose encapsulation avoids fragmentation."""
    return min(tuning.vnet_mtu, nic_params.max_mtu - ENCAP_OVERHEAD)


def build_vnetp(
    n_hosts: int = 2,
    nic_params: Optional[NICParams] = None,
    host_params: Optional[HostParams] = None,
    tuning: Optional[VnetTuning] = None,
    switch_params: Optional[SwitchParams] = None,
    guest_mtu: Optional[int] = None,
    direct_receive: bool = False,
    vms_per_host: int = 1,
    sim: Optional[Simulator] = None,
) -> Testbed:
    """The VNET/P configuration (Fig. 1): guest VMs with virtio NICs,
    VNET/P core + bridge per host, full UDP-encapsulated overlay mesh.

    ``vms_per_host > 1`` co-locates VMs; traffic between co-located
    guests takes the core's interface-to-interface fast path without
    touching the physical network."""
    from ..config import NETEFFECT_10G

    sim = sim or Simulator()
    nic_params = nic_params or NETEFFECT_10G
    tuning = tuning or VnetTuning()
    mtu = guest_mtu if guest_mtu is not None else guest_mtu_for(nic_params, tuning)
    hosts = []
    vms = []            # flat list, host-major
    vm_host = []        # host index per VM
    cores = []
    controls = []
    n_vms = n_hosts * vms_per_host
    macs = [mac_addr(i + 1, prefix=GUEST_MAC_PREFIX) for i in range(n_vms)]
    for i in range(n_hosts):
        host = Host(
            sim,
            host_params or default_host(f"h{i}"),
            nic_params,
            ip=f"10.0.0.{i + 1}",
            name=f"h{i}",
        )
        vmm = PalaciosVMM(sim, host)
        core = VnetCore(sim, host, tuning=tuning)
        for v in range(vms_per_host):
            idx = i * vms_per_host + v
            vm = vmm.create_vm(f"vm{idx}", guest_ip=f"172.16.0.{idx + 1}")
            nic = vm.attach_virtio_nic(mac=macs[idx], mtu=mtu)
            core.register_interface(InterfaceSpec(name=f"if{v}", mac=macs[idx]), nic)
            vms.append(vm)
            vm_host.append(i)
        VnetBridge(sim, host, core, direct_receive=direct_receive)
        controls.append(VnetControl(sim, core))
        hosts.append(host)
        cores.append(core)
    switch = _wire_physical(sim, hosts, switch_params)
    # Overlay configuration, applied through the control language exactly
    # as VNET/U tools would drive it.
    for i, control in enumerate(controls):
        lines = []
        for j in range(n_hosts):
            if i != j:
                lines.append(f"add link to{j} udp 10.0.0.{j + 1}:{DEFAULT_VNET_PORT}")
        for idx in range(n_vms):
            owner = vm_host[idx]
            if owner == i:
                lines.append(
                    f"add route src any dst {macs[idx]} interface if{idx % vms_per_host}"
                )
            else:
                lines.append(f"add route src any dst {macs[idx]} link to{owner}")
        control.apply_config("\n".join(lines))
    # Guests believe they share a simple Ethernet LAN: static neighbors.
    for i, vm in enumerate(vms):
        for j, other in enumerate(vms):
            if i != j:
                vm.stack.add_neighbor(other.guest_ip, macs[j])
    endpoints = [
        Endpoint(stack=vm.stack, ip=vm.guest_ip, host=hosts[vm_host[i]], vm=vm)
        for i, vm in enumerate(vms)
    ]
    return Testbed(
        sim=sim,
        config="vnet/p",
        hosts=hosts,
        endpoints=endpoints,
        switch=switch,
        cores=cores,
        controls=controls,
    )


def build_vnetu(
    n_hosts: int = 2,
    nic_params: Optional[NICParams] = None,
    host_params: Optional[HostParams] = None,
    switch_params: Optional[SwitchParams] = None,
    guest_mtu: Optional[int] = None,
    sim: Optional[Simulator] = None,
) -> Testbed:
    """The VNET/U baseline: same VMs, user-level daemon data path."""
    from ..config import BROADCOM_1G
    from ..vnet.overlay import DestType, LinkProto, LinkSpec, RouteEntry

    sim = sim or Simulator()
    nic_params = nic_params or BROADCOM_1G
    mtu = guest_mtu if guest_mtu is not None else nic_params.max_mtu - ENCAP_OVERHEAD
    hosts = []
    vms = []
    daemons = []
    macs = [mac_addr(i + 1, prefix=GUEST_MAC_PREFIX) for i in range(n_hosts)]
    for i in range(n_hosts):
        host = Host(
            sim,
            host_params or default_host(f"h{i}"),
            nic_params,
            ip=f"10.0.0.{i + 1}",
            name=f"h{i}",
        )
        vmm = PalaciosVMM(sim, host)
        vm = vmm.create_vm(f"vm{i}", guest_ip=f"172.16.0.{i + 1}")
        nic = vm.attach_virtio_nic(mac=macs[i], mtu=mtu)
        daemon = VnetUDaemon(sim, host)
        daemon.register_interface(InterfaceSpec(name="if0", mac=macs[i]), nic)
        hosts.append(host)
        vms.append(vm)
        daemons.append(daemon)
    switch = _wire_physical(sim, hosts, switch_params)
    for i, daemon in enumerate(daemons):
        for j in range(n_hosts):
            if i == j:
                continue
            daemon.add_link(
                LinkSpec(
                    name=f"to{j}",
                    proto=LinkProto.UDP,
                    dst_ip=f"10.0.0.{j + 1}",
                    dst_port=DEFAULT_VNETU_PORT,
                )
            )
            daemon.add_route(
                RouteEntry(
                    src_mac="any",
                    dst_mac=macs[j],
                    dest_type=DestType.LINK,
                    dest_name=f"to{j}",
                )
            )
        daemon.add_route(
            RouteEntry(
                src_mac="any",
                dst_mac=macs[i],
                dest_type=DestType.INTERFACE,
                dest_name="if0",
            )
        )
    for i, vm in enumerate(vms):
        for j, other in enumerate(vms):
            if i != j:
                vm.stack.add_neighbor(other.guest_ip, macs[j])
    endpoints = [
        Endpoint(stack=vm.stack, ip=vm.guest_ip, host=hosts[i], vm=vm)
        for i, vm in enumerate(vms)
    ]
    return Testbed(
        sim=sim,
        config="vnet/u",
        hosts=hosts,
        endpoints=endpoints,
        switch=switch,
        daemons=daemons,
    )
