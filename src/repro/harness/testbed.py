"""Testbed builders: the paper's hardware/software configurations in a box.

Each builder returns a :class:`Testbed` with ready-to-use *endpoints*
(the stacks benchmarks talk to): native host stacks for the Native
configurations, guest stacks inside Palacios VMs for the VNET/P and
VNET/U configurations.

These are now thin facades over the declarative topology layer: each
builder describes its network with :func:`repro.topo.full_mesh` and
compiles/builds it through :class:`repro.topo.TopologyCompiler`.  The
construction replays the historical hand-rolled order exactly — host
and VM creation sequence, configuration line order, ARP neighbor order —
so golden observables are bit-identical to the pre-refactor builders.
Cluster-scale topologies (fat-tree, torus, multi-rack) go through
:func:`build_topo` or :mod:`repro.topo` directly.

Conventions: host IPs are ``10.0.0.x``, guest IPs ``172.16.0.x``; guest
MTU is clamped so encapsulated packets fit the physical MTU without
fragmentation (Sect. 5.2, "UDP and TCP with a large MTU").
"""

from __future__ import annotations

from typing import Optional

from ..config import HostParams, NICParams, VnetTuning
from ..hw.switch import SwitchParams
from ..sim import Simulator
from ..topo.compiler import Endpoint, Testbed, TopologyCompiler
from ..topo.generators import full_mesh, generate
from ..topo.model import GUEST_MAC_PREFIX, TopoSpec, Topology
from ..vnet.encap import ENCAP_OVERHEAD

__all__ = [
    "Endpoint",
    "Testbed",
    "build_native",
    "build_vnetp",
    "build_vnetu",
    "build_topo",
    "GUEST_MAC_PREFIX",
]


def build_native(
    n_hosts: int = 2,
    nic_params: Optional[NICParams] = None,
    host_params: Optional[HostParams] = None,
    switch_params: Optional[SwitchParams] = None,
    sim: Optional[Simulator] = None,
) -> Testbed:
    """The Native configuration: BusyBox Linux directly on the hardware."""
    compiler = TopologyCompiler(
        full_mesh(n_hosts),
        nic_params=nic_params,
        host_params=host_params,
        switch_params=switch_params,
    )
    return compiler.compile().build(sim=sim, backend="native")


def guest_mtu_for(nic_params: NICParams, tuning: VnetTuning) -> int:
    """Largest guest MTU whose encapsulation avoids fragmentation."""
    return min(tuning.vnet_mtu, nic_params.max_mtu - ENCAP_OVERHEAD)


def build_vnetp(
    n_hosts: int = 2,
    nic_params: Optional[NICParams] = None,
    host_params: Optional[HostParams] = None,
    tuning: Optional[VnetTuning] = None,
    switch_params: Optional[SwitchParams] = None,
    guest_mtu: Optional[int] = None,
    direct_receive: bool = False,
    vms_per_host: int = 1,
    sim: Optional[Simulator] = None,
) -> Testbed:
    """The VNET/P configuration (Fig. 1): guest VMs with virtio NICs,
    VNET/P core + bridge per host, full UDP-encapsulated overlay mesh.

    ``vms_per_host > 1`` co-locates VMs; traffic between co-located
    guests takes the core's interface-to-interface fast path without
    touching the physical network."""
    compiler = TopologyCompiler(
        full_mesh(n_hosts, vms_per_host=vms_per_host),
        nic_params=nic_params,
        host_params=host_params,
        tuning=tuning,
        switch_params=switch_params,
        guest_mtu=guest_mtu,
        direct_receive=direct_receive,
    )
    return compiler.compile().build(sim=sim, backend="vnetp")


def build_vnetu(
    n_hosts: int = 2,
    nic_params: Optional[NICParams] = None,
    host_params: Optional[HostParams] = None,
    switch_params: Optional[SwitchParams] = None,
    guest_mtu: Optional[int] = None,
    sim: Optional[Simulator] = None,
) -> Testbed:
    """The VNET/U baseline: same VMs, user-level daemon data path."""
    compiler = TopologyCompiler(
        full_mesh(n_hosts),
        nic_params=nic_params,
        host_params=host_params,
        switch_params=switch_params,
        guest_mtu=guest_mtu,
    )
    return compiler.compile().build(sim=sim, backend="vnetu")


def build_topo(
    spec: TopoSpec | Topology,
    nic_params: Optional[NICParams] = None,
    host_params: Optional[HostParams] = None,
    tuning: Optional[VnetTuning] = None,
    switch_params: Optional[SwitchParams] = None,
    guest_mtu: Optional[int] = None,
    direct_receive: bool = False,
    sim: Optional[Simulator] = None,
    configure: bool = True,
) -> Testbed:
    """Build a VNET/P testbed for any declarative topology.

    ``spec`` is either a plain-data :class:`~repro.topo.model.TopoSpec`
    (dispatched through :func:`repro.topo.generators.generate`) or an
    already-constructed :class:`~repro.topo.model.Topology`.  With
    ``configure=False`` the overlay configuration is left unapplied for
    :func:`repro.topo.provision.provision` to replay in simulated time.
    """
    topo = generate(spec) if isinstance(spec, TopoSpec) else spec
    compiler = TopologyCompiler(
        topo,
        nic_params=nic_params,
        host_params=host_params,
        tuning=tuning,
        switch_params=switch_params,
        guest_mtu=guest_mtu,
        direct_receive=direct_receive,
    )
    return compiler.compile().build(sim=sim, backend="vnetp", configure=configure)
