"""Packet capture: tcpdump for the simulated network.

Attach a :class:`PacketCapture` to any NIC to record what crosses it —
direction, timestamps, sizes, and the protocol chain (Ethernet / ARP /
IP / UDP / TCP / ICMP / VNET encapsulation) — then render a
tcpdump-style text listing.  Invaluable for debugging overlay paths:
one capture on the physical NIC shows the encapsulated traffic, one on
the virtio NIC shows what the guest believes it is sending.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..hw.nic import PhysicalNIC
from ..proto.arp import ArpMessage
from ..proto.ethernet import EthernetFrame
from ..proto.icmp import ICMPMessage
from ..proto.ip import IPv4Packet
from ..proto.tcp import TcpSegment
from ..proto.udp import UDPDatagram
from ..sim import Simulator
from ..vnet.encap import VnetEncap

__all__ = ["CapturedFrame", "PacketCapture", "describe_frame"]


def describe_frame(frame: Any) -> str:
    """One-line protocol summary of a frame/packet chain."""
    parts: list[str] = []
    obj = frame
    depth = 0
    while obj is not None and depth < 8:
        depth += 1
        if isinstance(obj, EthernetFrame):
            parts.append(f"eth {obj.src}>{obj.dst}")
            obj = obj.payload
        elif isinstance(obj, ArpMessage):
            kind = "who-has" if obj.op == 1 else "is-at"
            parts.append(f"arp {kind} {obj.target_ip} tell {obj.sender_ip}")
            obj = None
        elif isinstance(obj, IPv4Packet):
            frag = " frag" if obj.is_fragment else ""
            parts.append(f"ip {obj.src}>{obj.dst}{frag}")
            obj = obj.payload
        elif isinstance(obj, UDPDatagram):
            parts.append(f"udp {obj.sport}>{obj.dport}")
            obj = obj.payload
        elif isinstance(obj, VnetEncap):
            parts.append(f"vnet[{obj.link_name}]")
            obj = obj.inner
        elif isinstance(obj, TcpSegment):
            flags = "".join(
                f for f, on in (("S", obj.syn), ("F", obj.fin), (".", obj.is_ack)) if on
            )
            parts.append(
                f"tcp {obj.sport}>{obj.dport} [{flags}] seq={obj.seq} "
                f"ack={obj.ack} len={obj.payload_bytes}"
            )
            obj = None
        elif isinstance(obj, ICMPMessage):
            kind = "echo-request" if obj.icmp_type == 8 else "echo-reply"
            parts.append(f"icmp {kind} id={obj.ident} seq={obj.seq}")
            obj = None
        else:
            parts.append(type(obj).__name__.lower())
            obj = None
    return " / ".join(parts)


@dataclass
class CapturedFrame:
    """One captured frame with direction and timestamp."""

    when_ns: int
    direction: str            # "tx" | "rx"
    size: int
    summary: str
    frame: Any

    def render(self) -> str:
        return f"{self.when_ns / 1000:12.3f}us {self.direction} {self.size:5d}B  {self.summary}"


class PacketCapture:
    """Interposes on a PhysicalNIC to record tx and rx frames."""

    def __init__(self, nic: PhysicalNIC, max_frames: int = 10_000):
        self.nic = nic
        self.max_frames = max_frames
        self.frames: list[CapturedFrame] = []
        self.truncated = 0
        self._sim: Simulator = nic.sim
        # Wrap the medium (tx side) and the rx handler.
        if not nic.attached:
            raise RuntimeError(f"{nic.name} must be attached before capturing")
        self._inner_medium = nic._medium
        nic._medium = self._on_tx
        self._inner_rx = nic.rx_handler
        nic.rx_handler = self._on_rx

    def _record(self, direction: str, frame: Any) -> None:
        if len(self.frames) >= self.max_frames:
            self.truncated += 1
            return
        self.frames.append(
            CapturedFrame(
                when_ns=self._sim.now,
                direction=direction,
                size=frame.size,
                summary=describe_frame(frame),
                frame=frame,
            )
        )

    def _on_tx(self, frame: Any) -> None:
        self._record("tx", frame)
        self._inner_medium(frame)

    def _on_rx(self, frame: Any) -> None:
        self._record("rx", frame)
        if self._inner_rx is not None:
            self._inner_rx(frame)

    def stop(self) -> None:
        """Detach, restoring the NIC's original handlers."""
        self.nic._medium = self._inner_medium
        self.nic.rx_handler = self._inner_rx

    def matching(self, needle: str) -> list[CapturedFrame]:
        return [f for f in self.frames if needle in f.summary]

    def render(self, limit: Optional[int] = None) -> str:
        frames = self.frames[:limit] if limit else self.frames
        lines = [f.render() for f in frames]
        if self.truncated:
            lines.append(f"... {self.truncated} more frames not captured")
        return "\n".join(lines)
