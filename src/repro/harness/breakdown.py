"""Analytic latency breakdown: where does each microsecond go?

Walks the cost model along the VNET/P one-way small-packet path (Fig. 7's
performance-critical flow) and reports per-stage contributions.  The sum
approximates the simulated one-way latency, which the test suite checks —
so this doubles as a consistency check between the analytic view and the
event-driven execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HostParams, NICParams, VnetTuning, default_host, default_tuning
from ..vnet.encap import ENCAP_OVERHEAD

__all__ = ["Stage", "vnetp_one_way_breakdown", "native_one_way_breakdown"]


@dataclass
class Stage:
    """One contribution to the one-way path."""

    name: str
    where: str        # "guest" | "vmm" | "host" | "wire"
    ns: int


def _copy_ns(nbytes: int, bw: float) -> int:
    return int(round(nbytes * 1e9 / bw))


def native_one_way_breakdown(
    nic: NICParams,
    payload: int = 56,
    host: HostParams | None = None,
) -> list[Stage]:
    """Native ICMP echo path, sender -> receiver (one direction)."""
    host = host or default_host()
    s = host.stack
    wire_bytes = payload + 8 + 20 + 14  # ICMP + IP + Ethernet
    return [
        Stage("app syscall + icmp tx", "host", s.syscall_ns + s.icmp_ns),
        Stage("nic tx ring", "host", nic.tx_ring_ns),
        Stage("serialization", "wire", nic.serialize_ns(wire_bytes)),
        Stage("propagation", "wire", nic.propagation_ns),
        Stage("nic rx ring + irq moderation", "host", nic.rx_ring_ns + nic.rx_interrupt_delay_ns),
        Stage("softirq wakeup", "host", s.softirq_wakeup_ns),
        Stage("icmp rx", "host", s.icmp_ns),
    ]


def vnetp_one_way_breakdown(
    nic: NICParams,
    payload: int = 56,
    host: HostParams | None = None,
    tuning: VnetTuning | None = None,
) -> list[Stage]:
    """VNET/P ICMP echo path in guest-driven mode (the latency regime)."""
    host = host or default_host()
    tuning = tuning or default_tuning()
    s, v, vm, c = host.stack, host.virtio, host.vmm, host.vnet_costs
    inner = payload + 8 + 20 + 14
    outer = inner + ENCAP_OVERHEAD
    stages = [
        Stage("guest syscall + icmp tx", "guest", s.syscall_ns + s.icmp_ns),
        Stage("virtio driver tx", "guest", v.guest_driver_tx_ns + v.per_descriptor_ns),
        Stage("kick exit", "vmm", vm.exit_ns + v.kick_ns),
        Stage("dispatch + route", "vmm", c.dispatch_ns + c.route_cache_hit_ns),
        Stage(
            "in-VMM copy",
            "vmm",
            c.cut_through_ns
            if tuning.cut_through
            else host.memory.copy_setup_ns + _copy_ns(inner, c.copy_bw_Bps),
        ),
        Stage("re-entry", "vmm", vm.entry_ns),
        Stage("bridge wakeup + tx + encap", "host", c.idle_wakeup_ns + c.bridge_tx_ns + c.encap_ns),
        Stage("host udp tx", "host", s.udp_tx_ns + s.checksum_ns(inner)),
        Stage("nic tx ring", "host", nic.tx_ring_ns),
        Stage("serialization", "wire", nic.serialize_ns(outer)),
        Stage("propagation", "wire", nic.propagation_ns),
        Stage("nic rx ring + irq moderation", "host", nic.rx_ring_ns + nic.rx_interrupt_delay_ns),
        Stage("softirq wakeup + udp rx", "host", s.softirq_wakeup_ns + s.udp_rx_ns + s.checksum_ns(inner)),
        Stage("bridge rx wakeup + decap", "host", s.sched_wakeup_ns + c.bridge_rx_ns + c.decap_ns),
        Stage("rx dispatcher wakeup + dispatch + route", "vmm",
              c.idle_wakeup_ns + c.dispatch_ns + c.route_cache_hit_ns),
        Stage(
            "copy into RXQ",
            "vmm",
            c.cut_through_ns
            if tuning.cut_through
            else host.memory.copy_setup_ns + _copy_ns(inner, c.copy_bw_Bps),
        ),
        Stage("interrupt inject + guest wake", "vmm",
              vm.interrupt_inject_ns + v.irq_wakeup_ns + vm.round_trip_ns + vm.interrupt_inject_ns),
        Stage("virtio driver rx", "guest", v.guest_driver_rx_ns + v.per_descriptor_ns),
        Stage("guest softirq + icmp rx", "guest", s.softirq_wakeup_ns + s.icmp_ns),
    ]
    return stages


def total_ns(stages: list[Stage]) -> int:
    return sum(st.ns for st in stages)


def render(stages: list[Stage]) -> str:
    """Human-readable table, largest contributors flagged."""
    total = total_ns(stages)
    lines = [f"{'stage':44} {'where':6} {'us':>8} {'share':>6}"]
    for st in stages:
        lines.append(
            f"{st.name:44} {st.where:6} {st.ns / 1000:8.2f} {st.ns / total:6.1%}"
        )
    lines.append(f"{'TOTAL one-way':44} {'':6} {total / 1000:8.2f}")
    return "\n".join(lines)
