"""Paper-style result formatting.

Benchmarks print their reproduced tables/series through these helpers so
the output reads like the paper's figures: one row per measurement with
the paper's reported value alongside, plus ratio columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

__all__ = ["Table", "format_value", "ExperimentResult"]


def format_value(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3g}"
    return str(v)


class Table:
    """A fixed-column text table."""

    def __init__(self, headers: Sequence[str], title: Optional[str] = None):
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([format_value(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(h), *(len(r[i]) for r in self.rows)) if self.rows else len(h)
            for i, h in enumerate(self.headers)
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.rjust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover
        return self.render()


@dataclass
class ExperimentResult:
    """One reproduced experiment: id, data rows, and rendered tables."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    tables: list[Table] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        parts = [f"== {self.experiment_id}: {self.title} =="]
        for table in self.tables:
            parts.append(table.render())
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n\n".join(parts)
