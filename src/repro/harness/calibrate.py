"""Derive flow-model parameters from the packet-level stack.

The cluster benchmarks (HPCC, NAS) run on the message-level
:class:`~repro.mpi.transport.FlowTransport`; its (alpha, beta) for each
network configuration are *measured* here by running IMB PingPong over
the packet-level two-node testbed, so application-level results inherit
the microbenchmark behaviour rather than being assumed.

alpha/beta are extracted by removing the MPI library costs that
FlowTransport charges separately::

    t(S) = 2*mpi_overhead + copies(S) + alpha + S/beta
"""

from __future__ import annotations

from typing import Callable, Optional

from ..config import DEFAULT_MPI, MPIParams, NICParams
from ..mpi.transport import FlowModel

__all__ = ["calibrate_flow_model", "flow_model_for", "clear_cache"]

_CACHE: dict[str, FlowModel] = {}

SMALL = 64
LARGE = 1 << 20
MID = 1 << 16


def clear_cache() -> None:
    _CACHE.clear()


def calibrate_flow_model(
    name: str,
    builder: Callable,
    nic_params: NICParams,
    mpi_params: Optional[MPIParams] = None,
    **builder_kwargs,
) -> FlowModel:
    """Measure (alpha, beta) for one configuration; cached by ``name``."""
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    # Imported lazily: apps.imb uses the testbed types from this package.
    from ..apps.imb import run_pingpong

    params = mpi_params or DEFAULT_MPI
    is_virtual = False

    def one_way_ns(size: int) -> float:
        nonlocal is_virtual
        tb = builder(nic_params=nic_params, **builder_kwargs)
        point = run_pingpong(tb.endpoints[0], tb.endpoints[1], size, repetitions=8)
        is_virtual = tb.endpoints[0].is_virtual
        copy_bw = params.copy_bw_virtual_Bps if is_virtual else params.copy_bw_Bps
        mpi_cost = 2 * params.overhead_ns + 2 * size * 1e9 / copy_bw
        return point.one_way_latency_us * 1_000 - mpi_cost

    t_small = one_way_ns(SMALL)
    t_large = one_way_ns(LARGE)
    t_mid = one_way_ns(MID)
    # Two-point slope for beta; alpha from the small-message intercept.
    beta = (LARGE - MID) * 1e9 / max(1.0, (t_large - t_mid))
    alpha = max(1_000, int(t_small - SMALL * 1e9 / beta))
    model = FlowModel(
        name=name,
        alpha_ns=alpha,
        beta_Bps=beta,
        link_bps=nic_params.rate_bps,
        virtual=is_virtual,
        # Virtual receive paths degrade under incast (single dispatcher vs
        # native NIC flow-steering); see FlowModel.fanin_penalty.
        fanin_penalty=1.45 if is_virtual else 1.0,
    )
    _CACHE[name] = model
    return model


def flow_model_for(config: str) -> FlowModel:
    """Calibrated models for the named standard configurations.

    ``config`` is one of ``native-1g``, ``vnetp-1g``, ``native-10g``,
    ``vnetp-10g``, ``native-ipoib``, ``vnetp-ipoib``.
    """
    import dataclasses

    from ..config import (
        BROADCOM_1G,
        MELLANOX_IPOIB,
        NETEFFECT_10G,
        VnetMode,
        default_host,
        default_tuning,
    )
    from .testbed import build_native, build_vnetp

    table: dict[str, tuple] = {
        "native-1g": (build_native, BROADCOM_1G, {}),
        "vnetp-1g": (build_vnetp, BROADCOM_1G, {}),
        "native-10g": (build_native, NETEFFECT_10G, {}),
        "vnetp-10g": (build_vnetp, NETEFFECT_10G, {}),
        "native-ipoib": (build_native, MELLANOX_IPOIB, {}),
        # Sect. 6.1: VNET/P has *not* been tuned on IPoIB — the preliminary
        # numbers reflect guest-driven operation with per-packet interrupts.
        "vnetp-ipoib": (
            build_vnetp,
            MELLANOX_IPOIB,
            {
                "tuning": default_tuning(mode=VnetMode.GUEST_DRIVEN),
                "host_params": _untuned_host(),
            },
        ),
    }
    if config not in table:
        raise KeyError(f"unknown configuration {config!r}; options: {sorted(table)}")
    builder, nic, kwargs = table[config]
    return calibrate_flow_model(config, builder, nic, **kwargs)


def _untuned_host():
    """Host params for the untuned IPoIB configuration: no interrupt
    coalescing in the virtio rx path."""
    import dataclasses

    from ..config import default_host

    base = default_host()
    return dataclasses.replace(
        base, virtio=dataclasses.replace(base.virtio, irq_coalesce_ns=0)
    )
