"""Experiment harness: testbeds, calibration, experiments, reporting."""

from .breakdown import native_one_way_breakdown, vnetp_one_way_breakdown
from .calibrate import calibrate_flow_model, clear_cache, flow_model_for
from .pcap import PacketCapture, describe_frame
from .sweep import sweep_host_param
from .report import ExperimentResult, Table
from .testbed import Endpoint, Testbed, build_native, build_vnetp, build_vnetu

__all__ = [
    "native_one_way_breakdown",
    "vnetp_one_way_breakdown",
    "PacketCapture",
    "describe_frame",
    "sweep_host_param",
    "calibrate_flow_model",
    "clear_cache",
    "flow_model_for",
    "ExperimentResult",
    "Table",
    "Endpoint",
    "Testbed",
    "build_native",
    "build_vnetp",
    "build_vnetu",
]
