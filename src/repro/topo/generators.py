"""Deterministic topology generators: mesh, fat-tree, torus, multi-rack.

Each generator is a pure function from parameters to a
:class:`~repro.topo.model.Topology` — no clocks, no global state, and
any randomness folded through the explicit ``seed`` — so calling one
twice with the same arguments yields *equal* topologies, and compiling
them yields identical route tables (a property the test suite asserts
by straight equality).

Conventions shared by every generator:

* compute hosts are named ``h<i>`` and come first in the host tuple, so
  host index, IP (``10.x.y.z`` from the index) and guest-MAC numbering
  all match the legacy hand-rolled testbeds;
* routers follow, named by tier (``edge<p>-<e>``, ``agg<p>-<a>``,
  ``core<c>``, ``tor<r>``, ``spine<s>``), carry zero VMs, and forward
  purely by their VNET/P route tables (overlay waypoints);
* guest MAC for global VM index ``i`` is
  ``mac_addr(i + 1, prefix=GUEST_MAC_PREFIX)`` — VM ``i`` lives on
  compute host ``i // vms_per_host``, exactly the legacy layout.

Route-table shape is where the generators differ:

* :func:`full_mesh` — every host links to every other; one exact route
  per remote VM (the legacy testbed, now as data).  O(N²) state.
* :func:`fat_tree` — a k-ary fat-tree.  Compute hosts and edge/agg
  routers hold *small* tables (exact routes for what is below them plus
  one wildcard default up); only core routers know every VM.  This is
  what makes 1024-host overlays compile and run in bounded memory.
* :func:`torus2d` — dimension-order routing on a 2D torus: every host
  routes every remote VM to one of its four ring neighbors.
* :func:`multirack` — racks behind ToR routers with a configurable
  oversubscription ratio: ``max(1, hosts_per_rack // oversubscription)``
  spine routers; ToRs spread uplink traffic across spines by a stable
  per-destination-MAC hash.
"""

from __future__ import annotations

import math
import zlib

from ..proto.ethernet import mac_addr
from .model import (
    GUEST_MAC_PREFIX,
    HostSpec,
    Network,
    OverlayLink,
    RoutePlan,
    Router,
    Subnet,
    TopoSpec,
    Topology,
)

__all__ = [
    "full_mesh",
    "fat_tree",
    "torus2d",
    "multirack",
    "generate",
    "guest_mac",
]

_NETWORK = Network(
    "vnetp-overlay",
    (Subnet("phys", "10.0.0.0/8"), Subnet("guest", "172.16.0.0/12")),
)


def guest_mac(vm_index: int) -> str:
    """Guest MAC for global VM index ``vm_index`` (legacy numbering)."""
    return mac_addr(vm_index + 1, prefix=GUEST_MAC_PREFIX)


def _vm_macs(n_hosts: int, vms_per_host: int) -> list[list[str]]:
    """Per-host guest MAC lists, host-major global numbering."""
    return [
        [guest_mac(i * vms_per_host + v) for v in range(vms_per_host)]
        for i in range(n_hosts)
    ]


def full_mesh(n_hosts: int, vms_per_host: int = 1) -> Topology:
    """The legacy testbed as data: all-pairs links, exact per-VM routes.

    Compiling this topology reproduces ``build_vnetp``'s wiring and
    configuration bit-for-bit (link order, route order, naming), which
    is what lets the harness facades keep their golden observables.
    """
    if n_hosts < 1:
        raise ValueError(f"full_mesh: n_hosts must be >= 1, got {n_hosts}")
    hosts = tuple(
        HostSpec(name=f"h{i}", role="compute", vms=vms_per_host)
        for i in range(n_hosts)
    )
    links = tuple(
        OverlayLink(f"h{i}", f"h{j}")
        for i in range(n_hosts)
        for j in range(n_hosts)
        if i != j
    )
    macs = _vm_macs(n_hosts, vms_per_host)
    routes = []
    for i in range(n_hosts):
        for idx in range(n_hosts * vms_per_host):
            owner, v = divmod(idx, vms_per_host)
            if owner == i:
                routes.append(
                    RoutePlan(f"h{i}", "any", macs[owner][v], via_interface=f"if{v}")
                )
            else:
                routes.append(
                    RoutePlan(f"h{i}", "any", macs[owner][v], via_link=f"h{owner}")
                )
    return Topology(
        name=f"mesh-{n_hosts}x{vms_per_host}",
        network=_NETWORK,
        hosts=hosts,
        links=links,
        routes=tuple(routes),
        wiring="mesh",
        vms_per_host=vms_per_host,
    )


def fat_tree(n_hosts: int, vms_per_host: int = 1, seed: int = 0) -> Topology:
    """A k-ary fat-tree overlay sized for ``n_hosts`` compute hosts.

    ``k`` is the smallest even arity whose capacity ``k³/4`` covers
    ``n_hosts``; pods beyond the last used one are trimmed.  Tables stay
    small everywhere except the cores: a compute host holds its own
    interface routes plus one wildcard default to its edge router; an
    edge holds exact routes for the VMs below it plus a default to one
    aggregation router; an aggregation router holds exact routes for its
    pod plus a default to one core (spread across the core group by pod
    and ``seed``); cores hold one exact route per VM.
    """
    if n_hosts < 1:
        raise ValueError(f"fat_tree: n_hosts must be >= 1, got {n_hosts}")
    k = 2
    while k * k * k // 4 < n_hosts:
        k += 2
    half = k // 2
    pod_cap = half * half          # compute hosts per pod
    pods = min(k, math.ceil(n_hosts / pod_cap))

    def edge_name(p: int, e: int) -> str:
        return f"edge{p}-{e}"

    def agg_name(p: int, a: int) -> str:
        return f"agg{p}-{a}"

    def core_name(c: int) -> str:
        return f"core{c}"

    def edge_of(i: int) -> str:
        p, slot = divmod(i, pod_cap)
        return edge_name(p, slot // half)

    hosts = [
        HostSpec(name=f"h{i}", role="compute", rack=f"pod{i // pod_cap}",
                 vms=vms_per_host)
        for i in range(n_hosts)
    ]
    routers = []
    for p in range(pods):
        for e in range(half):
            hosts.append(HostSpec(edge_name(p, e), role="edge", rack=f"pod{p}", vms=0))
            routers.append(Router(edge_name(p, e), "edge"))
    for p in range(pods):
        for a in range(half):
            hosts.append(HostSpec(agg_name(p, a), role="agg", rack=f"pod{p}", vms=0))
            routers.append(Router(agg_name(p, a), "agg"))
    for c in range(half * half):
        hosts.append(HostSpec(core_name(c), role="core", vms=0))
        routers.append(Router(core_name(c), "core"))

    macs = _vm_macs(n_hosts, vms_per_host)
    # Hosts attached to edge (p, e), in index order.
    attached: dict[str, list[int]] = {}
    for i in range(n_hosts):
        attached.setdefault(edge_of(i), []).append(i)

    def agg_up_core(p: int, a: int) -> str:
        # Aggregation router a talks to core group a; the pod (+seed)
        # spreads different pods across the group's cores.
        return core_name(a * half + (p + seed) % half)

    links: list[OverlayLink] = []
    routes: list[RoutePlan] = []
    # Compute hosts: up-link + default route to the edge.
    for i in range(n_hosts):
        links.append(OverlayLink(f"h{i}", edge_of(i)))
        for v in range(vms_per_host):
            routes.append(RoutePlan(f"h{i}", "any", macs[i][v], via_interface=f"if{v}"))
        routes.append(RoutePlan(f"h{i}", "any", "any", via_link=edge_of(i)))
    # Edge routers: exact down per attached VM, default up to one agg.
    for p in range(pods):
        for e in range(half):
            name = edge_name(p, e)
            up = agg_name(p, e % half)
            for i in attached.get(name, ()):
                links.append(OverlayLink(name, f"h{i}"))
                for v in range(vms_per_host):
                    routes.append(RoutePlan(name, "any", macs[i][v], via_link=f"h{i}"))
            links.append(OverlayLink(name, up))
            routes.append(RoutePlan(name, "any", "any", via_link=up))
    # Aggregation routers: exact down for the whole pod, default up to
    # one core of their core group.
    for p in range(pods):
        for a in range(half):
            name = agg_name(p, a)
            for e in range(half):
                edge = edge_name(p, e)
                down_any = False
                for i in attached.get(edge, ()):
                    if not down_any:
                        links.append(OverlayLink(name, edge))
                        down_any = True
                    for v in range(vms_per_host):
                        routes.append(RoutePlan(name, "any", macs[i][v], via_link=edge))
            up = agg_up_core(p, a)
            links.append(OverlayLink(name, up))
            routes.append(RoutePlan(name, "any", "any", via_link=up))
    # Cores: exact route for every VM, down to the pod's agg in this
    # core's group.
    for c in range(half * half):
        name = core_name(c)
        group = c // half
        for p in range(pods):
            down = agg_name(p, group)
            down_linked = False
            for i in range(p * pod_cap, min((p + 1) * pod_cap, n_hosts)):
                if not down_linked:
                    links.append(OverlayLink(name, down))
                    down_linked = True
                for v in range(vms_per_host):
                    routes.append(RoutePlan(name, "any", macs[i][v], via_link=down))
    return Topology(
        name=f"fat-tree-k{k}-{n_hosts}x{vms_per_host}",
        network=_NETWORK,
        hosts=tuple(hosts),
        routers=tuple(routers),
        links=tuple(links),
        routes=tuple(routes),
        wiring="links",
        vms_per_host=vms_per_host,
    )


def _ring_step(src: int, dst: int, size: int) -> int:
    """Shortest-direction unit step on a ring (ties go positive)."""
    fwd = (dst - src) % size
    return 1 if fwd <= size - fwd else -1


def torus2d(rows: int, cols: int, vms_per_host: int = 1, seed: int = 0) -> Topology:
    """A ``rows × cols`` 2D torus with dimension-order routing.

    Host ``h<i>`` sits at ``(i // cols, i % cols)`` and links to its four
    ring neighbors; a packet first corrects its column (shortest ring
    direction), then its row.  Every host carries one exact route per
    remote VM, so tables are O(N) per host — suited to modest torus
    sizes, not the 1000-host regime (use :func:`fat_tree` there).
    """
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise ValueError(f"torus2d: need at least 2 hosts, got {rows}x{cols}")
    n_hosts = rows * cols
    hosts = tuple(
        HostSpec(name=f"h{i}", role="compute", rack=f"row{i // cols}",
                 vms=vms_per_host)
        for i in range(n_hosts)
    )
    macs = _vm_macs(n_hosts, vms_per_host)

    def at(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    links: list[OverlayLink] = []
    routes: list[RoutePlan] = []
    for i in range(n_hosts):
        r, c = divmod(i, cols)
        neighbors = []
        for j in (at(r, c + 1), at(r, c - 1), at(r + 1, c), at(r - 1, c)):
            if j != i and j not in neighbors:
                neighbors.append(j)
        for j in neighbors:
            links.append(OverlayLink(f"h{i}", f"h{j}"))
        for v in range(vms_per_host):
            routes.append(RoutePlan(f"h{i}", "any", macs[i][v], via_interface=f"if{v}"))
        for j in range(n_hosts):
            if j == i:
                continue
            rj, cj = divmod(j, cols)
            if cj != c:
                nxt = at(r, c + _ring_step(c, cj, cols))
            else:
                nxt = at(r + _ring_step(r, rj, rows), c)
            for v in range(vms_per_host):
                routes.append(RoutePlan(f"h{i}", "any", macs[j][v], via_link=f"h{nxt}"))
    return Topology(
        name=f"torus-{rows}x{cols}x{vms_per_host}",
        network=_NETWORK,
        hosts=hosts,
        links=tuple(links),
        routes=tuple(routes),
        wiring="links",
        vms_per_host=vms_per_host,
    )


def multirack(racks: int, hosts_per_rack: int, oversubscription: int = 4,
              vms_per_host: int = 1, seed: int = 0) -> Topology:
    """Racks behind ToR routers, spines sized by oversubscription.

    The fabric has ``max(1, hosts_per_rack // oversubscription)`` spine
    routers: an oversubscription of 1 gives a spine per rack host
    (non-blocking), larger values shrink the spine layer and concentrate
    inter-rack traffic.  ToRs route their own rack's VMs directly and
    spread everything else across the spines with a stable
    ``crc32(dst_mac, seed)`` hash, so a flow always takes one spine and
    the choice is reproducible.
    """
    if racks < 1 or hosts_per_rack < 1:
        raise ValueError(
            f"multirack: need racks/hosts_per_rack >= 1, got {racks}/{hosts_per_rack}"
        )
    if oversubscription < 1:
        raise ValueError(f"multirack: oversubscription must be >= 1, got {oversubscription}")
    n_hosts = racks * hosts_per_rack
    spines = max(1, hosts_per_rack // oversubscription)
    hosts = [
        HostSpec(name=f"h{i}", role="compute", rack=f"rack{i // hosts_per_rack}",
                 vms=vms_per_host)
        for i in range(n_hosts)
    ]
    routers = []
    for r in range(racks):
        hosts.append(HostSpec(f"tor{r}", role="tor", rack=f"rack{r}", vms=0))
        routers.append(Router(f"tor{r}", "tor"))
    for s in range(spines):
        hosts.append(HostSpec(f"spine{s}", role="spine", vms=0))
        routers.append(Router(f"spine{s}", "spine"))
    macs = _vm_macs(n_hosts, vms_per_host)

    def spine_for(mac: str) -> str:
        return f"spine{zlib.crc32(f'{mac}/{seed}'.encode()) % spines}"

    links: list[OverlayLink] = []
    routes: list[RoutePlan] = []
    for i in range(n_hosts):
        tor = f"tor{i // hosts_per_rack}"
        links.append(OverlayLink(f"h{i}", tor))
        for v in range(vms_per_host):
            routes.append(RoutePlan(f"h{i}", "any", macs[i][v], via_interface=f"if{v}"))
        routes.append(RoutePlan(f"h{i}", "any", "any", via_link=tor))
    for r in range(racks):
        tor = f"tor{r}"
        for i in range(r * hosts_per_rack, (r + 1) * hosts_per_rack):
            links.append(OverlayLink(tor, f"h{i}"))
        for s in range(spines):
            links.append(OverlayLink(tor, f"spine{s}"))
        for i in range(n_hosts):
            local = i // hosts_per_rack == r
            for v in range(vms_per_host):
                via = f"h{i}" if local else spine_for(macs[i][v])
                routes.append(RoutePlan(tor, "any", macs[i][v], via_link=via))
    for s in range(spines):
        name = f"spine{s}"
        for r in range(racks):
            links.append(OverlayLink(name, f"tor{r}"))
        for i in range(n_hosts):
            tor = f"tor{i // hosts_per_rack}"
            for v in range(vms_per_host):
                routes.append(RoutePlan(name, "any", macs[i][v], via_link=tor))
    return Topology(
        name=f"multirack-{racks}x{hosts_per_rack}o{oversubscription}",
        network=_NETWORK,
        hosts=tuple(hosts),
        routers=tuple(routers),
        links=tuple(links),
        routes=tuple(routes),
        wiring="links",
        vms_per_host=vms_per_host,
    )


def generate(spec: TopoSpec) -> Topology:
    """Materialise a :class:`~repro.topo.model.TopoSpec` (the plain-data
    form experiments pass through exec-engine point kwargs)."""
    if spec.kind == "mesh":
        return full_mesh(spec.n_hosts, vms_per_host=spec.vms_per_host)
    if spec.kind == "fat-tree":
        return fat_tree(spec.n_hosts, vms_per_host=spec.vms_per_host, seed=spec.seed)
    if spec.kind == "torus":
        return torus2d(spec.rows, spec.cols, vms_per_host=spec.vms_per_host,
                       seed=spec.seed)
    if spec.kind == "multirack":
        return multirack(spec.racks, spec.hosts_per_rack,
                         oversubscription=spec.oversubscription,
                         vms_per_host=spec.vms_per_host, seed=spec.seed)
    raise ValueError(f"unknown topology kind {spec.kind!r}")
