"""Simulated provisioning: bring a compiled overlay up *inside* sim time.

:meth:`~repro.topo.compiler.CompiledTopology.build` with
``configure=True`` applies every host's configuration instantaneously at
t=0 — right for steady-state benchmarks, wrong for studying *cloud
provisioning* of an HPC overlay.  :func:`provision` instead builds the
testbed unconfigured and replays each host's control-language commands
as a simulated process (a per-command apply cost, hosts started on a
stagger), so overlay **convergence time** becomes a first-class,
deterministic observable tracked by a
:class:`~repro.obs.convergence.ConvergenceTracker`.

Everything here is simulated time; no wall-clock values leak into
results (the exec engine's cold/warm and serial/parallel CI diffs depend
on that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..obs.convergence import ConvergenceTracker
from .compiler import CompiledTopology, Testbed, peer_guests

__all__ = ["ProvisionReport", "provision", "probe_rtt_ns"]

#: Default simulated cost of applying one control-language command
#: (parse + validate + core update), loosely an ioctl round-trip.
DEFAULT_APPLY_NS = 20_000

#: Default stagger between successive hosts' provisioning starts,
#: modelling a controller pushing configuration host by host.
DEFAULT_STAGGER_NS = 50_000


@dataclass
class ProvisionReport:
    """What one provisioning run measured (simulated time only)."""

    n_hosts: int
    n_commands: int
    converged_ns: int
    first_ready_ns: int
    last_ready_ns: int

    @property
    def converged_ms(self) -> float:
        """Convergence time in milliseconds of simulated time."""
        return self.converged_ns / 1e6


def provision(
    testbed: Testbed,
    compiled: Optional[CompiledTopology] = None,
    apply_ns: int = DEFAULT_APPLY_NS,
    stagger_ns: int = DEFAULT_STAGGER_NS,
    tracker: Optional[ConvergenceTracker] = None,
    until_slack_ns: int = 1_000_000,
) -> ProvisionReport:
    """Apply a compiled configuration host-by-host in simulated time.

    ``testbed`` must have been built with ``configure=False`` (its route
    tables empty); host ``i``'s apply process starts at ``i *
    stagger_ns`` and charges ``apply_ns`` per command.  Runs the
    simulator until convergence and returns the report.  Pass a
    ``tracker`` to also collect metrics/health events.
    """
    compiled = compiled or testbed.compiled
    if compiled is None:
        raise ValueError("provision() needs the compiled topology")
    if not testbed.controls:
        raise ValueError("provision() needs a vnetp testbed (with controls)")
    sim = testbed.sim
    tracker = tracker or ConvergenceTracker(sim, expected=len(compiled.hosts))

    def apply_host(ch, control):
        for cmd in ch.commands:
            yield sim.timeout(apply_ns)
            control.apply(cmd)
        tracker.host_ready(ch.name)

    def kickoff(delay_ns, ch, control):
        if delay_ns:
            yield sim.timeout(delay_ns)
        yield from apply_host(ch, control)

    for i, (ch, control) in enumerate(zip(compiled.hosts, testbed.controls)):
        sim.process(kickoff(i * stagger_ns, ch, control),
                    name=f"provision.{ch.name}")

    horizon = (len(compiled.hosts) * stagger_ns
               + compiled.n_commands * apply_ns + until_slack_ns)
    sim.run(until=horizon)
    if not tracker.converged:
        raise RuntimeError(
            f"overlay failed to converge within {horizon} ns "
            f"({len(tracker.ready_ns)}/{tracker.expected} hosts ready)"
        )
    times = sorted(tracker.ready_ns.values())
    return ProvisionReport(
        n_hosts=len(compiled.hosts),
        n_commands=compiled.n_commands,
        converged_ns=tracker.converged_ns - tracker.start_ns,
        first_ready_ns=times[0] - tracker.start_ns,
        last_ready_ns=times[-1] - tracker.start_ns,
    )


def probe_rtt_ns(testbed: Testbed, a: int = 0, b: int = -1,
                 data_size: int = 56, count: int = 3) -> float:
    """Median guest-to-guest ping RTT (ns) between endpoints ``a``/``b``.

    Drives the guest stacks' own ``ping`` generator directly (no harness
    dependency), peering just the probed pair, so cluster-scale builds
    can verify end-to-end reachability across multi-hop overlay routes.
    """
    b = b % len(testbed.endpoints)
    a = a % len(testbed.endpoints)
    peer_guests(testbed, a, b)
    src, dst = testbed.endpoints[a], testbed.endpoints[b]
    sim = testbed.sim
    rtts: list[int] = []

    def pinger():
        for _ in range(count):
            rtt = yield from src.stack.ping(dst.ip, data_size=data_size)
            rtts.append(rtt)

    sim.process(pinger(), name=f"probe.{a}->{b}")
    sim.run()
    if not rtts:
        raise RuntimeError(f"probe {a}->{b}: no ping replies")
    rtts.sort()
    return float(rtts[len(rtts) // 2])
