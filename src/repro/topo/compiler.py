"""TopologyCompiler: declarative topologies → VNET/P overlays.

One class compiles a :class:`~repro.topo.model.Topology` into every
concrete artefact the simulator needs:

* per-host **route tables** (:class:`~repro.vnet.overlay.RouteEntry`)
  and **link specs** (:class:`~repro.vnet.overlay.LinkSpec`), with the
  legacy ``to<j>`` naming so chaos/failover tooling keeps addressing
  links the same way;
* per-host **control-language configuration** — the command objects and
  their rendered text (:func:`repro.vnet.lang.render_config`), so a
  compiled host can be driven through exactly the VNET/U-compatible
  tooling path the paper describes;
* a built **testbed** (:meth:`CompiledTopology.build`): hosts, VMMs,
  VMs, cores, bridges and controls, physically wired and (optionally)
  configured.

Bit-identity contract: for ``wiring == "mesh"`` topologies the build
replays the pre-refactor ``build_vnetp``/``build_vnetu`` construction
order *exactly* — host/VM creation order, link line order, route line
order, ARP neighbor order — so the golden-trace suites hold through the
harness facades (which are now one-liners over this module).

Address plan (a strict superset of the legacy one): host ``i`` gets
``10.x.y.z`` with ``x.y.z = i+1`` in base-256 (identical to the old
``10.0.0.<i+1>`` for the first 254 hosts); global VM ``j`` gets
``172.16+x.y.z`` with ``x.y.z = j+1`` likewise.  This is what lets the
same scheme span 1024-host fabrics without renumbering small testbeds.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..config import (
    HostParams,
    NICParams,
    VnetTuning,
    default_host,
)
from ..host.machine import Host
from ..hw.link import Link
from ..hw.switch import Switch, SwitchParams
from ..palacios.vmm import PalaciosVMM, VirtualMachine
from ..proto.stack import Stack
from ..sim import Simulator
from ..vnet.bridge import VnetBridge
from ..vnet.control import VnetControl
from ..vnet.core import VnetCore
from ..vnet.encap import ENCAP_OVERHEAD
from ..vnet.lang import AddLink, AddRoute, Command, render_config
from ..vnet.overlay import (
    DEFAULT_VNET_PORT,
    DestType,
    InterfaceSpec,
    LinkProto,
    LinkSpec,
    RouteEntry,
)
from ..vnet.vnetu import DEFAULT_VNETU_PORT, VnetUDaemon
from .generators import guest_mac
from .model import Topology

__all__ = [
    "Endpoint",
    "Testbed",
    "CompiledHost",
    "CompiledTopology",
    "TopologyCompiler",
    "host_ip",
    "vm_ip",
    "peer_guests",
]


def host_ip(index: int) -> str:
    """Physical IP for host ``index``: ``10.0.0.<i+1>`` generalised to
    base-256 so 1000+-host fabrics stay in one /8."""
    n = index + 1
    return f"10.{(n >> 16) & 0xFF}.{(n >> 8) & 0xFF}.{n & 0xFF}"


def vm_ip(vm_index: int) -> str:
    """Guest IP for global VM ``vm_index``: ``172.16.0.<j+1>``
    generalised the same way inside ``172.16.0.0/12``."""
    n = vm_index + 1
    return f"172.{16 + ((n >> 16) & 0xFF)}.{(n >> 8) & 0xFF}.{n & 0xFF}"


@dataclass
class Endpoint:
    """What a benchmark binds to: one communicating stack."""

    stack: Stack
    ip: str
    host: Host
    vm: Optional[VirtualMachine] = None

    @property
    def is_virtual(self) -> bool:
        """True for guest (VM) endpoints, False for native host stacks."""
        return self.vm is not None


@dataclass
class Testbed:
    """A constructed configuration: simulator, hosts, endpoints."""

    sim: Simulator
    config: str
    hosts: list[Host]
    endpoints: list[Endpoint]
    switch: Optional[Switch] = None
    cores: list[VnetCore] = field(default_factory=list)
    daemons: list[VnetUDaemon] = field(default_factory=list)
    controls: list[VnetControl] = field(default_factory=list)
    compiled: Optional["CompiledTopology"] = None


@dataclass
class CompiledHost:
    """One host's compiled overlay state: links, routes, VM slots."""

    name: str
    index: int
    ip: str
    role: str
    #: ``(global_vm_index, mac, guest_ip, interface_name)`` per VM slot.
    vms: tuple[tuple[int, str, str, str], ...]
    links: tuple[LinkSpec, ...]
    routes: tuple[RouteEntry, ...]

    @property
    def commands(self) -> list[Command]:
        """The host's configuration as control-language commands (links
        first, then routes — the order the legacy testbed emitted)."""
        return [AddLink(spec) for spec in self.links] + [
            AddRoute(route) for route in self.routes
        ]

    @property
    def config_text(self) -> str:
        """The host's configuration rendered in the control language."""
        return render_config(self.commands)


class CompiledTopology:
    """The compiler's output: per-host tables plus a builder.

    Holds only plain VNET/P objects (no simulator state), so it can be
    inspected, snapshotted (:meth:`signature`) and rebuilt any number of
    times; :meth:`build` materialises a fresh simulated testbed from it.
    """

    def __init__(self, topo: Topology, compiler: "TopologyCompiler",
                 hosts: list[CompiledHost]):
        self.topo = topo
        self.compiler = compiler
        self.hosts = hosts
        self.by_name = {h.name: h for h in hosts}

    # -- inspection --------------------------------------------------------
    @property
    def n_compute_hosts(self) -> int:
        """VM-carrying hosts."""
        return sum(1 for h in self.hosts if h.vms)

    @property
    def n_routers(self) -> int:
        """Forwarding-only hosts."""
        return sum(1 for h in self.hosts if not h.vms)

    @property
    def routes_total(self) -> int:
        """Route entries across every host table."""
        return sum(len(h.routes) for h in self.hosts)

    @property
    def max_table(self) -> int:
        """Largest per-host route table."""
        return max((len(h.routes) for h in self.hosts), default=0)

    @property
    def n_commands(self) -> int:
        """Control-language commands to configure the whole overlay."""
        return sum(len(h.links) + len(h.routes) for h in self.hosts)

    def signature(self) -> str:
        """Stable content hash of the compiled overlay (hosts, IPs, and
        every rendered configuration line) — equal signatures mean
        identical compiled route tables."""
        digest = hashlib.sha256()
        for h in self.hosts:
            digest.update(f"{h.index} {h.name} {h.ip} {h.role}\n".encode())
            digest.update(h.config_text.encode())
            digest.update(b"\n--\n")
        return digest.hexdigest()

    # -- building ----------------------------------------------------------
    def build(self, sim: Optional[Simulator] = None, backend: str = "vnetp",
              configure: bool = True) -> Testbed:
        """Materialise the compiled overlay as a live testbed.

        ``backend`` selects the data path: ``"vnetp"`` (in-VMM core +
        bridge), ``"vnetu"`` (user-level daemon; mesh topologies only)
        or ``"native"`` (no virtualisation; host stacks are the
        endpoints).  ``configure=False`` builds the machines and
        physical wiring but applies no overlay configuration — that is
        the entry point for :mod:`repro.topo.provision`, which applies
        it *inside* simulated time to measure convergence.
        """
        if backend == "vnetp":
            return self.compiler._build_vnetp(self, sim, configure)
        if backend == "vnetu":
            return self.compiler._build_vnetu(self, sim, configure)
        if backend == "native":
            return self.compiler._build_native(self, sim)
        raise ValueError(f"unknown backend {backend!r}")


class TopologyCompiler:
    """Compile a declarative :class:`~repro.topo.model.Topology` into
    VNET/P route tables, wiring, and host stacks.

    Construction parameters mirror the legacy testbed builders; ``None``
    leaves the backend default in force (NetEffect 10G NICs for
    VNET/P / native, Broadcom 1G for VNET/U, guest MTU clamped so the
    encapsulated packet fits the physical MTU).
    """

    def __init__(
        self,
        topo: Topology,
        nic_params: Optional[NICParams] = None,
        host_params: Optional[HostParams] = None,
        tuning: Optional[VnetTuning] = None,
        switch_params: Optional[SwitchParams] = None,
        guest_mtu: Optional[int] = None,
        direct_receive: bool = False,
    ):
        self.topo = topo
        self.nic_params = nic_params
        self.host_params = host_params
        self.tuning = tuning
        self.switch_params = switch_params
        self.guest_mtu = guest_mtu
        self.direct_receive = direct_receive
        self._index = {h.name: i for i, h in enumerate(topo.hosts)}

    # -- compilation -------------------------------------------------------
    def compile(self) -> CompiledTopology:
        """Resolve names to indices/IPs/MACs and build per-host tables."""
        topo = self.topo
        index = self._index
        # Global VM numbering: host-major over the host tuple (compute
        # hosts come first by generator convention, so VM j sits on
        # compute host j // vms_per_host exactly as in the legacy code).
        vm_slots: dict[str, list[tuple[int, str, str, str]]] = {}
        next_vm = 0
        for spec in topo.hosts:
            slots = []
            for v in range(spec.vms):
                slots.append((next_vm, guest_mac(next_vm), vm_ip(next_vm), f"if{v}"))
                next_vm += 1
            vm_slots[spec.name] = slots
        # Links, grouped per source host in topology order.
        links: dict[str, list[LinkSpec]] = {h.name: [] for h in topo.hosts}
        link_name: dict[tuple[str, str], str] = {}
        for ol in topo.links:
            if ol.src not in index or ol.dst not in index:
                raise ValueError(f"overlay link {ol.src}->{ol.dst}: unknown host")
            name = f"to{index[ol.dst]}"
            link_name[(ol.src, ol.dst)] = name
            proto = LinkProto(ol.proto)
            links[ol.src].append(
                LinkSpec(name=name, proto=proto, dst_ip=host_ip(index[ol.dst]),
                         dst_port=DEFAULT_VNET_PORT)
            )
        # Routes, grouped per host in topology order.
        routes: dict[str, list[RouteEntry]] = {h.name: [] for h in topo.hosts}
        for plan in topo.routes:
            if plan.via_interface is not None:
                dest_type, dest_name = DestType.INTERFACE, plan.via_interface
            else:
                key = (plan.host, plan.via_link)
                if key not in link_name:
                    raise ValueError(
                        f"route on {plan.host!r}: no overlay link to {plan.via_link!r}"
                    )
                dest_type, dest_name = DestType.LINK, link_name[key]
            routes[plan.host].append(
                RouteEntry(src_mac=plan.src_mac, dst_mac=plan.dst_mac,
                           dest_type=dest_type, dest_name=dest_name)
            )
        compiled = [
            CompiledHost(
                name=spec.name,
                index=i,
                ip=host_ip(i),
                role=spec.role,
                vms=tuple(vm_slots[spec.name]),
                links=tuple(links[spec.name]),
                routes=tuple(routes[spec.name]),
            )
            for i, spec in enumerate(topo.hosts)
        ]
        return CompiledTopology(topo, self, compiled)

    # -- builders (invoked through CompiledTopology.build) -----------------
    def _resolve_nic(self, backend: str) -> NICParams:
        if self.nic_params is not None:
            return self.nic_params
        if backend == "vnetu":
            from ..config import BROADCOM_1G

            return BROADCOM_1G
        from ..config import NETEFFECT_10G

        return NETEFFECT_10G

    def _guest_mtu(self, backend: str, nic_params: NICParams,
                   tuning: VnetTuning) -> int:
        if self.guest_mtu is not None:
            return self.guest_mtu
        if backend == "vnetu":
            return nic_params.max_mtu - ENCAP_OVERHEAD
        return min(tuning.vnet_mtu, nic_params.max_mtu - ENCAP_OVERHEAD)

    def _make_host(self, sim: Simulator, ch: CompiledHost,
                   nic_params: NICParams) -> Host:
        return Host(
            sim,
            self.host_params or default_host(ch.name),
            nic_params,
            ip=ch.ip,
            name=ch.name,
        )

    def _wire(self, sim: Simulator, hosts: list[Host]) -> Optional[Switch]:
        """Physical substrate: the legacy mesh wiring, or link-scoped
        ARP with a shared switch for cluster-scale fabrics."""
        if self.topo.wiring == "mesh":
            for a in hosts:
                for b in hosts:
                    if a is not b:
                        a.add_neighbor(b)
            if len(hosts) == 2 and self.switch_params is None:
                Link(sim, hosts[0].nic, hosts[1].nic)
                return None
            switch = Switch(
                sim,
                self.switch_params
                or SwitchParams(port_rate_bps=hosts[0].nic.params.rate_bps),
            )
            for h in hosts:
                switch.attach(h.nic)
            return switch
        # Link-scoped wiring: ARP entries only where overlay links exist
        # (O(links), not O(N^2)); one switch carries the substrate.
        index = self._index
        for ol in self.topo.links:
            hosts[index[ol.src]].add_neighbor(hosts[index[ol.dst]])
            hosts[index[ol.dst]].add_neighbor(hosts[index[ol.src]])
        switch = Switch(
            sim,
            self.switch_params
            or SwitchParams(port_rate_bps=hosts[0].nic.params.rate_bps),
        )
        for h in hosts:
            switch.attach(h.nic)
        return switch

    def _build_vnetp(self, compiled: CompiledTopology, sim: Optional[Simulator],
                     configure: bool) -> Testbed:
        sim = sim or Simulator()
        nic_params = self._resolve_nic("vnetp")
        tuning = self.tuning or VnetTuning()
        mtu = self._guest_mtu("vnetp", nic_params, tuning)
        hosts: list[Host] = []
        vms: list[VirtualMachine] = []
        vm_owner: list[int] = []
        cores: list[VnetCore] = []
        controls: list[VnetControl] = []
        for ch in compiled.hosts:
            host = self._make_host(sim, ch, nic_params)
            vmm = PalaciosVMM(sim, host) if ch.vms else None
            core = VnetCore(sim, host, tuning=tuning)
            for idx, mac, guest_ip, if_name in ch.vms:
                vm = vmm.create_vm(f"vm{idx}", guest_ip=guest_ip)
                nic = vm.attach_virtio_nic(mac=mac, mtu=mtu)
                core.register_interface(InterfaceSpec(name=if_name, mac=mac), nic)
                vms.append(vm)
                vm_owner.append(ch.index)
            VnetBridge(sim, host, core, direct_receive=self.direct_receive)
            controls.append(VnetControl(sim, core))
            hosts.append(host)
            cores.append(core)
        switch = self._wire(sim, hosts)
        if configure:
            for ch, control in zip(compiled.hosts, controls):
                control.apply_commands(ch.commands)
        if self.topo.wiring == "mesh":
            # Guests believe they share a simple Ethernet LAN: static
            # neighbors, all pairs (the legacy behaviour; cluster-scale
            # topologies peer probe pairs explicitly via peer_guests).
            macs = [slot[1] for ch in compiled.hosts for slot in ch.vms]
            for i, vm in enumerate(vms):
                for j, other in enumerate(vms):
                    if i != j:
                        vm.stack.add_neighbor(other.guest_ip, macs[j])
        endpoints = [
            Endpoint(stack=vm.stack, ip=vm.guest_ip, host=hosts[vm_owner[i]], vm=vm)
            for i, vm in enumerate(vms)
        ]
        return Testbed(
            sim=sim,
            config="vnet/p",
            hosts=hosts,
            endpoints=endpoints,
            switch=switch,
            cores=cores,
            controls=controls,
            compiled=compiled,
        )

    def _build_vnetu(self, compiled: CompiledTopology, sim: Optional[Simulator],
                     configure: bool) -> Testbed:
        topo = self.topo
        if topo.wiring != "mesh" or topo.vms_per_host != 1:
            raise ValueError(
                "vnetu backend supports single-VM mesh topologies only "
                f"(got wiring={topo.wiring!r}, vms_per_host={topo.vms_per_host})"
            )
        sim = sim or Simulator()
        nic_params = self._resolve_nic("vnetu")
        mtu = self._guest_mtu("vnetu", nic_params, self.tuning or VnetTuning())
        hosts: list[Host] = []
        vms: list[VirtualMachine] = []
        daemons: list[VnetUDaemon] = []
        for ch in compiled.hosts:
            host = self._make_host(sim, ch, nic_params)
            vmm = PalaciosVMM(sim, host)
            idx, mac, guest_ip, _if_name = ch.vms[0]
            vm = vmm.create_vm(f"vm{idx}", guest_ip=guest_ip)
            nic = vm.attach_virtio_nic(mac=mac, mtu=mtu)
            daemon = VnetUDaemon(sim, host)
            daemon.register_interface(InterfaceSpec(name="if0", mac=mac), nic)
            hosts.append(host)
            vms.append(vm)
            daemons.append(daemon)
        switch = self._wire(sim, hosts)
        if configure:
            # Legacy VNET/U order: per remote host, link then route
            # interleaved; the self-interface route last.
            for ch, daemon in zip(compiled.hosts, daemons):
                remote = {spec.name: spec for spec in ch.links}
                for other in compiled.hosts:
                    if other.name == ch.name:
                        continue
                    spec = remote[f"to{other.index}"]
                    daemon.add_link(
                        LinkSpec(name=spec.name, proto=spec.proto,
                                 dst_ip=spec.dst_ip, dst_port=DEFAULT_VNETU_PORT)
                    )
                    daemon.add_route(
                        RouteEntry(src_mac="any", dst_mac=other.vms[0][1],
                                   dest_type=DestType.LINK, dest_name=spec.name)
                    )
                daemon.add_route(
                    RouteEntry(src_mac="any", dst_mac=ch.vms[0][1],
                               dest_type=DestType.INTERFACE, dest_name="if0")
                )
        macs = [ch.vms[0][1] for ch in compiled.hosts]
        for i, vm in enumerate(vms):
            for j, other in enumerate(vms):
                if i != j:
                    vm.stack.add_neighbor(other.guest_ip, macs[j])
        endpoints = [
            Endpoint(stack=vm.stack, ip=vm.guest_ip, host=hosts[i], vm=vm)
            for i, vm in enumerate(vms)
        ]
        return Testbed(
            sim=sim,
            config="vnet/u",
            hosts=hosts,
            endpoints=endpoints,
            switch=switch,
            daemons=daemons,
            compiled=compiled,
        )

    def _build_native(self, compiled: CompiledTopology,
                      sim: Optional[Simulator]) -> Testbed:
        sim = sim or Simulator()
        nic_params = self._resolve_nic("native")
        hosts = [self._make_host(sim, ch, nic_params) for ch in compiled.hosts]
        switch = self._wire(sim, hosts)
        endpoints = [Endpoint(stack=h.stack, ip=h.ip, host=h) for h in hosts]
        return Testbed(sim=sim, config="native", hosts=hosts,
                       endpoints=endpoints, switch=switch, compiled=compiled)


def peer_guests(testbed: Testbed, a: int, b: int) -> None:
    """Make endpoints ``a`` and ``b`` mutual L2 neighbors.

    Cluster-scale builds skip the legacy all-pairs guest ARP mesh
    (O(VMs²)); callers peer exactly the endpoint pairs their probes
    exchange traffic between.
    """
    ea, eb = testbed.endpoints[a], testbed.endpoints[b]
    if ea.vm is None or eb.vm is None:
        raise ValueError("peer_guests needs VM endpoints")
    compiled = testbed.compiled
    if compiled is None:
        raise ValueError("peer_guests needs a compiler-built testbed")
    macs = {slot[2]: slot[1] for ch in compiled.hosts for slot in ch.vms}
    ea.vm.stack.add_neighbor(eb.ip, macs[eb.ip])
    eb.vm.stack.add_neighbor(ea.ip, macs[ea.ip])
