"""``repro.topo``: declarative cluster-scale topologies for VNET/P.

The package splits *describing* a network from *building* one:

* :mod:`repro.topo.model` — frozen dataclasses (:class:`Network`,
  :class:`Subnet`, :class:`HostSpec`, :class:`Router`,
  :class:`OverlayLink`, :class:`RoutePlan`, :class:`Topology`) plus the
  exec-engine-friendly :class:`TopoSpec` handle;
* :mod:`repro.topo.generators` — deterministic fat-tree, 2D torus,
  multi-rack and full-mesh generators;
* :mod:`repro.topo.compiler` — :class:`TopologyCompiler`, which turns a
  topology into per-host VNET/P route tables, link specs and
  control-language configuration, and builds live testbeds from them;
* :mod:`repro.topo.provision` — applies compiled configuration inside
  simulated time to measure overlay convergence.

See ``docs/topology.md`` for the model, the generated fabrics, and the
compilation pipeline.
"""

from .compiler import (
    CompiledHost,
    CompiledTopology,
    Endpoint,
    Testbed,
    TopologyCompiler,
    host_ip,
    peer_guests,
    vm_ip,
)
from .generators import fat_tree, full_mesh, generate, guest_mac, multirack, torus2d
from .model import (
    GUEST_MAC_PREFIX,
    HostSpec,
    Network,
    OverlayLink,
    RoutePlan,
    Router,
    Subnet,
    TopoSpec,
    Topology,
)
from .provision import ProvisionReport, probe_rtt_ns, provision

__all__ = [
    "Subnet",
    "Network",
    "HostSpec",
    "Router",
    "OverlayLink",
    "RoutePlan",
    "Topology",
    "TopoSpec",
    "GUEST_MAC_PREFIX",
    "full_mesh",
    "fat_tree",
    "torus2d",
    "multirack",
    "generate",
    "guest_mac",
    "TopologyCompiler",
    "CompiledTopology",
    "CompiledHost",
    "Endpoint",
    "Testbed",
    "host_ip",
    "vm_ip",
    "peer_guests",
    "ProvisionReport",
    "provision",
    "probe_rtt_ns",
]
