"""Declarative network model: what a cluster-scale overlay *is*.

The paper's experiments wire a handful of hosts by hand; scaling VNET/P
to HPC-cluster sizes needs the topology itself to be **data**.  This
module defines that data — a neutron-inspired model (networks, subnets,
routers) plus the overlay-specific pieces (hosts carrying VMs, directed
overlay links, per-host route plans) — as frozen dataclasses, so a
:class:`Topology` is hashable, comparable, and serialisable, and the
generators in :mod:`repro.topo.generators` can be tested for
determinism by straight equality.

The split of responsibilities:

* a **generator** (fat-tree, 2D torus, multi-rack) produces a
  :class:`Topology`: hosts, routers, directed :class:`OverlayLink`\\ s
  and abstract :class:`RoutePlan`\\ s phrased in terms of host names and
  guest MACs;
* the :class:`~repro.topo.compiler.TopologyCompiler` turns that into
  concrete VNET/P artefacts — :class:`~repro.vnet.overlay.LinkSpec` and
  :class:`~repro.vnet.overlay.RouteEntry` tables per host, control-language
  configuration text, and (on request) a fully built simulated testbed.

:class:`TopoSpec` is the *plain-data* handle experiments pass through
:class:`~repro.exec.Point` kwargs: a small frozen dataclass the exec
engine's fingerprinter understands, so topology-parameterised points
cache and invalidate exactly like scalar-parameterised ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "Subnet",
    "Network",
    "HostSpec",
    "Router",
    "OverlayLink",
    "RoutePlan",
    "Topology",
    "TopoSpec",
    "GUEST_MAC_PREFIX",
]

#: Locally-administered OUI byte for guest (VM) MACs; physical NICs use
#: the default prefix from :func:`repro.proto.ethernet.mac_addr`.
GUEST_MAC_PREFIX = 0x5A


@dataclass(frozen=True)
class Subnet:
    """One address block, e.g. the physical ``10.0.0.0/8`` substrate."""

    name: str
    cidr: str


@dataclass(frozen=True)
class Network:
    """A named network: the subnets an overlay deployment spans."""

    name: str
    subnets: tuple[Subnet, ...] = ()


@dataclass(frozen=True)
class HostSpec:
    """One simulated machine: a VM-carrying compute host or a router.

    ``vms`` is the number of guest VMs the host carries (0 for pure
    forwarders); ``role`` names its function (``compute`` or a router
    tier such as ``edge``/``agg``/``core``/``tor``/``spine``); ``rack``
    is a free-form placement label.  IPs and MACs are *not* stored here:
    the compiler derives them from position, which is what keeps the
    legacy testbeds bit-identical.
    """

    name: str
    role: str = "compute"
    rack: str = ""
    vms: int = 1


@dataclass(frozen=True)
class Router:
    """A forwarding-only overlay participant (a :class:`HostSpec` with
    ``vms == 0``), tagged with its tier in the fabric."""

    host: str
    tier: str


@dataclass(frozen=True)
class OverlayLink:
    """A directed overlay link: ``src`` can encapsulate frames to ``dst``.

    The compiler names the resulting :class:`~repro.vnet.overlay.LinkSpec`
    ``to<j>`` where ``j`` is ``dst``'s host index — the same convention
    the hand-rolled testbeds used, so existing chaos/failover tooling
    that addresses links by name keeps working on generated topologies.
    """

    src: str
    dst: str
    proto: str = "udp"


@dataclass(frozen=True)
class RoutePlan:
    """One abstract routing rule on ``host``.

    ``via_link`` names the *destination host* of an overlay link (the
    compiler resolves it to the concrete ``to<j>`` link name);
    ``via_interface`` names a local virtual NIC.  Exactly one is set.
    ``src_mac``/``dst_mac`` follow VNET/P semantics (``any`` wildcards
    allowed).
    """

    host: str
    src_mac: str
    dst_mac: str
    via_link: Optional[str] = None
    via_interface: Optional[str] = None

    def __post_init__(self):
        if (self.via_link is None) == (self.via_interface is None):
            raise ValueError(
                f"route on {self.host!r}: exactly one of via_link/via_interface"
            )


@dataclass(frozen=True)
class Topology:
    """A complete declarative overlay: the compiler's input.

    ``wiring`` selects the physical substrate: ``"mesh"`` replays the
    legacy testbed wiring (all-pairs ARP neighbors, direct cable for two
    hosts, one switch otherwise) and is what the facades use; ``"links"``
    wires ARP neighbors only along overlay links (plus a shared switch),
    which is what makes 1000+-host fabrics affordable.
    """

    name: str
    network: Network
    hosts: tuple[HostSpec, ...]
    routers: tuple[Router, ...] = ()
    links: tuple[OverlayLink, ...] = ()
    routes: tuple[RoutePlan, ...] = ()
    wiring: str = "links"
    vms_per_host: int = 1

    def __post_init__(self):
        if self.wiring not in ("mesh", "links"):
            raise ValueError(f"unknown wiring mode {self.wiring!r}")
        names = [h.name for h in self.hosts]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate host names in topology {self.name!r}")

    @property
    def compute_hosts(self) -> tuple[HostSpec, ...]:
        """The VM-carrying hosts, in index order."""
        return tuple(h for h in self.hosts if h.vms > 0)

    @property
    def n_routers(self) -> int:
        """Forwarding-only hosts in the fabric."""
        return len(self.routers)

    @property
    def total_vms(self) -> int:
        """Guest VMs across every host."""
        return sum(h.vms for h in self.hosts)


@dataclass(frozen=True)
class TopoSpec:
    """Plain-data topology request: the exec-engine-friendly handle.

    ``kind`` selects the generator (``mesh``, ``fat-tree``, ``torus``,
    ``multirack``); the remaining fields parameterise it (unused fields
    stay at their defaults and still fingerprint stably).  Frozen and
    flat so :mod:`repro.exec.fingerprint` hashes it like any scalar
    kwarg; pass through :func:`repro.topo.generators.generate`.
    """

    kind: str
    n_hosts: int = 2
    vms_per_host: int = 1
    rows: int = 0
    cols: int = 0
    racks: int = 0
    hosts_per_rack: int = 0
    oversubscription: int = 4
    seed: int = 0

    # Keep a stable repr for experiment labels.
    def label(self) -> str:
        """Short human label, e.g. ``fat-tree/64``."""
        if self.kind == "torus":
            return f"torus/{self.rows}x{self.cols}"
        if self.kind == "multirack":
            return f"multirack/{self.racks}x{self.hosts_per_rack}"
        return f"{self.kind}/{self.n_hosts}"
