"""Specialised interconnects: InfiniBand (IPoIB) and Cray Gemini (IPoG)."""

from .gemini import Torus3D, build_native_gemini, build_vnetp_gemini, gemini_nic
from .infiniband import build_native_ipoib, build_vnetp_ipoib, ipoib_nic

__all__ = [
    "Torus3D",
    "build_native_gemini",
    "build_vnetp_gemini",
    "gemini_nic",
    "build_native_ipoib",
    "build_vnetp_ipoib",
    "ipoib_nic",
]
