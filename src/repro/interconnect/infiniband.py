"""InfiniBand / IPoIB support (Sect. 6.1).

IPoIB exposes the HCA to the host TCP/IP stack as a pseudo-Ethernet
device, so VNET/P "trivially" directs its UDP encapsulation over the IB
fabric — no VNET/P code changes, only addressing/routing configuration.
Correspondingly, this module only provides the device parameterisation
and testbed builders; the data path is the ordinary one.

The Mellanox IPoIB device model (:data:`repro.config.MELLANOX_IPOIB`)
reflects connected-mode IPoIB on ConnectX-class DDR hardware: an
effective rate ceiling well under the signalling rate, a 4 KB underlying
path MTU, and higher per-frame driver costs than an Ethernet NIC.
"""

from __future__ import annotations

import dataclasses

from ..config import MELLANOX_IPOIB, NICParams, VnetMode, default_host, default_tuning
from ..harness.testbed import Testbed, build_native, build_vnetp

__all__ = ["ipoib_nic", "build_native_ipoib", "build_vnetp_ipoib"]


def ipoib_nic(mtu: int = 65520) -> NICParams:
    """The IPoIB pseudo-Ethernet device (connected mode, large MTU)."""
    return dataclasses.replace(MELLANOX_IPOIB, max_mtu=mtu)


def build_native_ipoib(n_hosts: int = 2, **kw) -> Testbed:
    """Native hosts whose TCP/IP stacks run over IPoIB."""
    return build_native(n_hosts=n_hosts, nic_params=ipoib_nic(), **kw)


def build_vnetp_ipoib(n_hosts: int = 2, tuned: bool = False, **kw) -> Testbed:
    """VNET/P over IPoIB.

    The paper's Sect. 6.1 results are explicitly *untuned* ("out of the
    box"): guest-driven operation and per-packet receive interrupts.
    Pass ``tuned=True`` for the standard adaptive configuration instead.
    """
    if tuned:
        return build_vnetp(n_hosts=n_hosts, nic_params=ipoib_nic(), **kw)
    base = default_host()
    host_params = dataclasses.replace(
        base, virtio=dataclasses.replace(base.virtio, irq_coalesce_ns=0)
    )
    return build_vnetp(
        n_hosts=n_hosts,
        nic_params=ipoib_nic(),
        tuning=default_tuning(mode=VnetMode.GUEST_DRIVEN),
        host_params=host_params,
        **kw,
    )
