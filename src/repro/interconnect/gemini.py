"""Cray Gemini / IPoG support (Sect. 6.2).

The Gemini NIC connects nodes in a 3-D torus; its "IPoG" layer exposes
a virtual Ethernet NIC to the host TCP/IP stack, over which VNET/P maps
its UDP encapsulation unchanged (exactly as with IPoIB).  This module
provides the torus geometry (used to derive per-pair hop counts and
propagation delays, as on the Curie XK6 testbed) and testbed builders.
"""

from __future__ import annotations

import dataclasses
from itertools import product

from ..config import GEMINI_IPOG, OPTERON_2376, NICParams, default_host
from ..harness.testbed import Testbed, build_native, build_vnetp

__all__ = ["Torus3D", "gemini_nic", "build_native_gemini", "build_vnetp_gemini"]

# Per-hop router latency on Gemini (~100+ns per hop plus wire).
HOP_NS = 160


class Torus3D:
    """A 3-D torus: node placement and minimal-path hop counts."""

    def __init__(self, dims: tuple[int, int, int]):
        if any(d < 1 for d in dims):
            raise ValueError(f"bad torus dimensions {dims}")
        self.dims = dims

    @property
    def size(self) -> int:
        x, y, z = self.dims
        return x * y * z

    def coords(self, node: int) -> tuple[int, int, int]:
        if not 0 <= node < self.size:
            raise ValueError(f"node {node} outside torus of {self.size}")
        x, y, z = self.dims
        return (node % x, (node // x) % y, node // (x * y))

    def hops(self, a: int, b: int) -> int:
        """Minimal hop count between two nodes (per-dimension wraparound)."""
        total = 0
        for ca, cb, dim in zip(self.coords(a), self.coords(b), self.dims):
            d = abs(ca - cb)
            total += min(d, dim - d)
        return total

    def mean_hops(self) -> float:
        n = self.size
        if n == 1:
            return 0.0
        total = sum(self.hops(a, b) for a, b in product(range(n), range(n)) if a != b)
        return total / (n * (n - 1))


def gemini_nic(torus: Torus3D | None = None) -> NICParams:
    """IPoG pseudo-Ethernet device; propagation reflects average torus
    path length (the Curie testbed is a 50-node XK6)."""
    torus = torus or Torus3D((5, 5, 2))
    prop = int(500 + HOP_NS * torus.mean_hops())
    return dataclasses.replace(GEMINI_IPOG, propagation_ns=prop)


def build_native_gemini(n_hosts: int = 2, torus: Torus3D | None = None, **kw) -> Testbed:
    return build_native(n_hosts=n_hosts, nic_params=gemini_nic(torus), **kw)


def build_vnetp_gemini(n_hosts: int = 2, torus: Torus3D | None = None, **kw) -> Testbed:
    """VNET/P over IPoG: identical architecture to Fig. 1, only the
    device beneath the bridge changes (Sect. 6.2).

    Defaults reflect the Curie XK6 nodes: VNET/P's 64 KB maximum MTU is
    used to amortise per-packet costs over Gemini's large frames, and
    the Opteron 6272 / HyperTransport-3 memory system copies faster than
    the Sect. 5 Xeon testbed.
    """
    from ..config import default_tuning

    if "tuning" not in kw:
        kw["tuning"] = default_tuning(vnet_mtu=64_000)
    if "host_params" not in kw:
        base = default_host(cpu=dataclasses.replace(OPTERON_2376, name="opteron-6272"))
        kw["host_params"] = dataclasses.replace(
            base, vnet_costs=dataclasses.replace(base.vnet_costs, copy_bw_Bps=1.75e9)
        )
    return build_vnetp(n_hosts=n_hosts, nic_params=gemini_nic(torus), **kw)
