"""repro — a reproduction of VNET/P: fast VMM-based overlay networking.

The library simulates, at event level, the complete system from
*"VNET/P: Bridging the Cloud and High Performance Computing Through
Fast Overlay Networking"* (HPDC 2012 / Cluster Computing 2013):
the Palacios VMM with virtio NICs, the in-VMM VNET/P overlay (routing,
packet dispatchers, bridge, control language), the user-level VNET/U
baseline, the physical substrates (1/10 Gbps Ethernet, IPoIB, Cray
Gemini, the Kitten lightweight kernel), and the paper's workloads
(ping, ttcp, MPI/IMB, HPCC, the NAS parallel benchmarks).

Quick start::

    from repro.config import NETEFFECT_10G
    from repro.harness import build_vnetp
    from repro.apps.ping import run_ping

    tb = build_vnetp(nic_params=NETEFFECT_10G)
    result = run_ping(tb.endpoints[0], tb.endpoints[1], count=100)
    print(result.avg_rtt_us)

Subpackages:

* :mod:`repro.sim` — discrete-event simulation kernel
* :mod:`repro.hw` — NICs, links, switches, CPUs, memory
* :mod:`repro.proto` — Ethernet/IP/UDP/TCP/ICMP stack and sockets
* :mod:`repro.host` — Linux and Kitten host embeddings
* :mod:`repro.palacios` — the VMM and virtio NIC models
* :mod:`repro.vnet` — VNET/P core/bridge/control and VNET/U
* :mod:`repro.interconnect` — InfiniBand (IPoIB) and Cray Gemini (IPoG)
* :mod:`repro.mpi` — simulated MPI with collectives and two transports
* :mod:`repro.apps` — ping, ttcp, IMB, HPCC, NAS benchmark programs
* :mod:`repro.harness` — testbeds, calibration, experiments, reporting
"""

from . import units
from .config import (
    BROADCOM_1G,
    GEMINI_IPOG,
    MELLANOX_IPOIB,
    NETEFFECT_10G,
    VnetMode,
    VnetTuning,
    YieldStrategy,
    default_host,
    default_tuning,
)
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "units",
    "Simulator",
    "BROADCOM_1G",
    "NETEFFECT_10G",
    "MELLANOX_IPOIB",
    "GEMINI_IPOG",
    "VnetMode",
    "VnetTuning",
    "YieldStrategy",
    "default_host",
    "default_tuning",
    "__version__",
]
