"""Content-addressed on-disk result cache.

Entries are pickled :class:`~repro.exec.point.PointResult` payloads
stored at ``<root>/<fp[:2]>/<fp>.pkl`` where ``fp`` is the point's
:func:`~repro.exec.fingerprint.fingerprint`.  Because the fingerprint
includes a hash of the package source, cache invalidation is automatic:
editing any ``repro`` source file orphans every existing entry (stale
files are garbage, never wrong answers).

Writes are atomic (temp file + ``os.replace``) so a killed run never
leaves a truncated entry; reads treat any unpicklable/corrupt file as a
miss and fall through to recomputation.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from .point import PointResult

__all__ = ["ResultCache"]


class ResultCache:
    """Pickle store for point results, keyed by content fingerprint."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path(self, fp: str) -> Path:
        """Where the entry for fingerprint ``fp`` lives (or would live)."""
        return self.root / fp[:2] / f"{fp}.pkl"

    def get(self, fp: str) -> Optional[PointResult]:
        """The cached result for ``fp``, or ``None`` (corrupt == miss)."""
        path = self.path(fp)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if not isinstance(result, PointResult):
            self.misses += 1
            return None
        self.hits += 1
        result.cached = True
        return result

    def put(self, fp: str, result: PointResult) -> None:
        """Store ``result`` under ``fp`` atomically."""
        path = self.path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        return sum(1 for _ in self.root.glob("*/*.pkl"))
