"""Content-addressed fingerprints for experiment points.

A fingerprint is a SHA-256 over a canonical byte encoding of

* the package *code version* — a hash of every ``repro`` source file,
  so any code change invalidates every cached result;
* the experiment id and point key;
* the point function's identity (module + qualified name);
* the point's keyword arguments, canonicalised recursively.

Canonicalisation is deliberately strict: scalars, strings, bytes,
enums, dataclasses (by class name + field values), tuples/lists, dicts
(sorted by key encoding), and module-level callables are supported;
anything else raises ``TypeError`` rather than silently hashing an
unstable ``repr``.  Floats are encoded via ``repr`` (shortest
round-trip form), which is exact for the config values used here.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from functools import lru_cache
from pathlib import Path
from typing import Any

from .point import Point

__all__ = ["code_version", "canonical_bytes", "fingerprint", "point_seed"]


@lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of every ``repro`` package source file (path + contents).

    Computed once per process; cache entries written under one code
    version are unreachable under any other, which is the cache's whole
    invalidation story — there is deliberately no per-module tracking.
    """
    root = Path(__file__).resolve().parents[1]  # src/repro
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(path.relative_to(root).as_posix().encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()[:16]


def _feed(h, value: Any) -> None:
    """Feed one canonicalised value into the running hash."""
    if value is None or isinstance(value, (bool, int)):
        h.update(f"p:{value!r};".encode())
    elif isinstance(value, float):
        h.update(f"f:{value!r};".encode())
    elif isinstance(value, str):
        h.update(b"s:" + value.encode() + b";")
    elif isinstance(value, bytes):
        h.update(b"b:" + value + b";")
    elif isinstance(value, enum.Enum):
        h.update(f"e:{type(value).__module__}.{type(value).__qualname__}.{value.name};".encode())
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        h.update(f"d:{type(value).__module__}.{type(value).__qualname__}(".encode())
        for f in sorted(dataclasses.fields(value), key=lambda f: f.name):
            h.update(f.name.encode() + b"=")
            _feed(h, getattr(value, f.name))
        h.update(b");")
    elif isinstance(value, (list, tuple)):
        h.update(b"l:(")
        for item in value:
            _feed(h, item)
        h.update(b");")
    elif isinstance(value, dict):
        h.update(b"m:{")
        for key in sorted(value, key=repr):
            _feed(h, key)
            h.update(b"=>")
            _feed(h, value[key])
        h.update(b"};")
    elif callable(value):
        module = getattr(value, "__module__", None)
        qualname = getattr(value, "__qualname__", None)
        if not module or not qualname or "<locals>" in qualname:
            raise TypeError(
                f"cannot fingerprint non-module-level callable {value!r}"
            )
        h.update(f"c:{module}.{qualname};".encode())
    else:
        raise TypeError(
            f"cannot fingerprint value of type {type(value).__qualname__}: {value!r}"
        )


def canonical_bytes(value: Any) -> bytes:
    """The canonical encoding's digest for one value (mainly for tests)."""
    h = hashlib.sha256()
    _feed(h, value)
    return h.digest()


def fingerprint(point: Point) -> str:
    """Hex fingerprint of one point under the current code version."""
    h = hashlib.sha256()
    h.update(code_version().encode())
    h.update(b"|")
    h.update(point.experiment_id.encode())
    h.update(b"|")
    h.update(point.key.encode())
    h.update(b"|")
    _feed(h, point.fn)
    _feed(h, dict(point.kwargs))
    return h.hexdigest()


def point_seed(fp: str) -> int:
    """Deterministic per-point seed derived from the fingerprint."""
    return int(fp[:16], 16)
