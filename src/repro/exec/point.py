"""Schedulable experiment units.

A :class:`Point` is the engine's unit of work: one independent
simulation (a figure config, a sweep grid point, a benchmark scenario)
expressed as a module-level function plus picklable keyword arguments.
The function must be importable by reference (defined at module top
level) so worker processes can reconstruct it, and its kwargs must be
canonicalisable by :mod:`repro.exec.fingerprint` — plain scalars,
strings, enums, frozen dataclasses, tuples/lists/dicts of those, and
module-level callables.

Points must be *pure* with respect to their arguments: same kwargs,
same code → same return value, in any process.  Every experiment in
``repro.harness.experiments`` is built from such points, which is what
makes process-pool fan-out and result caching row-identical to a serial
run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["Point", "PointResult"]


@dataclass(frozen=True)
class Point:
    """One independent simulation point.

    ``experiment_id`` groups points for reporting and is part of the
    cache fingerprint; ``key`` must be unique within the experiment;
    ``fn`` is a module-level callable invoked as ``fn(**kwargs)``.
    """

    experiment_id: str
    key: str
    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class PointResult:
    """What one executed (or cache-restored) point produced.

    ``value`` is the point function's return value; ``metrics`` is a
    typed registry dump (see :meth:`repro.obs.metrics.MetricsRegistry.dump`)
    of every metric the point's simulations published; ``timelines``
    holds one :meth:`repro.obs.timeline.Timeline.dump` snapshot per
    simulation that sampled time-series (empty for points that never
    touch a timeline); ``health`` holds the point's
    :meth:`repro.obs.health.HealthEvent.to_dict` entries in emission
    order (empty for points that never touch a health hub); ``wall_s``
    is the wall-clock execution time in the process that actually ran
    it.
    """

    key: str
    value: Any
    metrics: dict
    wall_s: float
    seed: int
    cached: bool = False
    timelines: list = field(default_factory=list)
    health: list = field(default_factory=list)
