"""Parallel experiment execution engine.

The paper's evaluation is ~20 experiments, each a loop over fully
independent testbed configurations.  This package turns those loops into
schedulable units:

* :class:`~repro.exec.point.Point` — one independent simulation point: a
  module-level function plus picklable keyword arguments (frozen config
  dataclasses, enums, numbers, strings).
* :class:`~repro.exec.engine.Engine` — runs a list of points either
  inline (``jobs=1``) or across a ``multiprocessing`` worker pool
  (``jobs>1``), returning values in point order.  Each point gets a
  deterministic seed derived from its fingerprint, and each worker
  returns a typed metrics dump that is merged back into the engine's
  parent :class:`~repro.obs.metrics.MetricsRegistry`, so observability
  survives the process boundary.
* :class:`~repro.exec.cache.ResultCache` — a content-addressed on-disk
  result cache keyed by :func:`~repro.exec.fingerprint.fingerprint`
  (experiment id, point key, function identity, canonicalised kwargs,
  and a hash of the package source).  Warm re-runs skip simulation
  entirely; editing any source file invalidates every entry.

Parallel results are required to be row-identical to serial ones
(``tests/test_determinism.py::test_parallel_matches_serial``): the
engine is a pure wall-clock optimisation with zero observable drift.
See ``docs/architecture.md`` ("The execution engine") for the design.
"""

from .cache import ResultCache
from .engine import Engine, run_points
from .fingerprint import code_version, fingerprint, point_seed
from .point import Point, PointResult

__all__ = [
    "Engine",
    "Point",
    "PointResult",
    "ResultCache",
    "code_version",
    "fingerprint",
    "point_seed",
    "run_points",
]
