"""The execution engine: process-pool fan-out with a result cache.

:class:`Engine` runs a list of :class:`~repro.exec.point.Point`\\ s and
returns their values **in point order** regardless of execution order,
cache state, or worker count.  Execution of one point is identical in
every mode — the same :func:`_execute` function runs inline for
``jobs=1`` and inside pool workers for ``jobs>1``, seeding the global
``random`` module from the point's fingerprint first — so a parallel
run is row-identical to a serial one by construction (simulations
themselves derive all timing from named, name-seeded streams).

Worker lifecycle: workers are plain ``multiprocessing`` pool processes
(``fork`` start method where available, ``spawn`` otherwise), created
per :meth:`Engine.run` call and torn down when the batch completes.
Per-process memoisation in the experiment stack (flow-model
calibration, NPB calibration) warms up independently inside each
worker; that is safe because those derivations are deterministic
(``tests/test_determinism.py::test_flow_calibration_identical_across_processes``).

Each executed point returns ``(value, metrics_dump, timeline_dumps,
health_events, wall_s)`` where the metrics dump aggregates every
:class:`~repro.obs.metrics.MetricsRegistry` the point's simulations
created (captured via :func:`repro.obs.context.capture_metrics`) and
the timeline dumps are one :meth:`repro.obs.timeline.Timeline.dump`
per simulation that sampled time-series (captured via
:func:`repro.obs.context.capture_timelines`) and the health events are
one :meth:`repro.obs.health.HealthEvent.to_dict` per event any of the
point's health hubs logged (captured via
:func:`repro.obs.context.capture_health`).  The engine merges the
metrics — from cache hits too — into :attr:`Engine.metrics`, collects
every timeline dump in :attr:`Engine.timelines` and every health event
in :attr:`Engine.health_events`, and :meth:`Engine.timeline_series`
recombines timelines by series name, so rate/latency curves sampled
inside worker processes are available to the parent after a fan-out.
All three ship into :class:`~repro.obs.runinfo.RunArtifact` bundles
(``--artifact-out``).
"""

from __future__ import annotations

import multiprocessing
import random
import time
from typing import Optional, Sequence

from ..obs.context import capture_health, capture_metrics, capture_timelines
from ..obs.metrics import MetricsRegistry
from ..obs.timeline import Series, merge_dumps
from .cache import ResultCache
from .fingerprint import fingerprint, point_seed
from .point import Point, PointResult

__all__ = ["Engine", "run_points"]


def _execute(payload: tuple) -> tuple:
    """Run one point (in a worker or inline) → (value, metrics dump,
    timeline dumps, health event dicts, wall)."""
    fn, kwargs, seed = payload
    random.seed(seed)
    t0 = time.perf_counter()
    with capture_metrics() as registries, capture_timelines() as timelines, \
            capture_health() as hubs:
        value = fn(**kwargs)
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry.dump())
    tl_dumps = [tl.dump() for tl in timelines if tl.series]
    health = [e.to_dict() for hub in hubs for e in hub.log.events]
    return value, merged.dump(), tl_dumps, health, time.perf_counter() - t0


def _pool_context():
    """Fork where available (cheap, inherits warm caches), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class Engine:
    """Schedules independent points across processes, backed by a cache.

    ``jobs`` is the maximum worker-process count (1 = run inline);
    ``cache`` is an optional :class:`~repro.exec.cache.ResultCache`;
    ``registry`` receives merged worker metrics and the engine's own
    ``exec.points.{total,executed,cached}`` counters (a fresh registry
    is created when omitted, exposed as :attr:`metrics`).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.metrics = registry if registry is not None else MetricsRegistry()
        #: Timeline dumps collected from every point (cache hits included).
        self.timelines: list[dict] = []
        #: Health event dicts from every point, in point order
        #: (cache hits included) — RunArtifact's ``health`` section.
        self.health_events: list[dict] = []

    # -- stats -------------------------------------------------------------
    @property
    def points_total(self) -> int:
        """Points scheduled over this engine's lifetime."""
        return self.metrics.counter("exec.points.total").value

    @property
    def points_executed(self) -> int:
        """Points that actually ran a simulation (cache misses)."""
        return self.metrics.counter("exec.points.executed").value

    @property
    def points_cached(self) -> int:
        """Points answered from the result cache."""
        return self.metrics.counter("exec.points.cached").value

    def summary(self) -> str:
        """One-line machine-greppable stats (printed by the CLI)."""
        return (
            f"[exec] points={self.points_total} "
            f"executed={self.points_executed} "
            f"cached={self.points_cached} jobs={self.jobs}"
        )

    # -- execution ---------------------------------------------------------
    def run(self, points: Sequence[Point]) -> list:
        """Run every point; returns their values in point order."""
        results = self.run_detailed(points)
        return [r.value for r in results]

    def run_detailed(self, points: Sequence[Point]) -> list[PointResult]:
        """Like :meth:`run` but returning full :class:`PointResult`\\ s."""
        results: list[Optional[PointResult]] = [None] * len(points)
        pending: list[tuple[int, Point, str, int]] = []
        for i, p in enumerate(points):
            fp = fingerprint(p)
            seed = point_seed(fp)
            cached = self.cache.get(fp) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                self.metrics.counter("exec.points.cached").inc()
                self.metrics.merge(cached.metrics)
                self.timelines.extend(getattr(cached, "timelines", []) or [])
                self.health_events.extend(getattr(cached, "health", []) or [])
            else:
                pending.append((i, p, fp, seed))

        if pending:
            payloads = [(p.fn, dict(p.kwargs), seed) for _, p, _, seed in pending]
            if self.jobs > 1 and len(payloads) > 1:
                with _pool_context().Pool(
                    processes=min(self.jobs, len(payloads))
                ) as pool:
                    outs = pool.map(_execute, payloads, chunksize=1)
            else:
                outs = [_execute(payload) for payload in payloads]
            for (i, p, fp, seed), (value, dump, tl_dumps, health, wall) in zip(
                pending, outs
            ):
                result = PointResult(
                    key=p.key, value=value, metrics=dump, wall_s=wall,
                    seed=seed, timelines=tl_dumps, health=health,
                )
                results[i] = result
                self.metrics.counter("exec.points.executed").inc()
                self.metrics.gauge("exec.points.wall_s").inc(wall)
                self.metrics.merge(dump)
                self.timelines.extend(tl_dumps)
                self.health_events.extend(health)
                if self.cache is not None:
                    self.cache.put(fp, result)

        self.metrics.counter("exec.points.total").inc(len(points))
        return results  # type: ignore[return-value]

    def timeline_series(self) -> dict[str, Series]:
        """Every time-series sampled by this engine's points, merged.

        Same-name series from different workers (or cached points) are
        concatenated and time-sorted (:func:`repro.obs.timeline.merge_dumps`);
        an engine whose points never sample returns an empty dict.
        """
        return merge_dumps(self.timelines)


def run_points(points: Sequence[Point], engine: Optional[Engine] = None) -> list:
    """Run points through ``engine`` (or a fresh serial, cache-less one)."""
    return (engine or Engine()).run(points)
