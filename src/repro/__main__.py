"""Command-line experiment runner.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig08                # run one experiment (full size)
    python -m repro fig08 --quick        # reduced, same-shape version
    python -m repro all --quick          # everything
    python -m repro all --quick --jobs 4 # fan points out over 4 worker
                                         # processes (row-identical)
    python -m repro fig14 --no-cache     # force recomputation
    python -m repro resilience --quick   # chaos/fault-injection family:
                                         # goodput under loss, partition
                                         # detection + failover timing
    python -m repro obs                  # record a ping, print the span
                                         # breakdown, optionally export
                                         # Chrome/JSONL traces
    python -m repro obs report           # sample time-series + per-flow
                                         # latency over a ttcp stream;
                                         # export CSV / Chrome counters /
                                         # metrics JSONL
    python -m repro obs profile          # self-profile the sim kernel on
                                         # the fig8 ttcp pair: wall time
                                         # per event category, flamegraph
                                         # + Chrome-trace exports
    python -m repro obs diff A.json B.json   # structurally compare two
                                         # RunArtifact bundles (exact or
                                         # tolerance mode); exit 0 when
                                         # identical/equivalent
    python -m repro fig08 --artifact-out run.json   # write the run's
                                         # RunArtifact (rows, metrics,
                                         # timelines, health, fairness)

Results are cached on disk (``--cache-dir``, default
``results/.cache``) keyed by experiment point + configuration + code
version; a re-run of an unchanged tree answers every point from the
cache.  The final ``[exec] points=... executed=... cached=...`` line
reports what actually ran.
"""

from __future__ import annotations

import argparse
import sys
import time


def _run_obs(argv: list[str]) -> int:
    """The ``obs`` subcommand: record spans on a 1-hop VNET/P ping.

    Builds a noise-free two-host VNET/P testbed, pings with span
    recording on, and prints the measured per-stage latency breakdown
    next to the analytic model (they agree to the nanosecond on this
    configuration).  ``--chrome``/``--jsonl`` export the recording.
    """
    from .apps.ping import run_ping
    from .config import NETEFFECT_10G, BROADCOM_1G, OsNoiseParams, default_host
    from .harness.breakdown import render, total_ns, vnetp_one_way_breakdown
    from .harness.testbed import build_vnetp
    from .obs.breakdown import recorded_one_way_breakdown, render_recorded
    from .obs.context import Observability
    from .obs.exporters import export_chrome_trace, export_jsonl

    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Record per-packet spans on a 1-hop VNET/P ping.",
    )
    parser.add_argument("--pings", type=int, default=3, help="ping count (default 3)")
    parser.add_argument("--payload", type=int, default=56, help="ICMP payload bytes")
    parser.add_argument(
        "--nic", choices=["10g", "1g"], default="10g", help="physical NIC model"
    )
    parser.add_argument("--chrome", metavar="PATH", help="write a Chrome trace_event file")
    parser.add_argument("--jsonl", metavar="PATH", help="write the spans as JSON Lines")
    args = parser.parse_args(argv)
    if args.pings < 1:
        parser.error("--pings must be >= 1")

    nic = NETEFFECT_10G if args.nic == "10g" else BROADCOM_1G
    host = default_host().with_(noise=OsNoiseParams(jitter_max_ns=0))
    tb = build_vnetp(nic_params=nic, host_params=host)
    obs = Observability.of(tb.sim)
    obs.spans.enabled = True
    result = run_ping(
        tb.endpoints[0], tb.endpoints[1], data_size=args.payload, count=args.pings
    )
    src, dst = tb.endpoints[0].stack.name, tb.endpoints[1].stack.name
    stages = recorded_one_way_breakdown(obs.spans, src, dst, nth=-1)
    print(f"== recorded one-way breakdown ({args.nic}, {args.payload} B ICMP) ==\n")
    print(render_recorded(stages))
    recorded = sum(s.ns for s in stages)
    analytic = total_ns(vnetp_one_way_breakdown(nic, payload=args.payload, host=host))
    print(
        f"\nrecorded {recorded / 1000:.2f} us vs analytic {analytic / 1000:.2f} us "
        f"(delta {recorded - analytic} ns); ping RTT avg {result.avg_rtt_us:.2f} us"
    )
    if args.payload == 56:
        print("\n== analytic model for comparison ==\n")
        print(render(vnetp_one_way_breakdown(nic, payload=args.payload, host=host)))
    if args.chrome:
        export_chrome_trace(obs.spans.spans, args.chrome)
        print(f"\nwrote Chrome trace_event file: {args.chrome} "
              f"({len(obs.spans.spans)} spans; open in chrome://tracing or Perfetto)")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fp:
            export_jsonl(obs.spans.spans, fp)
        print(f"wrote JSONL span dump: {args.jsonl}")
    return 0


def _run_obs_report(argv: list[str]) -> int:
    """The ``obs report`` subcommand: the time-dimension of observability.

    Runs a two-host VNET/P ttcp UDP stream with span recording on and a
    timeline sampling packet rate, dispatcher/ring occupancy (time-
    weighted), and the live p99 flow latency; prints the time-series
    summary, the per-flow latency table with critical-path attribution,
    and the health log of an attached goodput-collapse detector.
    ``--csv``/``--chrome``/``--metrics-out`` export the timeline as CSV,
    a Chrome trace (spans + counter events merged), and the full metrics
    registry as JSONL.
    """
    import json

    from . import units
    from .apps.ttcp import run_ttcp_udp
    from .harness.testbed import build_vnetp
    from .obs.context import Observability
    from .obs.exporters import chrome_trace, export_metrics_jsonl
    from .obs.flows import (
        assemble_packet_records,
        flow_summaries,
        register_latency_series,
        render_flow_report,
    )
    from .obs.health import GoodputCollapseDetector

    parser = argparse.ArgumentParser(
        prog="python -m repro obs report",
        description="Sample time-series and per-flow latency over a ttcp run.",
    )
    parser.add_argument("--duration-ms", type=float, default=2.0,
                        help="virtual stream duration (default 2.0)")
    parser.add_argument("--interval-us", type=float, default=50.0,
                        help="sampling window (default 50.0)")
    parser.add_argument("--csv", metavar="PATH", help="write the timeline as CSV")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write a Chrome trace (spans + counter events)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the metrics registry as JSONL")
    args = parser.parse_args(argv)
    if args.duration_ms <= 0:
        parser.error("--duration-ms must be positive")
    if args.interval_us <= 0:
        parser.error("--interval-us must be positive")

    duration_ns = int(args.duration_ms * units.MS)
    tb = build_vnetp(n_hosts=2)
    obs = Observability.of(tb.sim)
    obs.spans.enabled = True
    timeline = obs.timeline
    timeline.interval_ns = int(args.interval_us * 1000)
    timeline.counter_rate("vnet.core.h0.pkts_from_guest",
                          series="vnet.h0.pkt_rate", unit="pkt/s")
    timeline.gauge_value("vnet.core.h1.rxq_depth",
                         series="vnet.h1.rxq_depth", time_avg=True, unit="pkt")
    pkt_rate = timeline.series["vnet.h0.pkt_rate"]
    latency = register_latency_series(timeline, obs.spans, q=99.0)
    # Per-window flow-cache hit rate, one series per host with the
    # per-flow fast path enabled (repro.vnet.flowcache; default on).
    flowcaches = [h.vnet_core.flowcache for h in tb.hosts
                  if h.vnet_core is not None and h.vnet_core.flowcache is not None]
    for cache in flowcaches:
        cache.register_hit_rate(timeline)
    hub = obs.health
    hub.add(GoodputCollapseDetector("obs.report.goodput", hub.log, pkt_rate))
    hub.attach_to(timeline)
    timeline.start(until_ns=duration_ns)
    result = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1],
                          duration_ns=duration_ns)

    print(timeline.render(f"ttcp UDP, {args.duration_ms:g} ms"))
    records = assemble_packet_records(obs.spans.spans)
    print()
    print(render_flow_report(flow_summaries(records)))
    print(f"\nttcp goodput {result.gbps:.2f} Gbps; "
          f"{len(records)} packet records from {len(obs.spans.spans)} spans; "
          f"{len(latency)} latency samples")
    if flowcaches:
        rates = ", ".join(
            f"{c.core.host.name} {c.hit_rate:.1%} ({c.hits} hits)"
            for c in flowcaches
        )
        print(f"flow-cache hit rate: {rates} "
              f"(per-window series vnet.flowcache.<host>.hit_rate above; "
              f"counters under vnet.flowcache.* in --metrics-out)")
    if hub.log.events:
        print()
        print(hub.log.render())
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fp:
            fp.write(timeline.to_csv())
        print(f"\nwrote timeline CSV: {args.csv}")
    if args.chrome:
        trace = chrome_trace(obs.spans.spans)
        trace["traceEvents"].extend(timeline.chrome_counter_events())
        with open(args.chrome, "w", encoding="utf-8") as fp:
            json.dump(trace, fp, indent=1)
        print(f"wrote Chrome trace (spans + counters): {args.chrome}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            export_metrics_jsonl(obs.metrics, fp)
        print(f"wrote metrics JSONL: {args.metrics_out}")
    return 0


def _run_obs_profile(argv: list[str]) -> int:
    """The ``obs profile`` subcommand: self-profile the sim kernel.

    Runs the fig8 ttcp pair (TCP bulk transfer, then UDP goodput — the
    same workload ``tools/simbench.py`` times) with a
    :class:`~repro.obs.profile.KernelProfiler` installed on each
    testbed's simulator, and prints the combined per-category wall-time
    attribution.  The report's TOTAL line is the reconciliation check:
    attributed nanoseconds must land within a few percent of the wall
    time the profiler measured around the run loop.
    ``--collapsed``/``--chrome``/``--json`` export collapsed stacks
    (``flamegraph.pl`` / speedscope input), a Chrome ``trace_event``
    file, and the raw report dict.
    """
    import json

    from . import units
    from .apps.ttcp import run_ttcp_tcp, run_ttcp_udp
    from .config import NETEFFECT_10G
    from .harness.testbed import build_vnetp
    from .obs.profile import (
        KernelProfiler,
        collapsed_stacks,
        combine_reports,
        profile_chrome_trace,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro obs profile",
        description="Profile the sim kernel on the fig8 ttcp workload.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workload (10 MB TCP / 8 ms UDP "
                             "instead of 40 MB / 20 ms)")
    parser.add_argument("--collapsed", metavar="PATH",
                        help="write collapsed stacks (flamegraph.pl input)")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write a Chrome trace_event file")
    parser.add_argument("--json", metavar="PATH",
                        help="write the raw profile report as JSON")
    args = parser.parse_args(argv)

    total_bytes, udp_ns = (
        (10 * units.MB, 8 * units.MS) if args.quick
        else (40 * units.MB, 20 * units.MS)
    )
    wall0 = time.perf_counter_ns()
    tb = build_vnetp(nic_params=NETEFFECT_10G)
    prof_tcp = KernelProfiler.install(tb.sim)
    prof_tcp.enable()
    r_tcp = run_ttcp_tcp(tb.endpoints[0], tb.endpoints[1], total_bytes=total_bytes)
    tb2 = build_vnetp(nic_params=NETEFFECT_10G)
    prof_udp = KernelProfiler.install(tb2.sim)
    prof_udp.enable()
    r_udp = run_ttcp_udp(tb2.endpoints[0], tb2.endpoints[1], duration_ns=udp_ns)
    wall_ns = time.perf_counter_ns() - wall0

    report = combine_reports([prof_tcp.report(), prof_udp.report()])
    print(f"== obs profile: fig8 ttcp pair "
          f"({total_bytes // units.MB} MB TCP + {udp_ns // units.MS} ms UDP) ==\n")
    print(report.render())
    in_run = report.total_wall_ns / max(wall_ns, 1)
    print(
        f"\nworkload wall {wall_ns / 1e6:.1f} ms, of which "
        f"{report.total_wall_ns / 1e6:.1f} ms ({in_run:.1%}) inside "
        f"Simulator.run; attribution covers "
        f"{report.attributed_ns / max(report.total_wall_ns, 1):.1%} of that"
    )
    print(f"tcp {r_tcp.gbps:.2f} Gbps, udp {r_udp.gbps:.2f} Gbps "
          f"(simulated observables; profiling never changes them)")
    if args.collapsed:
        with open(args.collapsed, "w", encoding="utf-8") as fp:
            fp.write(collapsed_stacks(report))
        print(f"\nwrote collapsed stacks: {args.collapsed} "
              f"(flamegraph.pl or speedscope)")
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fp:
            json.dump(profile_chrome_trace(report), fp, indent=1)
        print(f"wrote Chrome trace_event file: {args.chrome}")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(report.to_dict(), fp, indent=1, sort_keys=True)
        print(f"wrote profile report JSON: {args.json}")
    return 0


def _run_obs_diff(argv: list[str]) -> int:
    """The ``obs diff`` subcommand: compare two RunArtifact bundles.

    Exit status: 0 when the verdict is ``identical`` or ``equivalent``,
    1 when ``different``, 2 when the inputs are unusable (unreadable
    file, invalid JSON, mismatched artifact schemas, bad section name).
    """
    import json

    from .obs.compare import DEFAULT_SECTIONS, diff_artifacts
    from .obs.runinfo import RunArtifact

    parser = argparse.ArgumentParser(
        prog="python -m repro obs diff",
        description="Structurally compare two RunArtifact JSON bundles.",
    )
    parser.add_argument("a", metavar="A.json", help="first artifact")
    parser.add_argument("b", metavar="B.json", help="second artifact")
    parser.add_argument("--mode", choices=["exact", "tolerance"], default="exact",
                        help="exact = same-seed determinism check; tolerance "
                             "= numeric leaves may differ within --rel-tol/"
                             "--abs-tol (fluid/ablation A/Bs)")
    parser.add_argument("--rel-tol", type=float, default=0.02,
                        help="relative tolerance in tolerance mode (default 0.02)")
    parser.add_argument("--abs-tol", type=float, default=0.0,
                        help="absolute tolerance in tolerance mode (default 0)")
    parser.add_argument("--sections", metavar="S1,S2",
                        help="comma-separated sections to compare (default "
                             f"{','.join(DEFAULT_SECTIONS)})")
    parser.add_argument("--ignore", action="append", default=[], metavar="GLOB",
                        help="ignore leaf paths matching this fnmatch pattern "
                             "(repeatable; metrics.exec.points.wall_s* is "
                             "always ignored)")
    parser.add_argument("--json", metavar="PATH",
                        help="also write the full verdict as JSON")
    args = parser.parse_args(argv)

    try:
        art_a = RunArtifact.load(args.a)
        art_b = RunArtifact.load(args.b)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"obs diff: cannot load artifact: {exc}", file=sys.stderr)
        return 2
    sections = (
        tuple(s.strip() for s in args.sections.split(",") if s.strip())
        if args.sections else None
    )
    try:
        report = diff_artifacts(
            art_a, art_b,
            mode=args.mode,
            sections=sections,
            rel_tol=args.rel_tol,
            abs_tol=args.abs_tol,
            ignore=tuple(args.ignore),
        )
    except ValueError as exc:
        print(f"obs diff: {exc}", file=sys.stderr)
        return 2
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            json.dump(report.to_dict(), fp, indent=1, sort_keys=True)
        print(f"wrote diff verdict JSON: {args.json}", file=sys.stderr)
    return 0 if report.equivalent else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        if len(argv) > 1 and argv[1] == "report":
            return _run_obs_report(argv[2:])
        if len(argv) > 1 and argv[1] == "profile":
            return _run_obs_profile(argv[2:])
        if len(argv) > 1 and argv[1] == "diff":
            return _run_obs_diff(argv[2:])
        return _run_obs(argv[1:])

    from .harness.experiments import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the VNET/P paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="run the reduced-size version"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent simulation points "
             "(default 1 = inline; results are identical at any N)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="reuse cached point results keyed by config + code version "
             "(default on; --no-cache forces recomputation)",
    )
    parser.add_argument(
        "--cache-dir", default="results/.cache", metavar="DIR",
        help="result cache directory (default results/.cache)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the merged metrics registry of every executed point "
             "as JSONL (one metric per line, diffable across runs)",
    )
    parser.add_argument(
        "--artifact-out", metavar="PATH",
        help="write the run's RunArtifact bundle (config fingerprint, "
             "rows, metrics, timelines, health, fairness) as JSON — "
             "the input to 'python -m repro obs diff'",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:14} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    from .exec import Engine, ResultCache

    engine = Engine(
        jobs=args.jobs,
        cache=ResultCache(args.cache_dir) if args.cache else None,
    )
    results = []
    for name in names:
        start = time.time()
        result = ALL_EXPERIMENTS[name](quick=args.quick, engine=engine)
        results.append(result)
        print(result.render())
        print(f"[{time.time() - start:.1f}s]\n")
    print(engine.summary())
    if args.metrics_out:
        from .obs.exporters import export_metrics_jsonl

        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            export_metrics_jsonl(engine.metrics, fp)
        # Status goes to stderr: stdout stays row-diffable across runs
        # whose --metrics-out paths differ (the chaos-suite CI diff).
        print(f"wrote metrics JSONL: {args.metrics_out}", file=sys.stderr)
    if args.artifact_out:
        from .obs.runinfo import build_artifact

        artifact = build_artifact(
            engine, results,
            extra_config={
                "experiments": names,
                "quick": bool(args.quick),
                "jobs": args.jobs,
            },
        )
        artifact.save(args.artifact_out)
        print(f"wrote run artifact: {args.artifact_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
