"""Command-line experiment runner.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig08                # run one experiment (full size)
    python -m repro fig08 --quick        # reduced, same-shape version
    python -m repro all --quick          # everything
    python -m repro all --quick --jobs 4 # fan points out over 4 worker
                                         # processes (row-identical)
    python -m repro fig14 --no-cache     # force recomputation
    python -m repro resilience --quick   # chaos/fault-injection family:
                                         # goodput under loss, partition
                                         # detection + failover timing
    python -m repro obs                  # record a ping, print the span
                                         # breakdown, optionally export
                                         # Chrome/JSONL traces
    python -m repro obs report           # sample time-series + per-flow
                                         # latency over a ttcp stream;
                                         # export CSV / Chrome counters /
                                         # metrics JSONL

Results are cached on disk (``--cache-dir``, default
``results/.cache``) keyed by experiment point + configuration + code
version; a re-run of an unchanged tree answers every point from the
cache.  The final ``[exec] points=... executed=... cached=...`` line
reports what actually ran.
"""

from __future__ import annotations

import argparse
import sys
import time


def _run_obs(argv: list[str]) -> int:
    """The ``obs`` subcommand: record spans on a 1-hop VNET/P ping.

    Builds a noise-free two-host VNET/P testbed, pings with span
    recording on, and prints the measured per-stage latency breakdown
    next to the analytic model (they agree to the nanosecond on this
    configuration).  ``--chrome``/``--jsonl`` export the recording.
    """
    from .apps.ping import run_ping
    from .config import NETEFFECT_10G, BROADCOM_1G, OsNoiseParams, default_host
    from .harness.breakdown import render, total_ns, vnetp_one_way_breakdown
    from .harness.testbed import build_vnetp
    from .obs.breakdown import recorded_one_way_breakdown, render_recorded
    from .obs.context import Observability
    from .obs.exporters import export_chrome_trace, export_jsonl

    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Record per-packet spans on a 1-hop VNET/P ping.",
    )
    parser.add_argument("--pings", type=int, default=3, help="ping count (default 3)")
    parser.add_argument("--payload", type=int, default=56, help="ICMP payload bytes")
    parser.add_argument(
        "--nic", choices=["10g", "1g"], default="10g", help="physical NIC model"
    )
    parser.add_argument("--chrome", metavar="PATH", help="write a Chrome trace_event file")
    parser.add_argument("--jsonl", metavar="PATH", help="write the spans as JSON Lines")
    args = parser.parse_args(argv)
    if args.pings < 1:
        parser.error("--pings must be >= 1")

    nic = NETEFFECT_10G if args.nic == "10g" else BROADCOM_1G
    host = default_host().with_(noise=OsNoiseParams(jitter_max_ns=0))
    tb = build_vnetp(nic_params=nic, host_params=host)
    obs = Observability.of(tb.sim)
    obs.spans.enabled = True
    result = run_ping(
        tb.endpoints[0], tb.endpoints[1], data_size=args.payload, count=args.pings
    )
    src, dst = tb.endpoints[0].stack.name, tb.endpoints[1].stack.name
    stages = recorded_one_way_breakdown(obs.spans, src, dst, nth=-1)
    print(f"== recorded one-way breakdown ({args.nic}, {args.payload} B ICMP) ==\n")
    print(render_recorded(stages))
    recorded = sum(s.ns for s in stages)
    analytic = total_ns(vnetp_one_way_breakdown(nic, payload=args.payload, host=host))
    print(
        f"\nrecorded {recorded / 1000:.2f} us vs analytic {analytic / 1000:.2f} us "
        f"(delta {recorded - analytic} ns); ping RTT avg {result.avg_rtt_us:.2f} us"
    )
    if args.payload == 56:
        print("\n== analytic model for comparison ==\n")
        print(render(vnetp_one_way_breakdown(nic, payload=args.payload, host=host)))
    if args.chrome:
        export_chrome_trace(obs.spans.spans, args.chrome)
        print(f"\nwrote Chrome trace_event file: {args.chrome} "
              f"({len(obs.spans.spans)} spans; open in chrome://tracing or Perfetto)")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fp:
            export_jsonl(obs.spans.spans, fp)
        print(f"wrote JSONL span dump: {args.jsonl}")
    return 0


def _run_obs_report(argv: list[str]) -> int:
    """The ``obs report`` subcommand: the time-dimension of observability.

    Runs a two-host VNET/P ttcp UDP stream with span recording on and a
    timeline sampling packet rate, dispatcher/ring occupancy (time-
    weighted), and the live p99 flow latency; prints the time-series
    summary, the per-flow latency table with critical-path attribution,
    and the health log of an attached goodput-collapse detector.
    ``--csv``/``--chrome``/``--metrics-out`` export the timeline as CSV,
    a Chrome trace (spans + counter events merged), and the full metrics
    registry as JSONL.
    """
    import json

    from . import units
    from .apps.ttcp import run_ttcp_udp
    from .harness.testbed import build_vnetp
    from .obs.context import Observability
    from .obs.exporters import chrome_trace, export_metrics_jsonl
    from .obs.flows import (
        assemble_packet_records,
        flow_summaries,
        register_latency_series,
        render_flow_report,
    )
    from .obs.health import GoodputCollapseDetector

    parser = argparse.ArgumentParser(
        prog="python -m repro obs report",
        description="Sample time-series and per-flow latency over a ttcp run.",
    )
    parser.add_argument("--duration-ms", type=float, default=2.0,
                        help="virtual stream duration (default 2.0)")
    parser.add_argument("--interval-us", type=float, default=50.0,
                        help="sampling window (default 50.0)")
    parser.add_argument("--csv", metavar="PATH", help="write the timeline as CSV")
    parser.add_argument("--chrome", metavar="PATH",
                        help="write a Chrome trace (spans + counter events)")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the metrics registry as JSONL")
    args = parser.parse_args(argv)
    if args.duration_ms <= 0:
        parser.error("--duration-ms must be positive")
    if args.interval_us <= 0:
        parser.error("--interval-us must be positive")

    duration_ns = int(args.duration_ms * units.MS)
    tb = build_vnetp(n_hosts=2)
    obs = Observability.of(tb.sim)
    obs.spans.enabled = True
    timeline = obs.timeline
    timeline.interval_ns = int(args.interval_us * 1000)
    timeline.counter_rate("vnet.core.h0.pkts_from_guest",
                          series="vnet.h0.pkt_rate", unit="pkt/s")
    timeline.gauge_value("vnet.core.h1.rxq_depth",
                         series="vnet.h1.rxq_depth", time_avg=True, unit="pkt")
    pkt_rate = timeline.series["vnet.h0.pkt_rate"]
    latency = register_latency_series(timeline, obs.spans, q=99.0)
    # Per-window flow-cache hit rate, one series per host with the
    # per-flow fast path enabled (repro.vnet.flowcache; default on).
    flowcaches = [h.vnet_core.flowcache for h in tb.hosts
                  if h.vnet_core is not None and h.vnet_core.flowcache is not None]
    for cache in flowcaches:
        cache.register_hit_rate(timeline)
    hub = obs.health
    hub.add(GoodputCollapseDetector("obs.report.goodput", hub.log, pkt_rate))
    hub.attach_to(timeline)
    timeline.start(until_ns=duration_ns)
    result = run_ttcp_udp(tb.endpoints[0], tb.endpoints[1],
                          duration_ns=duration_ns)

    print(timeline.render(f"ttcp UDP, {args.duration_ms:g} ms"))
    records = assemble_packet_records(obs.spans.spans)
    print()
    print(render_flow_report(flow_summaries(records)))
    print(f"\nttcp goodput {result.gbps:.2f} Gbps; "
          f"{len(records)} packet records from {len(obs.spans.spans)} spans; "
          f"{len(latency)} latency samples")
    if flowcaches:
        rates = ", ".join(
            f"{c.core.host.name} {c.hit_rate:.1%} ({c.hits} hits)"
            for c in flowcaches
        )
        print(f"flow-cache hit rate: {rates} "
              f"(per-window series vnet.flowcache.<host>.hit_rate above; "
              f"counters under vnet.flowcache.* in --metrics-out)")
    if hub.log.events:
        print()
        print(hub.log.render())
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as fp:
            fp.write(timeline.to_csv())
        print(f"\nwrote timeline CSV: {args.csv}")
    if args.chrome:
        trace = chrome_trace(obs.spans.spans)
        trace["traceEvents"].extend(timeline.chrome_counter_events())
        with open(args.chrome, "w", encoding="utf-8") as fp:
            json.dump(trace, fp, indent=1)
        print(f"wrote Chrome trace (spans + counters): {args.chrome}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            export_metrics_jsonl(obs.metrics, fp)
        print(f"wrote metrics JSONL: {args.metrics_out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        if len(argv) > 1 and argv[1] == "report":
            return _run_obs_report(argv[2:])
        return _run_obs(argv[1:])

    from .harness.experiments import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the VNET/P paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="run the reduced-size version"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent simulation points "
             "(default 1 = inline; results are identical at any N)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="reuse cached point results keyed by config + code version "
             "(default on; --no-cache forces recomputation)",
    )
    parser.add_argument(
        "--cache-dir", default="results/.cache", metavar="DIR",
        help="result cache directory (default results/.cache)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH",
        help="write the merged metrics registry of every executed point "
             "as JSONL (one metric per line, diffable across runs)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:14} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    from .exec import Engine, ResultCache

    engine = Engine(
        jobs=args.jobs,
        cache=ResultCache(args.cache_dir) if args.cache else None,
    )
    for name in names:
        start = time.time()
        result = ALL_EXPERIMENTS[name](quick=args.quick, engine=engine)
        print(result.render())
        print(f"[{time.time() - start:.1f}s]\n")
    print(engine.summary())
    if args.metrics_out:
        from .obs.exporters import export_metrics_jsonl

        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            export_metrics_jsonl(engine.metrics, fp)
        # Status goes to stderr: stdout stays row-diffable across runs
        # whose --metrics-out paths differ (the chaos-suite CI diff).
        print(f"wrote metrics JSONL: {args.metrics_out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
