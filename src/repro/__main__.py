"""Command-line experiment runner.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig08                # run one experiment (full size)
    python -m repro fig08 --quick        # reduced, same-shape version
    python -m repro all --quick          # everything
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv: list[str] | None = None) -> int:
    from .harness.experiments import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the VNET/P paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="run the reduced-size version"
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:14} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        start = time.time()
        result = ALL_EXPERIMENTS[name](quick=args.quick)
        print(result.render())
        print(f"[{time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
