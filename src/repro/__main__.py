"""Command-line experiment runner.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig08                # run one experiment (full size)
    python -m repro fig08 --quick        # reduced, same-shape version
    python -m repro all --quick          # everything
    python -m repro all --quick --jobs 4 # fan points out over 4 worker
                                         # processes (row-identical)
    python -m repro fig14 --no-cache     # force recomputation
    python -m repro resilience --quick   # chaos/fault-injection family:
                                         # goodput under loss, partition
                                         # detection + failover timing
    python -m repro obs                  # record a ping, print the span
                                         # breakdown, optionally export
                                         # Chrome/JSONL traces

Results are cached on disk (``--cache-dir``, default
``results/.cache``) keyed by experiment point + configuration + code
version; a re-run of an unchanged tree answers every point from the
cache.  The final ``[exec] points=... executed=... cached=...`` line
reports what actually ran.
"""

from __future__ import annotations

import argparse
import sys
import time


def _run_obs(argv: list[str]) -> int:
    """The ``obs`` subcommand: record spans on a 1-hop VNET/P ping.

    Builds a noise-free two-host VNET/P testbed, pings with span
    recording on, and prints the measured per-stage latency breakdown
    next to the analytic model (they agree to the nanosecond on this
    configuration).  ``--chrome``/``--jsonl`` export the recording.
    """
    from .apps.ping import run_ping
    from .config import NETEFFECT_10G, BROADCOM_1G, OsNoiseParams, default_host
    from .harness.breakdown import render, total_ns, vnetp_one_way_breakdown
    from .harness.testbed import build_vnetp
    from .obs.breakdown import recorded_one_way_breakdown, render_recorded
    from .obs.context import Observability
    from .obs.exporters import export_chrome_trace, export_jsonl

    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Record per-packet spans on a 1-hop VNET/P ping.",
    )
    parser.add_argument("--pings", type=int, default=3, help="ping count (default 3)")
    parser.add_argument("--payload", type=int, default=56, help="ICMP payload bytes")
    parser.add_argument(
        "--nic", choices=["10g", "1g"], default="10g", help="physical NIC model"
    )
    parser.add_argument("--chrome", metavar="PATH", help="write a Chrome trace_event file")
    parser.add_argument("--jsonl", metavar="PATH", help="write the spans as JSON Lines")
    args = parser.parse_args(argv)
    if args.pings < 1:
        parser.error("--pings must be >= 1")

    nic = NETEFFECT_10G if args.nic == "10g" else BROADCOM_1G
    host = default_host().with_(noise=OsNoiseParams(jitter_max_ns=0))
    tb = build_vnetp(nic_params=nic, host_params=host)
    obs = Observability.of(tb.sim)
    obs.spans.enabled = True
    result = run_ping(
        tb.endpoints[0], tb.endpoints[1], data_size=args.payload, count=args.pings
    )
    src, dst = tb.endpoints[0].stack.name, tb.endpoints[1].stack.name
    stages = recorded_one_way_breakdown(obs.spans, src, dst, nth=-1)
    print(f"== recorded one-way breakdown ({args.nic}, {args.payload} B ICMP) ==\n")
    print(render_recorded(stages))
    recorded = sum(s.ns for s in stages)
    analytic = total_ns(vnetp_one_way_breakdown(nic, payload=args.payload, host=host))
    print(
        f"\nrecorded {recorded / 1000:.2f} us vs analytic {analytic / 1000:.2f} us "
        f"(delta {recorded - analytic} ns); ping RTT avg {result.avg_rtt_us:.2f} us"
    )
    if args.payload == 56:
        print("\n== analytic model for comparison ==\n")
        print(render(vnetp_one_way_breakdown(nic, payload=args.payload, host=host)))
    if args.chrome:
        export_chrome_trace(obs.spans.spans, args.chrome)
        print(f"\nwrote Chrome trace_event file: {args.chrome} "
              f"({len(obs.spans.spans)} spans; open in chrome://tracing or Perfetto)")
    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as fp:
            export_jsonl(obs.spans.spans, fp)
        print(f"wrote JSONL span dump: {args.jsonl}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        return _run_obs(argv[1:])

    from .harness.experiments import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the VNET/P paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', or 'list'",
    )
    parser.add_argument(
        "--quick", action="store_true", help="run the reduced-size version"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for independent simulation points "
             "(default 1 = inline; results are identical at any N)",
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="reuse cached point results keyed by config + code version "
             "(default on; --no-cache forces recomputation)",
    )
    parser.add_argument(
        "--cache-dir", default="results/.cache", metavar="DIR",
        help="result cache directory (default results/.cache)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:14} {doc}")
        return 0

    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    from .exec import Engine, ResultCache

    engine = Engine(
        jobs=args.jobs,
        cache=ResultCache(args.cache_dir) if args.cache else None,
    )
    for name in names:
        start = time.time()
        result = ALL_EXPERIMENTS[name](quick=args.quick, engine=engine)
        print(result.render())
        print(f"[{time.time() - start:.1f}s]\n")
    print(engine.summary())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
