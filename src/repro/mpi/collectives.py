"""MPI collective algorithms over point-to-point messaging.

Standard textbook algorithms (matching what OpenMPI 1.3 uses at these
scales): dissemination barrier, binomial-tree bcast/reduce, recursive
doubling allreduce, ring allgather, pairwise-exchange alltoall.  Every
rank must call each collective in the same order; tags are derived from
a per-communicator collective sequence number so concurrent collectives
cannot cross-match.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .api import Communicator

__all__ = [
    "barrier", "bcast", "reduce", "allreduce", "allgather", "alltoall",
    "gather", "scatter", "reduce_scatter", "scan",
]

_COLL_TAG_BASE = 1 << 20


def _next_tag(comm: "Communicator") -> int:
    seq = getattr(comm, "_coll_seq", 0)
    comm._coll_seq = seq + 1
    return _COLL_TAG_BASE + (seq << 6)


def barrier(comm: "Communicator"):
    """Dissemination barrier: ceil(log2 p) rounds of 1-byte exchanges."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    dist = 1
    round_no = 0
    while dist < size:
        dst = (rank + dist) % size
        src = (rank - dist) % size
        req = comm.isend(dst, 1, tag=tag + round_no)
        yield from comm.recv(src, tag + round_no)
        yield from req.wait()
        dist *= 2
        round_no += 1


def bcast(comm: "Communicator", nbytes: int, root: int = 0):
    """Binomial-tree broadcast."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    vrank = (rank - root) % size
    # Walk up bit positions until our set bit: that's where we receive.
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank - mask) + root) % size
            yield from comm.recv(parent, tag)
            break
        mask *= 2
    # Forward to children at all lower bit positions.
    mask //= 2
    while mask >= 1:
        if vrank + mask < size:
            child = ((vrank + mask) + root) % size
            yield from comm.send(child, nbytes, tag=tag)
        mask //= 2


def reduce(comm: "Communicator", nbytes: int, root: int = 0):
    """Binomial-tree reduction toward ``root``."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % size
            yield from comm.send(parent, nbytes, tag=tag)
            break
        else:
            child = vrank | mask
            if child < size:
                yield from comm.recv(((child + root) % size), tag)
        mask *= 2


def allreduce(comm: "Communicator", nbytes: int):
    """Recursive-doubling allreduce (power-of-two part), with a
    fold-in/fold-out step for the remainder ranks."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    # Largest power of two <= size.
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    # Fold the remainder into the power-of-two set.
    if rank < 2 * rem:
        if rank % 2 == 1:
            yield from comm.send(rank - 1, nbytes, tag=tag)
            newrank = -1
        else:
            yield from comm.recv(rank + 1, tag)
            newrank = rank // 2
    else:
        newrank = rank - rem
    if newrank >= 0:
        mask = 1
        round_no = 1
        while mask < pof2:
            partner_new = newrank ^ mask
            partner = partner_new * 2 if partner_new < rem else partner_new + rem
            req = comm.isend(partner, nbytes, tag=tag + round_no)
            yield from comm.recv(partner, tag + round_no)
            yield from req.wait()
            mask *= 2
            round_no += 1
    # Fold back out.
    if rank < 2 * rem:
        if rank % 2 == 0:
            yield from comm.send(rank + 1, nbytes, tag=tag + 32)
        else:
            yield from comm.recv(rank - 1, tag + 32)


def allgather(comm: "Communicator", nbytes_per_rank: int):
    """Ring allgather: p-1 rounds, passing blocks around the ring."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    right = (rank + 1) % size
    left = (rank - 1) % size
    for round_no in range(size - 1):
        req = comm.isend(right, nbytes_per_rank, tag=tag + round_no)
        yield from comm.recv(left, tag + round_no)
        yield from req.wait()


def alltoall(comm: "Communicator", nbytes_per_pair: int):
    """Pairwise-exchange alltoall: p-1 simultaneous send/recv rounds."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    for i in range(1, size):
        if size & (size - 1) == 0:
            # Power of two: XOR pairing gives perfect pairwise exchange.
            send_to = recv_from = rank ^ i
        else:
            send_to = (rank + i) % size
            recv_from = (rank - i) % size
        req = comm.isend(send_to, nbytes_per_pair, tag=tag + i)
        yield from comm.recv(recv_from, tag + i)
        yield from req.wait()


def gather(comm: "Communicator", nbytes_per_rank: int, root: int = 0):
    """Linear gather to ``root`` (fine at these scales; OpenMPI uses
    linear gather below 64 ranks)."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    if rank == root:
        for src in range(size):
            if src != root:
                yield from comm.recv(src, tag)
    else:
        yield from comm.send(root, nbytes_per_rank, tag=tag)


def scatter(comm: "Communicator", nbytes_per_rank: int, root: int = 0):
    """Linear scatter from ``root``."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    if rank == root:
        for dst in range(size):
            if dst != root:
                yield from comm.send(dst, nbytes_per_rank, tag=tag)
    else:
        yield from comm.recv(root, tag)


def reduce_scatter(comm: "Communicator", nbytes_per_rank: int):
    """Pairwise-exchange reduce-scatter: each rank ends with its reduced
    block; p-1 rounds moving one block per round."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    for i in range(1, size):
        send_to = (rank + i) % size
        recv_from = (rank - i) % size
        req = comm.isend(send_to, nbytes_per_rank, tag=tag + i)
        yield from comm.recv(recv_from, tag + i)
        yield from req.wait()


def scan(comm: "Communicator", nbytes: int):
    """Linear prefix scan: rank r receives from r-1, combines, sends to r+1."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    tag = _next_tag(comm)
    if rank > 0:
        yield from comm.recv(rank - 1, tag)
    if rank < size - 1:
        yield from comm.send(rank + 1, nbytes, tag=tag)
