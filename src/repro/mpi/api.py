"""Simulated MPI: communicators, point-to-point messaging, matching.

Rank programs are generator functions taking a :class:`Communicator`;
:class:`MPIWorld` spawns one simulation process per rank and provides
the transport.  Message payloads are byte counts (plus optional
metadata), in keeping with the library-wide convention.

Point-to-point semantics follow MPI closely enough for the paper's
workloads: (source, tag) matching with ``ANY_SOURCE``/``ANY_TAG``
wildcards, non-blocking isend/irecv returning requests, and blocking
send/recv built on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Optional

from ..config import MPIParams
from ..sim import Event, Signal, Simulator
from .transport import Transport

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Request", "Communicator", "MPIWorld"]

ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    """One delivered MPI message."""

    src: int
    tag: int
    nbytes: int
    meta: Any = None
    dst: int = -1


class Request:
    """Handle for a non-blocking operation; wait() yields the result."""

    def __init__(self, event: Event):
        self.event = event

    @property
    def done(self) -> bool:
        return self.event.processed

    def wait(self):
        """Generator: block until the operation completes; returns value."""
        result = yield self.event
        return result


class _Mailbox:
    """Per-rank receive queue with (source, tag) matching."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.pending: list[Message] = []
        self._arrival = Signal(sim, "mpi.arrival")

    def deliver(self, msg: Message) -> None:
        self.pending.append(msg)
        self._arrival.fire()

    def match(self, src: int, tag: int) -> Optional[Message]:
        for i, msg in enumerate(self.pending):
            if (src == ANY_SOURCE or msg.src == src) and (
                tag == ANY_TAG or msg.tag == tag
            ):
                return self.pending.pop(i)
        return None

    def recv(self, src: int, tag: int):
        """Generator: wait for a matching message."""
        while True:
            msg = self.match(src, tag)
            if msg is not None:
                return msg
            yield self._arrival.wait()


class Communicator:
    """An MPI communicator bound to one rank."""

    def __init__(self, world: "MPIWorld", rank: int):
        self.world = world
        self.rank = rank
        self.sim = world.sim

    @property
    def size(self) -> int:
        return self.world.size

    # -- point to point -------------------------------------------------------
    def send(self, dst: int, nbytes: int, tag: int = 0, meta: Any = None):
        """Generator: blocking send (returns when the transport accepts and
        the message is on its way; like MPI buffered-eager semantics)."""
        if not 0 <= dst < self.size:
            raise ValueError(f"rank {self.rank}: send to invalid rank {dst}")
        yield from self.world.transport.send(self.rank, dst, nbytes, tag, meta)

    def recv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: blocking receive; returns the matched Message."""
        params = self.world.params
        yield self.sim.timeout(params.overhead_ns)
        msg = yield from self.world.mailbox(self.rank).recv(src, tag)
        return msg

    def isend(self, dst: int, nbytes: int, tag: int = 0, meta: Any = None) -> Request:
        proc = self.sim.process(self.send(dst, nbytes, tag, meta), name="mpi.isend")
        return Request(proc)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        proc = self.sim.process(self.recv(src, tag), name="mpi.irecv")
        return Request(proc)

    def sendrecv(
        self,
        dst: int,
        send_bytes: int,
        src: int,
        send_tag: int = 0,
        recv_tag: int = ANY_TAG,
    ):
        """Generator: simultaneous send + receive (MPI_Sendrecv)."""
        req = self.isend(dst, send_bytes, tag=send_tag)
        msg = yield from self.recv(src, recv_tag)
        yield from req.wait()
        return msg

    def waitall(self, requests: list[Request]):
        """Generator: wait for all requests; returns their values."""
        results = []
        for req in requests:
            results.append((yield from req.wait()))
        return results

    # -- collectives (implemented in collectives.py) ---------------------------
    def barrier(self):
        from .collectives import barrier

        yield from barrier(self)

    def bcast(self, nbytes: int, root: int = 0):
        from .collectives import bcast

        yield from bcast(self, nbytes, root)

    def reduce(self, nbytes: int, root: int = 0):
        from .collectives import reduce

        yield from reduce(self, nbytes, root)

    def allreduce(self, nbytes: int):
        from .collectives import allreduce

        yield from allreduce(self, nbytes)

    def allgather(self, nbytes_per_rank: int):
        from .collectives import allgather

        yield from allgather(self, nbytes_per_rank)

    def alltoall(self, nbytes_per_pair: int):
        from .collectives import alltoall

        yield from alltoall(self, nbytes_per_pair)

    def gather(self, nbytes_per_rank: int, root: int = 0):
        from .collectives import gather

        yield from gather(self, nbytes_per_rank, root)

    def scatter(self, nbytes_per_rank: int, root: int = 0):
        from .collectives import scatter

        yield from scatter(self, nbytes_per_rank, root)

    def reduce_scatter(self, nbytes_per_rank: int):
        from .collectives import reduce_scatter

        yield from reduce_scatter(self, nbytes_per_rank)

    def scan(self, nbytes: int):
        from .collectives import scan

        yield from scan(self, nbytes)

    def compute(self, duration_ns: int):
        """Generator: local computation for ``duration_ns`` (skeleton apps)."""
        yield self.sim.timeout(int(duration_ns))


class MPIWorld:
    """The job: ``size`` ranks over a transport."""

    def __init__(
        self,
        sim: Simulator,
        transport: Transport,
        size: int,
        params: Optional[MPIParams] = None,
    ):
        from ..config import DEFAULT_MPI

        self.sim = sim
        self.transport = transport
        self.size = size
        self.params = params or DEFAULT_MPI
        self._mailboxes = [_Mailbox(sim) for _ in range(size)]
        transport.attach(self)

    def mailbox(self, rank: int) -> _Mailbox:
        return self._mailboxes[rank]

    def comm(self, rank: int) -> Communicator:
        return Communicator(self, rank)

    def launch(
        self, rank_fn: Callable[[Communicator], Generator], ranks: Optional[range] = None
    ) -> list:
        """Spawn one process per rank running ``rank_fn(comm)``."""
        procs = []
        for rank in ranks or range(self.size):
            comm = self.comm(rank)
            procs.append(self.sim.process(rank_fn(comm), name=f"mpi.rank{rank}"))
        return procs

    def run(self, rank_fn: Callable[[Communicator], Generator]) -> list:
        """Launch all ranks and run the simulation until they finish.

        Returns the per-rank results (rank_fn return values).
        """
        procs = self.launch(rank_fn)
        done = self.sim.all_of(procs)
        self.sim.run(until=done)
        return [p.value for p in procs]
