"""Simulated MPI: communicators, collectives, socket and flow transports."""

from .api import ANY_SOURCE, ANY_TAG, Communicator, Message, MPIWorld, Request
from .transport import FlowModel, FlowTransport, SocketTransport, Transport

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "Message",
    "MPIWorld",
    "Request",
    "FlowModel",
    "FlowTransport",
    "SocketTransport",
    "Transport",
]
