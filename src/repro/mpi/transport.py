"""MPI transports.

Two fidelity levels (see DESIGN.md):

* :class:`SocketTransport` — messages ride TCP connections over the full
  simulated stack (native or VNET/P), one persistent connection per host
  pair, like OpenMPI's TCP BTL.  Used for the two-node IMB benchmarks so
  MPI results inherit the packet-level behaviour directly.
* :class:`FlowTransport` — a calibrated latency/bandwidth/contention
  model (``alpha`` + size/``beta``, with per-node tx/rx serialization)
  whose parameters are *measured from* SocketTransport runs.  Used for
  the 6-node HPCC and NAS benchmarks where packet-level simulation of
  gigabytes of traffic would be prohibitive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Protocol

from ..config import MPIParams
from ..sim import Resource, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from ..harness.testbed import Endpoint
    from .api import MPIWorld

__all__ = ["Transport", "SocketTransport", "FlowTransport", "FlowModel"]

MPI_PORT_BASE = 6200


class Transport(Protocol):
    """What a transport provides to the MPI world."""

    def attach(self, world: "MPIWorld") -> None: ...

    def send(self, src: int, dst: int, nbytes: int, tag: int, meta: Any):
        """Generator: move one message from rank ``src`` to rank ``dst``."""
        ...


def _copy_ns(nbytes: int, bw_Bps: float) -> int:
    return int(round(nbytes * 1e9 / bw_Bps))


class SocketTransport:
    """MPI over TCP connections through the simulated stack.

    ``rank_map[i]`` gives the endpoint index hosting rank ``i`` (several
    ranks per VM/host, as in the paper's HPCC runs with 4 processes per
    node).  Intra-node messages use a shared-memory cost model instead of
    the network.
    """

    def __init__(
        self,
        endpoints: list["Endpoint"],
        rank_map: Optional[list[int]] = None,
        params: Optional[MPIParams] = None,
    ):
        from ..config import DEFAULT_MPI

        self.endpoints = endpoints
        self.params = params or DEFAULT_MPI
        self.sim: Simulator = endpoints[0].stack.sim
        self.rank_map = rank_map  # filled at attach if None
        self.world: Optional["MPIWorld"] = None
        # (local_ep, remote_ep) -> (channel, lock)
        self._channels: dict[tuple[int, int], tuple[Any, Resource]] = {}
        self._listeners_started = False

    # -- wiring ------------------------------------------------------------------
    def attach(self, world: "MPIWorld") -> None:
        self.world = world
        if self.rank_map is None:
            if world.size % len(self.endpoints) != 0:
                raise ValueError(
                    f"{world.size} ranks do not divide over {len(self.endpoints)} endpoints"
                )
            per = world.size // len(self.endpoints)
            self.rank_map = [r // per for r in range(world.size)]
        if len(self.rank_map) != world.size:
            raise ValueError("rank_map length != world size")
        if not self._listeners_started:
            self._start_listeners()
            self._listeners_started = True

    def _ep_index(self, stack_ip: str) -> int:
        for i, ep in enumerate(self.endpoints):
            if ep.ip == stack_ip:
                return i
        raise KeyError(f"no endpoint with ip {stack_ip}")

    def _start_listeners(self) -> None:
        from ..proto.tcp import TcpMessageChannel

        for i, ep in enumerate(self.endpoints):
            listener = ep.stack.tcp_listen(MPI_PORT_BASE + i)

            def accept_loop(listener=listener, i=i):
                while True:
                    conn = yield from listener.accept()
                    j = self._ep_index(conn.remote_ip)
                    channel = TcpMessageChannel(conn)
                    lock = Resource(self.sim, 1, name=f"mpi.ch{i}-{j}")
                    self._channels[(i, j)] = (channel, lock)
                    self.sim.process(self._rx_pump(channel), name=f"mpi.rx{i}<-{j}")

            self.sim.process(accept_loop(), name=f"mpi.accept{i}")

    def _channel(self, src_ep: int, dst_ep: int):
        """Generator: get or lazily dial the channel src_ep -> dst_ep."""
        from ..proto.tcp import TcpMessageChannel

        entry = self._channels.get((src_ep, dst_ep))
        if entry is None:
            conn = yield from self.endpoints[src_ep].stack.tcp_connect(
                self.endpoints[dst_ep].ip, MPI_PORT_BASE + dst_ep
            )
            channel = TcpMessageChannel(conn)
            lock = Resource(self.sim, 1, name=f"mpi.ch{src_ep}-{dst_ep}")
            entry = (channel, lock)
            self._channels[(src_ep, dst_ep)] = entry
            self.sim.process(self._rx_pump(channel), name=f"mpi.rx{src_ep}<-{dst_ep}")
        return entry

    # -- data path ------------------------------------------------------------------
    def send(self, src: int, dst: int, nbytes: int, tag: int, meta: Any):
        from .api import Message

        params = self.params
        msg = Message(src=src, tag=tag, nbytes=nbytes, meta=meta, dst=dst)
        yield self.sim.timeout(
            params.overhead_ns + _copy_ns(nbytes, self._copy_bw(self.rank_map[src]))
        )
        src_ep, dst_ep = self.rank_map[src], self.rank_map[dst]
        if src_ep == dst_ep:
            # Shared-memory BTL: latency + one copy through the shm segment.
            yield self.sim.timeout(
                params.shm_latency_ns + _copy_ns(nbytes, params.shm_bw_Bps)
            )
            self.world.mailbox(dst).deliver(msg)
            return
        channel, lock = yield from self._channel(src_ep, dst_ep)
        # One message at a time per socket (BTL serialization).
        yield lock.request()
        try:
            yield from channel.send_message(msg, max(1, nbytes))
        finally:
            lock.release()

    def _copy_bw(self, ep_index: int) -> float:
        """Guest-side copies run below native streaming bandwidth: they
        contend with the VMM's in-flight packet copies."""
        if self.endpoints[ep_index].is_virtual:
            return self.params.copy_bw_virtual_Bps
        return self.params.copy_bw_Bps

    def _rx_pump(self, channel):
        """Drain a channel into mailboxes, charging receive-side copies."""
        from .api import Message

        while True:
            try:
                msg: Message = yield from channel.recv_message()
            except EOFError:
                return
            yield self.sim.timeout(
                _copy_ns(msg.nbytes, self._copy_bw(self.rank_map[msg.dst]))
            )
            self.world.mailbox(msg.dst).deliver(msg)


class FlowModel:
    """Calibrated flow parameters for one network configuration."""

    def __init__(
        self,
        name: str,
        alpha_ns: int,
        beta_Bps: float,
        link_bps: float,
        virtual: bool = False,
        fanin_penalty: float = 1.0,
    ):
        if beta_Bps <= 0 or link_bps <= 0:
            raise ValueError("flow model rates must be positive")
        self.name = name
        self.alpha_ns = int(alpha_ns)
        self.beta_Bps = beta_Bps
        self.link_bps = link_bps
        self.virtual = virtual  # endpoints are guests (copies run slower)
        # Incast degradation: when several flows converge on one node, a
        # virtualized receive path (single dispatcher, virtio ring bounce)
        # loses efficiency that native NIC flow-steering retains.  It only
        # bites when that receive path — not the wire — is the bottleneck.
        self.fanin_penalty = fanin_penalty

    @property
    def rx_path_limited(self) -> bool:
        """True when beta is set by receive-side processing, not the link."""
        return self.beta_Bps < 0.85 * self.link_bps / 8

    def occupancy_ns(self, nbytes: int) -> int:
        """Per-stage occupancy of one message at the bottleneck rate."""
        return max(1, _copy_ns(nbytes, self.beta_Bps))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FlowModel {self.name} alpha={self.alpha_ns / 1000:.1f}us "
            f"beta={self.beta_Bps / 1e6:.0f}MB/s>"
        )


class FlowTransport:
    """Latency/bandwidth/contention model with per-node tx/rx serialization.

    A message holds its source node's tx engine for its occupancy, then
    (pipelined — the stages overlap for a single large message, exactly
    as packets pipeline in the real stack) holds the destination node's
    rx engine before delivery.  Streaming throughput per node is
    ``beta``; a single message's one-way time is ``alpha + size/beta``
    plus any queueing.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        model: FlowModel,
        ranks_per_node: int = 1,
        params: Optional[MPIParams] = None,
    ):
        from ..config import DEFAULT_MPI

        self.sim = sim
        self.n_nodes = n_nodes
        self.model = model
        self.ranks_per_node = ranks_per_node
        self.params = params or DEFAULT_MPI
        self.world: Optional["MPIWorld"] = None
        self._tx = [Resource(sim, 1, name=f"flow.tx{i}") for i in range(n_nodes)]
        self._rx = [Resource(sim, 1, name=f"flow.rx{i}") for i in range(n_nodes)]
        self._copy_bw = (
            self.params.copy_bw_virtual_Bps if model.virtual else self.params.copy_bw_Bps
        )
        self.messages = 0
        self.bytes_moved = 0

    def attach(self, world: "MPIWorld") -> None:
        self.world = world
        if world.size > self.n_nodes * self.ranks_per_node:
            raise ValueError(
                f"{world.size} ranks exceed {self.n_nodes} nodes x {self.ranks_per_node}"
            )

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    def send(self, src: int, dst: int, nbytes: int, tag: int, meta: Any):
        from .api import Message

        params = self.params
        msg = Message(src=src, tag=tag, nbytes=nbytes, meta=meta, dst=dst)
        self.messages += 1
        self.bytes_moved += nbytes
        yield self.sim.timeout(params.overhead_ns + _copy_ns(nbytes, self._copy_bw))
        ns, nd = self.node_of(src), self.node_of(dst)
        if ns == nd:
            yield self.sim.timeout(
                params.shm_latency_ns + _copy_ns(nbytes, params.shm_bw_Bps)
            )
            self.world.mailbox(dst).deliver(msg)
            return
        occ = self.model.occupancy_ns(nbytes)
        # Receive side runs concurrently, offset by the base latency, so a
        # single message's stages pipeline while back-to-back messages
        # serialize on both engines.
        self.sim.process(self._deliver(msg, dst, nd, occ), name="flow.deliver")
        yield self._tx[ns].request()
        try:
            yield self.sim.timeout(occ)
        finally:
            self._tx[ns].release()

    def _deliver(self, msg, dst_rank: int, dst_node: int, occ: int):
        yield self.sim.timeout(self.model.alpha_ns)
        rx = self._rx[dst_node]
        contended = len(rx._waiters) >= 1 or rx.in_use >= rx.capacity
        yield rx.request()
        try:
            if (
                contended
                and self.model.fanin_penalty > 1.0
                and self.model.rx_path_limited
            ):
                occ = int(occ * self.model.fanin_penalty)
            yield self.sim.timeout(occ)
        finally:
            rx.release()
        yield self.sim.timeout(_copy_ns(msg.nbytes, self._copy_bw))
        self.world.mailbox(dst_rank).deliver(msg)
