"""The IP stack: device binding, routing, softirq processing, sockets.

One :class:`Stack` instance models the networking stack of one OS image
— a native host, the Linux host under Palacios, or a guest inside a VM.
Devices are anything satisfying the small :class:`NetDevice` duck type
(physical NIC adapters, virtio NICs, IPoIB/IPoG pseudo-devices).

Cost accounting follows :class:`repro.config.HostStackParams`: per-packet
protocol costs plus a per-byte checksum/copy cost, charged in the
transmitting process (tx) and in the stack's softirq process (rx), so
that transmit, receive, and wire time pipeline naturally.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

from ..config import HostStackParams
from ..obs.context import Observability
from ..obs.span import (
    STAGE_ICMP_RX,
    STAGE_ICMP_TX,
    STAGE_SOCK_WAKE,
    STAGE_SOFTIRQ_WAKE,
    STAGE_TCP_RX,
    STAGE_UDP_RX,
    STAGE_UDP_TX,
)
from ..sim import Event, Signal, Simulator, Store, Tracer
from ..sim.fluid import fluid_region_of
from .arp import ARP_REPLY, ARP_REQUEST, ETHERTYPE_ARP, ArpMessage, ArpTimeout
from .ethernet import BROADCAST_MAC, ETHERTYPE_IPV4, EthernetFrame
from .icmp import ICMP_ECHO_REPLY, ICMP_ECHO_REQUEST, ICMPMessage
from .ip import (
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    IPv4Packet,
    Reassembler,
    fragment,
)
from .tcp import TcpConnection, TcpListener, TcpSegment, TcpState
from .udp import UDPDatagram

__all__ = ["NetDevice", "Stack", "UdpSocket"]


@runtime_checkable
class NetDevice(Protocol):
    """What the stack needs from a network device."""

    mac: str
    mtu: int

    def send_blocking(self, frame: EthernetFrame):
        """Generator: enqueue for transmission, blocking on a full queue."""
        ...


class UdpSocket:
    """A bound UDP endpoint."""

    def __init__(self, stack: "Stack", port: int, in_kernel: bool = False):
        self.stack = stack
        self.port = port
        self.in_kernel = in_kernel
        self.rx: Store = Store(stack.sim, capacity=4096, name=f"udp:{port}")
        self.dropped = 0

    def sendto(self, payload: Any, dst_ip: str, dport: int):
        """Generator: send ``payload`` (object with .size) to (ip, port)."""
        stack = self.stack
        params = stack.params
        spans = stack.obs.spans
        with spans.span(
            STAGE_UDP_TX, who=stack.name, where=stack.where,
            flow=f"{stack.ip}>{dst_ip}" if spans.enabled else None,
        ):
            if not self.in_kernel:
                yield stack.sim.timeout(params.syscall_ns)
            yield stack.sim.timeout(
                params.udp_tx_ns + params.checksum_ns(payload.size)
            )
        dgram = UDPDatagram(sport=self.port, dport=dport, payload=payload)
        yield from stack.ip_send(dst_ip, PROTO_UDP, dgram)

    def recv(self):
        """Generator: wait for the next datagram; returns (payload, src_ip, sport)."""
        stack = self.stack
        params = stack.params
        blocked = len(self.rx) == 0
        item = yield self.rx.get()
        if blocked:
            with stack.obs.spans.span(
                STAGE_SOCK_WAKE, who=stack.name, where=stack.where
            ):
                yield stack.sim.timeout(params.sched_wakeup_ns)
        if not self.in_kernel:
            yield stack.sim.timeout(params.syscall_ns)
        return item

    def deliver(self, dgram: UDPDatagram, src_ip: str) -> None:
        if not self.rx.try_put((dgram.payload, src_ip, dgram.sport)):
            self.dropped += 1


class Stack:
    """An OS network stack bound to one IP address."""

    def __init__(
        self,
        sim: Simulator,
        params: HostStackParams,
        ip: str,
        name: str = "stack",
        tracer: Optional[Tracer] = None,
        role: str = "host",
    ):
        self.sim = sim
        self.params = params
        self.ip = ip
        self.name = name
        self.role = role
        self.where = "guest" if role == "guest" else "host"
        self.obs = Observability.of(sim)
        self.tracer = tracer or Tracer()
        self.devices: list[NetDevice] = []
        self._default_dev: Optional[NetDevice] = None
        self.neighbors: dict[str, str] = {}        # dst ip -> mac
        self.routes: dict[str, NetDevice] = {}     # dst ip -> device
        self._udp_socks: dict[int, UdpSocket] = {}
        self._tcp_conns: dict[tuple[int, str, int], TcpConnection] = {}
        self._tcp_listeners: dict[int, TcpListener] = {}
        self._ping_waiters: dict[tuple[int, int], Event] = {}
        self._promisc: Optional[Callable[[NetDevice, EthernetFrame], None]] = None
        self._reasm = Reassembler()
        self._rxq: Store = Store(sim, capacity=16384, name=f"{name}.rxq")
        self._rx_idle_since = 0
        self._ephemeral = 40000
        self.rx_dropped = 0
        # Dynamic ARP (off by default: the paper's testbeds are statically
        # configured; see repro.proto.arp).
        self.arp_enabled = False
        self.arp_timeout_ns = 1_000_000_000  # 1 s per try, as Linux
        self.arp_retries = 3
        self._arp_pending: dict[str, Signal] = {}
        self.arp_requests_sent = 0
        self.arp_replies_sent = 0
        sim.process(self._softirq_loop(), name=f"{name}.softirq")

    # -- configuration -------------------------------------------------------
    def add_device(self, dev: NetDevice, default: bool = True) -> None:
        self.devices.append(dev)
        if default or self._default_dev is None:
            self._default_dev = dev

    def add_neighbor(self, ip: str, mac: str, dev: Optional[NetDevice] = None) -> None:
        """Static ARP entry (the testbeds use static configuration)."""
        self.neighbors[ip] = mac
        if dev is not None:
            self.routes[ip] = dev

    def set_promiscuous(
        self, handler: Optional[Callable[[NetDevice, EthernetFrame], None]]
    ) -> None:
        """Raw tap used by the VNET/P bridge's direct receive (Sect. 4.5)."""
        self._promisc = handler

    def route(self, dst_ip: str) -> tuple[NetDevice, str]:
        dev = self.routes.get(dst_ip, self._default_dev)
        if dev is None:
            raise RuntimeError(f"{self.name}: no device to reach {dst_ip}")
        mac = self.neighbors.get(dst_ip, BROADCAST_MAC)
        return dev, mac

    def ephemeral_port(self) -> int:
        self._ephemeral += 1
        return self._ephemeral

    # -- sockets ---------------------------------------------------------------
    def udp_socket(self, port: Optional[int] = None, in_kernel: bool = False) -> UdpSocket:
        if port is None:
            port = self.ephemeral_port()
        if port in self._udp_socks:
            raise ValueError(f"{self.name}: UDP port {port} already bound")
        sock = UdpSocket(self, port, in_kernel=in_kernel)
        self._udp_socks[port] = sock
        return sock

    def tcp_listen(
        self,
        port: int,
        in_kernel: bool = False,
        sndbuf: int = 256 * 1024,
        rcvbuf: int = 256 * 1024,
    ) -> TcpListener:
        if port in self._tcp_listeners:
            raise ValueError(f"{self.name}: TCP port {port} already listening")
        listener = TcpListener(self, port, in_kernel=in_kernel, sndbuf=sndbuf, rcvbuf=rcvbuf)
        self._tcp_listeners[port] = listener
        return listener

    def tcp_connect(
        self,
        dst_ip: str,
        dport: int,
        sndbuf: int = 256 * 1024,
        rcvbuf: int = 256 * 1024,
        in_kernel: bool = False,
    ):
        """Generator: active open; returns an ESTABLISHED TcpConnection."""
        conn = TcpConnection(
            self,
            local_port=self.ephemeral_port(),
            remote_ip=dst_ip,
            remote_port=dport,
            sndbuf=sndbuf,
            rcvbuf=rcvbuf,
            in_kernel=in_kernel,
        )
        self.register_tcp(conn)
        conn.state = TcpState.SYN_SENT
        if not in_kernel:
            yield self.sim.timeout(self.params.syscall_ns)
        # SYN with retransmission: handshake segments are lossy too.
        for _attempt in range(8):
            yield from conn._emit(syn=True, is_ack=False)
            timer = self.sim.timeout(conn.rto_ns)
            yield self.sim.any_of([timer, conn.established_event])
            if conn.established_event.triggered:
                return conn
        raise ConnectionError(f"{self.name}: connect to {dst_ip}:{dport} timed out")

    def register_tcp(self, conn: TcpConnection) -> None:
        key = (conn.local_port, conn.remote_ip, conn.remote_port)
        self._tcp_conns[key] = conn
        if not conn.in_kernel:
            # Hybrid fluid/packet mode: let the region probe this
            # connection for steady state (no-op when fluid is off).
            region = fluid_region_of(self.sim)
            if region is not None:
                region.watch(conn)

    # -- ping --------------------------------------------------------------------
    _ping_ident = 0

    def ping(self, dst_ip: str, data_size: int = 56):
        """Generator: one ICMP echo round trip; returns RTT in ns."""
        params = self.params
        Stack._ping_ident += 1
        ident, seq = Stack._ping_ident, 1
        start = self.sim.now
        with self.obs.spans.span(
            STAGE_ICMP_TX, who=self.name, where=self.where,
            flow=f"{self.ip}>{dst_ip}", packet=f"icmp:{ident}:{seq}",
        ):
            yield self.sim.timeout(params.syscall_ns + params.icmp_ns)
        msg = ICMPMessage(ICMP_ECHO_REQUEST, ident, seq, data_size)
        waiter = self.sim.event()
        self._ping_waiters[(ident, seq)] = waiter
        yield from self.ip_send(dst_ip, PROTO_ICMP, msg)
        yield waiter
        yield self.sim.timeout(params.sched_wakeup_ns + params.syscall_ns)
        return self.sim.now - start

    # -- ARP ---------------------------------------------------------------------
    def resolve(self, dst_ip: str):
        """Generator: resolve ``dst_ip`` to a MAC via ARP (cache first).

        Raises :class:`ArpTimeout` after all retries go unanswered.
        """
        mac = self.neighbors.get(dst_ip)
        if mac is not None:
            return mac
        dev = self.routes.get(dst_ip, self._default_dev)
        if dev is None:
            raise RuntimeError(f"{self.name}: no device to resolve {dst_ip}")
        signal = self._arp_pending.get(dst_ip)
        if signal is None:
            signal = Signal(self.sim, f"arp:{dst_ip}")
            self._arp_pending[dst_ip] = signal
        for _attempt in range(self.arp_retries):
            request = ArpMessage(
                op=ARP_REQUEST,
                sender_ip=self.ip,
                sender_mac=dev.mac,
                target_ip=dst_ip,
            )
            self.arp_requests_sent += 1
            frame = EthernetFrame(
                src=dev.mac, dst=BROADCAST_MAC, payload=request, ethertype=ETHERTYPE_ARP
            )
            yield from dev.send_blocking(frame)
            timer = self.sim.timeout(self.arp_timeout_ns)
            yield self.sim.any_of([timer, signal.wait()])
            mac = self.neighbors.get(dst_ip)
            if mac is not None:
                self._arp_pending.pop(dst_ip, None)
                return mac
        self._arp_pending.pop(dst_ip, None)
        raise ArpTimeout(f"{self.name}: no ARP reply for {dst_ip}")

    def gratuitous_arp(self):
        """Generator: announce our (ip, mac) to the LAN (used after a VM
        migration so peers update their caches immediately)."""
        dev = self._default_dev
        if dev is None:
            raise RuntimeError(f"{self.name}: no device for gratuitous ARP")
        announce = ArpMessage(
            op=ARP_REQUEST,
            sender_ip=self.ip,
            sender_mac=dev.mac,
            target_ip=self.ip,
        )
        frame = EthernetFrame(
            src=dev.mac, dst=BROADCAST_MAC, payload=announce, ethertype=ETHERTYPE_ARP
        )
        yield from dev.send_blocking(frame)

    def _handle_arp(self, dev: NetDevice, msg: ArpMessage):
        # Every ARP packet teaches us the sender's binding (incl. gratuitous).
        self.neighbors[msg.sender_ip] = msg.sender_mac
        pending = self._arp_pending.get(msg.sender_ip)
        if pending is not None:
            pending.fire()
        if msg.op == ARP_REQUEST and msg.target_ip == self.ip and msg.sender_ip != self.ip:
            reply = ArpMessage(
                op=ARP_REPLY,
                sender_ip=self.ip,
                sender_mac=dev.mac,
                target_ip=msg.sender_ip,
                target_mac=msg.sender_mac,
            )
            self.arp_replies_sent += 1
            frame = EthernetFrame(
                src=dev.mac, dst=msg.sender_mac, payload=reply, ethertype=ETHERTYPE_ARP
            )
            yield from dev.send_blocking(frame)

    # -- transmit path -------------------------------------------------------------
    def ip_send(self, dst_ip: str, proto: int, payload: Any):
        """Generator: wrap in IP (+fragment) and hand to the device."""
        if self.arp_enabled and dst_ip not in self.neighbors:
            yield from self.resolve(dst_ip)
        dev, dst_mac = self.route(dst_ip)
        pkt = IPv4Packet(src=self.ip, dst=dst_ip, proto=proto, payload=payload)
        frags = fragment(pkt, dev.mtu)
        if len(frags) > 1:
            yield self.sim.timeout(900 * (len(frags) - 1))  # fragmentation work
        for frag in frags:
            frame = EthernetFrame(src=dev.mac, dst=dst_mac, payload=frag)
            yield from dev.send_blocking(frame)

    def send_raw_frame(self, frame: EthernetFrame, dev: Optional[NetDevice] = None):
        """Generator: transmit a pre-built Ethernet frame (bridge direct send)."""
        dev = dev or self._default_dev
        if dev is None:
            raise RuntimeError(f"{self.name}: no device for raw send")
        yield from dev.send_blocking(frame)

    # -- receive path ----------------------------------------------------------------
    def rx_frame(self, dev: NetDevice, frame: EthernetFrame) -> None:
        """Device upcall: a frame is visible to host software."""
        if self._promisc is not None:
            self._promisc(dev, frame)
        if frame.dst != dev.mac and frame.dst != BROADCAST_MAC:
            # Not ours; promiscuous handler (if any) already saw it.
            return
        if not self._rxq.try_put((dev, frame)):
            self.rx_dropped += 1

    def _softirq_loop(self):
        params = self.params
        while True:
            blocked = len(self._rxq) == 0
            dev, frame = yield self._rxq.get()
            if blocked:
                with self.obs.spans.span(
                    STAGE_SOFTIRQ_WAKE, who=self.name, where=self.where
                ):
                    yield self.sim.timeout(params.softirq_wakeup_ns)
            if frame.ethertype == ETHERTYPE_ARP:
                yield from self._handle_arp(dev, frame.payload)
                continue
            if frame.ethertype != ETHERTYPE_IPV4:
                continue
            pkt: IPv4Packet = frame.payload
            if pkt.dst != self.ip:
                continue
            if pkt.is_fragment:
                yield self.sim.timeout(1_100)  # per-fragment reassembly work
                pkt = self._reasm.push(pkt)
                if pkt is None:
                    continue
            yield from self._deliver(pkt)

    def _deliver(self, pkt: IPv4Packet):
        params = self.params
        spans = self.obs.spans
        flow = f"{pkt.src}>{pkt.dst}" if spans.enabled else None
        if pkt.proto == PROTO_ICMP:
            msg: ICMPMessage = pkt.payload
            with spans.span(
                STAGE_ICMP_RX, who=self.name, where=self.where,
                flow=flow, packet=f"icmp:{msg.ident}:{msg.seq}",
            ):
                yield self.sim.timeout(params.icmp_ns)
            yield from self._handle_icmp(pkt)
        elif pkt.proto == PROTO_UDP:
            dgram: UDPDatagram = pkt.payload
            with spans.span(
                STAGE_UDP_RX, who=self.name, where=self.where, flow=flow
            ):
                yield self.sim.timeout(
                    params.udp_rx_ns + params.checksum_ns(dgram.payload.size)
                )
            sock = self._udp_socks.get(dgram.dport)
            if sock is not None:
                sock.deliver(dgram, pkt.src)
            else:
                self.tracer.record(self.sim.now, f"{self.name}.udp_unreachable", dgram)
        elif pkt.proto == PROTO_TCP:
            seg: TcpSegment = pkt.payload
            cost = params.tcp_rx_ns if seg.payload_bytes else params.tcp_ack_rx_ns
            with spans.span(
                STAGE_TCP_RX, who=self.name, where=self.where, flow=flow
            ):
                yield self.sim.timeout(cost + params.checksum_ns(seg.payload_bytes))
            key = (seg.dport, pkt.src, seg.sport)
            conn = self._tcp_conns.get(key)
            if conn is not None:
                conn.on_segment(seg, pkt.src)
            elif seg.syn and not seg.is_ack:
                listener = self._tcp_listeners.get(seg.dport)
                if listener is not None:
                    listener._on_syn(seg, pkt.src)
        else:
            self.tracer.record(self.sim.now, f"{self.name}.proto_unknown", pkt)

    def _handle_icmp(self, pkt: IPv4Packet):
        msg: ICMPMessage = pkt.payload
        if msg.icmp_type == ICMP_ECHO_REQUEST:
            reply = ICMPMessage(ICMP_ECHO_REPLY, msg.ident, msg.seq, msg.data_size)
            yield from self.ip_send(pkt.src, PROTO_ICMP, reply)
        elif msg.icmp_type == ICMP_ECHO_REPLY:
            waiter = self._ping_waiters.pop((msg.ident, msg.seq), None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(self.sim.now)
