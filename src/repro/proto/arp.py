"""ARP: dynamic address resolution on the (virtual) LAN.

The paper's testbeds use static configuration, and so do the harness
builders — but the guests *believe* they share a simple Ethernet LAN,
so the stack also implements real ARP: broadcast who-has requests,
unicast replies, caching, retries, and gratuitous ARP (which live
migration uses to update peers quickly).  Enable per stack with
``stack.arp_enabled = True``; unresolvable destinations then fail
instead of falling back to broadcast delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import next_pdu_id

__all__ = [
    "ETHERTYPE_ARP",
    "ARP_REQUEST",
    "ARP_REPLY",
    "ArpMessage",
    "ArpTimeout",
]

ETHERTYPE_ARP = 0x0806
ARP_REQUEST = 1
ARP_REPLY = 2
ARP_SIZE = 28


class ArpTimeout(TimeoutError):
    """Raised when an address cannot be resolved after all retries."""


@dataclass(slots=True)
class ArpMessage:
    """One ARP packet (request or reply)."""

    op: int
    sender_ip: str
    sender_mac: str
    target_ip: str
    target_mac: str = "00:00:00:00:00:00"
    id: int = field(default_factory=next_pdu_id)

    @property
    def size(self) -> int:
        return ARP_SIZE
