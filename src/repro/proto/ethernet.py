"""Ethernet framing and MAC addresses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .base import next_pdu_id

__all__ = [
    "ETH_HEADER",
    "BROADCAST_MAC",
    "ETHERTYPE_IPV4",
    "mac_addr",
    "EthernetFrame",
]

ETH_HEADER = 14
BROADCAST_MAC = "ff:ff:ff:ff:ff:ff"
ETHERTYPE_IPV4 = 0x0800


def mac_addr(index: int, prefix: int = 0x52) -> str:
    """Deterministic locally-administered MAC for node ``index``."""
    if not 0 <= index < 2**40:
        raise ValueError(f"mac index out of range: {index}")
    octets = [prefix] + [(index >> shift) & 0xFF for shift in (32, 24, 16, 8, 0)]
    return ":".join(f"{o:02x}" for o in octets)


@dataclass(slots=True)
class EthernetFrame:
    """A layer-2 frame; ``size`` covers header + payload (FCS/preamble are
    charged by the NIC model)."""

    src: str
    dst: str
    payload: Any
    ethertype: int = ETHERTYPE_IPV4
    id: int = field(default_factory=next_pdu_id)
    # Cached at construction: descriptor payloads are immutable once the
    # frame is in flight (see repro.sim.pipeline ownership rules), and
    # ``size`` is read at every pipeline hop.
    size: int = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        self.size = ETH_HEADER + self.payload.size

    @property
    def payload_size(self) -> int:
        return self.size - ETH_HEADER
