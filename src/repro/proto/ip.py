"""IPv4 packets, fragmentation, and reassembly.

VNET/P supports guest MTUs up to 64 KB; when an encapsulated packet
exceeds the physical MTU the bridge (or host stack) fragments it
(Sect. 4.4).  Fragment offsets follow IPv4 semantics (8-byte units).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from .base import next_pdu_id

__all__ = [
    "IP_HEADER",
    "PROTO_ICMP",
    "PROTO_TCP",
    "PROTO_UDP",
    "IPv4Packet",
    "fragment",
    "Reassembler",
]

IP_HEADER = 20
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(slots=True)
class IPv4Packet:
    """An IPv4 packet; ``size`` covers the IP header + payload.

    For fragments, ``payload`` is carried only by the first fragment (the
    simulation moves metadata, not bytes); every fragment knows the byte
    range it covers so the reassembler can verify completeness.
    """

    src: str
    dst: str
    proto: int
    payload: Any
    payload_bytes: int = -1           # explicit for fragments; -1 = payload.size
    ident: int = field(default_factory=next_pdu_id)
    frag_offset: int = 0              # in bytes (kept byte-granular for clarity)
    more_fragments: bool = False
    ttl: int = 64
    id: int = field(default_factory=next_pdu_id)

    def __post_init__(self):
        if self.payload_bytes < 0:
            self.payload_bytes = self.payload.size

    @property
    def size(self) -> int:
        return IP_HEADER + self.payload_bytes

    @property
    def is_fragment(self) -> bool:
        return self.more_fragments or self.frag_offset > 0


def fragment(packet: IPv4Packet, mtu: int) -> list[IPv4Packet]:
    """Split ``packet`` into fragments that fit ``mtu`` (incl. IP header).

    Returns ``[packet]`` unchanged when it already fits.  Fragment payload
    sizes are multiples of 8 bytes except the last, per IPv4.
    """
    if packet.size <= mtu:
        return [packet]
    max_payload = (mtu - IP_HEADER) // 8 * 8
    if max_payload <= 0:
        raise ValueError(f"MTU {mtu} too small to fragment into")
    fragments: list[IPv4Packet] = []
    total = packet.payload_bytes
    offset = 0
    while offset < total:
        chunk = min(max_payload, total - offset)
        fragments.append(
            replace(
                packet,
                payload=packet.payload if offset == 0 else None,
                payload_bytes=chunk,
                frag_offset=offset,
                more_fragments=(offset + chunk) < total,
                id=next_pdu_id(),
            )
        )
        offset += chunk
    return fragments


class Reassembler:
    """Reassembles fragment streams keyed by (src, dst, proto, ident)."""

    def __init__(self):
        self._partial: dict[tuple, dict] = {}
        self.completed = 0

    def push(self, frag: IPv4Packet) -> Optional[IPv4Packet]:
        """Add a fragment; returns the whole packet when complete, else None."""
        if not frag.is_fragment:
            return frag
        key = (frag.src, frag.dst, frag.proto, frag.ident)
        state = self._partial.setdefault(
            key, {"have": 0, "total": None, "payload": None}
        )
        state["have"] += frag.payload_bytes
        if frag.payload is not None:
            state["payload"] = frag.payload
        if not frag.more_fragments:
            state["total"] = frag.frag_offset + frag.payload_bytes
        if state["total"] is not None and state["have"] >= state["total"]:
            del self._partial[key]
            self.completed += 1
            return IPv4Packet(
                src=frag.src,
                dst=frag.dst,
                proto=frag.proto,
                payload=state["payload"],
                payload_bytes=state["total"],
                ident=frag.ident,
            )
        return None

    @property
    def pending(self) -> int:
        return len(self._partial)
