"""UDP datagrams."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .base import next_pdu_id

__all__ = ["UDP_HEADER", "UDPDatagram"]

UDP_HEADER = 8


@dataclass(slots=True)
class UDPDatagram:
    """A UDP datagram; ``size`` covers the UDP header + payload."""

    sport: int
    dport: int
    payload: Any
    id: int = field(default_factory=next_pdu_id)

    @property
    def size(self) -> int:
        return UDP_HEADER + self.payload.size
