"""ICMP echo (ping)."""

from __future__ import annotations

from dataclasses import dataclass, field

from .base import next_pdu_id

__all__ = ["ICMP_HEADER", "ICMP_ECHO_REQUEST", "ICMP_ECHO_REPLY", "ICMPMessage"]

ICMP_HEADER = 8
ICMP_ECHO_REQUEST = 8
ICMP_ECHO_REPLY = 0


@dataclass(slots=True)
class ICMPMessage:
    """Echo request/reply carrying ``data_size`` payload bytes."""

    icmp_type: int
    ident: int
    seq: int
    data_size: int
    id: int = field(default_factory=next_pdu_id)

    @property
    def size(self) -> int:
        return ICMP_HEADER + self.data_size
